"""Tests for the continuous-batching rollout serving engine.

Covers the paged block manager's budget accounting, the scheduler's
priority/aging/preemption policies, the engine's bit-exactness against the
sequential sampler, and the cross-check against the analytic schedule in
``repro.perf.continuous_batching``.
"""

import numpy as np
import pytest

from repro.cluster.device import SimDevice
from repro.config import GpuSpec
from repro.models.sampler import generate
from repro.models.tinylm import TinyLM, TinyLMConfig
from repro.perf.continuous_batching import (
    continuous_schedule_stats,
    static_schedule_stats,
)
from repro.serving import (
    BlockExhausted,
    PagedKVCache,
    RolloutServer,
    ServingConfig,
    ServingReport,
    kv_bytes_per_token,
    static_batch_steps,
)

CFG = TinyLMConfig(
    n_layers=2,
    hidden_size=16,
    n_heads=2,
    ffn_hidden_size=24,
    vocab_size=13,
    max_seq_len=48,
)


@pytest.fixture
def model():
    return TinyLM(CFG, seed=4)


def make_server(model, **overrides):
    defaults = dict(max_slots=4, block_size=4, greedy=True)
    defaults.update(overrides)
    return RolloutServer(model, ServingConfig(**defaults))


def submit_all(server, prompts, budgets, **kwargs):
    for row, budget in zip(prompts, budgets):
        server.submit(row, max_new_tokens=int(budget), **kwargs)


def drain_with_invariants(server, max_steps=10_000):
    """Drain while asserting the block accounting after every step."""
    while server.pending:
        server.step()
        server.scheduler.check_invariants()
        if server._steps > max_steps:
            raise RuntimeError("did not drain")
    return server.report()


class TestPagedKVCache:
    def test_blocks_needed_rounds_up(self):
        kv = PagedKVCache(CFG, block_size=4, n_blocks=8)
        assert kv.blocks_needed(1) == 1
        assert kv.blocks_needed(4) == 1
        assert kv.blocks_needed(5) == 2
        assert kv.blocks_needed(0) == 0

    def test_reserve_release_roundtrip(self):
        kv = PagedKVCache(CFG, block_size=4, n_blocks=8)
        kv.reserve(0, 6)
        assert kv.blocks_in_use == 2
        assert len(kv.block_table(0)) == 2
        kv.reserve(0, 7)  # same block count: no new allocation
        assert kv.blocks_in_use == 2
        kv.reserve(0, 9)
        assert kv.blocks_in_use == 3
        kv.release(0)
        assert kv.blocks_in_use == 0
        assert kv.block_table(0) == []

    def test_exhaustion_raises_with_counts(self):
        kv = PagedKVCache(CFG, block_size=4, n_blocks=2)
        kv.reserve(0, 8)
        with pytest.raises(BlockExhausted) as exc:
            kv.reserve(1, 4)
        assert exc.value.free == 0
        assert exc.value.total == 2

    def test_bytes_accounting_tracks_blocks(self):
        kv = PagedKVCache(CFG, block_size=4, n_blocks=8)
        per_block = kv_bytes_per_token(CFG) * 4
        kv.reserve(0, 5)
        assert kv.bytes_in_use() == 2 * per_block
        kv.reserve(1, 3)
        assert kv.peak_bytes_in_use() == 3 * per_block
        kv.release(0)
        kv.release(1)
        assert kv.bytes_in_use() == 0
        assert kv.peak_bytes_in_use() == 3 * per_block

    def test_device_ledger_charged_and_freed(self):
        device = SimDevice(0, 0, GpuSpec())
        kv = PagedKVCache(CFG, block_size=4, n_blocks=8, device=device)
        kv.reserve(0, 8)
        assert device.memory.bytes_for("serving/kv_blocks") == kv.bytes_in_use()
        kv.release(0)
        assert device.memory.bytes_for("serving/kv_blocks") == 0


class TestStreamedHandoff:
    """drain(on_finish=...) hands each response off the moment it finishes."""

    def test_on_finish_fires_once_per_request_in_finish_order(self, model):
        server = make_server(model, max_slots=2)
        rng = np.random.default_rng(5)
        budgets = [2, 5, 3]
        for budget in budgets:
            server.submit(
                rng.integers(0, CFG.vocab_size, size=4),
                max_new_tokens=budget,
            )
        streamed = []
        report = server.drain(on_finish=streamed.append)
        assert len(streamed) == len(budgets)
        assert sorted(r.request_id for r in streamed) == [0, 1, 2]
        # the callback sees responses as they finish, not in submit order
        times = [r.finish_time for r in streamed]
        assert times == sorted(times)
        # and the same objects land in the final report
        assert {id(r) for r in streamed} == {id(r) for r in report.completed}

    def test_drain_without_callback_unchanged(self, model):
        server = make_server(model, max_slots=2)
        rng = np.random.default_rng(5)
        for _ in range(3):
            server.submit(
                rng.integers(0, CFG.vocab_size, size=4), max_new_tokens=2
            )
        report = server.drain()
        assert len(report.completed) == 3


class TestScheduling:
    def test_priority_order_of_admission(self, model):
        server = make_server(model, max_slots=1)
        rng = np.random.default_rng(0)
        prompts = rng.integers(0, CFG.vocab_size, size=(3, 4))
        server.submit(prompts[0], max_new_tokens=2, priority=0)
        server.submit(prompts[1], max_new_tokens=2, priority=5)
        server.submit(prompts[2], max_new_tokens=2, priority=1)
        report = server.drain()
        finish = {r.request_id: r.finish_time for r in report.completed}
        assert finish[1] < finish[2] < finish[0]

    @staticmethod
    def _streaming_workload(server):
        """One low-priority request at t=0 plus a stream of high-priority
        arrivals timed so a fresh one is always waiting (1 slot, 2 steps
        per request)."""
        rng = np.random.default_rng(1)
        low = server.submit(
            rng.integers(0, CFG.vocab_size, size=4),
            max_new_tokens=2,
            priority=0,
            arrival_time=0.0,
        )
        step = server.config.step_time
        for i in range(20):
            server.submit(
                rng.integers(0, CFG.vocab_size, size=4),
                max_new_tokens=2,
                priority=10,
                arrival_time=2 * i * step,
            )
        return low

    def test_aging_prevents_starvation(self, model):
        # Aging raises the waiting request's effective priority without
        # bound, so it must overtake the stream of fresh priority-10
        # arrivals instead of finishing last.
        server = make_server(model, max_slots=1, aging=1.0, step_time=1.0)
        low = self._streaming_workload(server)
        report = server.drain()
        order = [r.request_id for r in sorted(
            report.completed, key=lambda r: r.finish_time
        )]
        assert order.index(low) < len(order) - 5

    def test_no_aging_starves_low_priority(self, model):
        # Control: aging disabled, the same stream starves the low request
        # until every high-priority arrival has been served.
        server = make_server(model, max_slots=1, aging=0.0, step_time=1.0)
        low = self._streaming_workload(server)
        report = server.drain()
        order = [r.request_id for r in sorted(
            report.completed, key=lambda r: r.finish_time
        )]
        assert order[-1] == low

    def test_arrivals_respected(self, model):
        server = make_server(model, max_slots=4, step_time=1.0)
        rng = np.random.default_rng(2)
        server.submit(
            rng.integers(0, CFG.vocab_size, size=4), 2, arrival_time=0.0
        )
        late = server.submit(
            rng.integers(0, CFG.vocab_size, size=4), 2, arrival_time=5.0
        )
        report = server.drain()
        by_id = {r.request_id: r for r in report.completed}
        assert by_id[late].first_token_time > 5.0

    def test_submit_rejects_oversized_and_unschedulable(self, model):
        server = make_server(model, n_blocks=2, block_size=4)
        prompt = np.zeros(4, dtype=int)
        with pytest.raises(ValueError):
            server.submit(prompt, max_new_tokens=CFG.max_seq_len)
        with pytest.raises(ValueError):
            # 4 + 8 tokens needs 3 blocks; the pool only ever has 2
            server.submit(prompt, max_new_tokens=8)
        with pytest.raises(ValueError):
            server.submit(np.zeros((2, 4), dtype=int), max_new_tokens=2)
        with pytest.raises(ValueError):
            server.submit(prompt, max_new_tokens=0)


class TestBlockBudget:
    def test_blocks_never_exceed_budget_under_pressure(self, model):
        server = make_server(model, max_slots=4, n_blocks=9, block_size=4)
        rng = np.random.default_rng(3)
        prompts = rng.integers(0, CFG.vocab_size, size=(8, 6))
        submit_all(server, prompts, [10] * 8)
        peaks = []
        while server.pending:
            server.step()
            server.scheduler.check_invariants()
            peaks.append(server.kv.blocks_in_use)
        assert max(peaks) <= 9
        report = server.report()
        assert report.n_preemptions > 0
        assert report.peak_kv_blocks <= 9
        assert server.kv.blocks_in_use == 0

    def test_preemption_frees_cache_and_ledger(self, model):
        device = SimDevice(0, 0, GpuSpec())
        server = RolloutServer(
            model,
            ServingConfig(max_slots=4, n_blocks=9, block_size=4, greedy=True),
            device=device,
        )
        rng = np.random.default_rng(3)
        prompts = rng.integers(0, CFG.vocab_size, size=(8, 6))
        submit_all(server, prompts, [10] * 8)
        saw_preempted_free = False
        while server.pending:
            server.step()
            tag = device.memory.bytes_for("serving/kv_blocks")
            assert tag == server.kv.bytes_in_use()
            for req in server.scheduler.waiting:
                if req.n_preemptions:
                    assert req.cache is None and req.kv_len == 0
                    saw_preempted_free = True
        assert saw_preempted_free
        assert device.memory.bytes_for("serving/kv_blocks") == 0


class TestBitExactness:
    def test_greedy_matches_sequential_generate(self, model):
        rng = np.random.default_rng(5)
        prompts = rng.integers(0, CFG.vocab_size, size=(6, 5))
        sequential = generate(model, prompts, max_new_tokens=7, greedy=True)
        server = make_server(model, max_slots=3)
        submit_all(server, prompts, [7] * 6)
        report = server.drain()
        for r in report.completed:
            np.testing.assert_array_equal(
                r.response, sequential.responses[r.request_id]
            )
            np.testing.assert_allclose(
                r.log_probs,
                sequential.response_log_probs[r.request_id],
                rtol=0,
                atol=0,
            )

    def test_greedy_exact_across_preemption(self, model):
        rng = np.random.default_rng(5)
        prompts = rng.integers(0, CFG.vocab_size, size=(8, 6))
        sequential = generate(model, prompts, max_new_tokens=10, greedy=True)
        server = make_server(model, max_slots=4, n_blocks=9, block_size=4)
        submit_all(server, prompts, [10] * 8)
        report = drain_with_invariants(server)
        assert report.n_preemptions > 0
        for r in report.completed:
            np.testing.assert_array_equal(
                r.response, sequential.responses[r.request_id]
            )

    def test_greedy_eos_matches_sequential_generate(self, model):
        rng = np.random.default_rng(6)
        prompts = rng.integers(0, CFG.vocab_size, size=(6, 5))
        sequential = generate(
            model, prompts, max_new_tokens=9, greedy=True, eos_token_id=2
        )
        server = make_server(model, max_slots=3, eos_token_id=2)
        submit_all(server, prompts, [9] * 6)
        report = server.drain()
        for r in report.completed:
            n = r.response_length
            assert n == int(sequential.response_mask[r.request_id].sum())
            np.testing.assert_array_equal(
                r.response, sequential.responses[r.request_id][:n]
            )

    def test_sampled_decoding_invariant_under_preemption(self, model):
        # Per-request rngs consume one draw per emitted token, so evicting
        # and recomputing a sequence must not change what it samples.
        rng = np.random.default_rng(7)
        prompts = rng.integers(0, CFG.vocab_size, size=(8, 6))
        roomy = make_server(model, max_slots=4, greedy=False, seed=11)
        tight = make_server(
            model, max_slots=4, greedy=False, seed=11, n_blocks=9, block_size=4
        )
        submit_all(roomy, prompts, [10] * 8)
        submit_all(tight, prompts, [10] * 8)
        r_roomy = roomy.drain()
        r_tight = drain_with_invariants(tight)
        assert r_roomy.n_preemptions == 0
        assert r_tight.n_preemptions > 0
        for a, b in zip(r_roomy.completed, r_tight.completed):
            assert a.request_id == b.request_id
            np.testing.assert_array_equal(
                a.response, b.response
            )


class TestAnalyticCrossCheck:
    def test_step_accounting_matches_analytic_model(self, model):
        # Matched workload: all requests at t=0, fixed lengths, no
        # preemption.  The engine must replay the Orca schedule exactly.
        rng = np.random.default_rng(8)
        lengths = rng.integers(2, 12, size=10)
        prompts = rng.integers(0, CFG.vocab_size, size=(10, 4))
        server = make_server(model, max_slots=4)
        submit_all(server, prompts, lengths)
        report = server.drain()
        n_steps, util = continuous_schedule_stats(lengths, 4)
        assert report.n_steps == n_steps
        assert report.slot_utilisation == pytest.approx(util, abs=1e-12)
        assert report.total_tokens == int(lengths.sum())

    def test_fewer_steps_than_static_batching(self, model):
        # With EOS sampling, response lengths vary and continuous batching
        # must beat the wave schedule on the same realised lengths.
        rng = np.random.default_rng(9)
        prompts = rng.integers(0, CFG.vocab_size, size=(12, 4))
        server = make_server(
            model, max_slots=4, greedy=False, eos_token_id=2, seed=3
        )
        submit_all(server, prompts, [12] * 12)
        report = server.drain()
        assert "eos" in report.finish_reasons()
        realised = [r.response_length for r in report.completed]
        assert len(set(realised)) > 1  # the workload is actually variable
        assert report.n_steps < static_batch_steps(realised, 4)
        # and the measured utilisation matches the analytic schedule
        n_steps, util = continuous_schedule_stats(realised, 4)
        assert report.n_steps == n_steps
        assert report.slot_utilisation == pytest.approx(util, rel=0.05)

    def test_static_helper_matches_perf_module(self):
        lengths = [3, 9, 2, 7, 5, 1]
        n_steps, _ = static_schedule_stats(lengths, 2)
        assert static_batch_steps(lengths, 2) == n_steps


class TestLatencyAndSlo:
    def test_latency_stats_and_slo_attainment(self, model):
        server = make_server(
            model,
            max_slots=2,
            step_time=1.0,
            slo_ttft=2.5,
            slo_latency=6.0,
        )
        rng = np.random.default_rng(10)
        prompts = rng.integers(0, CFG.vocab_size, size=(4, 4))
        submit_all(server, prompts, [4] * 4)
        report = server.drain()
        # slots=2: requests 0/1 start at step 1, requests 2/3 at step 5
        by_id = {r.request_id: r for r in report.completed}
        assert by_id[0].ttft == pytest.approx(1.0)
        assert by_id[0].latency == pytest.approx(4.0)
        assert by_id[0].tpot == pytest.approx(1.0)
        assert by_id[2].ttft == pytest.approx(5.0)
        assert by_id[2].latency == pytest.approx(8.0)
        # 0 and 1 meet both SLOs; 2 and 3 miss both
        assert report.slo_attainment() == pytest.approx(0.5)
        assert report.mean_ttft() == pytest.approx(3.0)
        assert report.p95_latency() > report.mean_latency()

    def test_no_slo_configured_returns_none(self, model):
        server = make_server(model)
        server.submit(np.zeros(4, dtype=int), max_new_tokens=2)
        report = server.drain()
        assert report.slo_attainment() is None
        assert report.to_dict()["n_requests"] == 1
        assert any("slot utilisation" in line for line in report.summary_lines())


class TestServerConfig:
    def test_requires_lm_head(self):
        import dataclasses

        scalar = TinyLM(
            dataclasses.replace(CFG, output_head="scalar"), seed=0
        )
        with pytest.raises(ValueError):
            RolloutServer(scalar, ServingConfig())

    def test_rejects_eos_outside_vocab(self, model):
        with pytest.raises(ValueError):
            RolloutServer(model, ServingConfig(eos_token_id=CFG.vocab_size))

    def test_n_blocks_derived_from_device_memory(self, model):
        bytes_per_block = kv_bytes_per_token(CFG) * 16
        small = GpuSpec(memory_bytes=10 * bytes_per_block)
        device = SimDevice(0, 0, small)
        server = RolloutServer(
            model,
            ServingConfig(max_slots=8, block_size=16, memory_fraction=1.0),
            device=device,
        )
        assert server.kv.n_blocks == 10
        # without a device: capped at max_slots full-length sequences
        roomy = RolloutServer(
            model, ServingConfig(max_slots=2, block_size=16)
        )
        assert roomy.kv.n_blocks == 2 * -(-CFG.max_seq_len // 16)


class TestWorkerIntegration:
    """The serving-backed actor path inside a full RLHF system."""

    @staticmethod
    def _build(**kwargs):
        from repro.config import GenParallelConfig, ParallelConfig
        from repro.rlhf.core import AlgoType
        from repro.runtime import build_rlhf_system
        from repro.runtime.placement import ModelAssignment, PlacementPlan

        cfg = TinyLMConfig(
            n_layers=2,
            hidden_size=32,
            n_heads=4,
            ffn_hidden_size=48,
            vocab_size=16,
            max_seq_len=32,
        )
        par = ParallelConfig(pp=1, tp=2, dp=1)
        gen = GenParallelConfig.derive(par, 1, 1)
        models = ("actor", "critic", "reference", "reward")
        plan = PlacementPlan(
            pools={"main": 2},
            assignments={
                m: ModelAssignment(
                    "main", par, gen if m == "actor" else None
                )
                for m in models
            },
        )
        return build_rlhf_system(
            AlgoType.PPO, plan, cfg, max_new_tokens=8, lr=5e-3, **kwargs
        )

    def test_serving_actor_bit_exact_with_sequential(self):
        from repro.data.dataset import PromptDataset

        prompts = PromptDataset(
            n_prompts=16, prompt_length=4, vocab_size=16, seed=1
        ).batch(0, 8)
        served = self._build(use_serving=True)
        plain = self._build(use_serving=False)
        a = served.groups["actor"].generate_sequences(
            prompts, do_sample=False
        ).get()
        b = plain.groups["actor"].generate_sequences(
            prompts, do_sample=False
        ).get()
        np.testing.assert_array_equal(a["sequences"], b["sequences"])
        np.testing.assert_array_equal(a["old_log_probs"], b["old_log_probs"])

    def test_serving_ppo_trains_with_eos_masks(self):
        from repro.data.dataset import PromptDataset

        system = self._build(eos_token_id=0, use_serving=True)
        dataset = PromptDataset(
            n_prompts=32, prompt_length=4, vocab_size=16, seed=1
        )
        history = system.trainer.train(dataset, 1, 8)
        assert all(
            np.isfinite(v)
            for h in history
            for v in h.values()
            if isinstance(v, float)
        )
        # serving spans and metrics landed in the controller's registry
        assert system.controller.metrics.total(
            "repro_serving_tokens_total"
        ) > 0
        assert (
            system.controller.tracer.counts_by_category().get("serving", 0)
            > 0
        )


class TestBatchedDecode:
    """The cohort-batched decode path vs the per-slot historical path.

    ``batched_decode=True`` groups running requests with equal kv length
    into one forward per step; numpy's row-independent kernels plus
    per-request rng streams make the output bit-identical to decoding each
    slot alone — these tests pin that, including under preemption.
    """

    def test_sampled_output_matches_per_slot_decode(self, model):
        rng = np.random.default_rng(3)
        prompts = rng.integers(0, CFG.vocab_size, size=(8, 5))
        batched = make_server(model, greedy=False, seed=5, batched_decode=True)
        per_slot = make_server(
            model, greedy=False, seed=5, batched_decode=False
        )
        submit_all(batched, prompts, [9] * 8)
        submit_all(per_slot, prompts, [9] * 8)
        r_batched = drain_with_invariants(batched)
        r_per_slot = per_slot.drain()
        assert r_batched.n_steps == r_per_slot.n_steps
        for a, b in zip(r_batched.completed, r_per_slot.completed):
            assert a.request_id == b.request_id
            np.testing.assert_array_equal(a.response, b.response)
            np.testing.assert_array_equal(a.log_probs, b.log_probs)

    def test_matches_per_slot_under_preemption(self, model):
        rng = np.random.default_rng(8)
        prompts = rng.integers(0, CFG.vocab_size, size=(8, 6))
        kwargs = dict(
            max_slots=4, greedy=False, seed=11, n_blocks=9, block_size=4
        )
        batched = make_server(model, batched_decode=True, **kwargs)
        per_slot = make_server(model, batched_decode=False, **kwargs)
        submit_all(batched, prompts, [10] * 8)
        submit_all(per_slot, prompts, [10] * 8)
        r_batched = drain_with_invariants(batched)
        r_per_slot = per_slot.drain()
        assert r_batched.n_preemptions > 0
        assert r_batched.n_preemptions == r_per_slot.n_preemptions
        for a, b in zip(r_batched.completed, r_per_slot.completed):
            assert a.request_id == b.request_id
            np.testing.assert_array_equal(a.response, b.response)

    def test_batched_decode_reduces_forward_calls(self, model):
        def run(batched_decode):
            server = make_server(
                model, greedy=True, batched_decode=batched_decode
            )
            calls = 0
            original = server.model.forward

            def counting(*args, **kwargs):
                nonlocal calls
                calls += 1
                return original(*args, **kwargs)

            server.model.forward = counting
            prompts = np.ones((4, 4), dtype=int)
            submit_all(server, prompts, [8] * 4)
            report = server.drain()
            server.model.forward = original
            return calls, report

        batched_calls, r_batched = run(True)
        per_slot_calls, r_per_slot = run(False)
        for a, b in zip(r_batched.completed, r_per_slot.completed):
            np.testing.assert_array_equal(a.response, b.response)
        # 4 identical-budget requests decode in lock-step: one cohort
        # forward replaces four per-slot forwards on every decode step.
        assert batched_calls < per_slot_calls


def _empty_report():
    return ServingReport(
        completed=[],
        n_steps=0,
        total_tokens=0,
        slot_utilisation=0.0,
        n_preemptions=0,
        recomputed_tokens=0,
        kv_blocks_total=8,
        peak_kv_blocks=0,
        peak_kv_bytes=0,
    )


class TestEmptyReportAggregates:
    def test_percentile_of_empty_samples_is_none(self):
        report = _empty_report()
        assert report._percentile([], 95) is None
        assert report.mean_ttft() is None
        assert report.p95_ttft() is None
        assert report.mean_tpot() is None
        assert report.mean_latency() is None
        assert report.p95_latency() is None
        assert report.slo_attainment() is None

    def test_summary_renders_missing_stats_as_na(self):
        text = "\n".join(_empty_report().summary_lines())
        assert "n/a" in text
        assert "0.0000" not in text.split("TTFT")[1].splitlines()[0]
