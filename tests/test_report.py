"""Tests for the run-report renderer."""

import pytest

from repro.config import GenParallelConfig, ParallelConfig
from repro.data.dataset import PromptDataset, SyntheticPreferenceTask
from repro.models.tinylm import TinyLMConfig
from repro.rlhf.core import AlgoType
from repro.runtime import ModelAssignment, PlacementPlan, build_rlhf_system
from repro.runtime.report import (
    dataflow_summary,
    memory_summary,
    metrics_summary,
    placement_summary,
    system_report,
    traffic_summary,
)

CFG = TinyLMConfig(
    n_layers=2,
    hidden_size=32,
    n_heads=4,
    ffn_hidden_size=48,
    vocab_size=16,
    max_seq_len=32,
)


@pytest.fixture(scope="module")
def trained_system():
    par = ParallelConfig(1, 2, 1)
    plan = PlacementPlan(
        pools={"main": 2, "r": 1},
        assignments={
            "actor": ModelAssignment("main", par, GenParallelConfig.derive(par, 1, 1)),
            "critic": ModelAssignment("main", par),
            "reference": ModelAssignment("main", par),
            "reward": ModelAssignment("r", ParallelConfig(1, 1, 1)),
        },
    )
    task = SyntheticPreferenceTask(vocab_size=16)
    system = build_rlhf_system(
        AlgoType.PPO, plan, CFG, reward_fn=task.reward, max_new_tokens=5
    )
    system.trainer.train(PromptDataset(32, 4, 16, seed=1), 2, 8)
    return system


class TestSections:
    def test_placement_lists_all_models(self, trained_system):
        text = "\n".join(placement_summary(trained_system))
        for role in ("actor", "critic", "reference", "reward"):
            assert role in text
        assert "generation" in text  # the actor's gen topology

    def test_dataflow_counts_calls(self, trained_system):
        text = "\n".join(dataflow_summary(trained_system))
        assert "actor.generate_sequences" in text
        assert "x2" in text  # two iterations

    def test_traffic_nonzero(self, trained_system):
        text = "\n".join(traffic_summary(trained_system))
        assert "total" in text
        assert "0.0 B total" not in text

    def test_memory_covers_every_device(self, trained_system):
        text = "\n".join(memory_summary(trained_system))
        assert text.count("GPU ") == 3  # 2 main + 1 reward device

    def test_metrics_trend(self, trained_system):
        text = "\n".join(metrics_summary(trained_system))
        assert "score_mean" in text and "->" in text


class TestFullReport:
    def test_report_renders(self, trained_system):
        text = system_report(trained_system)
        assert "RLHF system report" in text
        assert "execution timeline" in text

    def test_report_without_timeline(self, trained_system):
        text = system_report(trained_system, include_timeline=False)
        assert "execution timeline" not in text

    def test_untrained_system_report(self):
        par = ParallelConfig(1, 1, 1)
        plan = PlacementPlan(
            pools={"main": 1, "r": 1},
            assignments={
                "actor": ModelAssignment(
                    "main", par, GenParallelConfig.derive(par, 1, 1)
                ),
                "critic": ModelAssignment("main", par),
                "reference": ModelAssignment("main", par),
                "reward": ModelAssignment("r", par),
            },
        )
        task = SyntheticPreferenceTask(vocab_size=16)
        system = build_rlhf_system(
            AlgoType.PPO, plan, CFG, reward_fn=task.reward
        )
        text = system_report(system)
        assert "no training iterations" in text
