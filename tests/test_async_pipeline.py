"""Tests for the async one-step-off pipeline (``repro.pipeline``).

Covers the staleness-window semantics (0 = bit-exact synchronous, W bounds
the version lag and the buffer), the truncated importance-weight numerics,
the weight-publication protocol, race-freedom of the overlapped schedule,
mid-overlap checkpoint recovery, the DF108 soundness checks, and the
analytic overlap model in ``repro.perf.async_pipeline``.
"""

import numpy as np
import pytest

from repro.analysis import DataflowChecker, RaceDetector, TraceAuditor
from repro.config import ClusterSpec, GenParallelConfig, ParallelConfig
from repro.data import PromptDataset
from repro.models.tinylm import TinyLMConfig
from repro.perf.async_pipeline import async_schedule, overlap_speedup
from repro.pipeline import (
    AsyncPipelineDriver,
    BufferFull,
    ExperienceBuffer,
    PipelineConfig,
)
from repro.rlhf.core import AlgoType
from repro.rlhf.losses import (
    ppo_policy_loss,
    truncated_importance_weights,
)
from repro.rlhf.trainers import TrainerConfig
from repro.runtime import ModelAssignment, PlacementPlan, build_rlhf_system
from repro.runtime.timeline import build_timeline

CFG = TinyLMConfig(
    n_layers=2,
    hidden_size=32,
    n_heads=4,
    ffn_hidden_size=48,
    vocab_size=16,
    max_seq_len=32,
)


def build_system(algo=AlgoType.PPO, **trainer_kwargs):
    """Disaggregated placement: actor alone, scorers on a shared pool."""
    actor_par = ParallelConfig(pp=1, tp=2, dp=1)
    scorer_par = ParallelConfig(pp=1, tp=1, dp=1)
    assignments = {
        "actor": ModelAssignment(
            "actor", actor_par, GenParallelConfig.derive(actor_par, 1, 1)
        ),
        "reference": ModelAssignment("scorer", scorer_par),
        "reward": ModelAssignment("scorer", scorer_par),
    }
    if algo is AlgoType.PPO:
        assignments["critic"] = ModelAssignment("scorer", scorer_par)
    plan = PlacementPlan(
        pools={"actor": 2, "scorer": 1}, assignments=assignments
    )
    return build_rlhf_system(
        algo,
        plan,
        CFG,
        cluster_spec=ClusterSpec(n_machines=1, gpus_per_machine=4),
        trainer_config=TrainerConfig(kl_coef=0.01, seed=7, **trainer_kwargs),
        max_new_tokens=6,
        lr=5e-3,
        seed=7,
    )


def dataset():
    return PromptDataset(n_prompts=64, prompt_length=4, vocab_size=16, seed=1)


def states_equal(sys_a, sys_b) -> bool:
    for name in sys_a.groups:
        for wa, wb in zip(
            sys_a.groups[name].workers, sys_b.groups[name].workers
        ):
            sa, sb = wa.state_for_checkpoint(), wb.state_for_checkpoint()
            if set(sa) != set(sb):
                return False
            for key in sa:
                va, vb = sa[key], sb[key]
                if isinstance(va, np.ndarray) or isinstance(vb, np.ndarray):
                    if not np.array_equal(np.asarray(va), np.asarray(vb)):
                        return False
                elif va != vb:
                    return False
    return True


def histories_equal(ha, hb) -> bool:
    if len(ha) != len(hb):
        return False
    for a, b in zip(ha, hb):
        if set(a) != set(b):
            return False
        for key in a:
            if not np.array_equal(np.asarray(a[key]), np.asarray(b[key])):
                return False
    return True


class TestStalenessZeroBitExact:
    def test_ppo_weights_and_history_match_synchronous(self):
        sync = build_system()
        sync.trainer.train(dataset(), n_iterations=3, batch_size=4)

        system = build_system()
        driver = AsyncPipelineDriver(
            system.trainer, PipelineConfig(staleness_window=0)
        )
        history = driver.train(dataset(), n_iterations=3, batch_size=4)

        assert states_equal(sync, system)
        assert histories_equal(sync.trainer.history, history)
        assert driver.max_staleness_seen == 0
        # no pipeline/* keys leak into the on-policy history
        assert all("pipeline/staleness" not in h for h in history)

    def test_grpo_weights_and_history_match_synchronous(self):
        sync = build_system(AlgoType.GRPO, group_size=2)
        sync.trainer.train(dataset(), n_iterations=2, batch_size=2)

        system = build_system(AlgoType.GRPO, group_size=2)
        driver = AsyncPipelineDriver(
            system.trainer, PipelineConfig(staleness_window=0)
        )
        history = driver.train(dataset(), n_iterations=2, batch_size=2)

        assert states_equal(sync, system)
        assert histories_equal(sync.trainer.history, history)


class TestStalenessBounds:
    @pytest.mark.parametrize("window", [0, 1, 3])
    def test_max_staleness_and_buffer_bounded_by_window(self, window):
        system = build_system()
        driver = AsyncPipelineDriver(
            system.trainer, PipelineConfig(staleness_window=window)
        )
        n = 5
        driver.train(dataset(), n_iterations=n, batch_size=4)
        assert driver.max_staleness_seen == min(window, n - 1)
        assert driver.buffer.peak_occupancy <= window + 1
        assert len(driver.buffer) == 0  # fully drained at the end
        report = driver.report()
        assert report["iterations"] == n
        assert report["publications"] == n

    def test_stale_iterations_are_tagged_in_history(self):
        system = build_system()
        driver = AsyncPipelineDriver(
            system.trainer, PipelineConfig(staleness_window=2)
        )
        history = driver.train(dataset(), n_iterations=4, batch_size=4)
        # iteration 0 is always on-policy; later ones trained at lag min(t, W)
        assert "pipeline/staleness" not in history[0]
        assert history[1]["pipeline/staleness"] == 1
        assert history[2]["pipeline/staleness"] == 2
        assert history[3]["pipeline/staleness"] == 2
        assert history[3]["pipeline/policy_version"] == 1


class TestOverlapSpeedup:
    def test_window_one_beats_synchronous_on_modeled_timeline(self):
        sync = build_system()
        sync.trainer.train(dataset(), n_iterations=3, batch_size=4)
        sync_makespan = build_timeline(sync.controller).makespan

        system = build_system()
        AsyncPipelineDriver(
            system.trainer, PipelineConfig(staleness_window=1)
        ).train(dataset(), n_iterations=3, batch_size=4)
        async_makespan = build_timeline(system.controller).makespan

        assert async_makespan < sync_makespan
        # the actor pool's idle bubble collapses under overlap
        sync_tl = build_timeline(sync.controller)
        async_tl = build_timeline(system.controller)
        assert async_tl.idle_fraction("actor") < sync_tl.idle_fraction("actor")


class TestImportanceWeights:
    def test_on_policy_weights_are_all_ones(self):
        logp = np.log(np.full((2, 3), 0.25))
        w = truncated_importance_weights(logp, logp.copy())
        assert np.allclose(w, 1.0)

    def test_truncation_caps_the_ratio(self):
        behaviour = np.full((1, 4), np.log(0.1))
        anchor = np.full((1, 4), np.log(0.9))  # ratio 9 >> clip
        w = truncated_importance_weights(anchor, behaviour, clip=2.0)
        assert np.allclose(w, 2.0)

    def test_masked_positions_get_weight_one(self):
        behaviour = np.full((1, 4), np.log(0.1))
        anchor = np.full((1, 4), np.log(0.9))
        mask = np.array([[1.0, 1.0, 0.0, 0.0]])
        w = truncated_importance_weights(
            anchor, behaviour, clip=5.0, response_mask=mask
        )
        assert np.allclose(w[0, :2], 5.0)
        assert np.allclose(w[0, 2:], 1.0)

    def test_clip_below_one_rejected(self):
        logp = np.zeros((1, 2))
        with pytest.raises(ValueError):
            truncated_importance_weights(logp, logp, clip=0.5)

    def test_ppo_loss_scales_advantages_by_weights(self):
        rng = np.random.default_rng(0)
        shape = (2, 5)
        logp = rng.normal(size=shape) * 0.1
        old = logp + rng.normal(size=shape) * 0.01
        adv = rng.normal(size=shape)
        weights = np.full(shape, 0.5)
        _, m_plain = ppo_policy_loss(logp, old, adv)
        _, m_weighted = ppo_policy_loss(
            logp, old, adv, importance_weights=weights
        )
        _, m_half = ppo_policy_loss(logp, old, adv * 0.5)
        assert m_weighted["iw_mean"] == pytest.approx(0.5)
        assert m_weighted["policy_loss"] == pytest.approx(m_half["policy_loss"])
        assert m_weighted["policy_loss"] != pytest.approx(
            m_plain["policy_loss"]
        )

    def test_stale_batches_carry_iw_metrics_in_history(self):
        system = build_system()
        driver = AsyncPipelineDriver(
            system.trainer, PipelineConfig(staleness_window=1)
        )
        history = driver.train(dataset(), n_iterations=3, batch_size=4)
        assert "actor/iw_mean" not in history[0]  # on-policy warm-up
        for h in history[1:]:
            assert h["actor/iw_mean"] > 0.0
            assert h["actor/iw_min"] <= h["actor/iw_mean"]


class TestRaceFreedom:
    def test_overlapped_schedule_is_clean(self):
        system = build_system()
        AsyncPipelineDriver(
            system.trainer, PipelineConfig(staleness_window=1)
        ).train(dataset(), n_iterations=3, batch_size=4)
        report = TraceAuditor().audit_system(system)
        RaceDetector().detect_system(system, report=report)
        races = [f for f in report.findings if f.rule.startswith("RC")]
        assert races == []
        assert report.ok(strict=True)

    def test_publication_leaves_versioned_access_trail(self):
        system = build_system()
        AsyncPipelineDriver(
            system.trainer, PipelineConfig(staleness_window=1)
        ).train(dataset(), n_iterations=2, batch_size=4)
        resources = {
            e.resource for e in system.controller.access_log.events
        }
        assert "pipeline/weights[v1]" in resources
        assert "pipeline/experience[0]" in resources


class TestRecoveryMidOverlap:
    def test_checkpoint_restores_trainer_and_rollout_state(self, tmp_path):
        # drive manually into a mid-overlap state: rollouts 0 and 1 done,
        # iteration 0 trained -> batch 1 still buffered, one step off
        system = build_system()
        driver = AsyncPipelineDriver(
            system.trainer, PipelineConfig(staleness_window=1)
        )
        batches = dataset().iter_batches(4, epochs=100)
        driver._rollout(next(batches))
        driver._rollout(next(batches))
        driver._train_one()
        assert len(driver.buffer) == 1
        driver.save_checkpoint(str(tmp_path / "ckpt"))

        restored_sys = build_system()
        restored = AsyncPipelineDriver(
            restored_sys.trainer, PipelineConfig(staleness_window=1)
        )
        restored.load_checkpoint(str(tmp_path / "ckpt"))
        assert restored._next_gen == 2
        assert len(restored.buffer) == 1
        assert restored.publisher.staged_version == 1
        restored.train(dataset(), n_iterations=3, batch_size=4)

        # an uninterrupted run of the same schedule must match bit for bit
        oracle_sys = build_system()
        oracle = AsyncPipelineDriver(
            oracle_sys.trainer, PipelineConfig(staleness_window=1)
        )
        oracle.train(dataset(), n_iterations=4, batch_size=4)
        assert states_equal(oracle_sys, restored_sys)
        # trainer checkpoints persist the history *count*, not the metric
        # dicts (matching RlhfTrainerBase.load_state_dict); every iteration
        # trained after the restore must match the uninterrupted run
        assert len(restored_sys.trainer.history) == 4
        assert histories_equal(
            oracle_sys.trainer.history[1:], restored_sys.trainer.history[1:]
        )


class TestWeightPublisher:
    def test_publish_acquire_protocol(self):
        system = build_system()
        from repro.hybrid_engine import WeightPublisher

        publisher = WeightPublisher(system.groups["actor"])
        assert publisher.acquire() == 0
        publisher.publish(1)
        # staged but not visible until the next generate-call boundary
        assert publisher.active_version == 0
        assert publisher.acquire() == 1
        with pytest.raises(ValueError):
            publisher.publish(1)  # must be monotonically increasing
        assert publisher.bytes_published > 0
        assert publisher.publish_bytes_per_version() > 0

    def test_requires_generation_topology(self):
        system = build_system()
        from repro.hybrid_engine import WeightPublisher

        with pytest.raises(ValueError):
            WeightPublisher(system.groups["critic"])


class TestExperienceBuffer:
    def _batch(self):
        from repro.data.batch import DataBatch

        return DataBatch({"sequences": np.arange(6).reshape(2, 3)})

    def test_capacity_enforced(self):
        buffer = ExperienceBuffer(2)
        buffer.put(0, 0, self._batch())
        buffer.put(1, 0, self._batch())
        with pytest.raises(BufferFull):
            buffer.put(2, 1, self._batch())
        buffer.pop(0)
        buffer.put(2, 1, self._batch())  # freed slot is reusable
        assert buffer.peak_occupancy == 2

    def test_duplicate_and_missing_indices(self):
        buffer = ExperienceBuffer(2)
        buffer.put(0, 0, self._batch())
        with pytest.raises(ValueError):
            buffer.put(0, 0, self._batch())
        with pytest.raises(KeyError):
            buffer.pop(5)

    def test_state_roundtrip_preserves_arrays(self):
        buffer = ExperienceBuffer(3)
        buffer.put(4, 3, self._batch())
        state = buffer.state_dict()
        fresh = ExperienceBuffer(3)
        fresh.load_state_dict(state)
        entry = fresh.pop(4)
        assert entry.version == 3
        assert np.array_equal(
            entry.batch["sequences"], np.arange(6).reshape(2, 3)
        )
        assert entry.batch["sequences"].dtype == np.arange(6).dtype


class TestDataflowRule108:
    def check(self, pipeline_config, trainer_config=None, algo=AlgoType.PPO):
        return DataflowChecker().check_pipeline(
            pipeline_config, trainer_config, algo
        )

    def test_clean_config_has_no_findings(self):
        report = self.check(PipelineConfig(staleness_window=1), TrainerConfig())
        assert report.findings == []

    def test_staleness_without_iw_is_an_error(self):
        report = self.check(
            PipelineConfig(staleness_window=1, importance_weighting=False)
        )
        assert [f.rule for f in report.findings] == ["DF108"]
        assert report.findings[0].severity == "error"

    def test_window_exceeding_buffer_is_an_error(self):
        report = self.check(
            PipelineConfig(staleness_window=2, buffer_capacity=2)
        )
        errors = [f for f in report.findings if f.severity == "error"]
        assert len(errors) == 1

    def test_no_recompute_anchor_is_a_warning(self):
        report = self.check(
            PipelineConfig(staleness_window=1),
            TrainerConfig(recompute_log_probs=False),
        )
        assert [f.severity for f in report.findings] == ["warning"]

    def test_negative_window_is_a_single_error_with_hint(self):
        report = self.check(PipelineConfig(staleness_window=-1))
        assert [f.rule for f in report.findings] == ["DF108"]
        assert report.findings[0].severity == "error"
        assert report.findings[0].hint

    def test_actor_without_generation_plan_is_a_single_error(self):
        from types import SimpleNamespace

        actor = SimpleNamespace(gen_topology=None, workers=())
        report = DataflowChecker().check_pipeline(
            PipelineConfig(staleness_window=1),
            TrainerConfig(),
            AlgoType.PPO,
            actor=actor,
        )
        assert [f.rule for f in report.findings] == ["DF108"]
        assert report.findings[0].severity == "error"
        assert "generation topology" in report.findings[0].message
        assert report.findings[0].hint

    def test_serving_backed_actor_is_a_single_error(self):
        from types import SimpleNamespace

        actor = SimpleNamespace(
            gen_topology=object(),
            workers=(SimpleNamespace(use_serving=True),),
        )
        report = DataflowChecker().check_pipeline(
            PipelineConfig(staleness_window=1),
            TrainerConfig(),
            AlgoType.PPO,
            actor=actor,
        )
        assert [f.rule for f in report.findings] == ["DF108"]
        assert report.findings[0].severity == "error"
        assert "use_serving" in report.findings[0].message
        assert report.findings[0].hint

    def test_driver_refuses_serving_backed_actor(self):
        system = build_system()
        for worker in system.trainer.actor.workers:
            worker.use_serving = True
        with pytest.raises(ValueError, match="DF108"):
            AsyncPipelineDriver(
                system.trainer, PipelineConfig(staleness_window=1)
            )

    def test_driver_refuses_df108_error_config(self):
        system = build_system()
        with pytest.raises(ValueError, match="DF108"):
            AsyncPipelineDriver(
                system.trainer,
                PipelineConfig(staleness_window=1, importance_weighting=False),
            )

    def test_driver_refuses_unsupported_algo(self):
        system = build_system()
        system.trainer.algo = AlgoType.REMAX
        with pytest.raises(ValueError):
            AsyncPipelineDriver(system.trainer)


class TestAnalyticOverlapModel:
    def test_window_zero_is_the_synchronous_chain(self):
        sched = async_schedule([6.0] * 4, 3.0, 3.0, staleness_window=0)
        assert sched.makespan == pytest.approx(4 * (6.0 + 3.0 + 3.0))

    def test_window_one_collapses_the_bubble(self):
        assert overlap_speedup([6.0] * 4, 3.0, 3.0, 1) > 1.3

    def test_speedup_never_below_one(self):
        for window in (0, 1, 2, 5):
            assert overlap_speedup([2.0, 3.0, 2.0], 1.0, 1.0, window) >= 1.0

    def test_larger_window_absorbs_generation_jitter(self):
        gen = [2.0, 2.0, 10.0, 2.0, 2.0, 2.0, 2.0, 2.0]
        m = {
            w: async_schedule(gen, 1.0, 3.0, w).makespan for w in (0, 1, 2, 3)
        }
        assert m[0] == pytest.approx(56.0)
        assert m[1] == pytest.approx(40.0)
        assert m[2] == pytest.approx(38.0)  # W=2 hides the slow rollout
        assert m[2] < m[1] < m[0]
        assert m[3] == pytest.approx(m[2])  # diminishing returns

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            async_schedule([], 1.0, 1.0)
        with pytest.raises(ValueError):
            async_schedule([1.0], -1.0, 1.0)
        with pytest.raises(ValueError):
            async_schedule([1.0], 1.0, 1.0, staleness_window=-1)


class TestStreamedScoring:
    def test_stream_on_and_off_train_identical_weights(self):
        plain_sys = build_system()
        AsyncPipelineDriver(
            plain_sys.trainer, PipelineConfig(staleness_window=1)
        ).train(dataset(), n_iterations=3, batch_size=4)

        stream_sys = build_system()
        AsyncPipelineDriver(
            stream_sys.trainer,
            PipelineConfig(staleness_window=1, stream_scoring=True),
        ).train(dataset(), n_iterations=3, batch_size=4)

        assert states_equal(plain_sys, stream_sys)
        assert histories_equal(
            plain_sys.trainer.history, stream_sys.trainer.history
        )
