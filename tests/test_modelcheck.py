"""MC6xx bounded protocol model checker: exploration, reduction,
conformance against the real implementations, and the seeded mutation
smoke.

The checker (:mod:`repro.analysis.modelcheck`) explores every small-scope
interleaving of the protocol models in :mod:`repro.analysis.protocols`.
Three properties keep the whole arrangement honest and are each tested
here:

* the intact shipped models explore a five-figure state count with zero
  counterexamples (the CI gate);
* real-implementation traces — the async pipeline driver, the serving
  drain loop, the fleet scheduler — map onto enabled model schedules
  (conformance: the models over-approximate the real behaviours);
* each seeded single-guard mutant yields exactly its expected MC rule,
  and the minimised counterexample replays into an RC501 race or TA205
  ledger violation through the existing dynamic validators.
"""

import numpy as np
import pytest

from repro.analysis import AnalysisReport
from repro.analysis.modelcheck import (
    MC_RULES,
    Counterexample,
    ModelChecker,
    cross_validate,
    seeded_mutants,
    shipped_models,
)
from repro.analysis.protocols import (
    Action,
    AsyncPipelineModel,
    DrainHandoffModel,
    FleetGangModel,
    JobSpec,
    independent,
    replay_schedule,
)
from repro.config import ClusterSpec, GenParallelConfig, ParallelConfig
from repro.data import PromptDataset
from repro.models.tinylm import TinyLM, TinyLMConfig
from repro.pipeline import AsyncPipelineDriver, PipelineConfig
from repro.rlhf.core import AlgoType
from repro.rlhf.trainers import TrainerConfig
from repro.runtime import ModelAssignment, PlacementPlan, build_rlhf_system
from repro.serving import RolloutServer, ServingConfig


def rules_of(result):
    return [ce.rule for ce in result.counterexamples]


def greedy_schedule(model, limit=1000):
    """Drive the model by always taking the first enabled action."""
    state = model.initial_state()
    schedule = []
    while not model.is_terminal(state):
        actions = model.enabled(state)
        assert actions, f"greedy run of {model.name} deadlocked"
        schedule.append(actions[0].name)
        state = model.apply(state, actions[0])
        assert len(schedule) < limit, f"greedy run of {model.name} diverged"
    return schedule, state


# ---------------------------------------------------------------------------
# Action independence (the partial-order reduction's soundness input)
# ---------------------------------------------------------------------------


class TestIndependence:
    def test_same_thread_never_independent(self):
        a = Action(name="x", thread="t", reads=("p",))
        b = Action(name="y", thread="t", reads=("q",))
        assert not independent(a, b)

    def test_disjoint_footprints_commute(self):
        a = Action(name="x", thread="t1", writes=("p",))
        b = Action(name="y", thread="t2", writes=("q",))
        assert independent(a, b)

    def test_write_read_conflict(self):
        a = Action(name="x", thread="t1", writes=("p",))
        b = Action(name="y", thread="t2", reads=("p",))
        assert not independent(a, b)

    def test_control_state_counts_as_footprint(self):
        a = Action(name="x", thread="t1", ctrl_writes=("ptr",))
        b = Action(name="y", thread="t2", ctrl_reads=("ptr",))
        assert not independent(a, b)

    def test_release_sync_ordering_is_a_dependency(self):
        a = Action(name="x", thread="t1", releases=("tok",))
        b = Action(name="y", thread="t2", syncs=("tok",))
        assert not independent(a, b)

    def test_shared_ledger_tag_is_a_dependency(self):
        a = Action(name="x", thread="t1", allocs=(("gpu0", 1),))
        b = Action(name="y", thread="t2", frees=(("gpu0", 1),))
        assert not independent(a, b)


# ---------------------------------------------------------------------------
# Checker mechanics
# ---------------------------------------------------------------------------


class TestCheckerCore:
    def test_intact_pipeline_is_clean(self):
        result = ModelChecker().check_model(
            AsyncPipelineModel(n_iterations=4, window=1)
        )
        assert result.ok
        assert not result.truncated
        assert result.states > 10
        assert result.transitions >= result.states - 1

    def test_reduction_finds_the_same_rules_cheaper(self):
        mutant = lambda: AsyncPipelineModel(  # noqa: E731
            n_iterations=4, window=1, capacity=3, mutate="drop_staleness_guard"
        )
        reduced = ModelChecker(reduce=True).check_model(mutant())
        full = ModelChecker(reduce=False).check_model(mutant())
        assert rules_of(reduced) == rules_of(full) == ["MC603"]
        assert reduced.transitions <= full.transitions

    def test_reduction_keeps_intact_models_clean(self):
        for model in (
            AsyncPipelineModel(n_iterations=4, window=1),
            DrainHandoffModel(targets=(2, 1), slots=2),
        ):
            assert ModelChecker(reduce=False).check_model(model).ok

    def test_shrunk_counterexample_is_shorter_and_still_fails(self):
        make = lambda: AsyncPipelineModel(  # noqa: E731
            n_iterations=4, window=1, capacity=3, mutate="drop_staleness_guard"
        )
        raw = ModelChecker(shrink=False).check_model(make())
        shrunk = ModelChecker(shrink=True).check_model(make())
        (raw_ce,) = raw.counterexamples
        (ce,) = shrunk.counterexamples
        assert len(ce.schedule) <= len(raw_ce.schedule)
        final = make().run_schedule(list(ce.schedule))
        assert "MC603" in [rule for rule, _ in final.viol]
        # minimality in the prefix sense: no strict prefix already fails
        for cut in range(len(ce.schedule)):
            prefix = make().run_schedule(list(ce.schedule[:cut]))
            assert prefix.viol == ()

    def test_state_budget_sets_truncated(self):
        result = ModelChecker(max_states=100).check_model(
            AsyncPipelineModel(n_iterations=12, window=4, capacity=4)
        )
        assert result.truncated
        assert result.states <= 101

    def test_run_schedule_rejects_disabled_steps(self):
        model = AsyncPipelineModel(n_iterations=2, window=1)
        with pytest.raises(ValueError, match="not enabled"):
            model.run_schedule(["train.consume[0]"])

    def test_counterexample_render(self):
        ce = Counterexample("MC603", "m", ("a", "b"), "model")
        assert ce.render() == "a -> b"

    def test_check_all_folds_findings_into_report(self):
        checker = ModelChecker()
        report = checker.check_all(
            [
                AsyncPipelineModel(n_iterations=3, window=1),
                DrainHandoffModel(
                    targets=(2, 1), slots=2, mutate="skip_done_guard"
                ),
            ]
        )
        assert report.checked["mc_models"] == 2
        assert report.checked["mc_states"] > 0
        assert len(checker.last_results) == 2
        (finding,) = report.findings
        assert finding.rule == "MC609"
        assert finding.severity == "error"
        assert finding.location.startswith("model:drain-handoff")
        assert "[schedule:" in finding.message
        assert finding.hint == MC_RULES["MC609"][1]


# ---------------------------------------------------------------------------
# The shipped suite: coverage floor and clean bill of health
# ---------------------------------------------------------------------------


class TestShippedSuite:
    def test_every_shipped_model_is_clean_and_inside_budget(self):
        checker = ModelChecker()
        report = checker.check_all(shipped_models())
        assert report.findings == [], "\n".join(report.summary_lines())
        assert all(not r.truncated for r in checker.last_results)
        assert report.checked["mc_states"] >= 10_000

    def test_intact_terminal_schedules_replay_clean(self):
        for model in (
            AsyncPipelineModel(n_iterations=5, window=1),
            DrainHandoffModel(targets=(2, 1, 2), slots=2),
            FleetGangModel(
                jobs=(JobSpec("a", 1, 2, 2), JobSpec("b", 1, 2, 1)),
                capacity=2,
            ),
        ):
            schedule, final = greedy_schedule(model)
            assert model.state_violations(final) == ()
            assert model.final_violations(final) == ()
            report = cross_validate(model, schedule)
            assert report.findings == [], (
                model.name + "\n" + "\n".join(report.summary_lines())
            )


# ---------------------------------------------------------------------------
# Conformance: real-implementation traces are model behaviours
# ---------------------------------------------------------------------------

CFG = TinyLMConfig(
    n_layers=2,
    hidden_size=32,
    n_heads=4,
    ffn_hidden_size=48,
    vocab_size=16,
    max_seq_len=32,
)

SERVE_CFG = TinyLMConfig(
    n_layers=2,
    hidden_size=16,
    n_heads=2,
    ffn_hidden_size=24,
    vocab_size=13,
    max_seq_len=48,
)


def build_pipeline_system():
    actor_par = ParallelConfig(pp=1, tp=2, dp=1)
    scorer_par = ParallelConfig(pp=1, tp=1, dp=1)
    plan = PlacementPlan(
        pools={"actor": 2, "scorer": 1},
        assignments={
            "actor": ModelAssignment(
                "actor", actor_par, GenParallelConfig.derive(actor_par, 1, 1)
            ),
            "critic": ModelAssignment("scorer", scorer_par),
            "reference": ModelAssignment("scorer", scorer_par),
            "reward": ModelAssignment("scorer", scorer_par),
        },
    )
    return build_rlhf_system(
        AlgoType.PPO,
        plan,
        CFG,
        cluster_spec=ClusterSpec(n_machines=1, gpus_per_machine=4),
        trainer_config=TrainerConfig(kl_coef=0.01, seed=7),
        max_new_tokens=6,
        lr=5e-3,
        seed=7,
    )


class TestRealImplementationConformance:
    def test_async_pipeline_driver_trace_is_a_model_behaviour(self):
        """Every op the real W=1 driver performs maps to an enabled model
        action, and the whole real run is a terminal, violation-free model
        schedule."""
        system = build_pipeline_system()
        driver = AsyncPipelineDriver(
            system.trainer, PipelineConfig(staleness_window=1)
        )
        ops = []
        real_acquire = driver.publisher.acquire
        real_publish = driver.publisher.publish
        real_put = driver.buffer.put
        real_pop = driver.buffer.pop

        def acquire():
            ops.append(f"rollout.begin[{driver._next_gen}]")
            return real_acquire()

        def put(index, version, batch):
            ops.append(f"rollout.end[{index}]")
            return real_put(index, version, batch)

        def pop(iteration):
            ops.append(f"train.consume[{iteration}]")
            return real_pop(iteration)

        def publish(version):
            ops.append(f"publish.begin[{version}]")
            ops.append(f"publish.end[{version}]")
            return real_publish(version)

        driver.publisher.acquire = acquire
        driver.publisher.publish = publish
        driver.buffer.put = put
        driver.buffer.pop = pop

        dataset = PromptDataset(
            n_prompts=64, prompt_length=4, vocab_size=16, seed=1
        )
        driver.train(dataset, n_iterations=3, batch_size=4)

        model = AsyncPipelineModel(n_iterations=3, window=1)
        final = model.run_schedule(ops)  # raises if any op is not enabled
        assert model.is_terminal(final)
        assert model.state_violations(final) == ()
        assert model.final_violations(final) == ()
        report = cross_validate(model, ops)
        assert report.findings == [], "\n".join(report.summary_lines())

    def test_serving_drain_trace_is_a_model_behaviour(self):
        """The real continuous-batching drain maps to the drain-hand-off
        model, and on_finish order equals the model's delivered order."""
        targets = (2, 1, 2)
        model_lm = TinyLM(SERVE_CFG, seed=4)
        server = RolloutServer(
            model_lm, ServingConfig(max_slots=2, block_size=4, greedy=True)
        )
        prompt = np.arange(1, 5)
        for budget in targets:
            server.submit(prompt, max_new_tokens=budget)

        def ids(requests):
            return {r.request_id for r in requests}

        schedule = []
        delivered = []
        while server.pending:
            waiting_before = ids(server.scheduler.waiting)
            finished = server.step()
            fin_ids = [c.request_id for c in finished]
            active = ids(server.scheduler.running) | set(fin_ids)
            for r in sorted(waiting_before & active):
                schedule.append(f"admit[{r}]")
            # every occupied slot emits exactly one token per step; order
            # the finishing decodes to match the engine's completion order
            for r in sorted(active - set(fin_ids)):
                schedule.append(f"decode[{r}]")
            for r in fin_ids:
                schedule.append(f"decode[{r}]")
            for r in fin_ids:  # drain() hands finishers off post-step
                schedule.append(f"handoff[{r}]")
                delivered.append(r)

        model = DrainHandoffModel(targets=targets, slots=2)
        final = model.run_schedule(schedule)
        assert model.is_terminal(final)
        assert model.state_violations(final) == ()
        assert model.final_violations(final) == ()
        assert list(final.delivered) == delivered

        # the real drain(on_finish=...) delivers in that same order
        server2 = RolloutServer(
            TinyLM(SERVE_CFG, seed=4),
            ServingConfig(max_slots=2, block_size=4, greedy=True),
        )
        for budget in targets:
            server2.submit(prompt, max_new_tokens=budget)
        order = []
        server2.drain(on_finish=lambda done: order.append(done.request_id))
        assert order == delivered

    def test_fleet_preemption_run_is_a_model_behaviour(
        self, tmp_path, monkeypatch
    ):
        """A real checkpoint-and-evict preemption run maps onto the fleet
        gang model: admission, preemption, steps, and completion are all
        enabled model actions."""
        from repro.fleet import FleetScheduler
        from repro.fleet import JobSpec as FleetJobSpec

        events = []
        arrived = set()

        real_admit = FleetScheduler._admit
        real_admit_one = FleetScheduler._admit_one
        real_preempt = FleetScheduler._preempt
        real_preempt_for = FleetScheduler._preempt_for
        real_step_job = FleetScheduler._step_job
        victim_stack = []

        def admit(self, tick):
            for job in sorted(
                self.jobs, key=lambda j: (j.spec.arrival_tick, j.spec.name)
            ):
                if (
                    0 < job.spec.arrival_tick <= tick
                    and job.spec.name not in arrived
                ):
                    arrived.add(job.spec.name)
                    events.append(f"arrive[{job.spec.name}]")
            return real_admit(self, tick)

        def admit_one(self, job, tick):
            ok = real_admit_one(self, job, tick)
            if ok:
                events.append(f"admit[{job.spec.name}]")
            return ok

        def preempt(self, victim, tick):
            victim_stack[-1].append(victim.spec.name)
            return real_preempt(self, victim, tick)

        def preempt_for(self, waiter, tick):
            victim_stack.append([])
            ok = real_preempt_for(self, waiter, tick)
            victims = victim_stack.pop()
            if victims:
                events.append(
                    f"preempt[{waiter.spec.name}->{','.join(victims)}]"
                )
            return ok

        def step_job(self, job, tick):
            events.append(f"step[{job.spec.name}]")
            return real_step_job(self, job, tick)

        monkeypatch.setattr(FleetScheduler, "_admit", admit)
        monkeypatch.setattr(FleetScheduler, "_admit_one", admit_one)
        monkeypatch.setattr(FleetScheduler, "_preempt", preempt)
        monkeypatch.setattr(FleetScheduler, "_preempt_for", preempt_for)
        monkeypatch.setattr(FleetScheduler, "_step_job", step_job)

        jobs = [
            FleetJobSpec(
                name="a", priority=1, n_iterations=2, seed=7, model_config=CFG
            ),
            FleetJobSpec(
                name="b",
                priority=2,
                n_iterations=1,
                arrival_tick=1,
                seed=11,
                model_config=CFG,
            ),
        ]
        scheduler = FleetScheduler(
            ClusterSpec(n_machines=1, gpus_per_machine=4),
            jobs,
            checkpoint_root=str(tmp_path),
            aging=0.0,
        )
        report = scheduler.run()
        assert report.all_completed
        assert any(e.startswith("preempt[b->") for e in events)

        model = FleetGangModel(
            jobs=(
                JobSpec("a", 1, 1, 2),
                JobSpec("b", 2, 1, 1, arrival=1),
            ),
            capacity=1,
        )
        final = model.run_schedule(events)
        assert model.is_terminal(final)
        assert model.state_violations(final) == ()
        validation = cross_validate(model, events)
        assert validation.findings == [], "\n".join(
            validation.summary_lines()
        )


# ---------------------------------------------------------------------------
# Seeded mutation smoke: one flipped guard -> exactly one MC rule
# ---------------------------------------------------------------------------

#: (model factory args as a ready model, expected rule) beyond the shipped
#: seeded_mutants(), so every MC6xx rule has a mutant witness.
EXTRA_MUTANTS = (
    (
        lambda: AsyncPipelineModel(
            n_iterations=4, window=1, mutate="skip_acquire"
        ),
        "MC606",
    ),
    (
        lambda: FleetGangModel(
            jobs=(JobSpec("a", 1, 2, 1),),
            capacity=2,
            kills=(0,),
            mutate="drop_giveup",
        ),
        "MC601",
    ),
    (
        lambda: FleetGangModel(
            jobs=(JobSpec("a", 1, 2, 2), JobSpec("b", 1, 2, 1)),
            capacity=2,
            mutate="allow_equal_priority_preempt",
        ),
        "MC602",
    ),
    (
        lambda: FleetGangModel(
            jobs=(
                JobSpec("a", 1, 1, 2),
                JobSpec("b", 2, 1, 1, arrival=1),
            ),
            capacity=1,
            mutate="skip_checkpoint_on_preempt",
        ),
        "MC608",
    ),
)


class TestMutationSmoke:
    @pytest.mark.parametrize(
        "model,expected",
        [pytest.param(m, r, id=f"{r}:{m.name}") for m, r in seeded_mutants()],
    )
    def test_seeded_mutant_reports_exactly_its_rule(self, model, expected):
        result = ModelChecker().check_model(model)
        assert rules_of(result) == [expected], rules_of(result)

    @pytest.mark.parametrize(
        "make,expected",
        [pytest.param(m, r, id=r) for m, r in EXTRA_MUTANTS],
    )
    def test_extra_mutants_cover_the_remaining_rules(self, make, expected):
        result = ModelChecker().check_model(make())
        assert rules_of(result) == [expected], rules_of(result)

    def test_every_mc_rule_has_a_mutant_witness(self):
        covered = {rule for _, rule in seeded_mutants()}
        covered |= {rule for _, rule in EXTRA_MUTANTS}
        assert covered == set(MC_RULES)

    @pytest.mark.parametrize(
        "model,expected",
        [pytest.param(m, r, id=f"{r}:{m.name}") for m, r in seeded_mutants()],
    )
    def test_counterexample_replays_into_dynamic_findings(
        self, model, expected
    ):
        """The minimised schedule is flagged by the RaceDetector or the
        TraceAuditor when replayed — the static and dynamic passes agree."""
        result = ModelChecker().check_model(model)
        ce = result.by_rule()[expected]
        # the schedule reproduces the violation on a fresh model
        final = model.run_schedule(list(ce.schedule))
        witnessed = [rule for rule, _ in final.viol]
        witnessed += [r for r, _ in model.final_violations(final)]
        assert expected in witnessed
        report = cross_validate(model, ce.schedule)
        flagged = {f.rule for f in report.findings}
        assert flagged & {"RC501", "TA205"}, flagged

    def test_replay_emits_records_events_and_ledger(self):
        model, expected = seeded_mutants()[0]
        ce = ModelChecker().check_model(model).by_rule()[expected]
        records, access_events, device = replay_schedule(
            model, list(ce.schedule)
        )
        assert len(records) == len(ce.schedule)
        assert access_events, "data accesses must replay as events"
        assert device.memory.events, "ledger contract must be charged"
        assert all(r.seq == i for i, r in enumerate(records))
