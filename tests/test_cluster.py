"""Tests for the simulated cluster and device memory accounting."""

import pytest

from repro.cluster import OutOfDeviceMemory, SimCluster
from repro.config import ClusterSpec, GpuSpec


def small_cluster(n_machines=2, gpus_per_machine=4, mem=1000):
    spec = ClusterSpec(
        n_machines=n_machines,
        gpus_per_machine=gpus_per_machine,
        gpu=GpuSpec(memory_bytes=mem),
    )
    return SimCluster(spec)


class TestDeviceMemory:
    def test_alloc_and_free(self):
        device = small_cluster().device(0)
        device.memory.alloc("weights", 400)
        assert device.memory.used == 400
        assert device.memory.free == 600
        assert device.memory.free_tag("weights") == 400
        assert device.memory.used == 0

    def test_alloc_accumulates_under_same_tag(self):
        device = small_cluster().device(0)
        device.memory.alloc("kv", 100)
        device.memory.alloc("kv", 150)
        assert device.memory.bytes_for("kv") == 250

    def test_oom_raises_with_context(self):
        device = small_cluster().device(0)
        device.memory.alloc("weights", 900)
        with pytest.raises(OutOfDeviceMemory) as err:
            device.memory.alloc("kv", 200)
        assert err.value.tag == "kv"
        assert err.value.requested == 200

    def test_peak_tracking(self):
        device = small_cluster().device(0)
        device.memory.alloc("a", 700)
        device.memory.free_tag("a")
        device.memory.alloc("b", 100)
        assert device.memory.peak_used == 700
        device.memory.reset_peak()
        assert device.memory.peak_used == 100

    def test_resize_shrinks_and_grows(self):
        device = small_cluster().device(0)
        device.memory.alloc("w", 500)
        device.memory.resize("w", 200)
        assert device.memory.bytes_for("w") == 200
        device.memory.resize("w", 0)
        assert device.memory.bytes_for("w") == 0

    def test_resize_oom(self):
        device = small_cluster().device(0)
        device.memory.alloc("other", 900)
        device.memory.alloc("w", 50)
        with pytest.raises(OutOfDeviceMemory):
            device.memory.resize("w", 200)

    def test_negative_alloc_rejected(self):
        device = small_cluster().device(0)
        with pytest.raises(ValueError):
            device.memory.alloc("x", -1)

    def test_free_unknown_tag_is_zero(self):
        device = small_cluster().device(0)
        assert device.memory.free_tag("nothing") == 0


class TestSimCluster:
    def test_devices_know_their_machines(self):
        cluster = small_cluster()
        assert cluster.device(0).machine == 0
        assert cluster.device(5).machine == 1

    def test_contiguous_allocation(self):
        cluster = small_cluster()
        a = cluster.allocate(3)
        b = cluster.allocate(2)
        assert a.global_ranks == [0, 1, 2]
        assert b.global_ranks == [3, 4]
        assert not a.overlaps(b)

    def test_exhaustion(self):
        cluster = small_cluster()
        cluster.allocate(8)
        with pytest.raises(RuntimeError, match="exhausted"):
            cluster.allocate(1)

    def test_release_all(self):
        cluster = small_cluster()
        cluster.allocate(8)
        cluster.release_all()
        assert cluster.allocate(8).size == 8

    def test_device_set_spans_machines(self):
        cluster = small_cluster()
        ds = cluster.device_set([0, 3, 4])
        assert ds.spans_machines() == 2

    def test_device_set_rejects_duplicates(self):
        cluster = small_cluster()
        with pytest.raises(ValueError, match="duplicate"):
            cluster.device_set([0, 0])

    def test_min_free_memory(self):
        cluster = small_cluster()
        cluster.device(1).memory.alloc("w", 300)
        ds = cluster.device_set([0, 1, 2])
        assert ds.min_free_memory() == 700

    def test_busy_time_accounting(self):
        device = small_cluster().device(0)
        device.occupy(1.5)
        device.occupy(0.5)
        assert device.busy_time == 2.0
        with pytest.raises(ValueError):
            device.occupy(-1.0)
