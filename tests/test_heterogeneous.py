"""Tests for heterogeneous-device mapping (the §6 extension)."""

import dataclasses

import pytest

from repro.config import MODEL_SPECS, ClusterSpec, GpuSpec, RlhfWorkload
from repro.mapping.auto_parallel import clear_cache
from repro.mapping.heterogeneous import (
    ClusterZone,
    map_dataflow_heterogeneous,
)
from repro.rlhf.core import AlgoType

WL = RlhfWorkload()
SPEC7 = MODEL_SPECS["llama-7b"]
PPO = {m: SPEC7 for m in ("actor", "critic", "reference", "reward")}

A100 = GpuSpec()
#: An H800-class device: ~2.5x compute, ~1.6x memory bandwidth.
H800 = dataclasses.replace(
    A100, name="H800-80GB", peak_flops=790e12, hbm_bandwidth=3350e9
)


def zone(name, n_machines, gpu):
    return ClusterZone(
        name, ClusterSpec(n_machines=n_machines, gpu=gpu)
    )


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()


class TestZoneEnumeration:
    def test_single_zone_matches_homogeneous_search(self):
        from repro.mapping import map_dataflow

        zones = [zone("a100", 1, A100)]
        hetero = map_dataflow_heterogeneous(AlgoType.PPO, PPO, zones, WL)
        homo = map_dataflow(AlgoType.PPO, PPO, zones[0].spec, WL)
        assert hetero.cost == pytest.approx(homo.cost, rel=0.05)

    def test_requires_actor_and_zones(self):
        with pytest.raises(ValueError, match="actor"):
            map_dataflow_heterogeneous(
                AlgoType.PPO, {"critic": SPEC7}, [zone("z", 1, A100)], WL
            )
        with pytest.raises(ValueError, match="zone"):
            map_dataflow_heterogeneous(AlgoType.PPO, PPO, [], WL)

    def test_duplicate_zone_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            map_dataflow_heterogeneous(
                AlgoType.PPO, PPO, [zone("z", 1, A100), zone("z", 1, H800)], WL
            )


class TestHeterogeneousChoices:
    def test_actor_lands_on_the_fast_zone(self):
        """Generation + actor training dominate (§2.3), so the mapper should
        give the actor the faster devices."""
        zones = [zone("a100", 1, A100), zone("h800", 1, H800)]
        result = map_dataflow_heterogeneous(AlgoType.PPO, PPO, zones, WL)
        assert result.zone_of("actor") == "h800"

    def test_mixed_cluster_beats_slow_zone_alone(self):
        slow_only = map_dataflow_heterogeneous(
            AlgoType.PPO, PPO, [zone("a100", 2, A100)], WL
        )
        mixed = map_dataflow_heterogeneous(
            AlgoType.PPO,
            PPO,
            [zone("a100", 1, A100), zone("h800", 1, H800)],
            WL,
        )
        assert mixed.cost < slow_only.cost

    def test_allocation_respects_zone_capacity(self):
        zones = [zone("a100", 1, A100), zone("h800", 1, H800)]
        result = map_dataflow_heterogeneous(AlgoType.PPO, PPO, zones, WL)
        used = {}
        for set_index, zone_name in enumerate(result.zone_of_set):
            used[zone_name] = used.get(zone_name, 0) + result.allocation[set_index]
        for z in zones:
            assert used.get(z.name, 0) <= z.n_gpus

    def test_describe_mentions_zones(self):
        zones = [zone("a100", 1, A100), zone("h800", 1, H800)]
        result = map_dataflow_heterogeneous(AlgoType.PPO, PPO, zones, WL)
        assert "h800" in result.describe() or "a100" in result.describe()

    def test_infeasible_everywhere_raises(self):
        big = {m: MODEL_SPECS["llama-70b"] for m in PPO}
        with pytest.raises(RuntimeError, match="no feasible"):
            map_dataflow_heterogeneous(
                AlgoType.PPO, big, [zone("tiny", 1, A100)], WL
            )
