"""Tests for placement plans and the system builder."""

import pytest

from repro.config import ClusterSpec, GenParallelConfig, ParallelConfig
from repro.data.dataset import SyntheticPreferenceTask
from repro.models.tinylm import TinyLMConfig
from repro.parallel.topology import GenGroupingMode
from repro.rlhf.core import AlgoType
from repro.runtime import ModelAssignment, PlacementPlan, build_rlhf_system
from repro.runtime.builder import required_models

CFG = TinyLMConfig(
    n_layers=2,
    hidden_size=32,
    n_heads=4,
    ffn_hidden_size=48,
    vocab_size=16,
    max_seq_len=32,
)
PAR = ParallelConfig(pp=1, tp=2, dp=1)
GEN = GenParallelConfig.derive(PAR, 1, 1)
PPO_MODELS = ["actor", "critic", "reference", "reward"]


class TestPlacementPlan:
    def test_colocate_constructor(self):
        plan = PlacementPlan.colocate(PPO_MODELS, 2, {m: PAR for m in PPO_MODELS}, GEN)
        assert plan.total_gpus == 2
        assert plan.colocated_models("shared") == PPO_MODELS
        assert plan.assignments["actor"].gen_parallel is GEN
        assert plan.assignments["critic"].gen_parallel is None

    def test_standalone_constructor(self):
        plan = PlacementPlan.standalone(
            {m: 2 for m in PPO_MODELS}, {m: PAR for m in PPO_MODELS}, GEN
        )
        assert plan.total_gpus == 8
        assert len(plan.pools) == 4

    def test_split_constructor(self):
        plan = PlacementPlan.split(
            ["actor", "reference"],
            ["critic", "reward"],
            2,
            2,
            {m: PAR for m in PPO_MODELS},
            GEN,
        )
        assert plan.pool_of("actor") == "actor_side"
        assert plan.pool_of("reward") == "critic_side"

    def test_unknown_pool_rejected(self):
        with pytest.raises(ValueError, match="unknown pool"):
            PlacementPlan(
                pools={"a": 2},
                assignments={"actor": ModelAssignment("b", PAR, GEN)},
            )

    def test_world_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="GPUs"):
            PlacementPlan(
                pools={"a": 4},
                assignments={"actor": ModelAssignment("a", PAR, GEN)},
            )

    def test_inconsistent_gen_parallel_rejected(self):
        with pytest.raises(ValueError, match="inconsistent"):
            ModelAssignment("a", PAR, GenParallelConfig(pp=1, tp=2, micro_dp=4))


class TestBuilder:
    def plan(self):
        return PlacementPlan.colocate(PPO_MODELS, 2, {m: PAR for m in PPO_MODELS}, GEN)

    def test_required_models_per_algo(self):
        assert required_models(AlgoType.PPO) == ("actor", "critic", "reference", "reward")
        assert "critic" not in required_models(AlgoType.REMAX)
        assert "cost" in required_models(AlgoType.SAFE_RLHF)

    def test_builds_groups_and_trainer(self):
        system = build_rlhf_system(AlgoType.PPO, self.plan(), CFG)
        assert set(system.groups) == set(PPO_MODELS)
        assert system.group("actor").gen_topology is not None
        assert system.trainer.actor is system.groups["actor"]

    def test_missing_assignment_rejected(self):
        plan = PlacementPlan(
            pools={"a": 2},
            assignments={"actor": ModelAssignment("a", PAR, GEN)},
        )
        with pytest.raises(ValueError, match="lacks assignments"):
            build_rlhf_system(AlgoType.PPO, plan, CFG)

    def test_actor_needs_gen_parallel(self):
        plan = PlacementPlan(
            pools={"a": 2},
            assignments={
                m: ModelAssignment("a", PAR) for m in PPO_MODELS
            },
        )
        with pytest.raises(ValueError, match="gen_parallel"):
            build_rlhf_system(AlgoType.PPO, plan, CFG)

    def test_vanilla_gen_mode_supported(self):
        system = build_rlhf_system(
            AlgoType.PPO, self.plan(), CFG, gen_mode=GenGroupingMode.VANILLA
        )
        assert system.group("actor").gen_topology.mode is GenGroupingMode.VANILLA

    def test_reward_function_replaces_model(self):
        task = SyntheticPreferenceTask(vocab_size=16)
        plan = PlacementPlan(
            pools={"main": 2, "r": 1},
            assignments={
                "actor": ModelAssignment("main", PAR, GEN),
                "critic": ModelAssignment("main", PAR),
                "reference": ModelAssignment("main", PAR),
                "reward": ModelAssignment("r", ParallelConfig(1, 1, 1)),
            },
        )
        system = build_rlhf_system(AlgoType.PPO, plan, CFG, reward_fn=task.reward)
        from repro.workers import RewardFunctionWorker

        assert isinstance(system.groups["reward"].workers[0], RewardFunctionWorker)

    def test_custom_cluster_spec(self):
        spec = ClusterSpec(n_machines=1, gpus_per_machine=4)
        system = build_rlhf_system(AlgoType.PPO, self.plan(), CFG, cluster_spec=spec)
        assert system.controller.cluster.n_gpus == 4

    def test_colocated_groups_share_devices(self):
        system = build_rlhf_system(AlgoType.PPO, self.plan(), CFG)
        actor_pool = system.group("actor").resource_pool
        critic_pool = system.group("critic").resource_pool
        assert actor_pool is critic_pool
