"""Tests for model/cluster/parallelism configuration."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.config import (
    MODEL_SPECS,
    ClusterSpec,
    GenParallelConfig,
    ParallelConfig,
    RlhfWorkload,
    resolve_model_spec,
    tiny_spec,
)


class TestModelSpec:
    def test_llama_7b_param_count_matches_published(self):
        assert MODEL_SPECS["llama-7b"].n_params() == pytest.approx(6.7e9, rel=0.02)

    def test_llama_13b_param_count_matches_published(self):
        assert MODEL_SPECS["llama-13b"].n_params() == pytest.approx(13e9, rel=0.02)

    def test_llama_70b_param_count_matches_published(self):
        assert MODEL_SPECS["llama-70b"].n_params() == pytest.approx(69e9, rel=0.02)

    def test_param_bytes_is_two_per_param_in_bf16(self):
        spec = MODEL_SPECS["llama-7b"]
        assert spec.param_bytes() == 2 * spec.n_params()

    def test_kv_cache_bytes_per_token_7b(self):
        # 2 (K and V) * 32 layers * 32 heads * 128 dim * 2 bytes
        assert MODEL_SPECS["llama-7b"].kv_cache_bytes_per_token() == 2 * 32 * 4096 * 2

    def test_gqa_shrinks_kv_cache(self):
        assert (
            MODEL_SPECS["llama-70b"].kv_cache_bytes_per_token()
            < MODEL_SPECS["llama-13b"].kv_cache_bytes_per_token()
        )

    def test_train_flops_are_triple_forward(self):
        spec = MODEL_SPECS["llama-7b"]
        assert spec.flops_per_token_train(128) == 3 * spec.flops_per_token_forward(128)

    def test_tiny_spec_is_small(self):
        assert tiny_spec().n_params() < 1_000_000

    def test_resolve_by_name_and_passthrough(self):
        spec = resolve_model_spec("llama-7b")
        assert resolve_model_spec(spec) is spec

    def test_resolve_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown model"):
            resolve_model_spec("llama-3b")


class TestClusterSpec:
    def test_paper_testbed_dimensions(self):
        cluster = ClusterSpec()
        assert cluster.n_gpus == 128
        assert cluster.machine_of(0) == 0
        assert cluster.machine_of(127) == 15

    def test_machine_of_out_of_range(self):
        with pytest.raises(ValueError):
            ClusterSpec().machine_of(128)

    def test_bandwidth_intra_vs_inter(self):
        cluster = ClusterSpec()
        assert cluster.bandwidth_between(0, 7) == cluster.intra_node_bandwidth
        assert cluster.bandwidth_between(0, 8) == cluster.inter_node_bandwidth
        assert cluster.bandwidth_between(3, 3) == math.inf

    def test_subcluster_whole_machines(self):
        sub = ClusterSpec().subcluster(16)
        assert sub.n_machines == 2 and sub.n_gpus == 16

    def test_subcluster_partial_machine(self):
        sub = ClusterSpec().subcluster(4)
        assert sub.n_gpus == 4 and sub.n_machines == 1

    def test_subcluster_invalid(self):
        with pytest.raises(ValueError):
            ClusterSpec().subcluster(12)  # not a whole number of machines
        with pytest.raises(ValueError):
            ClusterSpec().subcluster(0)


class TestParallelConfig:
    def test_world_size_and_mp(self):
        cfg = ParallelConfig(pp=2, tp=4, dp=3)
        assert cfg.world_size == 24
        assert cfg.model_parallel_size == 8
        assert str(cfg) == "2-4-3"

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ParallelConfig(pp=0, tp=1, dp=1)

    @given(
        pp=st.integers(1, 4),
        tp=st.integers(1, 8),
        dp=st.integers(1, 8),
    )
    def test_world_size_identity(self, pp, tp, dp):
        cfg = ParallelConfig(pp=pp, tp=tp, dp=dp)
        assert cfg.world_size == pp * tp * dp


class TestGenParallelConfig:
    def test_derive_micro_dp(self):
        train = ParallelConfig(pp=1, tp=8, dp=2)
        gen = GenParallelConfig.derive(train, gen_pp=1, gen_tp=2)
        assert gen.micro_dp == 4

    def test_derive_identity_config(self):
        train = ParallelConfig(pp=2, tp=4, dp=2)
        gen = GenParallelConfig.derive(train, gen_pp=2, gen_tp=4)
        assert gen.micro_dp == 1

    def test_derive_rejects_non_dividing(self):
        train = ParallelConfig(pp=1, tp=6, dp=2)
        with pytest.raises(ValueError, match="must divide"):
            GenParallelConfig.derive(train, gen_pp=1, gen_tp=4)

    def test_derive_rejects_larger_than_training(self):
        train = ParallelConfig(pp=1, tp=2, dp=2)
        with pytest.raises(ValueError):
            GenParallelConfig.derive(train, gen_pp=1, gen_tp=4)

    @given(
        p=st.sampled_from([1, 2, 4]),
        t=st.sampled_from([1, 2, 4, 8]),
        d=st.integers(1, 4),
        pg_div=st.sampled_from([1, 2]),
        tg_div=st.sampled_from([1, 2, 4]),
    )
    def test_na_invariant(self, p, t, d, pg_div, tg_div):
        """§5.1: N_a = p*t*d = p_g*t_g*d_g*d for any valid derivation."""
        if p % pg_div or t % tg_div:
            return
        train = ParallelConfig(pp=p, tp=t, dp=d)
        gen = GenParallelConfig.derive(train, p // pg_div, t // tg_div)
        assert gen.pp * gen.tp * gen.micro_dp * d == train.world_size


class TestWorkload:
    def test_paper_defaults(self):
        wl = RlhfWorkload()
        assert wl.seq_length == 2048
        assert wl.tokens_per_iteration == 1024 * 2048

    def test_grpo_multiplies_tokens(self):
        wl = RlhfWorkload(n_generations_per_prompt=4)
        assert wl.tokens_per_iteration == 4 * 1024 * 2048
