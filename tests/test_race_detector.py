"""RaceDetector: vector-clock happens-before analysis (RC5xx).

A clean functional run must produce zero findings (program order, lineage
deps, and controller barriers cover every recorded access); a seeded
unordered conflicting write pair must be flagged.
"""

import json
import pathlib

import pytest

from repro.analysis import RaceDetector
from repro.config import ClusterSpec, GenParallelConfig, ParallelConfig
from repro.data import PromptDataset, SyntheticPreferenceTask
from repro.models.tinylm import TinyLMConfig
from repro.rlhf.core import AlgoType
from repro.rlhf.trainers import TrainerConfig
from repro.runtime import ModelAssignment, PlacementPlan, build_rlhf_system
from repro.single_controller import (
    SingleController,
    Worker,
    WorkerGroup,
    register,
)
from repro.single_controller.access_log import AccessEvent
from repro.single_controller.protocols import (
    ProtocolRequires,
    TransferProtocol,
    register_protocol,
)

GOLDEN = pathlib.Path(__file__).parent / "golden" / "chrome_trace.json"


class _Record:
    """Minimal ExecutionRecord stand-in for hand-built traces."""

    def __init__(self, seq, pool, deps=()):
        self.seq = seq
        self.pool = pool
        self.deps = tuple(deps)
        self.group = pool
        self.method = f"m{seq}"


def _tiny_system():
    cfg = TinyLMConfig(
        n_layers=2,
        hidden_size=32,
        n_heads=4,
        ffn_hidden_size=48,
        vocab_size=16,
        max_seq_len=32,
    )
    task = SyntheticPreferenceTask(vocab_size=16, target_token=7)
    par = ParallelConfig(pp=1, tp=2, dp=1)
    plan = PlacementPlan(
        pools={"main": 2, "r": 1},
        assignments={
            "actor": ModelAssignment("main", par, GenParallelConfig.derive(par, 1, 1)),
            "critic": ModelAssignment("main", par),
            "reference": ModelAssignment("main", par),
            "reward": ModelAssignment("r", ParallelConfig(1, 1, 1)),
        },
    )
    return build_rlhf_system(
        AlgoType.PPO,
        plan,
        cfg,
        trainer_config=TrainerConfig(kl_coef=0.01, seed=7),
        reward_fn=task.reward,
        max_new_tokens=5,
        lr=5e-3,
        seed=7,
    )


class TestCleanRuns:
    def test_functional_ppo_run_has_no_races(self):
        system = _tiny_system()
        dataset = PromptDataset(32, 4, 16, seed=1)
        system.trainer.train(dataset, 2, 8)
        report = RaceDetector().detect_system(system)
        assert report.findings == [], "\n".join(report.summary_lines())
        # the pass saw real work: dispatches, merge buffers, device memory
        assert report.checked["calls"] > 0
        assert report.checked["merge_checks"] > 0
        assert report.checked["resources"] > 0
        assert report.checked["vc_comparisons"] > 0

    def test_run_records_memory_and_merge_accesses(self):
        system = _tiny_system()
        dataset = PromptDataset(32, 4, 16, seed=1)
        system.trainer.train(dataset, 1, 8)
        resources = {e.resource for e in system.controller.access_log.events}
        assert any(r.startswith("mem[") for r in resources)
        assert any(r.startswith("merge[") for r in resources)

    def test_checkpoint_roundtrip_stays_clean(self, tmp_path):
        system = _tiny_system()
        dataset = PromptDataset(32, 4, 16, seed=1)
        system.trainer.train(dataset, 1, 8)
        ckpt = str(tmp_path / "ckpt")
        system.controller.save_checkpoint(ckpt)
        system.controller.load_checkpoint(ckpt)
        events = system.controller.access_log.events
        assert any(e.resource == f"checkpoint:{ckpt}" for e in events)
        report = RaceDetector().detect_system(system)
        assert report.findings == [], "\n".join(report.summary_lines())
        # checkpoint accesses run in controller context -> barrier nodes
        assert report.checked["barriers"] >= 1

    def test_golden_chrome_trace_has_no_races(self):
        doc = json.loads(GOLDEN.read_text())
        report = RaceDetector().detect_chrome_trace(doc)
        assert report.findings == [], "\n".join(report.summary_lines())
        assert report.checked["calls"] > 0


class TestSeededRaces:
    def test_cross_pool_unordered_writes_are_rc501(self):
        trace = [_Record(0, "a"), _Record(1, "b")]
        events = [
            AccessEvent("write", "shared", 0, seq=0, after_seq=0),
            AccessEvent("write", "shared", 1, seq=1, after_seq=1),
        ]
        report = RaceDetector().detect(trace, events)
        assert [f.rule for f in report.findings] == ["RC501"]
        assert "shared" in report.findings[0].location

    def test_lineage_dep_orders_the_writes(self):
        trace = [_Record(0, "a"), _Record(1, "b", deps=[0])]
        events = [
            AccessEvent("write", "shared", 0, seq=0, after_seq=0),
            AccessEvent("write", "shared", 1, seq=1, after_seq=1),
        ]
        report = RaceDetector().detect(trace, events)
        assert report.findings == []

    def test_controller_barrier_orders_the_writes(self):
        trace = [_Record(0, "a"), _Record(1, "b")]
        events = [
            AccessEvent("write", "shared", 0, seq=0, after_seq=0),
            AccessEvent("write", "shared", 1, seq=1, after_seq=1),
            # controller-context access between the dispatches joins both pools
            AccessEvent("read", "other", -1, seq=None, after_seq=1),
        ]
        report = RaceDetector().detect(trace, events)
        assert report.findings == []

    def test_reads_alone_do_not_race(self):
        trace = [_Record(0, "a"), _Record(1, "b")]
        events = [
            AccessEvent("read", "shared", 0, seq=0, after_seq=0),
            AccessEvent("read", "shared", 1, seq=1, after_seq=1),
        ]
        report = RaceDetector().detect(trace, events)
        assert report.findings == []

    def test_dangling_access_is_rc503(self):
        trace = [_Record(0, "a")]
        events = [AccessEvent("write", "x", 0, seq=99, after_seq=0)]
        report = RaceDetector().detect(trace, events)
        assert [f.rule for f in report.findings] == ["RC503"]

    def test_cross_controller_deps_are_skipped_silently(self):
        # lineage from another controller's trace: seq 40 does not exist here
        trace = [_Record(0, "a"), _Record(1, "a", deps=[40])]
        report = RaceDetector().detect(trace, ())
        assert report.findings == []
        assert report.checked["skipped_deps"] == 1


class _UnorderedWorker(Worker):
    @register(protocol="test_completion_order")
    def produce(self):
        return self.ctx.global_rank


class TestMergeHazard:
    @pytest.fixture(autouse=True)
    def _protocol(self):
        # a custom protocol collecting in completion order — the
        # merge_outputs hazard §4.1 warns user protocols about
        register_protocol(
            TransferProtocol(
                "test_completion_order",
                lambda group, args, kwargs: [(args, kwargs)] * group.world_size,
                lambda group, outputs: outputs,
                requires=ProtocolRequires(deterministic_collect=False),
            )
        )

    def test_nondeterministic_collect_is_rc502(self):
        controller = SingleController(ClusterSpec(n_machines=1))
        pool = controller.create_pool(2, name="main")
        group = WorkerGroup(
            _UnorderedWorker, pool, controller=controller, name="g"
        )
        group.produce()
        report = RaceDetector().detect_system(system=controller)
        assert [f.rule for f in report.findings] == ["RC502"]
        finding = report.findings[0]
        assert finding.location == "merge[g.produce]"
        assert "deterministic merge order" in finding.message

    def test_deterministic_protocols_stay_clean(self):
        controller = SingleController(ClusterSpec(n_machines=1))
        pool = controller.create_pool(2, name="main")

        class OrderedWorker(Worker):
            @register(protocol="one_to_all")
            def produce(self):
                return self.ctx.global_rank

        group = WorkerGroup(
            OrderedWorker, pool, controller=controller, name="g"
        )
        group.produce()
        report = RaceDetector().detect_system(system=controller)
        assert report.findings == []
        assert report.checked["merge_checks"] >= 1
