"""Tests for the SFT and reward-model training stages and the full recipe."""

import numpy as np
import pytest

from repro.config import ClusterSpec, GenParallelConfig, ParallelConfig
from repro.data.batch import DataBatch
from repro.data.dataset import PromptDataset, SyntheticPreferenceTask
from repro.models.tinylm import TinyLMConfig
from repro.rlhf.pipeline import RewardModelTrainer, SFTTrainer
from repro.single_controller import SingleController, WorkerGroup
from repro.workers import ActorWorker
from repro.workers.scorers import TrainableRewardWorker

import dataclasses

LM_CFG = TinyLMConfig(
    n_layers=2,
    hidden_size=32,
    n_heads=4,
    ffn_hidden_size=48,
    vocab_size=16,
    max_seq_len=32,
)
SCALAR_CFG = dataclasses.replace(LM_CFG, output_head="scalar")
TASK = SyntheticPreferenceTask(vocab_size=16, target_token=7)


def make_group(worker_cls, parallel=ParallelConfig(1, 2, 1), gen=False, **kw):
    controller = SingleController(ClusterSpec(n_machines=1))
    gen_cfg = GenParallelConfig.derive(parallel, 1, 1) if gen else None
    return WorkerGroup(
        worker_cls,
        controller.create_pool(parallel.world_size),
        parallel_config=parallel,
        gen_config=gen_cfg,
        controller=controller,
        name=worker_cls.__name__.lower(),
        worker_kwargs=kw,
    )


class TestPreferencePairs:
    def test_chosen_strictly_preferred(self):
        rng = np.random.default_rng(0)
        chosen, rejected = TASK.preference_pairs(64, 8, rng)
        better = TASK.reward(chosen) > TASK.reward(rejected)
        assert better.mean() > 0.95

    def test_shapes_and_vocab(self):
        rng = np.random.default_rng(1)
        chosen, rejected = TASK.preference_pairs(8, 5, rng)
        assert chosen.shape == rejected.shape == (8, 5)
        assert chosen.max() < 16 and rejected.min() >= 0

    def test_validation(self):
        with pytest.raises(ValueError):
            TASK.preference_pairs(0, 4, np.random.default_rng(0))


class TestSFT:
    def test_loss_decreases(self):
        actor = make_group(
            ActorWorker, gen=True, model_config=LM_CFG, lr=5e-3
        )
        trainer = SFTTrainer(actor)
        corpus = PromptDataset(64, 8, 16, seed=3)
        history = trainer.train(corpus, 15, 8)
        assert history[-1]["sft_loss"] < 0.8 * history[0]["sft_loss"]

    def test_sft_trains_the_same_weights_rlhf_uses(self):
        actor = make_group(
            ActorWorker, gen=True, model_config=LM_CFG, lr=5e-3
        )
        before = {k: v.copy() for k, v in actor.workers[0].shard.items()}
        SFTTrainer(actor).train(PromptDataset(32, 8, 16, seed=3), 1, 8)
        changed = any(
            not np.array_equal(before[k], actor.workers[0].shard[k])
            for k in before
        )
        assert changed


class TestRewardModelTraining:
    def test_pairwise_accuracy_improves(self):
        reward = make_group(
            TrainableRewardWorker, model_config=SCALAR_CFG, lr=5e-3
        )
        trainer = RewardModelTrainer(reward, seed=0)
        acc_before = trainer.evaluate_accuracy(TASK, 128, 8)
        history = trainer.train(TASK, 30, 32, response_length=8)
        acc_after = trainer.evaluate_accuracy(TASK, 128, 8)
        assert acc_after > max(acc_before, 0.7)
        assert history[-1]["rm_loss"] < history[0]["rm_loss"]

    def test_learned_scores_track_true_reward(self):
        reward = make_group(
            TrainableRewardWorker, model_config=SCALAR_CFG, lr=5e-3
        )
        RewardModelTrainer(reward, seed=0).train(TASK, 30, 32, 8)
        rng = np.random.default_rng(9)
        responses = rng.integers(0, 16, size=(64, 8))
        scores = reward.compute_reward(
            DataBatch({"sequences": responses}, meta={"prompt_length": 0})
        ).get()["scores"]
        true = TASK.reward(responses)
        corr = np.corrcoef(scores, true)[0, 1]
        assert corr > 0.5

    def test_trainable_reward_has_optimizer_memory(self):
        reward = make_group(TrainableRewardWorker, model_config=SCALAR_CFG)
        device = reward.workers[0].ctx.device
        assert device.memory.bytes_for("reward/optim") > 0


class TestFullRecipe:
    def test_sft_then_rm_then_ppo_improves_true_reward(self):
        """The complete InstructGPT-style pipeline on one infrastructure:
        SFT warms up the actor, the reward model is trained on preference
        pairs, and PPO against the *learned* RM improves the *true* task
        reward."""
        from repro.rlhf.core import AlgoType
        from repro.rlhf.trainers import TrainerConfig
        from repro.runtime import (
            ModelAssignment,
            PlacementPlan,
            build_rlhf_system,
        )

        parallel = ParallelConfig(1, 2, 1)
        plan = PlacementPlan(
            pools={"main": 2},
            assignments={
                "actor": ModelAssignment(
                    "main", parallel, GenParallelConfig.derive(parallel, 1, 1)
                ),
                "critic": ModelAssignment("main", parallel),
                "reference": ModelAssignment("main", parallel),
                "reward": ModelAssignment("main", parallel),
            },
        )
        system = build_rlhf_system(
            AlgoType.PPO,
            plan,
            LM_CFG,
            trainer_config=TrainerConfig(
                kl_coef=0.01, ppo_epochs=2, updates_per_epoch=2
            ),
            max_new_tokens=8,
            lr=5e-3,
        )
        # stage 1: SFT
        SFTTrainer(system.groups["actor"]).train(
            PromptDataset(64, 8, 16, seed=3), 5, 8
        )
        # stage 2: replace the random reward model with a trained one
        reward = make_group(
            TrainableRewardWorker, model_config=SCALAR_CFG, lr=5e-3
        )
        RewardModelTrainer(reward, seed=0).train(TASK, 30, 32, 8)
        system.trainer.reward = reward
        # stage 3: PPO against the learned reward model
        prompts = PromptDataset(128, 4, 16, seed=1)
        history = system.trainer.train(prompts, 15, 16)
        # measure the TRUE task reward of fresh generations
        out = system.groups["actor"].generate_sequences(
            prompts.batch(0, 16)
        ).get()
        true_reward = TASK.reward(out["sequences"][:, 4:]).mean()
        assert true_reward > 0.4
        assert history  # PPO ran end to end with the learned RM
