"""Tests for the analytical performance layer."""

import pytest

from repro.config import (
    MODEL_SPECS,
    ClusterSpec,
    GenParallelConfig,
    ParallelConfig,
    RlhfWorkload,
)
from repro.hybrid_engine.overhead import EngineKind
from repro.perf.compute import batch_efficiency, inference_latency, training_latency
from repro.perf.generation import generation_latency
from repro.perf.iteration import (
    GenerationPlan,
    ModelExecution,
    estimate_iteration,
)
from repro.perf.memory import MemoryModel
from repro.perf.simu import Stage, simulate_latency
from repro.perf.transition import transition_time, weight_sync_time
from repro.rlhf.core import AlgoType

SPEC7 = MODEL_SPECS["llama-7b"]
SPEC70 = MODEL_SPECS["llama-70b"]
WL = RlhfWorkload()


def cluster(n_machines=2):
    return ClusterSpec(n_machines=n_machines)


class TestMemoryModel:
    def test_training_state_shards_by_mp(self):
        mm = MemoryModel(SPEC7, cluster())
        full = mm.training(ParallelConfig(1, 1, 1), WL)
        half = mm.training(ParallelConfig(1, 2, 1), WL)
        assert half.params == pytest.approx(full.params / 2)
        assert half.optimizer == pytest.approx(full.optimizer / 2)

    def test_zero3_shards_by_world(self):
        mm = MemoryModel(SPEC7, cluster())
        z = mm.training(ParallelConfig(1, 1, 8), WL, zero3=True)
        assert z.persistent < mm.training(ParallelConfig(1, 1, 8), WL).persistent

    def test_7b_does_not_fit_unsharded(self):
        mm = MemoryModel(SPEC7, cluster())
        # 6.7B * 18 bytes of training state ~ 121 GB > 80 GB
        assert mm.training(ParallelConfig(1, 1, 1), WL).total > mm.usable_bytes_per_gpu()
        assert mm.training(ParallelConfig(1, 4, 1), WL).total < mm.usable_bytes_per_gpu()

    def test_inference_is_params_only(self):
        mm = MemoryModel(SPEC7, cluster())
        stage = mm.inference(ParallelConfig(1, 2, 1), WL)
        assert stage.grads == 0 and stage.optimizer == 0

    def test_kv_capacity_decreases_with_reservation(self):
        mm = MemoryModel(SPEC7, cluster())
        free = mm.kv_capacity_sequences(1, WL)
        tight = mm.kv_capacity_sequences(1, WL, reserved_bytes=40e9)
        assert free > tight > 0

    def test_kv_capacity_zero_when_params_do_not_fit(self):
        mm = MemoryModel(SPEC70, cluster())
        assert mm.kv_capacity_sequences(1, WL) == 0


class TestComputeModels:
    def test_batch_efficiency_monotone(self):
        assert batch_efficiency(0) == 0
        assert batch_efficiency(100) < batch_efficiency(10_000) < 1.0

    def test_training_scales_down_with_gpus(self):
        t8 = training_latency(SPEC7, cluster(1), ParallelConfig(1, 8, 1), WL)
        t16 = training_latency(SPEC7, cluster(2), ParallelConfig(1, 8, 2), WL)
        assert t16 < t8

    def test_training_scales_up_with_model(self):
        c = cluster(2)
        p = ParallelConfig(1, 8, 2)
        assert training_latency(SPEC70, c, p, WL) > training_latency(SPEC7, c, p, WL)

    def test_zero3_not_faster_than_megatron_across_machines(self):
        c = cluster(8)  # 64 GPUs
        zero = training_latency(SPEC7, c, ParallelConfig(1, 1, 64), WL, zero3=True)
        megatron = training_latency(SPEC7, c, ParallelConfig(1, 8, 8), WL)
        assert zero >= megatron

    def test_inference_cheaper_than_training(self):
        c = cluster(1)
        p = ParallelConfig(1, 8, 1)
        assert inference_latency(SPEC7, c, p, WL) < training_latency(SPEC7, c, p, WL)

    def test_epochs_scale_training(self):
        c = cluster(1)
        p = ParallelConfig(1, 8, 1)
        one = training_latency(SPEC7, c, p, WL, n_passes_over_batch=1)
        two = training_latency(SPEC7, c, p, WL, n_passes_over_batch=2)
        assert two > 1.8 * one


class TestGenerationModel:
    #: Per-GPU memory held by the colocated PPO models in the Fig. 15 setup
    #: (four 7B/13B-class models' persistent states over 16 GPUs).
    FIG15_RESERVED = 17e9

    def _fig15_times(self, spec):
        c = cluster(2)
        return {
            tg: generation_latency(
                spec, c, tg, 1, n_replicas=2 * (8 // tg), workload=WL,
                reserved_bytes=self.FIG15_RESERVED,
            ).total
            for tg in (1, 2, 4, 8)
        }

    def test_figure15_same_tp_as_training_is_suboptimal(self):
        """§8.4: using the training TP size for generation (t_g = t = 8, the
        NeMo-Aligner approach) is never the best choice — the whole point of
        resharding between the stages."""
        for spec in (SPEC7, MODEL_SPECS["llama-13b"]):
            times = self._fig15_times(spec)
            assert times[8] > min(times.values()) * 1.1

    def test_figure15_13b_prefers_larger_tg_than_7b(self):
        """7B optimum at t_g<=2, 13B at t_g=4 (Figure 15)."""
        best7 = min((t := self._fig15_times(SPEC7)), key=t.get)
        best13 = min((t := self._fig15_times(MODEL_SPECS["llama-13b"])), key=t.get)
        assert best7 <= 2
        assert best13 == 4

    def test_figure15_tiny_tg_hits_kv_pressure_13b(self):
        """'Further reducing t_g fails to achieve higher speedup, as a
        smaller t_g necessitates maintaining a larger KVCache per GPU.'"""
        times = self._fig15_times(MODEL_SPECS["llama-13b"])
        assert times[1] > min(times.values())

    def test_infeasible_kv_returns_infinite(self):
        est = generation_latency(SPEC70, cluster(2), 1, 1, 16, WL)
        assert est.total == float("inf")

    def test_no_kv_cache_is_slower(self):
        c = cluster(2)
        with_kv = generation_latency(SPEC7, c, 2, 1, 8, WL)
        without = generation_latency(SPEC7, c, 2, 1, 8, WL, use_kv_cache=False)
        assert without.total > 2 * with_kv.total

    def test_remax_double_pass(self):
        c = cluster(2)
        single = generation_latency(SPEC7, c, 2, 1, 8, WL)
        double = generation_latency(SPEC7, c, 2, 1, 8, WL, n_generation_passes=2)
        assert double.total == pytest.approx(2 * single.total)

    def test_waves_when_kv_budget_small(self):
        est = generation_latency(
            SPEC7, cluster(2), 1, 1, 2, WL, reserved_bytes=50e9
        )
        assert est.n_waves > 1

    def test_step_overhead_adds_linear_cost(self):
        c = cluster(2)
        base = generation_latency(SPEC7, c, 2, 1, 8, WL)
        slow = generation_latency(SPEC7, c, 2, 1, 8, WL, step_overhead=0.01)
        expected_extra = 0.01 * WL.response_length * base.n_waves
        assert slow.decode_time - base.decode_time == pytest.approx(
            expected_extra, rel=0.01
        )

    def test_replicas_required(self):
        with pytest.raises(ValueError):
            generation_latency(SPEC7, cluster(2), 1, 1, 0, WL)


class TestTransitionModel:
    def test_hybridflow_cheapest(self):
        c = cluster(2)
        train = ParallelConfig(1, 8, 2)
        gen = GenParallelConfig.derive(train, 1, 2)
        hf = transition_time(EngineKind.HYBRIDFLOW, SPEC7, c, train, gen)
        v = transition_time(EngineKind.HYBRIDFLOW_V, SPEC7, c, train, gen)
        ds = transition_time(
            EngineKind.DS_CHAT, SPEC7, c, ParallelConfig(1, 1, 16),
            GenParallelConfig(1, 1, 1),
        )
        assert hf < v < ds

    def test_identity_transition_is_free(self):
        train = ParallelConfig(1, 8, 2)
        gen = GenParallelConfig.derive(train, 1, 8)
        assert transition_time(EngineKind.HYBRIDFLOW, SPEC7, cluster(2), train, gen) == 0

    def test_hybridflow_constant_across_cluster_scale(self):
        """Figure 14: HybridFlow's transition cost does not grow with GPUs."""
        train_small = ParallelConfig(1, 8, 2)
        train_large = ParallelConfig(1, 8, 16)
        gen_s = GenParallelConfig.derive(train_small, 1, 2)
        gen_l = GenParallelConfig.derive(train_large, 1, 2)
        t_small = transition_time(
            EngineKind.HYBRIDFLOW, SPEC7, cluster(2), train_small, gen_s
        )
        t_large = transition_time(
            EngineKind.HYBRIDFLOW, SPEC7, cluster(16), train_large, gen_l
        )
        assert t_large == pytest.approx(t_small, rel=0.05)

    def test_ds_chat_grows_with_cluster_scale(self):
        t16 = transition_time(
            EngineKind.DS_CHAT, SPEC7, cluster(2), ParallelConfig(1, 1, 16),
            GenParallelConfig(1, 1, 1),
        )
        t128 = transition_time(
            EngineKind.DS_CHAT, SPEC7, cluster(16), ParallelConfig(1, 1, 128),
            GenParallelConfig(1, 1, 1),
        )
        assert t128 > t16

    def test_weight_sync_scales_with_model(self):
        c = cluster(2)
        assert weight_sync_time(SPEC70, c, 8) > weight_sync_time(SPEC7, c, 8)


class TestSimulateLatency:
    def test_dispatch_per_stage(self):
        c = cluster(1)
        p = ParallelConfig(1, 8, 1)
        t = simulate_latency(Stage.TRAINING, SPEC7, c, p, WL)
        i = simulate_latency(Stage.INFERENCE, SPEC7, c, p, WL)
        g = simulate_latency(Stage.GENERATION, SPEC7, c, p, WL, gen_tp=2, gen_pp=1)
        assert t > i > 0
        assert g > 0


class TestIterationEstimate:
    def executions(self, pool="shared"):
        p = ParallelConfig(1, 8, 2)
        return {
            m: ModelExecution(spec=SPEC7, pool=pool, parallel=p)
            for m in ("actor", "critic", "reference", "reward")
        }

    def gen_plan(self):
        return GenerationPlan(tp=2, pp=1, n_replicas=8, pool="shared")

    def test_breakdown_sums(self):
        b = estimate_iteration(
            AlgoType.PPO, self.executions(), self.gen_plan(), WL, cluster(2)
        )
        assert b.total == pytest.approx(
            b.transition + b.generation + b.preparation + b.training + b.data_transfer
        )
        assert b.throughput(WL) > 0

    def test_missing_role_rejected(self):
        ex = self.executions()
        del ex["critic"]
        with pytest.raises(ValueError, match="critic"):
            estimate_iteration(AlgoType.PPO, ex, self.gen_plan(), WL, cluster(2))

    def test_separate_pools_overlap_in_stage(self):
        """Prep stage: 3 models on one pool serialize; on 3 pools they run
        concurrently, so the stage is strictly faster."""
        colocated = estimate_iteration(
            AlgoType.PPO, self.executions(), self.gen_plan(), WL, cluster(2)
        )
        ex = self.executions()
        ex = {
            m: ModelExecution(spec=SPEC7, pool=f"pool-{m}", parallel=e.parallel)
            for m, e in ex.items()
        }
        split = estimate_iteration(
            AlgoType.PPO, ex, self.gen_plan(), WL, cluster(2)
        )
        assert split.preparation < colocated.preparation
        assert split.training < colocated.training

    def test_remax_doubles_generation(self):
        ppo = estimate_iteration(
            AlgoType.PPO, self.executions(), self.gen_plan(), WL, cluster(2)
        )
        ex = {m: e for m, e in self.executions().items() if m != "critic"}
        remax = estimate_iteration(
            AlgoType.REMAX, ex, self.gen_plan(), WL, cluster(2)
        )
        assert remax.generation == pytest.approx(2 * ppo.generation)

    def test_infinite_generation_gives_zero_throughput(self):
        plan = GenerationPlan(
            tp=1, pp=1, n_replicas=16, pool="shared", reserved_bytes=80e9
        )
        b = estimate_iteration(AlgoType.PPO, self.executions(), plan, WL, cluster(2))
        assert b.throughput(WL) == 0.0
