"""Tests for the baseline system models and the headline orderings (§8.2)."""

import pytest

from repro.baselines import (
    ALL_SYSTEMS,
    estimate_deepspeed_chat,
    estimate_hybridflow,
    estimate_nemo_aligner,
    estimate_openrlhf,
)
from repro.baselines.common import InfeasibleScenario
from repro.baselines.hybridflow import PLACEMENT_STRATEGIES, placement_partition
from repro.baselines.openrlhf import split_gpus
from repro.config import MODEL_SPECS, ClusterSpec, RlhfWorkload
from repro.mapping.auto_parallel import clear_cache
from repro.rlhf.core import AlgoType

WL = RlhfWorkload()
SPEC7 = MODEL_SPECS["llama-7b"]
PPO_MODELS = ("actor", "critic", "reference", "reward")


def specs_of(name):
    return {m: MODEL_SPECS[name] for m in PPO_MODELS}


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()


class TestDeepSpeedChat:
    def test_colocates_everything(self):
        est = estimate_deepspeed_chat(
            AlgoType.PPO, specs_of("llama-7b"), ClusterSpec(n_machines=1), WL
        )
        assert "colocate" in est.placement
        assert est.details["training"] == "ZeRO-3"
        assert est.iteration_time > 0

    def test_oom_for_70b_on_8(self):
        with pytest.raises(InfeasibleScenario):
            estimate_deepspeed_chat(
                AlgoType.PPO, specs_of("llama-70b"), ClusterSpec(n_machines=1), WL
            )


class TestOpenRLHF:
    def test_split_gpus_covers_cluster(self):
        shares = split_gpus(list(PPO_MODELS), 64)
        assert sum(shares.values()) == 64
        assert shares["actor_train"] >= shares["reference"]
        assert "actor_gen" in shares

    def test_split_needs_enough_gpus(self):
        with pytest.raises(InfeasibleScenario):
            split_gpus(list(PPO_MODELS), 3)

    def test_standalone_estimate(self):
        est = estimate_openrlhf(
            AlgoType.PPO, specs_of("llama-7b"), ClusterSpec(n_machines=2), WL
        )
        assert "standalone" in est.placement
        # the separate generation copy must be synchronised every iteration
        assert est.breakdown.transition > 0


class TestNeMoAligner:
    def test_split_placement_no_transition(self):
        est = estimate_nemo_aligner(
            AlgoType.PPO, specs_of("llama-7b"), ClusterSpec(n_machines=2), WL
        )
        assert "split" in est.placement
        assert est.breakdown.transition == 0  # shared partition, no reshard

    def test_generation_dominates_iteration(self):
        """§8.2: NeMo-Aligner's 'main performance bottleneck lies in the
        generation stage, which accounts for up to 81.2% of its RLHF
        iteration time'."""
        est = estimate_nemo_aligner(
            AlgoType.PPO, specs_of("llama-7b"), ClusterSpec(n_machines=2), WL
        )
        assert est.breakdown.generation / est.breakdown.total > 0.5

    def test_rejects_remax(self):
        with pytest.raises(InfeasibleScenario, match="ReMax"):
            estimate_nemo_aligner(
                AlgoType.REMAX, specs_of("llama-7b"), ClusterSpec(n_machines=2), WL
            )


class TestHybridFlowEstimate:
    def test_placement_strategies_enumerated(self):
        assert PLACEMENT_STRATEGIES == (
            "colocate",
            "standalone",
            "split",
            "hybridflow",
        )

    def test_placement_partitions(self):
        models = list(PPO_MODELS)
        assert placement_partition("colocate", models) == [models]
        assert placement_partition("standalone", models) == [[m] for m in models]
        split = placement_partition("split", models)
        assert ["actor", "reference"] in split
        with pytest.raises(ValueError):
            placement_partition("diagonal", models)

    def test_auto_search_at_least_matches_named_placements(self):
        cluster = ClusterSpec(n_machines=2)
        specs = specs_of("llama-7b")
        auto = estimate_hybridflow(AlgoType.PPO, specs, cluster, WL)
        colocate = estimate_hybridflow(
            AlgoType.PPO, specs, cluster, WL, placement="colocate"
        )
        assert auto.iteration_time <= colocate.iteration_time + 1e-9


class TestHeadlineOrderings:
    """The paper's Figure 9 claims, as orderings rather than exact numbers."""

    @pytest.mark.parametrize("model,n_machines", [("llama-7b", 1), ("llama-13b", 2)])
    def test_hybridflow_beats_every_baseline(self, model, n_machines):
        cluster = ClusterSpec(n_machines=n_machines)
        specs = specs_of(model)
        hf = estimate_hybridflow(AlgoType.PPO, specs, cluster, WL)
        for name, fn in ALL_SYSTEMS.items():
            if name == "HybridFlow":
                continue
            try:
                other = fn(AlgoType.PPO, specs, cluster, WL)
            except InfeasibleScenario:
                continue
            assert hf.throughput(WL) > other.throughput(WL), name

    def test_speedup_vs_nemo_in_paper_band(self):
        """Paper: 12.52x average (up to 20.57x) vs NeMo-Aligner."""
        cluster = ClusterSpec(n_machines=2)
        specs = specs_of("llama-7b")
        hf = estimate_hybridflow(AlgoType.PPO, specs, cluster, WL)
        nemo = estimate_nemo_aligner(AlgoType.PPO, specs, cluster, WL)
        speedup = hf.throughput(WL) / nemo.throughput(WL)
        assert 4 < speedup < 25

    def test_dschat_best_baseline_small_scale(self):
        """§8.2: colocation (DS-Chat) is the strongest baseline on small
        clusters; OpenRLHF 'performs better in a larger GPU cluster but less
        efficiently on smaller ones'."""
        cluster = ClusterSpec(n_machines=1)
        specs = specs_of("llama-7b")
        ds = estimate_deepspeed_chat(AlgoType.PPO, specs, cluster, WL)
        op = estimate_openrlhf(AlgoType.PPO, specs, cluster, WL)
        assert ds.throughput(WL) > op.throughput(WL)

    def test_openrlhf_gains_relative_ground_at_scale(self):
        small = ClusterSpec(n_machines=1)
        large = ClusterSpec(n_machines=16)
        specs = specs_of("llama-7b")
        ratio_small = (
            estimate_openrlhf(AlgoType.PPO, specs, small, WL).throughput(WL)
            / estimate_deepspeed_chat(AlgoType.PPO, specs, small, WL).throughput(WL)
        )
        ratio_large = (
            estimate_openrlhf(AlgoType.PPO, specs, large, WL).throughput(WL)
            / estimate_deepspeed_chat(AlgoType.PPO, specs, large, WL).throughput(WL)
        )
        assert ratio_large > ratio_small

    def test_remax_supported_by_three_systems(self):
        cluster = ClusterSpec(n_machines=1)
        specs = {m: SPEC7 for m in ("actor", "reference", "reward")}
        for fn in (estimate_deepspeed_chat, estimate_openrlhf, estimate_hybridflow):
            est = fn(AlgoType.REMAX, specs, cluster, WL)
            assert est.iteration_time > 0

    def test_safe_rlhf_runs_with_cost_model(self):
        cluster = ClusterSpec(n_machines=1)
        specs = {m: SPEC7 for m in ("actor", "critic", "reference", "reward", "cost")}
        est = estimate_hybridflow(AlgoType.SAFE_RLHF, specs, cluster, WL)
        assert est.iteration_time > 0
