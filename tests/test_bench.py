"""Tests for the pinned perf-trajectory bench harness (``repro.perf.bench``).

The full 4-workload record is expensive, so it runs once per module
(session-scoped fixture) and every structural/self-compare assertion reads
from it; comparison-policy tests use small synthetic records instead.
"""

import copy

import pytest

from repro.perf.bench import (
    SCHEMA,
    SUITE,
    WORKLOADS,
    compare_fleet_records,
    compare_records,
    run_bench,
    summary_lines,
)


@pytest.fixture(scope="module")
def record():
    return run_bench()


# -- the real record ---------------------------------------------------------------


class TestRunBench:
    def test_record_structure(self, record):
        assert record["suite"] == SUITE
        assert record["schema"] == SCHEMA
        assert set(record["workloads"]) == set(WORKLOADS)
        assert len(record["workloads"]) >= 4
        for workload in record["workloads"].values():
            assert workload["pins"]
            for metric in workload["metrics"].values():
                assert metric["kind"] in {"exact", "wall", "min", "info"}
                if metric["kind"] == "min":
                    assert metric["value"] >= metric["floor"]

    def test_self_compare_is_clean(self, record):
        assert compare_records(record, record) == []

    def test_bit_exactness_flags_hold(self, record):
        gen = record["workloads"]["sequential_generate"]["metrics"]
        assert gen["sampler_bit_exact"]["value"] is True
        drain = record["workloads"]["serving_drain"]["metrics"]
        assert drain["batched_equals_per_slot"]["value"] is True

    def test_speedup_floors_met(self, record):
        gen = record["workloads"]["sequential_generate"]["metrics"]
        assert gen["sampler_speedup"]["value"] >= gen["sampler_speedup"]["floor"]
        drain = record["workloads"]["serving_drain"]["metrics"]
        assert drain["decode_speedup"]["value"] >= drain["decode_speedup"]["floor"]

    def test_structure_derived_exact_values(self, record):
        # These are schedule/topology facts, not timings — they must land on
        # the same values on any host (they are the committed baseline).
        drain = record["workloads"]["serving_drain"]["metrics"]
        assert drain["n_steps"]["value"] == 48
        assert drain["total_tokens"]["value"] == 192
        ppo = record["workloads"]["ppo_iteration"]["metrics"]
        assert ppo["dispatch_calls"]["value"] == 7
        transition = record["workloads"]["train_gen_transition"]["metrics"]
        assert transition["plan_cache_hits"]["value"] == 1
        assert transition["plan_cache_misses"]["value"] == 1

    def test_subset_run_and_unknown_name(self):
        rec = run_bench(["sequential_generate"])
        assert list(rec["workloads"]) == ["sequential_generate"]
        with pytest.raises(ValueError, match="unknown workload"):
            run_bench(["nope"])

    def test_summary_lines_cover_every_metric(self, record):
        text = "\n".join(summary_lines(record))
        for name, workload in record["workloads"].items():
            assert f"{name}:" in text
            for mname in workload["metrics"]:
                assert mname in text


# -- comparison policy on synthetic records ----------------------------------------


def _synthetic():
    return {
        "schema": SCHEMA,
        "suite": SUITE,
        "workloads": {
            "w": {
                "pins": {"batch": 8},
                "metrics": {
                    "tokens": {"kind": "exact", "value": 128},
                    "wall_seconds": {"kind": "wall", "value": 0.1},
                    "speedup": {"kind": "min", "value": 2.0, "floor": 1.2},
                    "rate": {"kind": "info", "value": 1000.0},
                },
            }
        },
    }


class TestCompareRecords:
    def test_identical_records_pass(self):
        assert compare_records(_synthetic(), _synthetic()) == []

    def test_exact_drift_fails(self):
        cur = _synthetic()
        cur["workloads"]["w"]["metrics"]["tokens"]["value"] = 127
        problems = compare_records(cur, _synthetic())
        assert any("tokens" in p for p in problems)

    def test_wall_within_tolerance_passes(self):
        cur = _synthetic()
        cur["workloads"]["w"]["metrics"]["wall_seconds"]["value"] = 0.3
        assert compare_records(cur, _synthetic()) == []

    def test_wall_blowup_fails(self):
        cur = _synthetic()
        cur["workloads"]["w"]["metrics"]["wall_seconds"]["value"] = 10.0
        problems = compare_records(cur, _synthetic())
        assert any("wall_seconds" in p for p in problems)

    def test_info_never_compared(self):
        cur = _synthetic()
        cur["workloads"]["w"]["metrics"]["rate"]["value"] = 1.0
        assert compare_records(cur, _synthetic()) == []

    def test_min_floor_violation_fails_without_baseline_help(self):
        cur = _synthetic()
        cur["workloads"]["w"]["metrics"]["speedup"]["value"] = 1.0
        problems = compare_records(cur, _synthetic())
        assert any("below its pinned floor" in p for p in problems)

    def test_floor_change_requires_rebaseline(self):
        cur = _synthetic()
        cur["workloads"]["w"]["metrics"]["speedup"]["floor"] = 1.5
        problems = compare_records(cur, _synthetic())
        assert any("floor changed" in p for p in problems)

    def test_pin_drift_asks_for_rebaseline(self):
        cur = _synthetic()
        cur["workloads"]["w"]["pins"]["batch"] = 16
        problems = compare_records(cur, _synthetic())
        assert len(problems) == 1
        assert "re-baseline" in problems[0]

    def test_missing_workload_fails(self):
        cur = copy.deepcopy(_synthetic())
        del cur["workloads"]["w"]
        problems = compare_records(cur, _synthetic())
        assert any("in baseline but not in this run" in p for p in problems)

    def test_new_workload_asks_for_rebaseline(self):
        cur = _synthetic()
        cur["workloads"]["extra"] = copy.deepcopy(cur["workloads"]["w"])
        problems = compare_records(cur, _synthetic())
        assert any("not in baseline" in p for p in problems)

    def test_kind_change_requires_rebaseline(self):
        cur = _synthetic()
        cur["workloads"]["w"]["metrics"]["tokens"]["kind"] = "info"
        problems = compare_records(cur, _synthetic())
        assert any("kind changed" in p for p in problems)

    def test_suite_mismatch_short_circuits(self):
        cur = _synthetic()
        cur["suite"] = "other"
        problems = compare_records(cur, _synthetic())
        assert len(problems) == 1
        assert "identity mismatch" in problems[0]


class TestCompareFleetRecords:
    @staticmethod
    def _fleet():
        return {
            "benchmark": "fleet_chaos",
            "jobs": 3,
            "cluster_gpus": 16,
            "devices_killed": 8,
            "all_completed": True,
            "ok": True,
            "goodput_mean": 0.8,
            "analysis_findings": {},
        }

    def test_clean_run_passes(self):
        assert compare_fleet_records(self._fleet(), self._fleet()) == []

    def test_shape_drift_fails(self):
        cur = self._fleet()
        cur["jobs"] = 4
        problems = compare_fleet_records(cur, self._fleet())
        assert any("jobs" in p for p in problems)

    def test_incomplete_run_fails(self):
        cur = self._fleet()
        cur["all_completed"] = False
        problems = compare_fleet_records(cur, self._fleet())
        assert any("all_completed" in p for p in problems)

    def test_zero_goodput_fails(self):
        cur = self._fleet()
        cur["goodput_mean"] = 0.0
        problems = compare_fleet_records(cur, self._fleet())
        assert any("goodput_mean" in p for p in problems)

    def test_analysis_findings_fail(self):
        cur = self._fleet()
        cur["analysis_findings"] = {"races": ["RC501"]}
        problems = compare_fleet_records(cur, self._fleet())
        assert any("analysis gate" in p for p in problems)
