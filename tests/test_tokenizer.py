"""Tests for the character tokenizer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.tokenizer import SPECIALS, CharTokenizer


@pytest.fixture
def tok():
    return CharTokenizer("abcdefgh ")


class TestVocabulary:
    def test_specials_first(self, tok):
        assert tok.pad_id == 0
        assert tok.vocab_size == len(SPECIALS) + 9

    def test_from_corpus(self):
        t = CharTokenizer.from_corpus(["hi there", "hello"])
        assert t.vocab_size == len(SPECIALS) + len(set("hi therelo"))

    def test_empty_alphabet_rejected(self):
        with pytest.raises(ValueError):
            CharTokenizer("")


class TestRoundTrip:
    def test_encode_decode(self, tok):
        text = "bad cafe"
        assert tok.decode(tok.encode(text)) == text

    def test_bos_stripped_on_decode(self, tok):
        ids = tok.encode("abc", add_bos=True)
        assert ids[0] == tok.bos_id
        assert tok.decode(ids) == "abc"

    def test_unknown_chars_become_unk(self, tok):
        ids = tok.encode("aZb")
        assert ids[1] == tok.unk_id

    def test_decode_rejects_out_of_range(self, tok):
        with pytest.raises(ValueError):
            tok.decode([9999])

    @settings(max_examples=25, deadline=None)
    @given(st.text(alphabet="abcdefgh ", max_size=20))
    def test_roundtrip_property(self, text):
        tok = CharTokenizer("abcdefgh ")
        assert tok.decode(tok.encode(text)) == text


class TestBatch:
    def test_fixed_length_left_padding(self, tok):
        batch = tok.encode_batch(["ab", "abcdef"], length=5)
        assert batch.shape == (2, 5)
        assert batch[0, 0] == tok.pad_id
        assert tok.decode(batch[0]) == "ab"
        assert tok.decode(batch[1]) == "abcd"  # bos + 4 chars fill length 5

    def test_decode_batch(self, tok):
        batch = tok.encode_batch(["abc", "h g"], length=6)
        assert tok.decode_batch(batch) == ["abc", "h g"]

    def test_length_validated(self, tok):
        with pytest.raises(ValueError):
            tok.encode_batch(["a"], length=0)

    def test_tokens_feed_tinylm(self, tok):
        from repro.models.tinylm import TinyLM, TinyLMConfig

        cfg = TinyLMConfig(
            n_layers=1,
            hidden_size=16,
            n_heads=2,
            ffn_hidden_size=16,
            vocab_size=tok.vocab_size,
            max_seq_len=16,
        )
        model = TinyLM(cfg)
        batch = tok.encode_batch(["cafe", "dead"], length=6)
        logits = model.forward(batch)
        assert logits.shape == (2, 6, tok.vocab_size)
