"""Tests for ``repro.analysis``: dataflow checker, trace auditor, repo lint.

Each misconfiguration path must produce exactly one precise finding, and a
clean run of the repo's own example configuration must produce zero.
"""

import json

import numpy as np
import pytest

from repro.analysis import (
    ERROR,
    WARNING,
    AnalysisReport,
    DataflowChecker,
    Finding,
    RepoLint,
    TraceAuditor,
    registered_methods,
)
from repro.cluster import LedgerEvent, SimDevice
from repro.config import (
    GPU_SPECS,
    MODEL_SPECS,
    ClusterSpec,
    GenParallelConfig,
    ParallelConfig,
    RlhfWorkload,
)
from repro.observability.spans import Span
from repro.rlhf.core import AlgoType
from repro.runtime import ModelAssignment, PlacementPlan

A100 = GPU_SPECS["A100-80GB"]


def make_device(rank=0):
    return SimDevice(global_rank=rank, machine=0, spec=A100)


def tiny_plan(reward_parallel=ParallelConfig(1, 1, 1), reward_pool_size=1):
    par = ParallelConfig(pp=1, tp=2, dp=1)
    return PlacementPlan(
        pools={"main": 2, "r": reward_pool_size},
        assignments={
            "actor": ModelAssignment(
                "main", par, GenParallelConfig.derive(par, 1, 1)
            ),
            "critic": ModelAssignment("main", par),
            "reference": ModelAssignment("main", par),
            "reward": ModelAssignment("r", reward_parallel),
        },
    )


# ---------------------------------------------------------------------------
# AnalysisReport
# ---------------------------------------------------------------------------


class TestAnalysisReport:
    def test_severity_validated(self):
        with pytest.raises(ValueError, match="severity"):
            Finding("DF101", "fatal", "m", "loc")

    def test_ok_and_strict(self):
        report = AnalysisReport("t")
        assert report.ok() and report.ok(strict=True)
        report.add("TA201", WARNING, "w", "loc")
        assert report.ok() and not report.ok(strict=True)
        report.add("TA201", ERROR, "e", "loc")
        assert not report.ok()

    def test_merge_accumulates(self):
        a, b = AnalysisReport("a"), AnalysisReport("b")
        a.note_checked("files", 2)
        b.note_checked("files", 3)
        b.add("RL301", ERROR, "m", "loc")
        a.merge(b)
        assert a.checked["files"] == 5
        assert len(a.by_rule("RL301")) == 1

    def test_to_dict_is_json_serializable(self):
        report = AnalysisReport("t")
        report.note_checked("devices", int(np.int64(3)))
        report.add("TA203", ERROR, "leak", "device 0", hint="free it")
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["n_errors"] == 1
        assert doc["findings"][0]["rule"] == "TA203"
        assert doc["checked"]["devices"] == 3

    def test_summary_lines_include_findings(self):
        report = AnalysisReport("t")
        report.add("DF102", ERROR, "not divisible", "actor", hint="pad it")
        lines = report.summary_lines()
        assert "1 error(s)" in lines[0]
        assert "DF102" in lines[1] and "pad it" in lines[1]


# ---------------------------------------------------------------------------
# DataflowChecker
# ---------------------------------------------------------------------------


class TestDataflowChecker:
    def test_clean_tiny_plan_has_zero_findings(self):
        report = DataflowChecker(global_batch_size=8).check_plan(
            AlgoType.PPO, tiny_plan(), function_rewards=("reward",)
        )
        assert report.findings == []
        assert report.checked["methods"] > 0  # it actually looked

    def test_protocol_topology_mismatch_is_one_df101(self):
        # a function reward (one_to_one methods) on a 2-rank group
        report = DataflowChecker(global_batch_size=8).check_plan(
            AlgoType.PPO,
            tiny_plan(
                reward_parallel=ParallelConfig(1, 1, 2), reward_pool_size=2
            ),
            function_rewards=("reward",),
        )
        assert len(report.errors) == 1
        finding = report.errors[0]
        assert finding.rule == "DF101"
        assert "single-rank" in finding.message
        assert "reward" in finding.location

    def test_non_divisible_batch_is_one_df102(self):
        # gen_dp = dp * micro_dp = 2 * 2 = 4; batch 6 splits fine over the
        # dp=2 protocols but not over the generation micro-DP fan-out
        par = ParallelConfig(pp=1, tp=2, dp=2)
        plan = PlacementPlan(
            pools={"main": 4, "r": 1},
            assignments={
                "actor": ModelAssignment(
                    "main", par, GenParallelConfig.derive(par, 1, 1)
                ),
                "critic": ModelAssignment("main", par),
                "reference": ModelAssignment("main", par),
                "reward": ModelAssignment("r", ParallelConfig(1, 1, 1)),
            },
        )
        report = DataflowChecker(global_batch_size=6).check_plan(
            AlgoType.PPO, plan, function_rewards=("reward",)
        )
        df102 = report.by_rule("DF102")
        assert len(df102) == 1
        assert "not divisible" in df102[0].message
        assert "actor" in df102[0].location

    def test_over_capacity_placement_is_one_df104(self):
        par = ParallelConfig(pp=1, tp=8, dp=1)
        plan = PlacementPlan(
            pools={"all": 8},
            assignments={
                "actor": ModelAssignment(
                    "all", par, GenParallelConfig.derive(par, 1, 8)
                ),
                "critic": ModelAssignment("all", par),
                "reference": ModelAssignment("all", par),
                "reward": ModelAssignment("all", par),
            },
        )
        checker = DataflowChecker(
            global_batch_size=64,
            model_specs={
                role: MODEL_SPECS["llama-70b"]
                for role in ("actor", "critic", "reference", "reward")
            },
            workload=RlhfWorkload(),
            cluster_spec=ClusterSpec(n_machines=1),
        )
        report = checker.check_plan(AlgoType.PPO, plan)
        df104 = report.by_rule("DF104")
        assert len(df104) == 1
        assert df104[0].severity == ERROR
        assert "pool 'all'" in df104[0].message

    def test_fitting_placement_has_no_df104(self):
        report = DataflowChecker(
            global_batch_size=1024,
            model_specs={"actor": MODEL_SPECS["llama-7b"]},
            cluster_spec=ClusterSpec(n_machines=2),
        ).check_plan(
            AlgoType.PPO,
            tiny_plan(),
            function_rewards=("reward",),
        )
        assert report.by_rule("DF104") == []
        assert report.checked.get("pools_projected", 0) == 1

    def test_missing_role_is_df105(self):
        plan = tiny_plan()
        del plan.assignments["critic"]
        report = DataflowChecker().check_plan(
            AlgoType.PPO, plan, function_rewards=("reward",)
        )
        df105 = report.by_rule("DF105")
        assert len(df105) == 1 and "critic" in df105[0].message

    def test_actor_without_gen_config_is_df105(self):
        plan = tiny_plan()
        plan.assignments["actor"] = ModelAssignment(
            "main", ParallelConfig(1, 2, 1)
        )
        report = DataflowChecker().check_plan(
            AlgoType.PPO, plan, function_rewards=("reward",)
        )
        df105 = report.by_rule("DF105")
        assert len(df105) == 1 and "gen_parallel" in df105[0].message

    def test_family_counts_wildcards_the_rule(self):
        report = AnalysisReport("t")
        report.add("DF101", ERROR, "m", "loc")
        report.add("DF102", ERROR, "m", "loc")
        report.add("RC501", ERROR, "m", "loc")
        assert report.family_counts() == {"DF1xx": 2, "RC5xx": 1}

    def test_registered_methods_reads_the_decorator(self):
        from repro.single_controller import Worker, register

        class Probe(Worker):
            @register(protocol="one_to_all")
            def visible(self):
                return None

            @register(protocol="dp_proto")
            def _hidden(self):
                return None

            def plain(self):
                return None

        assert registered_methods(Probe) == [("visible", "one_to_all")]


def variant_plan(roles):
    """A placement plan assigning exactly ``roles`` (tiny shapes)."""
    par = ParallelConfig(pp=1, tp=2, dp=1)
    assignments = {}
    for role in roles:
        if role == "actor":
            assignments[role] = ModelAssignment(
                "main", par, GenParallelConfig.derive(par, 1, 1)
            )
        elif role in ("reward", "cost"):
            assignments[role] = ModelAssignment("r", ParallelConfig(1, 1, 1))
        else:
            assignments[role] = ModelAssignment("main", par)
    return PlacementPlan(pools={"main": 2, "r": 1}, assignments=assignments)


class TestDataflowVariants:
    """check_plan across the Figure 1 dataflow variants (DF105/DF106/DF107)."""

    def test_remax_clean_plan(self):
        report = DataflowChecker(global_batch_size=8).check_plan(
            AlgoType.REMAX,
            variant_plan(("actor", "reference", "reward")),
            function_rewards=("reward",),
        )
        assert report.findings == []

    def test_remax_missing_reference_is_df105(self):
        report = DataflowChecker(global_batch_size=8).check_plan(
            AlgoType.REMAX,
            variant_plan(("actor", "reward")),
            function_rewards=("reward",),
        )
        df105 = report.by_rule("DF105")
        assert len(df105) == 1 and "reference" in df105[0].message

    def test_remax_with_critic_is_df106_warning(self):
        report = DataflowChecker(global_batch_size=8).check_plan(
            AlgoType.REMAX,
            variant_plan(("actor", "critic", "reference", "reward")),
            function_rewards=("reward",),
        )
        df106 = report.by_rule("DF106")
        assert len(df106) == 1
        assert df106[0].severity == WARNING
        assert "critic" in df106[0].message
        assert report.ok() and not report.ok(strict=True)

    def test_grpo_group_size_one_is_df107(self):
        report = DataflowChecker(global_batch_size=8).check_plan(
            AlgoType.GRPO,
            variant_plan(("actor", "reference", "reward")),
            function_rewards=("reward",),
            group_size=1,
        )
        df107 = report.by_rule("DF107")
        assert len(df107) == 1 and df107[0].severity == ERROR
        assert "group_size=1" in df107[0].message

    def test_grpo_default_group_size_is_clean(self):
        # group_size=None inherits TrainerConfig's default (4)
        report = DataflowChecker(global_batch_size=8).check_plan(
            AlgoType.GRPO,
            variant_plan(("actor", "reference", "reward")),
            function_rewards=("reward",),
        )
        assert report.findings == []
        assert report.checked["grpo_group_size"] == 1

    def test_safe_rlhf_missing_cost_is_df105(self):
        report = DataflowChecker(global_batch_size=8).check_plan(
            AlgoType.SAFE_RLHF,
            variant_plan(("actor", "critic", "reference", "reward")),
            function_rewards=("reward",),
        )
        df105 = report.by_rule("DF105")
        assert len(df105) == 1 and "cost" in df105[0].message

    def test_safe_rlhf_clean_plan(self):
        report = DataflowChecker(global_batch_size=8).check_plan(
            AlgoType.SAFE_RLHF,
            variant_plan(("actor", "critic", "reference", "reward", "cost")),
            function_rewards=("reward", "cost"),
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# TraceAuditor
# ---------------------------------------------------------------------------


class _FakeTimeline:
    """The three methods the auditor reads, with controllable busy time."""

    def __init__(self, busy=5.0):
        self._busy = busy

    def pools(self):
        return ["main"]

    def events_on(self, pool):
        return []

    def busy_time(self, pool):
        return self._busy


class TestTraceAuditor:
    def test_leaked_tag_is_one_ta203(self):
        device = make_device()
        device.memory.alloc("actor/kv_cache", 128)
        report = TraceAuditor().audit(devices=[device])
        assert len(report.findings) == 1
        assert report.findings[0].rule == "TA203"
        assert "actor/kv_cache" in report.findings[0].message

    def test_persistent_tags_are_not_leaks(self):
        device = make_device()
        device.memory.alloc("actor/params", 128)
        device.memory.alloc("actor/grads", 128)
        device.memory.alloc("actor/optim", 128)
        assert TraceAuditor().audit(devices=[device]).findings == []

    def test_double_free_is_one_ta204(self):
        device = make_device()
        device.memory.alloc("actor/kv_cache", 128)
        device.memory.free_tag("actor/kv_cache")
        device.memory.free_tag("actor/kv_cache")
        report = TraceAuditor().audit(devices=[device])
        assert len(report.findings) == 1
        assert report.findings[0].rule == "TA204"

    def test_free_of_never_allocated_tag_is_benign(self):
        # the actor frees kv_cache on every rank of the group, including
        # ranks that never led a generation replica — not a double free
        device = make_device()
        device.memory.free_tag("actor/kv_cache")
        device.memory.free_tag("actor/kv_cache")
        assert TraceAuditor().audit(devices=[device]).findings == []

    def test_alloc_free_alloc_free_is_clean(self):
        device = make_device()
        for _ in range(2):
            device.memory.alloc("actor/kv_cache", 64)
            device.memory.free_tag("actor/kv_cache")
        assert TraceAuditor().audit(devices=[device]).findings == []

    def test_negative_balance_is_ta205(self):
        device = make_device()
        # a corrupted event stream, injected directly: the real ledger API
        # cannot produce this, which is exactly why the auditor checks it
        device.memory.events.append(LedgerEvent("alloc", "x", -8, -8))
        report = TraceAuditor().audit(devices=[device])
        assert [f.rule for f in report.findings] == ["TA205"]

    def test_span_escape_is_one_ta202(self):
        parent = Span(1, "iter", "iteration", start=0.0, end=10.0)
        child = Span(
            2, "gen", "dispatch", start=5.0, end=12.0, parent_id=1
        )
        report = TraceAuditor().audit(spans=[parent, child])
        assert len(report.findings) == 1
        assert report.findings[0].rule == "TA202"
        assert "escapes" in report.findings[0].message

    def test_nested_spans_are_clean(self):
        parent = Span(1, "iter", "iteration", start=0.0, end=10.0)
        child = Span(
            2, "gen", "dispatch", start=2.0, end=8.0, parent_id=1
        )
        assert TraceAuditor().audit(spans=[parent, child]).findings == []

    def test_busy_accounting_mismatch_is_ta206_warning(self):
        device = make_device()
        device.occupy(4.0)
        report = TraceAuditor().audit(
            timeline=_FakeTimeline(busy=5.0),
            devices=[device],
            device_pools={0: "main"},
        )
        assert [f.rule for f in report.findings] == ["TA206"]
        assert report.findings[0].severity == WARNING

    def test_busy_accounting_match_is_clean(self):
        device = make_device()
        device.occupy(5.0)
        report = TraceAuditor().audit(
            timeline=_FakeTimeline(busy=5.0),
            devices=[device],
            device_pools={0: "main"},
        )
        assert report.findings == []
        assert report.checked["busy_accounted_devices"] == 1

    def test_chrome_trace_overlap_is_ta201(self):
        from repro.observability.export import _US, TIMELINE_PID

        doc = {
            "traceEvents": [
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": TIMELINE_PID,
                    "tid": 0,
                    "args": {"name": "pool main"},
                },
                {
                    "ph": "X",
                    "pid": TIMELINE_PID,
                    "tid": 0,
                    "name": "a",
                    "ts": 0,
                    "dur": int(2 * _US),
                },
                {
                    "ph": "X",
                    "pid": TIMELINE_PID,
                    "tid": 0,
                    "name": "b",
                    "ts": int(1 * _US),
                    "dur": int(2 * _US),
                },
            ]
        }
        report = TraceAuditor().audit_chrome_trace(doc)
        assert len(report.findings) == 1
        assert report.findings[0].rule == "TA201"
        assert "pool main" in report.findings[0].location

    def test_golden_trace_audits_clean(self):
        import pathlib

        golden = pathlib.Path(__file__).parent / "golden" / "chrome_trace.json"
        doc = json.loads(golden.read_text())
        report = TraceAuditor().audit_chrome_trace(doc)
        assert report.findings == []
        assert report.checked["tracks"] >= 1
        assert report.checked["spans"] >= 1


# ---------------------------------------------------------------------------
# RepoLint
# ---------------------------------------------------------------------------


def lint(source, filename="mod.py", rules=None):
    linter = RepoLint(rules) if rules is not None else RepoLint()
    return linter.lint_source(source, filename, AnalysisReport("lint"))


class TestRepoLint:
    def test_unseeded_numpy_rng_is_rl301(self):
        report = lint("import numpy as np\nnp.random.seed(0)\n")
        assert [f.rule for f in report.findings] == ["RL301"]
        assert "mod.py:2" in report.findings[0].location

    def test_seeded_generator_is_clean(self):
        report = lint(
            "import numpy as np\nrng = np.random.default_rng(7)\n"
            "x = rng.integers(0, 4)\n"
        )
        assert report.findings == []

    def test_stdlib_random_is_rl301(self):
        report = lint("import random\nx = random.random()\n")
        assert [f.rule for f in report.findings] == ["RL301"]

    def test_seeded_random_instance_is_clean(self):
        report = lint("import random\nrng = random.Random(3)\n")
        assert report.findings == []

    def test_conftest_exempt_from_rl301(self):
        report = lint(
            "import numpy as np\nnp.random.seed(0)\n", filename="conftest.py"
        )
        assert report.findings == []

    def test_wall_clock_is_rl302(self):
        report = lint("import time\nt = time.time()\n")
        assert [f.rule for f in report.findings] == ["RL302"]

    def test_wall_clock_through_alias_is_rl302(self):
        report = lint("import time as clock\nt = clock.perf_counter()\n")
        assert [f.rule for f in report.findings] == ["RL302"]

    def test_float_equality_is_rl303_warning(self):
        report = lint("def f(x):\n    return x == 1.5\n")
        assert [f.rule for f in report.findings] == ["RL303"]
        assert report.findings[0].severity == WARNING

    def test_int_equality_is_clean(self):
        assert lint("def f(x):\n    return x == 1\n").findings == []

    def test_raw_json_dump_is_rl304(self):
        report = lint("import json\ns = json.dumps({})\n")
        assert [f.rule for f in report.findings] == ["RL304"]

    def test_json_alias_is_tracked(self):
        report = lint("import json as json_mod\ns = json_mod.dumps({})\n")
        assert [f.rule for f in report.findings] == ["RL304"]

    def test_json_with_serialization_import_is_clean(self):
        report = lint(
            "import json\nfrom repro.serialization import json_safe\n"
            "s = json.dumps(json_safe({}, 'x'))\n"
        )
        assert report.findings == []

    def test_global_statement_is_rl305(self):
        report = lint("X = 0\ndef f():\n    global X\n    X = 1\n")
        assert [f.rule for f in report.findings] == ["RL305"]

    def test_worker_mutating_module_state_is_rl305(self):
        source = (
            "CACHE = {}\n"
            "class FooWorker:\n"
            "    def m(self):\n"
            "        CACHE.update(a=1)\n"
        )
        report = lint(source)
        assert [f.rule for f in report.findings] == ["RL305"]

    def test_worker_subscript_write_is_rl305(self):
        source = (
            "CACHE = {}\n"
            "class FooWorker:\n"
            "    def m(self):\n"
            "        CACHE['k'] = 1\n"
        )
        assert [f.rule for f in lint(source).findings] == ["RL305"]

    def test_non_worker_class_may_mutate(self):
        source = (
            "CACHE = {}\n"
            "class Registry:\n"
            "    def m(self):\n"
            "        CACHE.update(a=1)\n"
        )
        assert lint(source).findings == []

    def test_suppression_comment_silences_the_rule(self):
        report = lint(
            "import numpy as np\n"
            "np.random.seed(0)  # repro-lint: ignore[RL301]\n"
        )
        assert report.findings == []
        assert report.checked["suppressed"] == 1

    def test_suppression_of_other_rule_does_not_apply(self):
        report = lint(
            "import numpy as np\n"
            "np.random.seed(0)  # repro-lint: ignore[RL302]\n"
        )
        # RL301 still fires, and RL306 flags the suppression as stale
        # (nothing on the line triggers RL302).
        assert [f.rule for f in report.findings] == ["RL301", "RL306"]

    def test_bare_suppression_silences_everything(self):
        report = lint(
            "import time\nt = time.time()  # repro-lint: ignore\n"
        )
        assert report.findings == []

    def test_unused_suppression_is_exactly_one_rl306(self):
        report = lint("x = 1  # repro-lint: ignore[RL303]\n")
        rl306 = report.by_rule("RL306")
        assert [f.rule for f in report.findings] == ["RL306"]
        assert rl306[0].severity == WARNING
        assert rl306[0].location == "mod.py:1"
        assert "RL303" in rl306[0].message

    def test_hotpath_zeros_without_dtype_is_rl308(self):
        report = lint(
            "import numpy as np\nx = np.zeros((4, 4))\n",
            filename="src/repro/models/x.py",
        )
        assert [f.rule for f in report.findings] == ["RL308"]
        assert report.findings[0].severity == WARNING

    def test_hotpath_asarray_without_dtype_is_rl308(self):
        report = lint(
            "import numpy as np\ndef f(x):\n    return np.asarray(x)\n",
            filename="src/repro/serving/x.py",
        )
        assert [f.rule for f in report.findings] == ["RL308"]

    def test_hotpath_with_dtype_kwarg_is_clean(self):
        report = lint(
            "import numpy as np\nx = np.zeros((4,), dtype=np.float64)\n",
            filename="src/repro/models/x.py",
        )
        assert report.findings == []

    def test_hotpath_with_dtype_positional_is_clean(self):
        report = lint(
            "import numpy as np\ndef f(x):\n"
            "    return np.asarray(x, np.int64)\n",
            filename="src/repro/rlhf/advantage.py",
        )
        assert report.findings == []

    def test_non_hotpath_module_exempt_from_rl308(self):
        report = lint(
            "import numpy as np\nx = np.empty((2,))\n",
            filename="src/repro/observability/x.py",
        )
        assert report.findings == []

    def test_rl308_suppression_works(self):
        report = lint(
            "import numpy as np\n"
            "x = np.zeros(3)  # repro-lint: ignore[RL308]\n",
            filename="src/repro/models/x.py",
        )
        assert report.findings == []
        assert report.checked["suppressed"] == 1

    def test_unused_bare_suppression_is_rl306(self):
        report = lint("x = 1  # repro-lint: ignore\n")
        assert [f.rule for f in report.findings] == ["RL306"]

    def test_used_suppression_is_not_rl306(self):
        report = lint(
            "import numpy as np\n"
            "np.random.seed(0)  # repro-lint: ignore[RL301]\n"
        )
        assert report.findings == []

    def test_partial_rule_run_cannot_call_suppressions_unused(self):
        # with only RL302 active, an ignore[RL301] line may still be load-
        # bearing under the full catalog — no RL306
        report = lint(
            "import numpy as np\n"
            "np.random.seed(0)  # repro-lint: ignore[RL301]\n",
            rules=["RL302", "RL306"],
        )
        assert report.findings == []

    def test_marker_inside_a_string_is_not_a_suppression(self):
        report = lint("hint = \"# repro-lint: ignore\"\n")
        assert report.findings == []

    def test_syntax_error_is_rl300(self):
        report = lint("def f(:\n")
        assert [f.rule for f in report.findings] == ["RL300"]
        assert report.findings[0].severity == ERROR

    def test_rule_subset_filters(self):
        report = lint(
            "import numpy as np\nnp.random.seed(0)\n", rules=["RL302"]
        )
        assert report.findings == []

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown lint rules"):
            RepoLint(rules=["RL999"])

    # -- RL307: schedule-order nondeterminism in scheduling code ----------

    SCOPED = "src/repro/pipeline/driver.py"

    def test_set_literal_iteration_in_schedule_path_is_rl307(self):
        report = lint("for x in {1, 2}:\n    pass\n", filename=self.SCOPED)
        assert [f.rule for f in report.findings] == ["RL307"]
        assert report.findings[0].severity == WARNING
        assert "sorted(" in report.findings[0].hint

    def test_dict_values_iteration_in_schedule_path_is_rl307(self):
        report = lint(
            "d = {}\nfor v in d.values():\n    pass\n",
            filename="src/repro/single_controller/controller.py",
        )
        assert [f.rule for f in report.findings] == ["RL307"]

    def test_set_call_comprehension_is_rl307(self):
        report = lint(
            "xs = [1]\nys = [y for y in set(xs)]\n",
            filename="src/repro/fleet/scheduler.py",
        )
        assert [f.rule for f in report.findings] == ["RL307"]

    def test_sorted_set_iteration_is_clean(self):
        report = lint(
            "for x in sorted({1, 2}):\n    pass\n", filename=self.SCOPED
        )
        assert report.findings == []

    def test_values_call_with_arguments_is_not_a_dict_view(self):
        report = lint(
            "class Q:\n"
            "    def values(self, k):\n"
            "        return [k]\n"
            "def f(q):\n"
            "    for v in q.values(1):\n"
            "        pass\n",
            filename=self.SCOPED,
        )
        assert report.findings == []

    def test_set_iteration_outside_schedule_paths_is_clean(self):
        report = lint("for x in {1, 2}:\n    pass\n")
        assert report.findings == []

    def test_rl307_suppression_comment_works(self):
        report = lint(
            "for x in {1, 2}:  # repro-lint: ignore[RL307]\n    pass\n",
            filename=self.SCOPED,
        )
        assert report.findings == []
        assert report.checked["suppressed"] == 1

    def test_repo_source_tree_is_clean(self):
        import pathlib

        src = pathlib.Path(__file__).resolve().parents[1] / "src"
        report = RepoLint().lint_paths([str(src)])
        assert report.ok(strict=True), "\n".join(report.summary_lines())


# ---------------------------------------------------------------------------
# End-to-end over a real (tiny) system
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def tiny_system():
    from repro.data import PromptDataset, SyntheticPreferenceTask
    from repro.models.tinylm import TinyLMConfig
    from repro.rlhf.trainers import TrainerConfig
    from repro.runtime import build_rlhf_system

    cfg = TinyLMConfig(
        n_layers=2,
        hidden_size=32,
        n_heads=4,
        ffn_hidden_size=48,
        vocab_size=16,
        max_seq_len=32,
    )
    task = SyntheticPreferenceTask(vocab_size=16, target_token=7)
    system = build_rlhf_system(
        AlgoType.PPO,
        tiny_plan(),
        cfg,
        trainer_config=TrainerConfig(kl_coef=0.01, seed=7),
        reward_fn=task.reward,
        max_new_tokens=6,
        lr=5e-3,
        seed=7,
    )
    dataset = PromptDataset(n_prompts=32, prompt_length=4, vocab_size=16, seed=1)
    system.trainer.train(dataset, 2, 8)
    return system


class TestEndToEnd:
    def test_clean_system_passes_dataflow_check(self, tiny_system):
        report = DataflowChecker(global_batch_size=8).check_system(tiny_system)
        assert report.findings == [], "\n".join(report.summary_lines())

    def test_clean_run_passes_trace_audit(self, tiny_system):
        report = TraceAuditor().audit_system(tiny_system)
        assert report.findings == [], "\n".join(report.summary_lines())
        assert report.checked["ledger_events"] > 0
        assert report.checked["busy_accounted_devices"] == 3

    def test_audit_embeds_in_system_report(self, tiny_system):
        from repro.runtime.report import system_report_dict

        audit = TraceAuditor().audit_system(tiny_system)
        doc = system_report_dict(tiny_system, analysis=audit)
        json.dumps(doc)  # sanitized end to end
        assert doc["analysis"]["n_errors"] == 0
        assert doc["analysis"]["checked"]["devices"] == 3

    def test_model_check_embeds_in_system_report(self, tiny_system):
        from repro.analysis.modelcheck import ModelChecker
        from repro.analysis.protocols import AsyncPipelineModel
        from repro.runtime.report import system_report_dict

        checker = ModelChecker()
        checker.check_all([AsyncPipelineModel(n_iterations=3, window=1)])
        doc = system_report_dict(
            tiny_system, model_check=checker.last_results
        )
        json.dumps(doc)  # sanitized end to end
        mc = doc["model_check"]
        assert mc["ok"] is True
        assert mc["states_total"] > 0
        (entry,) = mc["models"]
        assert entry["model"].startswith("async-pipeline")
        assert entry["counterexamples"] == []

    def test_cli_check_gate_passes_strict(self, capsys):
        from repro.cli import main

        assert main(["check", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "repro check passed" in out
