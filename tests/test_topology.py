"""Tests for training/generation parallel-group construction (§5.1, §5.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import GenParallelConfig, ParallelConfig
from repro.parallel.topology import (
    GenGroupingMode,
    GenTopology,
    ParallelTopology,
)


def topo(p, t, d, ranks=None):
    return ParallelTopology(ParallelConfig(pp=p, tp=t, dp=d), global_ranks=ranks)


def gen_topo(train, gen_pp, gen_tp, mode):
    cfg = GenParallelConfig.derive(train.config, gen_pp, gen_tp)
    return GenTopology(train, cfg, mode=mode)


class TestTrainingTopology:
    def test_figure8_training_groups(self):
        """Paper Figure 8(a): 1-4-2 training on 8 GPUs."""
        t = topo(1, 4, 2)
        assert t.tp_group(0).ranks == [0, 1, 2, 3]
        assert t.tp_group(5).ranks == [4, 5, 6, 7]
        assert t.dp_group(0).ranks == [0, 4]
        assert t.dp_group(3).ranks == [3, 7]

    def test_pp_groups_stride_tp(self):
        t = topo(2, 2, 2)
        # rank = d*(p*t) + p*t_idx... layout: [d0p0t0, d0p0t1, d0p1t0, d0p1t1, ...]
        assert t.pp_group(0).ranks == [0, 2]
        assert t.pp_group(1).ranks == [1, 3]
        assert t.pp_group(4).ranks == [4, 6]

    def test_mp_group_is_whole_replica(self):
        t = topo(2, 2, 2)
        assert t.mp_group(0).ranks == [0, 1, 2, 3]
        assert t.mp_group(7).ranks == [4, 5, 6, 7]

    def test_custom_global_ranks(self):
        t = topo(1, 2, 2, ranks=[10, 11, 12, 13])
        assert t.tp_group(10).ranks == [10, 11]
        assert t.dp_group(10).ranks == [10, 12]

    def test_wrong_rank_count_rejected(self):
        with pytest.raises(ValueError):
            topo(1, 2, 2, ranks=[0, 1, 2])

    def test_unknown_rank_rejected(self):
        with pytest.raises(ValueError):
            topo(1, 2, 1).coords(99)

    def test_is_last_pp_stage(self):
        t = topo(2, 1, 1)
        assert not t.is_last_pp_stage(0)
        assert t.is_last_pp_stage(1)

    @settings(max_examples=30, deadline=None)
    @given(
        p=st.sampled_from([1, 2, 4]),
        t=st.sampled_from([1, 2, 4]),
        d=st.integers(1, 4),
    )
    def test_groups_partition_the_world(self, p, t, d):
        """Every kind of group partitions all ranks exactly once."""
        topology = topo(p, t, d)
        world = set(range(p * t * d))
        for groups in (
            topology.all_tp_groups(),
            topology.all_dp_groups(),
            topology.all_pp_groups(),
        ):
            seen = [r for g in groups for r in g.ranks]
            assert sorted(seen) == sorted(world)

    @settings(max_examples=30, deadline=None)
    @given(
        p=st.sampled_from([1, 2, 4]),
        t=st.sampled_from([1, 2, 4]),
        d=st.integers(1, 4),
    )
    def test_coords_roundtrip(self, p, t, d):
        topology = topo(p, t, d)
        for rank in range(p * t * d):
            c = topology.coords(rank)
            assert topology.global_rank_at(c.p, c.t, c.d) == rank


class TestGenerationTopologyFigure8:
    """The worked example of Figure 8: train 1-4-2, generation 1-2-2-2."""

    def setup_method(self):
        self.train = topo(1, 4, 2)

    def test_hybridflow_gen_tp_groups(self):
        g = gen_topo(self.train, 1, 2, GenGroupingMode.HYBRIDFLOW)
        assert g.gen_tp_group(0).ranks == [0, 2]
        assert g.gen_tp_group(1).ranks == [1, 3]
        assert g.gen_tp_group(4).ranks == [4, 6]
        assert g.gen_tp_group(5).ranks == [5, 7]

    def test_hybridflow_micro_dp_groups(self):
        g = gen_topo(self.train, 1, 2, GenGroupingMode.HYBRIDFLOW)
        assert g.micro_dp_group(0).ranks == [0, 1]
        assert g.micro_dp_group(2).ranks == [2, 3]
        assert g.micro_dp_group(6).ranks == [6, 7]

    def test_vanilla_gen_tp_groups(self):
        g = gen_topo(self.train, 1, 2, GenGroupingMode.VANILLA)
        assert g.gen_tp_group(0).ranks == [0, 1]
        assert g.gen_tp_group(2).ranks == [2, 3]

    def test_vanilla_micro_dp_groups(self):
        g = gen_topo(self.train, 1, 2, GenGroupingMode.VANILLA)
        assert g.micro_dp_group(0).ranks == [0, 2]
        assert g.micro_dp_group(1).ranks == [1, 3]

    def test_effective_dp(self):
        g = gen_topo(self.train, 1, 2, GenGroupingMode.HYBRIDFLOW)
        assert g.effective_dp == 4  # d_g=2 times d=2

    def test_generation_dp_ranks_are_unique_per_replica(self):
        g = gen_topo(self.train, 1, 2, GenGroupingMode.HYBRIDFLOW)
        leads = {}
        for rank in range(8):
            c = g.coords(rank)
            if c.pg == 0 and c.tg == 0:
                dp_rank = g.dp_rank_for_generation(rank)
                assert dp_rank not in leads
                leads[dp_rank] = rank
        assert sorted(leads) == [0, 1, 2, 3]


class TestGenerationTopologyValidation:
    def test_rejects_inconsistent_micro_dp(self):
        train = topo(1, 4, 1)
        with pytest.raises(ValueError, match="micro_dp must be"):
            GenTopology(train, GenParallelConfig(pp=1, tp=2, micro_dp=3))

    def test_rejects_non_dividing_sizes(self):
        train = topo(1, 4, 1)
        with pytest.raises(ValueError):
            GenTopology(train, GenParallelConfig(pp=1, tp=3, micro_dp=1))


@settings(max_examples=40, deadline=None)
@given(
    p=st.sampled_from([1, 2, 4]),
    t=st.sampled_from([1, 2, 4, 8]),
    d=st.integers(1, 3),
    pg_div=st.sampled_from([1, 2]),
    tg_div=st.sampled_from([1, 2, 4]),
    mode=st.sampled_from(list(GenGroupingMode)),
)
def test_micro_dp_groups_partition_each_replica(p, t, d, pg_div, tg_div, mode):
    """Micro-DP groups tile every training replica exactly (both modes)."""
    if p % pg_div or t % tg_div:
        return
    train = topo(p, t, d)
    g = gen_topo(train, p // pg_div, t // tg_div, mode)
    seen = set()
    for group in g.all_micro_dp_groups():
        for rank in group.ranks:
            assert rank not in seen
            seen.add(rank)
    assert seen == set(range(p * t * d))
    # every micro DP group has exactly d_g members from one training replica
    for group in g.all_micro_dp_groups():
        assert len(group.ranks) == g.config.micro_dp
        replicas = {train.coords(r).d for r in group.ranks}
        assert len(replicas) == 1
