"""Cross-module integration tests: checkpoint/resume, grouping equivalence,
pipeline-parallel end-to-end, and dataflow consistency."""


import numpy as np

from repro.config import GenParallelConfig, ParallelConfig
from repro.data.dataset import PromptDataset, SyntheticPreferenceTask
from repro.models.tinylm import TinyLMConfig
from repro.parallel.topology import GenGroupingMode
from repro.rlhf.core import AlgoType
from repro.rlhf.trainers import TrainerConfig
from repro.runtime import ModelAssignment, PlacementPlan, build_rlhf_system

CFG = TinyLMConfig(
    n_layers=4,
    hidden_size=32,
    n_heads=4,
    ffn_hidden_size=48,
    vocab_size=16,
    max_seq_len=32,
)
TASK = SyntheticPreferenceTask(vocab_size=16, target_token=7)


def build(parallel, gen_tp=1, gen_pp=1, gen_mode=GenGroupingMode.HYBRIDFLOW, seed=0):
    gen = GenParallelConfig.derive(parallel, gen_pp, gen_tp)
    plan = PlacementPlan(
        pools={"main": parallel.world_size, "r": 1},
        assignments={
            "actor": ModelAssignment("main", parallel, gen),
            "critic": ModelAssignment("main", parallel),
            "reference": ModelAssignment("main", parallel),
            "reward": ModelAssignment("r", ParallelConfig(1, 1, 1)),
        },
    )
    return build_rlhf_system(
        AlgoType.PPO,
        plan,
        CFG,
        trainer_config=TrainerConfig(kl_coef=0.01, seed=seed),
        gen_mode=gen_mode,
        reward_fn=TASK.reward,
        max_new_tokens=6,
        lr=5e-3,
        seed=seed,
    )


def dataset():
    return PromptDataset(n_prompts=64, prompt_length=4, vocab_size=16, seed=1)


def actor_full_state(system):
    return system.groups["actor"].workers[0].materialize_full_state()


class TestGroupingEquivalence:
    def test_vanilla_and_hybridflow_train_identically(self):
        """The generation *grouping method* changes memory/communication,
        never the numerics: training trajectories must match bit-for-bit."""
        ds = dataset()
        runs = {}
        for mode in (GenGroupingMode.HYBRIDFLOW, GenGroupingMode.VANILLA):
            system = build(ParallelConfig(1, 2, 1), gen_tp=1, gen_mode=mode)
            history = system.trainer.train(ds, 3, 8)
            runs[mode] = (history, actor_full_state(system))
        h_hf, state_hf = runs[GenGroupingMode.HYBRIDFLOW]
        h_v, state_v = runs[GenGroupingMode.VANILLA]
        assert [h["score_mean"] for h in h_hf] == [h["score_mean"] for h in h_v]
        for name in state_hf:
            np.testing.assert_array_equal(state_hf[name], state_v[name])

    def test_gen_tp_choice_does_not_change_numerics(self):
        """Different generation TP sizes redistribute work across replicas
        but preserve the same per-prompt rng streams only when replica
        leads match; here we check training still *works* for each size and
        produces finite metrics."""
        ds = dataset()
        for gen_tp in (1, 2):
            system = build(ParallelConfig(1, 2, 1), gen_tp=gen_tp)
            history = system.trainer.train(ds, 2, 8)
            assert all(np.isfinite(h["score_mean"]) for h in history)


class TestPipelineParallelEndToEnd:
    def test_pp2_tp2_full_rlhf_iteration(self):
        system = build(ParallelConfig(pp=2, tp=2, dp=1), gen_tp=1, gen_pp=1)
        history = system.trainer.train(dataset(), 2, 8)
        assert len(history) == 2
        assert np.isfinite(history[-1]["actor/policy_loss"])

    def test_pp_generation_grouping(self):
        system = build(ParallelConfig(pp=2, tp=2, dp=1), gen_tp=2, gen_pp=1)
        gen = system.groups["actor"].gen_topology
        assert gen.config.micro_dp == 2
        history = system.trainer.train(dataset(), 1, 8)
        assert history


class TestCheckpointResume:
    def test_resume_reproduces_exact_trajectory(self, tmp_path):
        """Train 2+2 iterations with a checkpoint after 2; the resumed run
        must match an uninterrupted 4-iteration run exactly (§9: parameters,
        dataloader position, and RNG state all restored)."""
        ds = dataset()

        # uninterrupted reference run
        ref = build(ParallelConfig(1, 2, 1), seed=3)
        ref_history = ref.trainer.train(ds, 4, 8)

        # interrupted run
        first = build(ParallelConfig(1, 2, 1), seed=3)
        first.trainer.train(ds, 2, 8)
        first.controller.save_checkpoint(tmp_path / "ck")
        trainer_state = first.trainer.state_dict()

        resumed = build(ParallelConfig(1, 2, 1), seed=3)
        resumed.controller.load_checkpoint(tmp_path / "ck")
        resumed.trainer.load_state_dict(trainer_state)
        # continue the dataloader from where the first run stopped
        batches = ds.iter_batches(8, epochs=10**6)
        for _ in range(2):
            next(batches)
        history2 = []
        for _ in range(2):
            history2.append(resumed.trainer.step(next(batches)))

        ref_scores = [h["score_mean"] for h in ref_history[2:]]
        resumed_scores = [h["score_mean"] for h in history2]
        assert ref_scores == resumed_scores
        ref_state = actor_full_state(ref)
        res_state = actor_full_state(resumed)
        for name in ref_state:
            np.testing.assert_array_equal(ref_state[name], res_state[name])


class TestDataflowConsistency:
    def test_generation_batch_order_preserved_across_micro_dp(self):
        """Prompts fan out over micro-DP replicas and come back in order."""
        system = build(ParallelConfig(1, 4, 1), gen_tp=1)  # micro_dp = 4
        actor = system.groups["actor"]
        rng = np.random.default_rng(5)
        from repro.data.batch import DataBatch

        prompts = DataBatch({"prompts": rng.integers(0, 16, size=(8, 4))})
        out = actor.generate_sequences(prompts).get()
        np.testing.assert_array_equal(out["sequences"][:, :4], prompts["prompts"])

    def test_memory_ledger_returns_to_baseline_after_iteration(self):
        """Generation-only buffers and KV caches are transient (§7 offload)."""
        system = build(ParallelConfig(1, 2, 2))
        devices = [w.ctx.device for w in system.groups["actor"].workers]
        before = [d.memory.used for d in devices]
        system.trainer.train(dataset(), 1, 8)
        after = [d.memory.used for d in devices]
        assert after == before

    def test_traffic_meter_accumulates_all_models(self):
        system = build(ParallelConfig(1, 2, 2))
        system.trainer.train(dataset(), 1, 8)
        meter = system.controller.meter
        assert meter.bytes_for("actor/mp[d0]", "all_gather_params") > 0
        assert meter.total_bytes() > 0

    def test_hybrid_engine_transitions_per_iteration(self):
        system = build(ParallelConfig(1, 2, 1))
        system.trainer.train(dataset(), 2, 8)
        engine = system.groups["actor"].hybrid_engine
        assert not engine.in_generation  # back in training layout
        assert engine.last_report is not None
