"""Tests for the auto device-mapping algorithms (§6, Algorithms 1 and 2)."""

import pytest
from hypothesis import given, strategies as st

from repro.config import MODEL_SPECS, ClusterSpec, ParallelConfig, RlhfWorkload
from repro.mapping import (
    allowed_allocations,
    auto_parallel,
    enum_alloc,
    map_dataflow,
    set_partitions,
)
from repro.mapping.auto_parallel import ModelRole, clear_cache, search_generation_strategy
from repro.mapping.device_mapping import get_min_alloc, persistent_bytes
from repro.mapping.placement_enum import bell_number
from repro.rlhf.core import AlgoType

WL = RlhfWorkload()
SPEC7 = MODEL_SPECS["llama-7b"]


class TestSetPartitions:
    def test_ppo_has_15_placements(self):
        """§6: 'the PPO algorithm involves four models, resulting in 15
        possible placements (from the Bell partition problem)'."""
        parts = list(set_partitions(["actor", "critic", "reference", "reward"]))
        assert len(parts) == 15

    def test_safe_rlhf_has_52_placements(self):
        parts = list(set_partitions(list("abcde")))
        assert len(parts) == 52

    @given(n=st.integers(0, 6))
    def test_counts_are_bell_numbers(self, n):
        assert len(list(set_partitions(list(range(n))))) == bell_number(n)

    def test_each_partition_covers_all_models(self):
        models = ["a", "b", "c", "d"]
        for partition in set_partitions(models):
            flat = sorted(m for group in partition for m in group)
            assert flat == sorted(models)


class TestEnumAlloc:
    def test_allowed_sizes(self):
        assert allowed_allocations(32, 8) == [1, 2, 4, 8, 16, 24, 32]
        assert allowed_allocations(4, 8) == [1, 2, 4]

    def test_allocations_sum_to_total(self):
        for alloc in enum_alloc(16, [1, 1, 1], 8):
            assert sum(alloc) == 16
            assert all(a >= 1 for a in alloc)

    def test_minimums_respected(self):
        allocs = list(enum_alloc(16, [8, 2], 8))
        assert allocs
        for a in allocs:
            assert a[0] >= 8 and a[1] >= 2

    def test_infeasible_minimums_give_nothing(self):
        assert list(enum_alloc(8, [8, 8], 8)) == []

    def test_single_set_gets_everything(self):
        assert list(enum_alloc(16, [1], 8)) == [(16,)]


class TestAutoParallel:
    def setup_method(self):
        clear_cache()

    def test_finds_feasible_strategy_for_7b_on_8(self):
        choice = auto_parallel(
            SPEC7, ClusterSpec(n_machines=1), 8, WL, ModelRole.ACTOR
        )
        assert choice is not None
        assert choice.parallel.world_size == 8
        assert choice.gen_tp is not None

    def test_infeasible_returns_none(self):
        choice = auto_parallel(
            MODEL_SPECS["llama-70b"], ClusterSpec(n_machines=1), 2, WL,
            ModelRole.ACTOR,
        )
        assert choice is None

    def test_scorer_needs_less_mp_than_trainer(self):
        cluster = ClusterSpec(n_machines=1)
        scorer = auto_parallel(SPEC7, cluster, 8, WL, ModelRole.SCORER)
        trainer = auto_parallel(SPEC7, cluster, 8, WL, ModelRole.CRITIC)
        assert scorer is not None and trainer is not None
        assert (
            scorer.parallel.model_parallel_size
            <= trainer.parallel.model_parallel_size
        )

    def test_cache_hit_returns_same_object(self):
        cluster = ClusterSpec(n_machines=2)
        a = auto_parallel(SPEC7, cluster, 8, WL, ModelRole.SCORER)
        b = auto_parallel(SPEC7, cluster, 8, WL, ModelRole.SCORER)
        assert a is b

    def test_generation_search_divides_training_mp(self):
        train = ParallelConfig(1, 8, 2)
        gen_tp, gen_pp, latency = search_generation_strategy(
            SPEC7, ClusterSpec(n_machines=2), train, WL
        )
        assert train.tp % gen_tp == 0
        assert train.pp % gen_pp == 0
        assert latency > 0


class TestGetMinAlloc:
    def test_single_7b_scorer_fits_on_one_gpu_worth(self):
        alloc = get_min_alloc(
            [("reference", SPEC7)], ClusterSpec(n_machines=2), 16
        )
        assert alloc == 1

    def test_trainable_needs_more(self):
        scorer = get_min_alloc([("reference", SPEC7)], ClusterSpec(n_machines=2), 16)
        trainer = get_min_alloc([("actor", SPEC7)], ClusterSpec(n_machines=2), 16)
        assert trainer > scorer

    def test_infeasible_returns_none(self):
        alloc = get_min_alloc(
            [("actor", MODEL_SPECS["llama-70b"])], ClusterSpec(n_machines=1), 8
        )
        assert alloc is None

    def test_persistent_bytes_roles(self):
        assert persistent_bytes(SPEC7, ModelRole.ACTOR) == 18 * SPEC7.n_params()
        assert persistent_bytes(SPEC7, ModelRole.SCORER) == 2 * SPEC7.n_params()


class TestMapDataflow:
    def setup_method(self):
        clear_cache()

    def test_small_cluster_prefers_colocation(self):
        """§8.3: 'In smaller clusters ... the colocate strategy ensures
        maximum GPU usage'."""
        specs = {m: SPEC7 for m in ("actor", "critic", "reference", "reward")}
        result = map_dataflow(
            AlgoType.PPO, specs, ClusterSpec(n_machines=1), WL
        )
        assert len(result.placement) == 1
        assert result.allocation["set0"] == 8

    def test_allocation_exhausts_cluster(self):
        specs = {m: SPEC7 for m in ("actor", "critic", "reference", "reward")}
        result = map_dataflow(AlgoType.PPO, specs, ClusterSpec(n_machines=2), WL)
        assert sum(result.allocation.values()) == 16

    def test_restricted_placement_search(self):
        specs = {m: SPEC7 for m in ("actor", "critic", "reference", "reward")}
        split = [["actor", "reference"], ["critic", "reward"]]
        result = map_dataflow(
            AlgoType.PPO, specs, ClusterSpec(n_machines=2), WL,
            placements=[split],
        )
        assert sorted(map(sorted, result.placement)) == sorted(map(sorted, split))

    def test_full_search_at_least_as_good_as_any_restriction(self):
        """§8.3: 'In all cases, our Algorithm 1 produces the best placement.'"""
        specs = {m: SPEC7 for m in ("actor", "critic", "reference", "reward")}
        cluster = ClusterSpec(n_machines=2)
        best = map_dataflow(AlgoType.PPO, specs, cluster, WL)
        colocate = map_dataflow(
            AlgoType.PPO, specs, cluster, WL,
            placements=[[["actor", "critic", "reference", "reward"]]],
        )
        assert best.cost <= colocate.cost + 1e-9

    def test_remax_dataflow_maps_without_critic(self):
        specs = {m: SPEC7 for m in ("actor", "reference", "reward")}
        result = map_dataflow(AlgoType.REMAX, specs, ClusterSpec(n_machines=1), WL)
        assert "critic" not in result.strategies

    def test_requires_actor(self):
        with pytest.raises(ValueError, match="actor"):
            map_dataflow(
                AlgoType.PPO, {"critic": SPEC7}, ClusterSpec(n_machines=1), WL
            )

    def test_infeasible_cluster_raises(self):
        specs = {m: MODEL_SPECS["llama-70b"] for m in ("actor", "critic", "reference", "reward")}
        with pytest.raises(RuntimeError, match="no feasible"):
            map_dataflow(AlgoType.PPO, specs, ClusterSpec(n_machines=1), WL)

    def test_describe_and_pool_lookup(self):
        specs = {m: SPEC7 for m in ("actor", "critic", "reference", "reward")}
        result = map_dataflow(AlgoType.PPO, specs, ClusterSpec(n_machines=1), WL)
        assert "cost=" in result.describe()
        assert result.pool_of("actor") == "set0"
        with pytest.raises(KeyError):
            result.pool_of("ghost")
