"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["throughput", "--model", "gpt-5"])

    def test_defaults(self):
        args = build_parser().parse_args(["map"])
        args2 = build_parser().parse_args(["throughput"])
        assert args.model == args2.model == "llama-7b"
        assert args.machines == 2


class TestCommands:
    def test_throughput(self, capsys):
        assert main(["throughput", "--model", "llama-7b", "--machines", "1"]) == 0
        out = capsys.readouterr().out
        assert "HybridFlow" in out
        assert "speedup vs" in out

    def test_map(self, capsys):
        assert main(["map", "--model", "llama-7b", "--machines", "1"]) == 0
        out = capsys.readouterr().out
        assert "best mapping" in out
        assert "throughput" in out

    def test_map_remax(self, capsys):
        assert main(
            ["map", "--model", "llama-7b", "--machines", "1", "--algo", "remax"]
        ) == 0
        out = capsys.readouterr().out
        assert "critic" not in out

    def test_transition(self, capsys):
        assert main(
            [
                "transition",
                "--model",
                "llama-13b",
                "--tp",
                "8",
                "--dp",
                "2",
                "--gen-tp",
                "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "hybridflow " in out or "hybridflow  " in out
        assert "redundant= 0.00 GB" in out

    def test_sweep_gen(self, capsys):
        assert main(["sweep-gen", "--model", "llama-13b"]) == 0
        out = capsys.readouterr().out
        assert "best generation TP size" in out
        assert "t_g=8" in out

    def test_custom_workload(self, capsys):
        assert main(
            [
                "throughput",
                "--model",
                "llama-7b",
                "--machines",
                "1",
                "--batch",
                "512",
                "--prompt-length",
                "512",
                "--response-length",
                "512",
            ]
        ) == 0
        assert "512/512 tokens" in capsys.readouterr().out


class TestMapHetero:
    def test_default_zones(self, capsys):
        assert main(["map-hetero", "--model", "llama-7b"]) == 0
        out = capsys.readouterr().out
        assert "heterogeneous mapping" in out
        assert "zone" in out

    def test_bad_zone_spec(self, capsys):
        assert main(["map-hetero", "--zone", "nonsense"]) == 2
        assert "bad --zone" in capsys.readouterr().err

    def test_unknown_gpu(self, capsys):
        assert main(["map-hetero", "--zone", "z:TPU-v5:1"]) == 2


class TestFaults:
    def test_device_kill_recovers(self, capsys):
        assert main(
            [
                "faults",
                "--iterations",
                "2",
                "--kill-device",
                "0",
                "--at-step",
                "5",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "recovery: 1 failure(s)" in out
        assert "device loss" in out
        assert "goodput vs checkpoint interval" in out
        assert "Young optimal interval" in out

    def test_no_faults_clean_run(self, capsys):
        assert main(["faults", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "recovery: 0 failure(s)" in out


class TestServe:
    def test_matched_workload_cross_checks_against_analytic_model(self, capsys):
        assert main(["serve", "--requests", "12"]) == 0
        out = capsys.readouterr().out
        assert "slot utilisation" in out
        assert "static wave batching" in out
        assert "analytic cross-check" in out
        assert "[ok]" in out
        assert "MISMATCH" not in out

    def test_bursty_prioritised_run_with_slos(self, capsys):
        assert main(
            [
                "serve",
                "--requests",
                "10",
                "--eos",
                "0",
                "--arrival-rate",
                "0.5",
                "--priority-levels",
                "3",
                "--slo-ttft",
                "0.5",
                "--slo-latency",
                "1.0",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "SLO attainment" in out
        assert "eos=" in out

    def test_tight_blocks_force_preemption(self, capsys):
        assert main(
            [
                "serve",
                "--requests",
                "8",
                "--prompt-length",
                "6",
                "--mean-response",
                "8",
                "--max-response",
                "12",
                "--slots",
                "4",
                "--block-size",
                "4",
                "--blocks",
                "9",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "preemptions          : 0" not in out
        assert "tokens recomputed" in out

    def test_rejects_bad_priority_levels(self, capsys):
        assert main(["serve", "--priority-levels", "0"]) == 2


class TestCheckCommand:
    def test_sharding_and_races_passes_run(self, capsys):
        assert main(["check", "--skip", "lint", "--skip", "dataflow"]) == 0
        out = capsys.readouterr().out
        assert "geometry_cross_checks" in out
        assert "zero_configs" in out
        assert "repro check passed" in out

    def test_format_json_emits_report_on_stdout(self, capsys):
        import json as json_mod

        assert main(
            [
                "check",
                "--format",
                "json",
                "--skip",
                "lint",
                "--skip",
                "dataflow",
                "--skip",
                "trace",
                "--skip",
                "races",
            ]
        ) == 0
        captured = capsys.readouterr()
        doc = json_mod.loads(captured.out)
        assert doc["name"] == "repro check"
        assert doc["n_errors"] == 0
        assert "findings" in doc
        # human summary moved to stderr
        assert "repro check passed" in captured.err

    def test_json_flag_is_an_alias(self, capsys):
        import json as json_mod

        assert main(
            ["check", "--json", "--skip", "lint", "--skip", "dataflow",
             "--skip", "trace", "--skip", "races"]
        ) == 0
        doc = json_mod.loads(capsys.readouterr().out)
        assert doc["name"] == "repro check"

    def test_models_pass_explores_protocols_and_writes_report(
        self, capsys, tmp_path
    ):
        import json as json_mod

        mc_path = tmp_path / "mc_report.json"
        assert main(
            [
                "check",
                "--strict",
                "--models",
                "--mc-report",
                str(mc_path),
                "--skip",
                "lint",
                "--skip",
                "dataflow",
                "--skip",
                "sharding",
                "--skip",
                "trace",
                "--skip",
                "races",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "mc_models" in out
        assert "repro check passed" in out
        doc = json_mod.loads(mc_path.read_text())
        assert doc["max_depth"] == 400
        assert sum(m["states"] for m in doc["models"]) >= 10_000
        assert all(m["counterexamples"] == [] for m in doc["models"])

    def test_mc_budget_flags_are_forwarded(self, capsys, tmp_path):
        import json as json_mod

        mc_path = tmp_path / "mc_small.json"
        main(
            [
                "check",
                "--models",
                "--mc-states",
                "50",
                "--mc-report",
                str(mc_path),
                "--skip",
                "lint",
                "--skip",
                "dataflow",
                "--skip",
                "sharding",
                "--skip",
                "trace",
                "--skip",
                "races",
            ]
        )
        capsys.readouterr()
        doc = json_mod.loads(mc_path.read_text())
        assert doc["max_states"] == 50
        assert any(m["truncated"] for m in doc["models"])
        assert all(m["states"] <= 51 for m in doc["models"])

    def test_failure_line_lists_family_counts(self, capsys, tmp_path):
        # lint a file with a seeded violation: non-zero exit and the summary
        # names the failing rule family with its count
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        assert main(
            [
                "check",
                str(bad),
                "--skip",
                "dataflow",
                "--skip",
                "sharding",
                "--skip",
                "trace",
                "--skip",
                "races",
            ]
        ) == 1
        err = capsys.readouterr().err
        assert "repro check FAILED [RL3xx=1]" in err


class TestBenchCommand:
    """`repro bench` — perf-trajectory record, check gate, fleet compare."""

    WL = ["--workload", "sequential_generate"]

    def test_update_then_check_roundtrip(self, capsys, tmp_path):
        baseline = tmp_path / "BENCH_perf.json"
        assert main(["bench", "--update", "--baseline", str(baseline),
                     *self.WL]) == 0
        assert baseline.exists()
        capsys.readouterr()
        assert main(["bench", "--check", "--baseline", str(baseline),
                     *self.WL]) == 0
        out = capsys.readouterr().out
        assert "sequential_generate" in out
        assert "sampler_speedup" in out

    def test_check_without_baseline_exits_2(self, capsys, tmp_path):
        assert main(["bench", "--check", "--baseline",
                     str(tmp_path / "missing.json"), *self.WL]) == 2
        assert "no baseline" in capsys.readouterr().err.lower()

    def test_check_fails_on_regression(self, capsys, tmp_path):
        import json

        baseline = tmp_path / "BENCH_perf.json"
        assert main(["bench", "--update", "--baseline", str(baseline),
                     *self.WL]) == 0
        doc = json.loads(baseline.read_text())
        doc["workloads"]["sequential_generate"]["metrics"]["tokens"][
            "value"
        ] = 1
        baseline.write_text(json.dumps(doc))
        capsys.readouterr()
        assert main(["bench", "--check", "--baseline", str(baseline),
                     *self.WL]) == 1
        assert "tokens" in capsys.readouterr().err

    def test_unknown_workload_exits_2(self, capsys):
        assert main(["bench", "--workload", "bogus"]) == 2
        assert "unknown" in capsys.readouterr().err.lower()

    def test_out_writes_record(self, tmp_path):
        import json

        out = tmp_path / "rec.json"
        assert main(["bench", "--out", str(out), *self.WL]) == 0
        doc = json.loads(out.read_text())
        assert "sequential_generate" in doc["workloads"]

    def test_async_overlap_workload(self, capsys, tmp_path):
        baseline = tmp_path / "BENCH_perf.json"
        wl = ["--workload", "async_ppo_overlap"]
        assert main(["bench", "--update", "--baseline", str(baseline),
                     *wl]) == 0
        out = capsys.readouterr().out
        assert "overlap_speedup" in out
        assert "staleness0_bit_exact" in out
        assert main(["bench", "--check", "--baseline", str(baseline),
                     *wl]) == 0

    def test_fleet_compare_mode(self, capsys, tmp_path):
        import json

        rec = {
            "benchmark": "fleet_chaos", "jobs": 3, "cluster_gpus": 16,
            "devices_killed": 8, "all_completed": True, "ok": True,
            "goodput_mean": 0.8, "analysis_findings": {},
        }
        current = tmp_path / "cur.json"
        baseline = tmp_path / "base.json"
        current.write_text(json.dumps(rec))
        baseline.write_text(json.dumps(rec))
        assert main(["bench", "--check", "--fleet",
                     "--current", str(current),
                     "--baseline", str(baseline)]) == 0
        capsys.readouterr()
        bad = dict(rec, jobs=5)
        current.write_text(json.dumps(bad))
        assert main(["bench", "--check", "--fleet",
                     "--current", str(current),
                     "--baseline", str(baseline)]) == 1
        assert "jobs" in capsys.readouterr().err


class TestPipelineCommand:
    """`repro pipeline` — the async one-step-off gate."""

    def test_default_run_passes_self_check(self, capsys):
        assert main(["pipeline", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "bit-exact with synchronous run_step" in out
        assert "staleness_window=1" in out
        assert "speedup" in out

    def test_trace_gate_runs_race_detector(self, capsys, tmp_path):
        trace = tmp_path / "async.json"
        assert main(
            ["pipeline", "--iterations", "2", "--trace", str(trace)]
        ) == 0
        out = capsys.readouterr().out
        assert trace.exists()
        assert "race detector: overlapped schedule is clean" in out

    def test_staleness_zero_is_allowed(self, capsys):
        assert main(["pipeline", "--staleness", "0",
                     "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "max_staleness_seen=0" in out
