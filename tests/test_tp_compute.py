"""Tests that tensor-parallel arithmetic matches the unsharded computation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm.groups import ProcessGroup, TrafficMeter
from repro.parallel.tp_compute import (
    column_parallel_linear,
    parallel_mlp,
    row_parallel_linear,
    vocab_parallel_log_softmax,
    vocab_parallel_logits,
)


def group_of(n, meter=None):
    return ProcessGroup(list(range(n)), name="tp", meter=meter)


def split(w, n, axis):
    return np.split(w, n, axis=axis)


class TestColumnParallel:
    @settings(max_examples=20, deadline=None)
    @given(
        tp=st.sampled_from([1, 2, 4]),
        rows=st.integers(1, 5),
        seed=st.integers(0, 99),
    )
    def test_matches_dense_matmul(self, tp, rows, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(rows, 6))
        w = rng.normal(size=(6, 8))
        outs = column_parallel_linear(x, split(w, tp, 1), group_of(tp))
        for out in outs:
            np.testing.assert_allclose(out, x @ w, atol=1e-12)

    def test_no_gather_returns_slices(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 4))
        w = rng.normal(size=(4, 8))
        slices = column_parallel_linear(
            x, split(w, 2, 1), group_of(2), gather_output=False
        )
        np.testing.assert_allclose(np.concatenate(slices, axis=-1), x @ w)

    def test_shard_count_validated(self):
        with pytest.raises(ValueError, match="one weight shard"):
            column_parallel_linear(np.zeros((1, 2)), [np.zeros((2, 2))], group_of(2))


class TestRowParallel:
    @settings(max_examples=20, deadline=None)
    @given(
        tp=st.sampled_from([1, 2, 4]),
        rows=st.integers(1, 5),
        seed=st.integers(0, 99),
    )
    def test_matches_dense_matmul(self, tp, rows, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(rows, 8))
        w = rng.normal(size=(8, 5))
        outs = row_parallel_linear(
            split(x, tp, 1), split(w, tp, 0), group_of(tp)
        )
        for out in outs:
            np.testing.assert_allclose(out, x @ w, atol=1e-12)

    def test_input_shard_count_validated(self):
        with pytest.raises(ValueError, match="input shard"):
            row_parallel_linear(
                [np.zeros((1, 2))], split(np.zeros((4, 3)), 2, 0), group_of(2)
            )


class TestParallelMlp:
    def test_matches_dense_mlp(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(3, 6))
        w_up = rng.normal(size=(6, 12))
        w_down = rng.normal(size=(12, 6))
        expected = np.maximum(x @ w_up, 0.0) @ w_down
        outs = parallel_mlp(
            x, split(w_up, 4, 1), split(w_down, 4, 0), group_of(4)
        )
        for out in outs:
            np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_one_allreduce_per_block(self):
        """The Megatron pairing needs exactly one all-reduce (plus nothing
        else) — the count the analytical TP cost model charges."""
        meter = TrafficMeter()
        g = group_of(2, meter)
        rng = np.random.default_rng(2)
        parallel_mlp(
            rng.normal(size=(2, 4)),
            split(rng.normal(size=(4, 8)), 2, 1),
            split(rng.normal(size=(8, 4)), 2, 0),
            g,
        )
        snapshot = {op: v for (_g, op), v in meter.snapshot().items()}
        assert set(snapshot) == {"all_reduce"}


class TestVocabParallel:
    def test_logits_match_dense(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 4))
        head = rng.normal(size=(4, 12))
        outs = vocab_parallel_logits(x, split(head, 3, 1), group_of(3))
        for out in outs:
            np.testing.assert_allclose(out, x @ head, atol=1e-12)

    @settings(max_examples=15, deadline=None)
    @given(tp=st.sampled_from([1, 2, 4]), seed=st.integers(0, 50))
    def test_distributed_log_softmax_exact(self, tp, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(3, 5)) * 3
        head = rng.normal(size=(5, 8)) * 2
        logits = x @ head
        shifted = logits - logits.max(axis=-1, keepdims=True)
        expected = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        outs = vocab_parallel_log_softmax(x, split(head, tp, 1), group_of(tp))
        for out in outs:
            np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_log_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(2, 4))
        head = rng.normal(size=(4, 10))
        out = vocab_parallel_log_softmax(x, split(head, 2, 1), group_of(2))[0]
        np.testing.assert_allclose(np.exp(out).sum(axis=-1), 1.0, atol=1e-12)
