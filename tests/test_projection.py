"""Tests for projecting functional traces onto full-scale timing."""

import pytest

from repro.config import (
    MODEL_SPECS,
    ClusterSpec,
    GenParallelConfig,
    ParallelConfig,
    RlhfWorkload,
)
from repro.data.dataset import PromptDataset, SyntheticPreferenceTask
from repro.models.tinylm import TinyLMConfig
from repro.rlhf.core import AlgoType
from repro.runtime import ModelAssignment, PlacementPlan, build_rlhf_system
from repro.runtime.projection import perf_duration_fn, project_timeline

CFG = TinyLMConfig(
    n_layers=2,
    hidden_size=32,
    n_heads=4,
    ffn_hidden_size=48,
    vocab_size=16,
    max_seq_len=32,
)
TASK = SyntheticPreferenceTask(vocab_size=16)
PAR = ParallelConfig(1, 2, 1)
GEN = GenParallelConfig.derive(PAR, 1, 1)


def run_system(split: bool):
    if split:
        plan = PlacementPlan(
            pools={"a": 2, "c": 2, "r": 1},
            assignments={
                "actor": ModelAssignment("a", PAR, GEN),
                "reference": ModelAssignment("a", PAR),
                "critic": ModelAssignment("c", PAR),
                "reward": ModelAssignment("r", ParallelConfig(1, 1, 1)),
            },
        )
    else:
        plan = PlacementPlan(
            pools={"a": 2, "r": 1},
            assignments={
                "actor": ModelAssignment("a", PAR, GEN),
                "reference": ModelAssignment("a", PAR),
                "critic": ModelAssignment("a", PAR),
                "reward": ModelAssignment("r", ParallelConfig(1, 1, 1)),
            },
        )
    system = build_rlhf_system(
        AlgoType.PPO, plan, CFG, reward_fn=TASK.reward, max_new_tokens=5
    )
    system.trainer.train(PromptDataset(32, 4, 16, seed=1), 1, 8)
    return system


SPECS = {m: MODEL_SPECS["llama-7b"] for m in ("actor", "critic", "reference")}
WL = RlhfWorkload()
CLUSTER = ClusterSpec(n_machines=2)


class TestProjection:
    def test_generation_dominates_projected_iteration(self):
        system = run_system(split=False)
        timeline = project_timeline(system, SPECS, WL, CLUSTER, gen_tp=1)
        gen_events = [
            e for e in timeline.events if e.name.endswith("generate_sequences")
        ]
        assert gen_events[0].duration > max(
            e.duration
            for e in timeline.events
            if e.name.endswith("compute_values")
        )
        assert timeline.makespan > 0

    def test_split_projection_overlaps_critic(self):
        colocated = project_timeline(
            run_system(split=False), SPECS, WL, CLUSTER, gen_tp=1
        )
        split = project_timeline(
            run_system(split=True), SPECS, WL, CLUSTER, gen_tp=1
        )
        assert split.makespan < colocated.makespan

    def test_non_nn_workers_are_near_free(self):
        system = run_system(split=False)
        fn = perf_duration_fn(system, SPECS, WL, CLUSTER)
        reward_record = next(
            r for r in system.controller.trace if r.group == "reward"
        )
        assert fn(reward_record) == pytest.approx(0.01)

    def test_bigger_model_projects_slower(self):
        system = run_system(split=False)
        small = project_timeline(system, SPECS, WL, CLUSTER, gen_tp=1)
        big_specs = {m: MODEL_SPECS["llama-13b"] for m in SPECS}
        big = project_timeline(system, big_specs, WL, CLUSTER, gen_tp=2)
        assert big.makespan > small.makespan

    def test_update_duration_scales_with_minibatches(self):
        system = run_system(split=False)
        fn8 = perf_duration_fn(system, SPECS, WL, CLUSTER)
        wl1 = RlhfWorkload(ppo_updates_per_epoch=1)
        fn1 = perf_duration_fn(system, SPECS, wl1, CLUSTER)
        update = next(
            r for r in system.controller.trace if r.method == "update_actor"
        )
        assert fn1(update) > fn8(update)
