"""Tests for functional collectives and the analytical cost model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import collectives as C
from repro.comm.cost import (
    all_gather_time,
    all_gather_volume_per_rank,
    all_reduce_time,
    all_reduce_volume_per_rank,
    broadcast_time,
    group_bandwidth,
    p2p_time,
    reduce_scatter_volume_per_rank,
)
from repro.comm.groups import GroupCache, ProcessGroup, TrafficMeter
from repro.config import ClusterSpec


def group_of(n, meter=None):
    return ProcessGroup(list(range(n)), name="g", meter=meter)


class TestProcessGroup:
    def test_group_rank_lookup(self):
        g = ProcessGroup([4, 2, 9])
        assert g.group_rank_of(9) == 2
        assert g.contains(2)
        with pytest.raises(ValueError):
            g.group_rank_of(5)

    def test_rejects_duplicates_and_empty(self):
        with pytest.raises(ValueError):
            ProcessGroup([1, 1])
        with pytest.raises(ValueError):
            ProcessGroup([])


class TestCollectives:
    def test_all_gather_concatenates_in_rank_order(self):
        g = group_of(3)
        shards = [np.full((2,), i) for i in range(3)]
        out = C.all_gather(shards, g)
        expected = np.array([0, 0, 1, 1, 2, 2])
        for o in out:
            np.testing.assert_array_equal(o, expected)

    def test_all_gather_outputs_do_not_alias(self):
        g = group_of(2)
        out = C.all_gather([np.zeros(2), np.ones(2)], g)
        out[0][0] = 99
        assert out[1][0] == 0

    def test_all_reduce_ops(self):
        g = group_of(2)
        a, b = np.array([1.0, 5.0]), np.array([3.0, 1.0])
        assert np.allclose(C.all_reduce([a, b], g, "sum")[0], [4, 6])
        assert np.allclose(C.all_reduce([a, b], g, "mean")[1], [2, 3])
        assert np.allclose(C.all_reduce([a, b], g, "max")[0], [3, 5])
        assert np.allclose(C.all_reduce([a, b], g, "min")[0], [1, 1])

    def test_all_reduce_rejects_bad_op_and_shapes(self):
        g = group_of(2)
        with pytest.raises(ValueError, match="unsupported"):
            C.all_reduce([np.zeros(2), np.zeros(2)], g, "prod")
        with pytest.raises(ValueError, match="mismatched"):
            C.all_reduce([np.zeros(2), np.zeros(3)], g)

    def test_reduce_scatter_inverse_of_gather(self):
        g = group_of(2)
        tensors = [np.arange(4.0), np.arange(4.0) * 10]
        out = C.reduce_scatter(tensors, g)
        np.testing.assert_allclose(out[0], [0.0, 11.0])
        np.testing.assert_allclose(out[1], [22.0, 33.0])

    def test_reduce_scatter_rejects_indivisible(self):
        g = group_of(2)
        with pytest.raises(ValueError, match="not divisible"):
            C.reduce_scatter([np.zeros(3), np.zeros(3)], g)

    def test_broadcast_and_scatter(self):
        g = group_of(3)
        out = C.broadcast(np.array([7.0]), g)
        assert all(o[0] == 7.0 for o in out)
        chunks = [np.array([i]) for i in range(3)]
        out = C.scatter(chunks, g)
        assert [o[0] for o in out] == [0, 1, 2]

    def test_gather_only_root_receives(self):
        g = group_of(3)
        out = C.gather([np.array([i]) for i in range(3)], g, root_group_rank=1)
        assert out[0] == [] and out[2] == []
        assert [x[0] for x in out[1]] == [0, 1, 2]

    def test_all_to_all_transpose(self):
        g = group_of(2)
        send = [[np.array([0]), np.array([1])], [np.array([10]), np.array([11])]]
        out = C.all_to_all(send, g)
        assert out[0][0] == 0 and out[0][1] == 10
        assert out[1][0] == 1 and out[1][1] == 11

    def test_wrong_input_count_raises(self):
        g = group_of(3)
        with pytest.raises(ValueError, match="expected 3"):
            C.all_gather([np.zeros(1)], g)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(2, 5),
        size=st.integers(1, 8),
        seed=st.integers(0, 1000),
    )
    def test_all_reduce_sum_matches_numpy(self, n, size, seed):
        rng = np.random.default_rng(seed)
        tensors = [rng.normal(size=size) for _ in range(n)]
        out = C.all_reduce(tensors, group_of(n), "sum")
        expected = np.sum(tensors, axis=0)
        for o in out:
            np.testing.assert_allclose(o, expected)

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(1, 5), rows=st.integers(1, 4), seed=st.integers(0, 99))
    def test_gather_scatter_roundtrip(self, n, rows, seed):
        """all_gather then re-split returns the original shards."""
        rng = np.random.default_rng(seed)
        shards = [rng.normal(size=(rows, 3)) for _ in range(n)]
        gathered = C.all_gather(shards, group_of(n))[0]
        for i, shard in enumerate(np.split(gathered, n, axis=0)):
            np.testing.assert_allclose(shard, shards[i])


class TestTrafficMeter:
    def test_all_gather_traffic_matches_formula(self):
        meter = TrafficMeter()
        g = group_of(4, meter)
        shards = [np.zeros(10, dtype=np.float64) for _ in range(4)]
        C.all_gather(shards, g)
        total_payload = 4 * 10 * 8
        per_rank = 3 * total_payload // 4
        assert meter.bytes_for("g", "all_gather") == per_rank * 4
        assert meter.bytes_for_rank(0) == per_rank

    def test_single_rank_groups_move_nothing(self):
        meter = TrafficMeter()
        g = group_of(1, meter)
        C.all_reduce([np.zeros(100)], g)
        C.broadcast(np.zeros(100), g)
        assert meter.total_bytes() == 0

    def test_reset(self):
        meter = TrafficMeter()
        g = group_of(2, meter)
        C.broadcast(np.zeros(10), g)
        meter.reset()
        assert meter.total_bytes() == 0


class TestCostModel:
    def test_ring_volume_formulas(self):
        assert all_gather_volume_per_rank(100, 4) == 75.0
        assert reduce_scatter_volume_per_rank(100, 4) == 75.0
        assert all_reduce_volume_per_rank(100, 4) == 150.0
        assert all_gather_volume_per_rank(100, 1) == 0.0

    def test_intra_machine_bandwidth(self):
        cluster = ClusterSpec()
        assert group_bandwidth(cluster, [0, 1, 2]) == cluster.intra_node_bandwidth

    def test_cross_machine_bandwidth_shared_by_local_ranks(self):
        cluster = ClusterSpec()
        # 8 ranks on machine 0 and 8 on machine 1 share each NIC
        ranks = list(range(16))
        assert group_bandwidth(cluster, ranks) == cluster.inter_node_bandwidth / 8

    def test_times_scale_with_volume(self):
        cluster = ClusterSpec()
        small = all_gather_time(10**9, cluster, [0, 1])
        large = all_gather_time(10**10, cluster, [0, 1])
        assert large > small
        assert all_reduce_time(10**9, cluster, [0, 1]) > small

    def test_broadcast_and_p2p(self):
        cluster = ClusterSpec()
        assert broadcast_time(10**9, cluster, [0]) == 0.0
        assert p2p_time(10**9, cluster, 0, 0) == 0.0
        intra = p2p_time(10**9, cluster, 0, 1)
        inter = p2p_time(10**9, cluster, 0, 8)
        assert inter > intra > 0


class TestGroupCache:
    """Memoized process-group construction for the topology hot path."""

    def test_hit_skips_rebuild_and_thunk(self):
        cache = GroupCache()
        calls = []

        def ranks():
            calls.append(1)
            return [0, 1, 2, 3]

        first = cache.get_or_build("tp", ranks)
        second = cache.get_or_build("tp", ranks)
        assert second is first
        assert len(calls) == 1  # rank thunk not re-evaluated on a hit
        assert cache.stats() == {"size": 1, "hits": 1, "misses": 1}

    def test_distinct_names_build_distinct_groups(self):
        cache = GroupCache()
        tp = cache.get_or_build("tp", lambda: [0, 1])
        dp = cache.get_or_build("dp", lambda: [0, 2])
        assert tp is not dp
        assert len(cache) == 2
        assert sorted(dp.ranks) == [0, 2]

    def test_meter_attached_on_build(self):
        meter = TrafficMeter()
        cache = GroupCache()
        group = cache.get_or_build("tp", lambda: [0, 1], meter=meter)
        assert group.meter is meter

    def test_clear_resets(self):
        cache = GroupCache()
        cache.get_or_build("tp", lambda: [0, 1])
        cache.clear()
        assert cache.stats() == {"size": 0, "hits": 0, "misses": 0}


class TestTopologyGroupCaching:
    def test_repeated_group_lookups_are_cached(self):
        from repro.config import ParallelConfig
        from repro.parallel.topology import ParallelTopology

        topo = ParallelTopology(ParallelConfig(2, 2, 2))
        a = topo.tp_group(0)
        b = topo.tp_group(0)
        assert b is a
        assert topo.group_cache.stats()["hits"] >= 1
