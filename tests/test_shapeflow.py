"""SF7xx symbolic shape/dtype flow: clean shipped graphs, one-mutant-per-rule
witnesses, protocol transfer functions vs real dispatches, and the runtime
shape recorder cross-validated against the static inference."""

import numpy as np
import pytest

from repro.analysis import (
    SF_MUTATIONS,
    SF_RULES,
    ContractError,
    DataflowChecker,
    Dim,
    ProbeGroup,
    ShapeFlowChecker,
    ShapeRecorder,
    parse_contract,
    predict_protocol_shapes,
    predict_system_outputs,
    shape_cross_validate,
    shape_seeded_mutants,
    shipped_graph_reports,
)
from repro.config import GenParallelConfig, ParallelConfig
from repro.data.batch import DataBatch
from repro.data.dataset import PromptDataset
from repro.models.tinylm import TinyLMConfig
from repro.rlhf.core import AlgoType
from repro.runtime import ModelAssignment, PlacementPlan, build_rlhf_system
from repro.single_controller.decorator import (
    registered_shape_contract,
    shape_contract,
)
from repro.single_controller.protocols import TRANSFER_PROTOCOLS, get_protocol

LM_CFG = TinyLMConfig(
    n_layers=2,
    hidden_size=32,
    n_heads=4,
    ffn_hidden_size=48,
    vocab_size=16,
    max_seq_len=32,
)


def tiny_plan():
    par = ParallelConfig(pp=1, tp=2, dp=1)
    return PlacementPlan(
        pools={"main": 2, "r": 1},
        assignments={
            "actor": ModelAssignment(
                "main", par, GenParallelConfig.derive(par, 1, 1)
            ),
            "critic": ModelAssignment("main", par),
            "reference": ModelAssignment("main", par),
            "reward": ModelAssignment("r", ParallelConfig(1, 1, 1)),
        },
    )


def build_tiny_system(**kwargs):
    par = ParallelConfig(pp=1, tp=2, dp=1)
    gen = GenParallelConfig.derive(par, 1, 1)
    plan = PlacementPlan(
        pools={"main": 2},
        assignments={
            m: ModelAssignment("main", par, gen if m == "actor" else None)
            for m in ("actor", "critic", "reference", "reward")
        },
    )
    return build_rlhf_system(
        AlgoType.PPO, plan, LM_CFG, max_new_tokens=8, lr=5e-3, **kwargs
    )


# ---------------------------------------------------------------------------
# Dim algebra
# ---------------------------------------------------------------------------


class TestDim:
    def test_constants_fold(self):
        assert (Dim.const(2) + Dim.const(3)).const_value() == 5
        assert (Dim.const(2) * 3).const_value() == 6
        assert Dim.const(0).render() == "0"

    def test_symbolic_algebra(self):
        B = Dim.sym("B")
        assert (B + 2).render() == "2+B"
        assert (B * 4).over(2) == B * 2
        assert (B * Dim.sym("G")).render() == "B*G"

    def test_subst_and_const_value(self):
        B = Dim.sym("B")
        assert (B * 4 + 1).subst({"B": 3}) == 13
        assert (B * 4).subst({}) is None
        assert B.const_value() is None
        # a half-row chunk is not an integer under odd B
        assert Dim.const(7).over(2).const_value() is None

    def test_divisibility_is_tristate(self):
        B = Dim.sym("B")
        assert Dim.const(8).divisible_by(2) is True
        assert Dim.const(7).divisible_by(2) is False
        assert B.divisible_by(2) is None  # deferred, not refuted
        assert (B * 4).divisible_by(2) is True

    def test_immutable_and_hashable(self):
        B = Dim.sym("B")
        with pytest.raises(AttributeError):
            B.terms = ()
        assert hash(B + 1) == hash(Dim.const(1) + B)


# ---------------------------------------------------------------------------
# contract parsing + decorator round-trip
# ---------------------------------------------------------------------------


class TestContracts:
    def test_parse_roundtrip(self):
        c = parse_contract(
            {
                "inputs": {"sequences": "B,L:int64"},
                "outputs": {"?response_mask": "B,R"},
                "returns": "batch",
            }
        )
        assert c.inputs[0].dtype == "int64"
        assert c.outputs[0].optional and c.outputs[0].dtype == "float64"

    def test_unknown_dtype_is_contract_error(self):
        with pytest.raises(ContractError):
            parse_contract({"inputs": {"x": "B:float16"}})

    def test_unknown_symbol_is_contract_error(self):
        with pytest.raises(ContractError):
            parse_contract({"inputs": {"x": "B,Q"}})

    def test_metrics_method_declares_no_outputs(self):
        with pytest.raises(ContractError):
            parse_contract({"outputs": {"x": "B"}, "returns": "metrics"})

    def test_decorator_attribute_survives_register(self):
        from repro.workers.actor import ActorWorker

        raw = registered_shape_contract(ActorWorker.generate_sequences)
        assert raw is not None
        contract = parse_contract(raw)
        names = [spec.name for spec in contract.outputs]
        assert "sequences" in names and "old_log_probs" in names

    def test_decorator_standalone(self):
        @shape_contract(inputs={"tokens": "B,T:int64"}, returns="metrics")
        def method(self, batch):
            return {}

        assert registered_shape_contract(method)["returns"] == "metrics"

    def test_all_shipped_contracts_parse(self):
        from repro.analysis import registered_methods
        from repro.runtime.builder import _WORKER_CLASSES

        seen = 0
        for cls in set(_WORKER_CLASSES.values()):
            for method_name, _proto in registered_methods(cls):
                raw = registered_shape_contract(getattr(cls, method_name))
                assert raw is not None, f"{cls.__name__}.{method_name}"
                parse_contract(raw)
                seen += 1
        assert seen >= 10


# ---------------------------------------------------------------------------
# protocol transfer functions vs real split/collect
# ---------------------------------------------------------------------------

# one topology per protocol satisfying its ProtocolRequires
PROTOCOL_TOPOLOGIES = {
    "one_to_all": (ParallelConfig(pp=1, tp=2, dp=2), None),
    "one_to_one": (ParallelConfig(pp=1, tp=1, dp=1), None),
    "3d_proto": (ParallelConfig(pp=1, tp=2, dp=2), None),
    "3d_all_micro_dp": (ParallelConfig(pp=1, tp=2, dp=2), (1, 1)),
    "3d_pp_only": (ParallelConfig(pp=2, tp=2, dp=1), None),
    "pp_as_dp": (ParallelConfig(pp=2, tp=1, dp=2), None),
    "dp_proto": (ParallelConfig(pp=1, tp=1, dp=4), None),
    "all_to_all": (ParallelConfig(pp=1, tp=2, dp=2), None),
}


def _probe(name):
    par, gen_spec = PROTOCOL_TOPOLOGIES[name]
    gen = (
        GenParallelConfig.derive(par, *gen_spec)
        if gen_spec is not None
        else None
    )
    return par, gen, ProbeGroup(par, gen)


def _payload(batch):
    return DataBatch(
        {
            "x": np.arange(batch * 3, dtype=np.float64).reshape(batch, 3),
            "t": np.arange(batch, dtype=np.int64),
        },
        meta={"prompt_length": 2},
    )


class TestProtocolTransferFunctions:
    def test_every_shipped_protocol_has_a_topology(self):
        # other test modules may register scratch protocols; only require
        # that every shipped protocol is covered here
        assert PROTOCOL_TOPOLOGIES.keys() <= TRANSFER_PROTOCOLS.keys()
        assert len(PROTOCOL_TOPOLOGIES) == 8

    @pytest.mark.parametrize("name", sorted(PROTOCOL_TOPOLOGIES))
    def test_prediction_matches_real_dispatch(self, name):
        par, gen, group = _probe(name)
        proto = get_protocol(name)
        rng = np.random.default_rng(11)
        for _ in range(4):
            degree = proto.requires.split_degree(par, gen) or 1
            batch = degree * int(rng.integers(1, 5))
            pred = predict_protocol_shapes(
                name, par, gen_config=gen, batch_size=batch
            )
            if name == "all_to_all":
                arg = [_payload(batch) for _ in range(group.world_size)]
            else:
                arg = _payload(batch)
            calls = proto.distribute(group, (arg,), {})
            outputs = [args[0] for args, _kwargs in calls]
            collected = proto.collect(group, outputs)

            if pred["per_rank_rows"] is not None:
                assert all(
                    o.batch_size == pred["per_rank_rows"] for o in outputs
                )
            if pred["collect"] == "merge":
                assert isinstance(collected, DataBatch)
                assert collected.batch_size == pred["collected_rows"]
                # the central invariant: collect restores the full batch,
                # in order — symbolic shapes are protocol-invariant
                np.testing.assert_array_equal(
                    collected["x"], _payload(batch)["x"]
                )
                assert collected["t"].dtype == np.int64
            elif pred["collect"] == "list":
                assert isinstance(collected, list)
                assert len(collected) == pred["n_collected"]
            else:  # single
                assert isinstance(collected, DataBatch)
                assert collected.batch_size == pred["collected_rows"]

    def test_indivisible_batch_is_predicted_none(self):
        par, gen, _group = _probe("dp_proto")
        pred = predict_protocol_shapes("dp_proto", par, batch_size=7)
        assert pred["degree"] == 4
        assert pred["per_rank_rows"] is None


# ---------------------------------------------------------------------------
# shipped graphs + seeded mutants
# ---------------------------------------------------------------------------


class TestShippedGraphs:
    def test_all_shipped_graphs_are_clean(self):
        reports = shipped_graph_reports()
        names = [name for name, _ in reports]
        assert names == [
            "shapeflow[tiny-ppo]",
            "shapeflow[grpo]",
            "shapeflow[serving-ppo]",
            "shapeflow[async-pipeline]",
            "shapeflow[transition]",
        ]
        for name, report in reports:
            assert report.findings == [], f"{name}: {report.findings}"
            assert sum(report.checked.values()) > 0, name

    def test_each_mutant_witnesses_exactly_its_rule(self):
        mutants = shape_seeded_mutants()
        assert sorted(SF_MUTATIONS.values()) == sorted(
            rule for _checker, rule in mutants
        )
        assert set(SF_MUTATIONS.values()) == set(SF_RULES)
        for checker, expected in mutants:
            report = checker.check_shipped()
            rules = set(f.rule for f in report.findings)
            assert rules == {expected}, (
                f"mutant {checker.mutate!r} produced {sorted(rules)}, "
                f"expected exactly {{{expected}}}"
            )

    def test_transition_grid_is_clean_directly(self):
        from repro.parallel.topology import (
            GenGroupingMode,
            GenTopology,
            ParallelTopology,
        )

        par = ParallelConfig(pp=1, tp=8, dp=2)
        topo = ParallelTopology(par)
        checker = ShapeFlowChecker()
        for mode in (GenGroupingMode.HYBRIDFLOW, GenGroupingMode.VANILLA):
            gen = GenTopology(topo, GenParallelConfig.derive(par, 1, 2), mode)
            report = checker.check_transition(gen)
            assert report.findings == []
            assert report.checked["transition_tiles"] > 0


# ---------------------------------------------------------------------------
# crafted misconfigurations
# ---------------------------------------------------------------------------


class TestCraftedMisconfigurations:
    def test_indivisible_batch_is_sf703(self):
        report = ShapeFlowChecker(global_batch_size=7).check_plan(
            AlgoType.PPO,
            tiny_plan(),
            function_rewards=("reward",),
            prompt_length=4,
            max_new_tokens=6,
            max_seq_len=32,
        )
        assert {f.rule for f in report.findings} == {"SF703"}

    def test_context_overflow_is_sf705(self):
        report = ShapeFlowChecker(global_batch_size=8).check_plan(
            AlgoType.PPO,
            tiny_plan(),
            function_rewards=("reward",),
            prompt_length=20,
            max_new_tokens=20,
            max_seq_len=32,
        )
        assert {f.rule for f in report.findings} == {"SF705"}

    def test_symbolic_batch_defers_divisibility(self):
        report = ShapeFlowChecker().check_plan(
            AlgoType.PPO,
            tiny_plan(),
            function_rewards=("reward",),
            prompt_length=4,
            max_new_tokens=6,
            max_seq_len=32,
        )
        assert report.findings == []
        assert report.checked.get("deferred_batch_splits", 0) > 0


# ---------------------------------------------------------------------------
# DF102 deferral for serving-backed actors (dataflow satellite)
# ---------------------------------------------------------------------------


class TestServingDeferral:
    def test_serving_actor_defers_df102_to_sf703(self):
        system = build_tiny_system(use_serving=True)
        report = DataflowChecker(global_batch_size=7).check_system(system)
        assert report.by_rule("DF102") == []
        assert report.checked.get("deferred_batch_splits", 0) > 0
        # the symbolic pass picks the divisibility violation up instead,
        # with the serving-specific pad-up hint
        sf = ShapeFlowChecker(global_batch_size=7).check_system(system)
        sf703 = sf.by_rule("SF703")
        assert sf703, [f.rule for f in sf.findings]
        assert any("pad" in f.hint for f in sf703)

    def test_plain_actor_still_gets_df102(self):
        system = build_tiny_system(use_serving=False)
        report = DataflowChecker(global_batch_size=7).check_system(system)
        assert [f.rule for f in report.by_rule("DF102")] == ["DF102"]


# ---------------------------------------------------------------------------
# runtime recorder cross-validation
# ---------------------------------------------------------------------------


class TestRuntimeCrossValidation:
    def test_real_run_matches_static_inference(self):
        system = build_tiny_system()
        recorder = ShapeRecorder()
        system.controller.shape_recorder = recorder
        dataset = PromptDataset(
            n_prompts=16, prompt_length=4, vocab_size=16, seed=1
        )
        system.trainer.train(dataset, 2, 8)
        predictions = predict_system_outputs(
            system, batch_size=8, prompt_length=4
        )
        assert predictions, "static inference produced no predictions"
        report = shape_cross_validate(recorder, predictions)
        assert report.findings == [], [f.message for f in report.findings]
        assert report.checked["recorded_samples"] > 0

    def test_recorder_skips_metrics_results(self):
        recorder = ShapeRecorder()
        recorder.record("actor", "update_actor", {"loss": 0.5})
        assert recorder.skipped == 1
        assert recorder.samples == {}

    def test_cross_validate_flags_shape_drift(self):
        recorder = ShapeRecorder()
        recorder.record(
            "actor",
            "generate_sequences",
            DataBatch(
                {"sequences": np.zeros((8, 9), dtype=np.int64)},
                meta={"prompt_length": 4},
            ),
        )
        predictions = {
            ("actor", "generate_sequences"): {"sequences": ((8, 12), "int64")}
        }
        report = shape_cross_validate(recorder, predictions)
        assert {f.rule for f in report.findings} == {"SF701"}

    def test_cross_validate_flags_dtype_family_drift(self):
        recorder = ShapeRecorder()
        recorder.record(
            "critic",
            "compute_values",
            DataBatch(
                {"values": np.zeros((4, 6), dtype=np.float64)},
                meta={"prompt_length": 4},
            ),
        )
        predictions = {
            ("critic", "compute_values"): {"values": ((4, 6), "int64")}
        }
        report = shape_cross_validate(recorder, predictions)
        assert {f.rule for f in report.findings} == {"SF704"}
