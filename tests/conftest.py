"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ClusterSpec, GenParallelConfig, ParallelConfig
from repro.models.tinylm import TinyLMConfig


@pytest.fixture
def tiny_lm_config() -> TinyLMConfig:
    return TinyLMConfig(
        n_layers=2,
        hidden_size=32,
        n_heads=4,
        ffn_hidden_size=48,
        vocab_size=32,
        max_seq_len=32,
    )


@pytest.fixture
def tiny_scalar_config(tiny_lm_config) -> TinyLMConfig:
    import dataclasses

    return dataclasses.replace(tiny_lm_config, output_head="scalar")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture
def small_cluster_spec() -> ClusterSpec:
    return ClusterSpec(n_machines=1, gpus_per_machine=8)


def make_plan(n_gpus: int, parallel: ParallelConfig, gen: GenParallelConfig):
    """A colocated placement plan for the standard PPO model set."""
    from repro.runtime.placement import PlacementPlan

    models = ["actor", "critic", "reference", "reward"]
    return PlacementPlan.colocate(
        models, n_gpus, {m: parallel for m in models}, gen_parallel=gen
    )


def build_small_ppo(
    tiny_lm_config,
    parallel=ParallelConfig(pp=1, tp=2, dp=2),
    gen_tp=1,
    gen_pp=1,
    reward_fn=None,
    **kwargs,
):
    """A ready 4-GPU PPO system on the tiny model."""
    from repro.rlhf.core import AlgoType
    from repro.runtime import build_rlhf_system
    from repro.runtime.placement import ModelAssignment, PlacementPlan

    gen = GenParallelConfig.derive(parallel, gen_pp, gen_tp)
    if reward_fn is None:
        plan = make_plan(parallel.world_size, parallel, gen)
    else:
        # non-NN reward functions run on a single rank (one_to_one protocol)
        plan = PlacementPlan(
            pools={"main": parallel.world_size, "reward_pool": 1},
            assignments={
                "actor": ModelAssignment("main", parallel, gen),
                "critic": ModelAssignment("main", parallel),
                "reference": ModelAssignment("main", parallel),
                "reward": ModelAssignment(
                    "reward_pool", ParallelConfig(pp=1, tp=1, dp=1)
                ),
            },
        )
    return build_rlhf_system(
        AlgoType.PPO,
        plan,
        tiny_lm_config,
        reward_fn=reward_fn,
        max_new_tokens=kwargs.pop("max_new_tokens", 6),
        **kwargs,
    )
