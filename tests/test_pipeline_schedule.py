"""Tests for the pipeline schedule analysis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.perf.pipeline import (
    bubble_fraction,
    bubble_multiplier,
    gpipe_schedule,
    peak_in_flight_microbatches,
)


class TestBubbleFormulas:
    def test_no_pipeline_no_bubble(self):
        assert bubble_fraction(1, 8) == 0.0
        assert bubble_multiplier(1, 8) == 1.0

    def test_classic_values(self):
        assert bubble_fraction(4, 4) == pytest.approx(3 / 7)
        assert bubble_multiplier(4, 8) == pytest.approx(11 / 8)

    def test_more_microbatches_shrink_bubble(self):
        assert bubble_fraction(4, 32) < bubble_fraction(4, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            bubble_fraction(0, 4)
        with pytest.raises(ValueError):
            bubble_multiplier(4, 0)


class TestGpipeSchedule:
    @settings(max_examples=20, deadline=None)
    @given(pp=st.integers(1, 5), m=st.integers(1, 10))
    def test_makespan_matches_closed_form(self, pp, m):
        """GPipe with fwd=bwd=t: makespan = (m + p - 1) * (tf + tb)."""
        schedule = gpipe_schedule(pp, m, fwd_time=1.0, bwd_time=1.0)
        assert schedule.makespan == pytest.approx(2 * (m + pp - 1))

    @settings(max_examples=20, deadline=None)
    @given(pp=st.integers(1, 5), m=st.integers(1, 10))
    def test_observed_bubble_matches_formula(self, pp, m):
        schedule = gpipe_schedule(pp, m, fwd_time=1.0, bwd_time=1.0)
        for stage in range(pp):
            assert schedule.idle_fraction(stage) == pytest.approx(
                bubble_fraction(pp, m)
            )

    def test_every_microbatch_runs_everywhere(self):
        schedule = gpipe_schedule(3, 4)
        assert len(schedule.ops) == 2 * 3 * 4
        fwd = [(o.stage, o.microbatch) for o in schedule.ops if o.kind == "fwd"]
        assert len(set(fwd)) == 12

    def test_forward_dependencies_respected(self):
        schedule = gpipe_schedule(3, 2, fwd_time=1.0)
        by_key = {
            (o.stage, o.microbatch, o.kind): o for o in schedule.ops
        }
        for mb in range(2):
            for s in range(1, 3):
                assert (
                    by_key[(s, mb, "fwd")].start
                    >= by_key[(s - 1, mb, "fwd")].end
                )
                assert (
                    by_key[(s - 1, mb, "bwd")].start
                    >= by_key[(s, mb, "bwd")].end
                )

    def test_stage_never_overlaps_itself(self):
        schedule = gpipe_schedule(4, 6)
        for stage in range(4):
            ops = sorted(
                (o for o in schedule.ops if o.stage == stage),
                key=lambda o: o.start,
            )
            for a, b in zip(ops, ops[1:]):
                assert b.start >= a.end

    def test_gpipe_keeps_all_microbatches_in_flight(self):
        schedule = gpipe_schedule(4, 6)
        assert peak_in_flight_microbatches(schedule, stage=0) == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            gpipe_schedule(0, 4)


class TestConsistencyWithTrainingModel:
    def test_training_latency_uses_the_same_multiplier(self):
        """The perf layer's pipeline factor equals the schedule-derived one."""
        from repro.config import MODEL_SPECS, ClusterSpec, ParallelConfig, RlhfWorkload
        from repro.perf.compute import training_latency

        spec = MODEL_SPECS["llama-7b"]
        cluster = ClusterSpec(n_machines=2)
        wl = RlhfWorkload()
        flat = training_latency(spec, cluster, ParallelConfig(1, 8, 2), wl)
        piped = training_latency(spec, cluster, ParallelConfig(2, 4, 2), wl)
        # with m = batch/dp = 512 microbatches the bubble is ~ (p-1)/m: tiny
        assert piped == pytest.approx(flat, rel=0.15)
