"""Tests for the model workers: outputs, DP semantics, training updates."""

import dataclasses

import numpy as np
import pytest

from repro.config import ClusterSpec, GenParallelConfig, ParallelConfig
from repro.data.batch import DataBatch
from repro.data.dataset import SyntheticPreferenceTask
from repro.models.sharding import gather_full_params
from repro.models.tinylm import TinyLM, TinyLMConfig
from repro.single_controller import SingleController, WorkerGroup
from repro.workers import (
    ActorWorker,
    CostWorker,
    CriticWorker,
    ReferenceWorker,
    RewardFunctionWorker,
    RewardWorker,
)

LM_CFG = TinyLMConfig(
    n_layers=2,
    hidden_size=32,
    n_heads=4,
    ffn_hidden_size=48,
    vocab_size=16,
    max_seq_len=32,
)
SCALAR_CFG = dataclasses.replace(LM_CFG, output_head="scalar")


def make_group(worker_cls, parallel, gen=None, **worker_kwargs):
    controller = SingleController(ClusterSpec(n_machines=1))
    pool = controller.create_pool(parallel.world_size)
    group = WorkerGroup(
        worker_cls,
        pool,
        parallel_config=parallel,
        gen_config=gen,
        controller=controller,
        name=worker_cls.__name__.lower(),
        worker_kwargs=worker_kwargs,
    )
    return controller, group


def actor_group(parallel=ParallelConfig(1, 2, 1), gen_tp=1, gen_pp=1, **kwargs):
    gen = GenParallelConfig.derive(parallel, gen_pp, gen_tp)
    kwargs.setdefault("model_config", LM_CFG)
    kwargs.setdefault("max_new_tokens", 5)
    return make_group(ActorWorker, parallel, gen=gen, **kwargs)


def prompts(batch=4, seq=4, seed=0):
    rng = np.random.default_rng(seed)
    return DataBatch({"prompts": rng.integers(0, 16, size=(batch, seq))})


class TestActorWorker:
    def test_generate_sequences_output(self):
        _, actor = actor_group()
        out = actor.generate_sequences(prompts()).get()
        assert out["sequences"].shape == (4, 9)
        assert out["old_log_probs"].shape == (4, 5)
        assert out.meta["prompt_length"] == 4

    def test_generation_matches_unsharded_model(self):
        """Sharded generation must produce the same result as generating
        straight from the reference single-copy model."""
        from repro.models.sampler import generate

        _, actor = actor_group(parallel=ParallelConfig(1, 2, 1))
        p = prompts()
        out = actor.generate_sequences(p).get()
        # micro_dp=2: rank 0 generates rows 0-1, rank 1 generates rows 2-3,
        # each against the same full weights with its own rng stream
        ref = TinyLM(LM_CFG, seed=0)
        for lead_rank, rows in ((0, slice(0, 2)), (1, slice(2, 4))):
            rng = np.random.default_rng((0, lead_rank, 1))
            expected = generate(
                ref, p["prompts"][rows], 5, temperature=1.0, rng=rng
            )
            np.testing.assert_array_equal(
                out["sequences"][rows], expected.sequences
            )

    def test_generation_splits_across_micro_dp(self):
        _, actor = actor_group(parallel=ParallelConfig(1, 2, 1), gen_tp=1)
        # micro_dp = 2: two generation replicas each take half the batch
        out = actor.generate_sequences(prompts(batch=4)).get()
        assert out["sequences"].shape[0] == 4

    def test_greedy_generation_is_reproducible(self):
        _, actor = actor_group()
        a = actor.generate_sequences(prompts(), do_sample=False).get()
        b = actor.generate_sequences(prompts(), do_sample=False).get()
        np.testing.assert_array_equal(a["sequences"], b["sequences"])

    def test_compute_log_prob_matches_generation(self):
        _, actor = actor_group()
        out = actor.generate_sequences(prompts()).get()
        logp = actor.compute_log_prob(out).get()
        np.testing.assert_allclose(
            logp["log_probs"], out["old_log_probs"], atol=1e-9
        )

    def test_update_actor_changes_weights(self):
        _, actor = actor_group()
        before = {
            k: v.copy() for k, v in actor.workers[0].shard.items()
        }
        out = actor.generate_sequences(prompts()).get()
        out = out.union(actor.compute_log_prob(out).get())
        batch = out.union(
            DataBatch(
                {"advantages": np.ones((4, 5))},
                meta=out.meta,
            )
        )
        metrics = actor.update_actor(batch, loss_func="ppo").get()
        assert "policy_loss" in metrics
        changed = any(
            not np.array_equal(before[k], actor.workers[0].shard[k])
            for k in before
        )
        assert changed

    def test_all_ranks_stay_consistent_after_update(self):
        """After an update, re-gathered weights are identical across DP
        replicas (data parallelism really synchronised)."""
        _, actor = actor_group(parallel=ParallelConfig(1, 2, 2))
        out = actor.generate_sequences(prompts(batch=4)).get()
        out = out.union(actor.compute_log_prob(out).get())
        batch = out.union(
            DataBatch({"advantages": np.ones((4, 5))}, meta=out.meta)
        )
        actor.update_actor(batch, loss_func="ppo").get()
        replica0 = actor.workers[0].materialize_full_state()
        replica1 = actor.workers[2].materialize_full_state()
        for name in replica0:
            np.testing.assert_allclose(replica0[name], replica1[name], atol=1e-12)

    def test_unknown_loss_rejected(self):
        _, actor = actor_group()
        out = actor.generate_sequences(prompts()).get()
        batch = out.union(
            DataBatch({"advantages": np.ones((4, 5))}, meta=out.meta)
        )
        with pytest.raises(ValueError, match="unknown actor loss"):
            actor.update_actor(batch, loss_func="dpo").get()

    def test_compute_loss_pretrain(self):
        _, actor = actor_group()
        pretrain = DataBatch({"tokens": prompts(seq=8)["prompts"]})
        metrics = actor.compute_loss(pretrain).get()
        assert metrics["pretrain_loss"] > 0


class TestCriticWorker:
    def test_compute_values_shape(self):
        _, actor = actor_group()
        out = actor.generate_sequences(prompts()).get()
        _, critic = make_group(
            CriticWorker, ParallelConfig(1, 2, 1), model_config=SCALAR_CFG
        )
        values = critic.compute_values(out).get()
        assert values["values"].shape == (4, 5)

    def test_requires_scalar_head(self):
        with pytest.raises(ValueError, match="scalar"):
            make_group(CriticWorker, ParallelConfig(1, 1, 1), model_config=LM_CFG)

    def test_update_critic_reduces_value_loss(self):
        _, actor = actor_group()
        out = actor.generate_sequences(prompts()).get()
        _, critic = make_group(
            CriticWorker,
            ParallelConfig(1, 2, 1),
            model_config=SCALAR_CFG,
            lr=5e-3,
        )
        batch = out.union(critic.compute_values(out).get())
        returns = np.zeros((4, 5))
        losses = []
        for _ in range(10):
            values = critic.compute_values(batch.select(["sequences"]).union(
                DataBatch({"prompts": batch["prompts"]}, meta=batch.meta)
            )).get()
            train_batch = batch.union(
                DataBatch({"returns": returns}, meta=batch.meta)
            )
            train_batch.tensors["values"] = values["values"]
            metrics = critic.update_critic(train_batch).get()
            losses.append(metrics["value_loss"])
        assert losses[-1] < losses[0]

    def test_unknown_loss_rejected(self):
        _, critic = make_group(
            CriticWorker, ParallelConfig(1, 1, 1), model_config=SCALAR_CFG
        )
        with pytest.raises(ValueError, match="unknown critic loss"):
            critic.update_critic(prompts(), loss_func="bogus").get()


class TestScorers:
    def test_reference_log_probs(self):
        _, actor = actor_group()
        out = actor.generate_sequences(prompts()).get()
        _, ref = make_group(
            ReferenceWorker, ParallelConfig(1, 2, 1), model_config=LM_CFG
        )
        logp = ref.compute_ref_log_prob(out).get()
        assert logp["ref_log_probs"].shape == (4, 5)
        assert (logp["ref_log_probs"] <= 0).all()

    def test_reference_matches_actor_at_init(self):
        """Same seed => the reference equals the actor before any updates."""
        _, actor = actor_group(seed=0)
        out = actor.generate_sequences(prompts()).get()
        _, ref = make_group(
            ReferenceWorker, ParallelConfig(1, 2, 1), model_config=LM_CFG, seed=0
        )
        ref_logp = ref.compute_ref_log_prob(out).get()["ref_log_probs"]
        np.testing.assert_allclose(ref_logp, out["old_log_probs"], atol=1e-9)

    def test_reference_has_no_training_memory(self):
        _, ref = make_group(
            ReferenceWorker, ParallelConfig(1, 1, 1), model_config=LM_CFG
        )
        device = ref.workers[0].ctx.device
        assert device.memory.bytes_for("reference/grads") == 0
        assert device.memory.bytes_for("reference/optim") == 0

    def test_reward_scores(self):
        _, actor = actor_group()
        out = actor.generate_sequences(prompts()).get()
        _, reward = make_group(
            RewardWorker, ParallelConfig(1, 2, 1), model_config=SCALAR_CFG
        )
        scored = reward.compute_reward(out).get()
        assert scored["scores"].shape == (4,)

    def test_cost_worker_columns(self):
        _, actor = actor_group()
        out = actor.generate_sequences(prompts()).get()
        _, cost = make_group(
            CostWorker, ParallelConfig(1, 1, 1), model_config=SCALAR_CFG
        )
        scored = cost.compute_cost(out).get()
        assert scored["costs"].shape == (4,)
        assert scored["cost_values"].shape == (4, 5)

    def test_reward_function_worker(self):
        _, actor = actor_group()
        out = actor.generate_sequences(prompts()).get()
        task = SyntheticPreferenceTask(vocab_size=16, target_token=3)
        controller = SingleController(ClusterSpec(n_machines=1))
        group = WorkerGroup(
            RewardFunctionWorker,
            controller.create_pool(1),
            controller=controller,
            worker_kwargs={"reward_fn": task.reward},
        )
        scored = group.compute_reward(out).get()
        expected = task.reward(out["sequences"][:, 4:])
        np.testing.assert_allclose(scored["scores"], expected)

    def test_reward_function_shape_validated(self):
        _, actor = actor_group()
        out = actor.generate_sequences(prompts()).get()
        controller = SingleController(ClusterSpec(n_machines=1))
        group = WorkerGroup(
            RewardFunctionWorker,
            controller.create_pool(1),
            controller=controller,
            worker_kwargs={"reward_fn": lambda r: np.zeros(99)},
        )
        with pytest.raises(ValueError, match="shape"):
            group.compute_reward(out).get()


class TestShardedStorage:
    def test_worker_shards_reassemble_to_init_model(self):
        _, actor = actor_group(parallel=ParallelConfig(1, 2, 2))
        cfg = actor.train_topology.config
        by_coord = {}
        for w in actor.workers:
            c = w.ctx.coords
            if c.d == 0:
                by_coord[(c.p, c.t)] = w.shard
        full = gather_full_params(by_coord, tp_size=cfg.tp, pp_size=cfg.pp)
        expected = TinyLM(LM_CFG, seed=0).state_dict()
        for name in expected:
            np.testing.assert_array_equal(full[name], expected[name])

    def test_memory_ledger_tracks_shards(self):
        _, actor = actor_group(parallel=ParallelConfig(1, 2, 1))
        for w in actor.workers:
            params = w.ctx.device.memory.bytes_for("actor/params")
            assert params > 0
            assert w.ctx.device.memory.bytes_for("actor/grads") == params
            assert w.ctx.device.memory.bytes_for("actor/optim") == 3 * params

    def test_checkpoint_roundtrip_restores_shards_and_optimizer(self, tmp_path):
        controller, actor = actor_group()
        out = actor.generate_sequences(prompts()).get()
        batch = out.union(
            DataBatch({"advantages": np.ones((4, 5))}, meta=out.meta)
        ).union(actor.compute_log_prob(out).get())
        actor.update_actor(batch, loss_func="ppo").get()
        controller.save_checkpoint(tmp_path / "ck")

        controller2, actor2 = actor_group()
        controller2.load_checkpoint(tmp_path / "ck")
        for w1, w2 in zip(actor.workers, actor2.workers):
            for name in w1.shard:
                np.testing.assert_array_equal(w1.shard[name], w2.shard[name])
        lead2 = actor2.workers[0]
        assert lead2._optimizer is not None
        assert lead2._optimizer.step_count == 1
