"""End-to-end functional tests of the four RLHF algorithm drivers (Figure 6)."""

import numpy as np
import pytest

from repro.config import GenParallelConfig, ParallelConfig
from repro.data.dataset import PromptDataset, SyntheticPreferenceTask
from repro.models.tinylm import TinyLMConfig
from repro.rlhf.core import AlgoType
from repro.rlhf.trainers import TrainerConfig
from repro.runtime import build_rlhf_system
from repro.runtime.placement import ModelAssignment, PlacementPlan

CFG = TinyLMConfig(
    n_layers=2,
    hidden_size=32,
    n_heads=4,
    ffn_hidden_size=48,
    vocab_size=16,
    max_seq_len=32,
)
TASK = SyntheticPreferenceTask(vocab_size=16, target_token=7, unsafe_token=3)


def plan_for(algo: AlgoType, use_reward_fn: bool) -> PlacementPlan:
    par = ParallelConfig(pp=1, tp=2, dp=1)
    gen = GenParallelConfig.derive(par, 1, 1)
    from repro.runtime.builder import required_models

    models = required_models(algo)
    pools = {"main": 2}
    assignments = {}
    for m in models:
        if m == "reward" and use_reward_fn:
            pools["reward_pool"] = 1
            assignments[m] = ModelAssignment(
                "reward_pool", ParallelConfig(1, 1, 1)
            )
        else:
            assignments[m] = ModelAssignment(
                "main", par, gen if m == "actor" else None
            )
    return PlacementPlan(pools=pools, assignments=assignments)


def build(algo, trainer_config=None, reward_fn=TASK.reward, **kwargs):
    return build_rlhf_system(
        algo,
        plan_for(algo, reward_fn is not None),
        CFG,
        trainer_config=trainer_config,
        reward_fn=reward_fn,
        max_new_tokens=8,
        lr=5e-3,
        **kwargs,
    )


def dataset(vocab=16):
    return PromptDataset(n_prompts=128, prompt_length=4, vocab_size=vocab, seed=1)


def learning_curve(system, iters=20, batch=16):
    history = system.trainer.train(dataset(), iters, batch)
    return [h["score_mean"] for h in history]


class TestPPO:
    def test_learns_synthetic_preference(self):
        tc = TrainerConfig(kl_coef=0.01, ppo_epochs=2, updates_per_epoch=2)
        system = build(AlgoType.PPO, tc)
        scores = learning_curve(system, iters=20)
        assert np.mean(scores[-5:]) > np.mean(scores[:5]) + 0.2

    def test_execution_pattern_matches_figure6(self):
        system = build(AlgoType.PPO)
        system.trainer.train(dataset(), 1, 8)
        trace = system.controller.trace_methods()
        assert trace == [
            "actor.generate_sequences",
            "critic.compute_values",
            "reference.compute_ref_log_prob",
            "reward.compute_reward",
            "actor.compute_log_prob",
            "critic.update_critic",
            "actor.update_actor",
        ]

    def test_metrics_present(self):
        system = build(AlgoType.PPO)
        history = system.trainer.train(dataset(), 1, 8)
        h = history[0]
        assert {"score_mean", "actor/policy_loss", "critic/value_loss"} <= set(h)


class TestReMax:
    def test_learns_without_critic(self):
        tc = TrainerConfig(kl_coef=0.01, ppo_epochs=2, updates_per_epoch=2)
        system = build(AlgoType.REMAX, tc)
        assert system.trainer.critic is None
        scores = learning_curve(system, iters=30)
        assert np.mean(scores[-5:]) > np.mean(scores[:5]) + 0.15

    def test_two_generation_passes_per_iteration(self):
        system = build(AlgoType.REMAX)
        system.trainer.train(dataset(), 1, 8)
        trace = system.controller.trace_methods()
        assert trace.count("actor.generate_sequences") == 2
        assert "critic.update_critic" not in trace

    def test_baseline_scores_recorded(self):
        system = build(AlgoType.REMAX)
        history = system.trainer.train(dataset(), 1, 8)
        assert "baseline_score_mean" in history[0]


class TestSafeRLHF:
    def test_runs_with_cost_model_and_lagrange(self):
        tc = TrainerConfig(
            kl_coef=0.01, cost_limit=0.05, lagrange_lr=1.0, updates_per_epoch=2
        )
        system = build(AlgoType.SAFE_RLHF, tc)
        history = system.trainer.train(dataset(), 4, 8)
        assert all("cost_mean" in h for h in history)
        assert system.trainer.lagrange_multiplier >= 0

    def test_lagrange_grows_under_violation(self):
        tc = TrainerConfig(cost_limit=-1.0, lagrange_lr=1.0)  # always violated
        system = build(AlgoType.SAFE_RLHF, tc)
        system.trainer.train(dataset(), 2, 8)
        assert system.trainer.lagrange_multiplier > 0

    def test_extra_stage_calls_match_figure6(self):
        system = build(AlgoType.SAFE_RLHF)
        system.trainer.train(dataset(), 1, 8)
        trace = system.controller.trace_methods()
        assert "cost.compute_cost" in trace
        assert "critic.compute_values" in trace

    def test_pretrain_loss_included_when_dataset_given(self):
        system = build_rlhf_system(
            AlgoType.SAFE_RLHF,
            plan_for(AlgoType.SAFE_RLHF, True),
            CFG,
            reward_fn=TASK.reward,
            pretrain_dataset=dataset(),
            max_new_tokens=8,
        )
        history = system.trainer.train(dataset(), 1, 8)
        assert "pretrain_loss" in history[0]
        assert "actor.compute_loss" in system.controller.trace_methods()

    def test_requires_cost_worker(self):
        from repro.rlhf.trainers import SafeRLHFTrainer

        with pytest.raises(ValueError, match="cost"):
            SafeRLHFTrainer(
                actor=None, reference=None, reward=None, critic=None, cost=None
            )


class TestGRPO:
    def test_learns_with_group_sampling(self):
        tc = TrainerConfig(
            kl_coef=0.005, group_size=4, ppo_epochs=2, updates_per_epoch=2
        )
        system = build(AlgoType.GRPO, tc)
        scores = learning_curve(system, iters=20, batch=8)
        assert np.mean(scores[-5:]) > np.mean(scores[:5]) + 0.15

    def test_batch_is_repeated_by_group_size(self):
        tc = TrainerConfig(group_size=4)
        system = build(AlgoType.GRPO, tc)
        history = system.trainer.train(dataset(), 1, 4)
        assert history  # 4 prompts * 4 samples flowed through

    def test_no_critic_in_dataflow(self):
        system = build(AlgoType.GRPO)
        assert "critic" not in system.groups


class TestDriverErrors:
    def test_indivisible_minibatches_rejected(self):
        tc = TrainerConfig(updates_per_epoch=3)
        system = build(AlgoType.PPO, tc)
        with pytest.raises(ValueError, match="divisible"):
            system.trainer.train(dataset(), 1, 8)
