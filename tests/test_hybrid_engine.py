"""Tests for the 3D-HybridEngine: functional resharding and Table 2 claims."""

from fractions import Fraction

import numpy as np
import pytest

from repro.config import ClusterSpec, GenParallelConfig, ParallelConfig
from repro.hybrid_engine import (
    EngineKind,
    HybridEngine3D,
    clear_plan_cache,
    plan_cache_stats,
    plan_transition,
    transition_overhead,
)
from repro.models.sharding import shard_nbytes, shard_params
from repro.models.tinylm import TinyLM, TinyLMConfig
from repro.parallel.topology import GenGroupingMode
from repro.single_controller import SingleController, WorkerGroup
from repro.workers import ActorWorker

LM_CFG = TinyLMConfig(
    n_layers=4,
    hidden_size=32,
    n_heads=4,
    ffn_hidden_size=48,
    vocab_size=16,
    max_seq_len=32,
)


def actor_group(parallel, gen_tp, gen_pp=1, mode=GenGroupingMode.HYBRIDFLOW):
    controller = SingleController(ClusterSpec(n_machines=2))
    pool = controller.create_pool(parallel.world_size)
    gen = GenParallelConfig.derive(parallel, gen_pp, gen_tp)
    group = WorkerGroup(
        ActorWorker,
        pool,
        parallel_config=parallel,
        gen_config=gen,
        gen_mode=mode,
        controller=controller,
        name="actor",
        worker_kwargs={"model_config": LM_CFG},
    )
    return controller, group


GRIDS = [
    (ParallelConfig(1, 4, 2), 2, 1),  # Figure 8
    (ParallelConfig(1, 4, 1), 1, 1),
    (ParallelConfig(2, 2, 2), 2, 1),
    (ParallelConfig(2, 2, 1), 1, 1),
    (ParallelConfig(4, 2, 1), 2, 2),
]


class TestFunctionalTransition:
    @pytest.mark.parametrize("parallel,gen_tp,gen_pp", GRIDS)
    @pytest.mark.parametrize(
        "mode", [GenGroupingMode.HYBRIDFLOW, GenGroupingMode.VANILLA]
    )
    def test_gen_shards_are_bit_exact(self, parallel, gen_tp, gen_pp, mode):
        """Each rank's generation shard equals the slice of the full model
        that its generation coordinates prescribe — for both groupings."""
        _, group = actor_group(parallel, gen_tp, gen_pp, mode)
        engine = HybridEngine3D(group)
        engine.to_generation()
        full = TinyLM(LM_CFG, seed=0).state_dict()
        gen = group.gen_topology
        for worker in group.workers:
            c = gen.coords(worker.ctx.global_rank)
            expected = shard_params(
                full,
                tp_rank=c.tg,
                tp_size=gen.config.tp,
                pp_rank=c.pg,
                pp_size=gen.config.pp,
                n_layers=LM_CFG.n_layers,
            )
            assert set(worker.gen_shard) == set(expected)
            for name in expected:
                np.testing.assert_array_equal(
                    worker.gen_shard[name], expected[name]
                )

    def test_hybridflow_zero_redundancy_observed(self):
        _, group = actor_group(ParallelConfig(1, 4, 2), gen_tp=2)
        report = HybridEngine3D(group).to_generation()
        assert report.total_redundant_bytes == 0
        for worker in group.workers:
            extra = worker.ctx.device.memory.bytes_for("actor/gen_params_extra")
            gen_bytes = shard_nbytes(worker.gen_shard)
            train_bytes = shard_nbytes(worker.shard)
            # extra allocation is exactly the non-resident part of the shard
            assert extra == gen_bytes - train_bytes

    def test_vanilla_redundancy_observed_on_figure8_ranks(self):
        _, group = actor_group(
            ParallelConfig(1, 4, 2), gen_tp=2, mode=GenGroupingMode.VANILLA
        )
        report = HybridEngine3D(group).to_generation()
        # G2, G3, G6, G7 (0-indexed 1, 2, 5, 6) hold fully-duplicate weights
        for rank in (1, 2, 5, 6):
            assert report.redundant_bytes_per_rank[rank] > 0
        for rank in (0, 3, 4, 7):
            assert report.redundant_bytes_per_rank[rank] == 0

    def test_vanilla_peak_is_full_model(self):
        _, group = actor_group(
            ParallelConfig(1, 4, 1), gen_tp=2, mode=GenGroupingMode.VANILLA
        )
        engine = HybridEngine3D(group)
        report = engine.to_generation()
        full_bytes = sum(
            arr.nbytes for arr in TinyLM(LM_CFG, seed=0).state_dict().values()
        )
        assert report.max_peak_bytes == full_bytes
        # the device ledger saw the transient gather buffer
        for worker in group.workers:
            assert worker.ctx.device.memory.peak_used >= full_bytes

    def test_to_training_frees_generation_memory(self):
        _, group = actor_group(ParallelConfig(1, 4, 1), gen_tp=1)
        engine = HybridEngine3D(group)
        engine.to_generation()
        engine.to_training()
        for worker in group.workers:
            assert not hasattr(worker, "gen_shard")
            assert (
                worker.ctx.device.memory.bytes_for("actor/gen_params_extra") == 0
            )

    def test_double_transition_rejected(self):
        _, group = actor_group(ParallelConfig(1, 2, 1), gen_tp=1)
        engine = HybridEngine3D(group)
        engine.to_generation()
        with pytest.raises(RuntimeError, match="already"):
            engine.to_generation()
        engine.to_training()
        with pytest.raises(RuntimeError, match="not in"):
            engine.to_training()

    def test_requires_gen_topology(self):
        controller = SingleController(ClusterSpec(n_machines=1))
        pool = controller.create_pool(2)
        group = WorkerGroup(
            ActorWorker,
            pool,
            parallel_config=ParallelConfig(1, 2, 1),
            controller=controller,
            worker_kwargs={"model_config": LM_CFG},
        )
        with pytest.raises(ValueError, match="generation topology"):
            HybridEngine3D(group)

    def test_materialize_generation_replica_equals_full_model(self):
        _, group = actor_group(ParallelConfig(1, 4, 1), gen_tp=2)
        engine = HybridEngine3D(group)
        engine.to_generation()
        full = TinyLM(LM_CFG, seed=0).state_dict()
        state = engine.materialize_generation_replica(group.workers[0])
        for name in full:
            np.testing.assert_array_equal(state[name], full[name])

    def test_transition_after_update_carries_new_weights(self):
        """The §5.2 workflow: weights updated in iteration i are what the
        generation stage of iteration i+1 sees."""
        from repro.data.batch import DataBatch

        _, group = actor_group(ParallelConfig(1, 2, 1), gen_tp=1)
        rng = np.random.default_rng(0)
        p = DataBatch({"prompts": rng.integers(0, 16, size=(2, 4))})
        out = group.generate_sequences(p).get()
        resp_len = out["old_log_probs"].shape[1]
        batch = out.union(group.compute_log_prob(out).get()).union(
            DataBatch({"advantages": np.ones((2, resp_len))}, meta=out.meta)
        )
        group.update_actor(batch, loss_func="ppo").get()
        engine = group.hybrid_engine
        engine.to_generation()
        updated = group.workers[0].materialize_full_state()
        state = engine.materialize_generation_replica(group.workers[0])
        for name in state:
            np.testing.assert_array_equal(state[name], updated[name])
        engine.to_training()


class TestCommVolumeMatchesTable2:
    @pytest.mark.parametrize("parallel,gen_tp,gen_pp", GRIDS)
    def test_hybridflow_comm_at_most_formula(self, parallel, gen_tp, gen_pp):
        """Observed per-rank all-gather bytes stay within the Table 2 bound.

        The formula assumes an even parameter split across ranks; real
        parameters include replicated norms so per-rank bytes vary slightly —
        the observed maximum must stay within a small factor of the bound.
        """
        _, group = actor_group(parallel, gen_tp, gen_pp)
        report = HybridEngine3D(group).to_generation()
        gen = GenParallelConfig.derive(parallel, gen_pp, gen_tp)
        bound = transition_overhead(
            EngineKind.HYBRIDFLOW, parallel, gen
        ).comm_bytes(sum(
            arr.nbytes for arr in TinyLM(LM_CFG, seed=0).state_dict().values()
        ))
        if gen.micro_dp == 1:
            assert report.max_comm_bytes == 0
        else:
            assert report.max_comm_bytes <= bound * 1.6
            assert report.max_comm_bytes > 0


class TestOverheadAlgebra:
    def setup_method(self):
        self.train = ParallelConfig(pp=1, tp=8, dp=2)
        self.gen = GenParallelConfig.derive(self.train, 1, 2)

    def test_ds_chat_row(self):
        o = transition_overhead(EngineKind.DS_CHAT, self.train, self.gen)
        assert o.comm_fraction == Fraction(15, 16)
        assert o.peak_memory_fraction == 1
        assert o.redundancy_fraction == Fraction(1, 16)

    def test_hybridflow_v_row(self):
        o = transition_overhead(EngineKind.HYBRIDFLOW_V, self.train, self.gen)
        assert o.comm_fraction == Fraction(7, 8)
        assert o.peak_memory_fraction == 1
        assert o.redundancy_fraction == Fraction(1, 8)

    def test_hybridflow_row(self):
        o = transition_overhead(EngineKind.HYBRIDFLOW, self.train, self.gen)
        # (tp - tg*pg) / (tg*pg*tp) with tp=8, tg*pg=2 -> 6/16 = 3/8
        assert o.comm_fraction == Fraction(3, 8)
        assert o.peak_memory_fraction == Fraction(1, 2)
        assert o.redundancy_fraction == 0

    def test_hybridflow_strictly_dominates(self):
        for gen_tp in (1, 2, 4, 8):
            gen = GenParallelConfig.derive(self.train, 1, gen_tp)
            hf = transition_overhead(EngineKind.HYBRIDFLOW, self.train, gen)
            v = transition_overhead(EngineKind.HYBRIDFLOW_V, self.train, gen)
            ds = transition_overhead(EngineKind.DS_CHAT, self.train, gen)
            assert hf.comm_fraction <= v.comm_fraction <= ds.comm_fraction
            assert hf.peak_memory_fraction <= v.peak_memory_fraction
            assert hf.redundancy_fraction <= v.redundancy_fraction

    def test_identity_config_costs_nothing(self):
        gen = GenParallelConfig.derive(self.train, 1, 8)
        o = transition_overhead(EngineKind.HYBRIDFLOW, self.train, gen)
        assert o.comm_fraction == 0
        assert o.redundancy_fraction == 0

    def test_bytes_helpers(self):
        o = transition_overhead(EngineKind.HYBRIDFLOW, self.train, self.gen)
        assert o.comm_bytes(16) == 6.0
        assert o.peak_memory_bytes(16) == 8.0
        assert o.redundancy_bytes(16) == 0.0

    def test_invalid_gen_size_rejected(self):
        bad = GenParallelConfig(pp=1, tp=3, micro_dp=1)
        with pytest.raises(ValueError):
            transition_overhead(EngineKind.HYBRIDFLOW, self.train, bad)


class TestPlanCache:
    """``plan_transition`` memoizes on (mode, gen cfg, train cfg, ranks)."""

    def setup_method(self):
        clear_plan_cache()

    def test_repeat_topology_hits_cache(self):
        _, group = actor_group(ParallelConfig(1, 4, 2), gen_tp=2)
        first = plan_transition(group.gen_topology)
        stats = plan_cache_stats()
        assert stats == {"hits": 0, "misses": 1, "size": 1}
        second = plan_transition(group.gen_topology)
        assert second is first
        assert plan_cache_stats()["hits"] == 1

    def test_distinct_topologies_miss(self):
        _, a = actor_group(ParallelConfig(1, 4, 2), gen_tp=2)
        _, b = actor_group(ParallelConfig(1, 4, 1), gen_tp=1)
        plan_transition(a.gen_topology)
        plan_transition(b.gen_topology)
        stats = plan_cache_stats()
        assert stats["misses"] == 2
        assert stats["hits"] == 0

    def test_grouping_mode_is_part_of_the_key(self):
        _, hf = actor_group(ParallelConfig(2, 2, 2), gen_tp=2)
        _, vanilla = actor_group(
            ParallelConfig(2, 2, 2), gen_tp=2, mode=GenGroupingMode.VANILLA
        )
        plan_transition(hf.gen_topology)
        plan_transition(vanilla.gen_topology)
        assert plan_cache_stats()["misses"] == 2

    def test_clear_resets(self):
        _, group = actor_group(ParallelConfig(1, 4, 1), gen_tp=1)
        plan_transition(group.gen_topology)
        clear_plan_cache()
        assert plan_cache_stats() == {"hits": 0, "misses": 0, "size": 0}


class TestRemoteMethodCache:
    """WorkerGroup memoizes RemoteMethod handles per method name."""

    def test_handle_identity_across_lookups(self):
        _, group = actor_group(ParallelConfig(1, 4, 2), gen_tp=2)
        assert group.generate_sequences is group.generate_sequences

    def test_cache_cleared_on_topology_change(self):
        _, group = actor_group(ParallelConfig(1, 4, 2), gen_tp=2)
        before = group.generate_sequences
        group.set_gen_topology(
            GenParallelConfig.derive(ParallelConfig(1, 4, 2), 1, 1),
            GenGroupingMode.HYBRIDFLOW,
        )
        assert group.generate_sequences is not before
