"""Tests for sampling and auto-regressive generation."""

import numpy as np
import pytest

from repro.models.sampler import GenerationOutput, generate, sample_tokens
from repro.models.tinylm import TinyLM, TinyLMConfig


@pytest.fixture
def model():
    return TinyLM(
        TinyLMConfig(
            n_layers=2,
            hidden_size=16,
            n_heads=2,
            ffn_hidden_size=24,
            vocab_size=13,
            max_seq_len=24,
        ),
        seed=4,
    )


class TestSampleTokens:
    def test_greedy_is_argmax(self):
        logits = np.array([[0.0, 5.0, 1.0], [9.0, 0.0, 0.0]])
        out = sample_tokens(logits, np.random.default_rng(0), greedy=True)
        np.testing.assert_array_equal(out, [1, 0])

    def test_sampling_respects_distribution(self):
        logits = np.array([[10.0, -10.0, -10.0]])
        rng = np.random.default_rng(0)
        draws = [sample_tokens(logits, rng)[0] for _ in range(50)]
        assert all(d == 0 for d in draws)

    def test_low_temperature_approaches_greedy(self):
        rng = np.random.default_rng(0)
        logits = np.array([[1.0, 2.0, 0.5]])
        draws = {
            sample_tokens(logits, rng, temperature=0.01)[0] for _ in range(20)
        }
        assert draws == {1}

    def test_temperature_must_be_positive(self):
        with pytest.raises(ValueError):
            sample_tokens(np.zeros((1, 3)), np.random.default_rng(0), temperature=0)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            sample_tokens(np.zeros(3), np.random.default_rng(0))


class TestGenerate:
    def test_output_shapes(self, model):
        prompts = np.zeros((3, 4), dtype=int)
        out = generate(model, prompts, max_new_tokens=5, rng=np.random.default_rng(1))
        assert isinstance(out, GenerationOutput)
        assert out.sequences.shape == (3, 9)
        assert out.responses.shape == (3, 5)
        assert out.response_log_probs.shape == (3, 5)
        assert out.prompt_length == 4
        assert out.kv_cache_bytes > 0

    def test_prompt_preserved(self, model):
        rng = np.random.default_rng(2)
        prompts = rng.integers(0, 13, size=(2, 5))
        out = generate(model, prompts, max_new_tokens=3, rng=rng)
        np.testing.assert_array_equal(out.sequences[:, :5], prompts)

    def test_deterministic_by_seed(self, model):
        prompts = np.ones((2, 4), dtype=int)
        a = generate(model, prompts, 6, rng=np.random.default_rng(7))
        b = generate(model, prompts, 6, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a.sequences, b.sequences)

    def test_greedy_is_deterministic_without_rng(self, model):
        prompts = np.ones((2, 4), dtype=int)
        a = generate(model, prompts, 6, greedy=True, rng=np.random.default_rng(1))
        b = generate(model, prompts, 6, greedy=True, rng=np.random.default_rng(2))
        np.testing.assert_array_equal(a.sequences, b.sequences)

    def test_log_probs_match_model(self, model):
        """The sampling log-prob of each generated token must equal the
        model's own log-prob of that token given the prefix."""
        prompts = np.ones((2, 3), dtype=int)
        out = generate(model, prompts, 4, rng=np.random.default_rng(3))
        logp = model.token_log_probs(out.sequences).data
        np.testing.assert_allclose(
            out.response_log_probs, logp[:, out.prompt_length - 1 :], atol=1e-9
        )

    def test_requires_lm_head(self):
        critic = TinyLM(
            TinyLMConfig(
                n_layers=1,
                hidden_size=8,
                n_heads=2,
                ffn_hidden_size=8,
                vocab_size=5,
                max_seq_len=8,
                output_head="scalar",
            )
        )
        with pytest.raises(RuntimeError):
            generate(critic, np.zeros((1, 2), dtype=int), 2)

    def test_validates_arguments(self, model):
        with pytest.raises(ValueError):
            generate(model, np.zeros(4, dtype=int), 2)
        with pytest.raises(ValueError):
            generate(model, np.zeros((1, 2), dtype=int), 0)
