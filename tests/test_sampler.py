"""Tests for sampling and auto-regressive generation."""

import numpy as np
import pytest

from repro.models.sampler import (
    GenerationOutput,
    generate,
    sample_tokens,
    sample_tokens_batch,
    sample_tokens_reference,
)
from repro.models.tinylm import TinyLM, TinyLMConfig


@pytest.fixture
def model():
    return TinyLM(
        TinyLMConfig(
            n_layers=2,
            hidden_size=16,
            n_heads=2,
            ffn_hidden_size=24,
            vocab_size=13,
            max_seq_len=24,
        ),
        seed=4,
    )


class TestSampleTokens:
    def test_greedy_is_argmax(self):
        logits = np.array([[0.0, 5.0, 1.0], [9.0, 0.0, 0.0]])
        out = sample_tokens(logits, np.random.default_rng(0), greedy=True)
        np.testing.assert_array_equal(out, [1, 0])

    def test_sampling_respects_distribution(self):
        logits = np.array([[10.0, -10.0, -10.0]])
        rng = np.random.default_rng(0)
        draws = [sample_tokens(logits, rng)[0] for _ in range(50)]
        assert all(d == 0 for d in draws)

    def test_low_temperature_approaches_greedy(self):
        rng = np.random.default_rng(0)
        logits = np.array([[1.0, 2.0, 0.5]])
        draws = {
            sample_tokens(logits, rng, temperature=0.01)[0] for _ in range(20)
        }
        assert draws == {1}

    def test_temperature_must_be_positive(self):
        with pytest.raises(ValueError):
            sample_tokens(np.zeros((1, 3)), np.random.default_rng(0), temperature=0)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            sample_tokens(np.zeros(3), np.random.default_rng(0))


class TestGenerate:
    def test_output_shapes(self, model):
        prompts = np.zeros((3, 4), dtype=int)
        out = generate(model, prompts, max_new_tokens=5, rng=np.random.default_rng(1))
        assert isinstance(out, GenerationOutput)
        assert out.sequences.shape == (3, 9)
        assert out.responses.shape == (3, 5)
        assert out.response_log_probs.shape == (3, 5)
        assert out.prompt_length == 4
        assert out.kv_cache_bytes > 0

    def test_prompt_preserved(self, model):
        rng = np.random.default_rng(2)
        prompts = rng.integers(0, 13, size=(2, 5))
        out = generate(model, prompts, max_new_tokens=3, rng=rng)
        np.testing.assert_array_equal(out.sequences[:, :5], prompts)

    def test_deterministic_by_seed(self, model):
        prompts = np.ones((2, 4), dtype=int)
        a = generate(model, prompts, 6, rng=np.random.default_rng(7))
        b = generate(model, prompts, 6, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a.sequences, b.sequences)

    def test_greedy_is_deterministic_without_rng(self, model):
        prompts = np.ones((2, 4), dtype=int)
        a = generate(model, prompts, 6, greedy=True, rng=np.random.default_rng(1))
        b = generate(model, prompts, 6, greedy=True, rng=np.random.default_rng(2))
        np.testing.assert_array_equal(a.sequences, b.sequences)

    def test_log_probs_match_model(self, model):
        """The sampling log-prob of each generated token must equal the
        model's own log-prob of that token given the prefix."""
        prompts = np.ones((2, 3), dtype=int)
        out = generate(model, prompts, 4, rng=np.random.default_rng(3))
        logp = model.token_log_probs(out.sequences).data
        np.testing.assert_allclose(
            out.response_log_probs, logp[:, out.prompt_length - 1 :], atol=1e-9
        )

    def test_requires_lm_head(self):
        critic = TinyLM(
            TinyLMConfig(
                n_layers=1,
                hidden_size=8,
                n_heads=2,
                ffn_hidden_size=8,
                vocab_size=5,
                max_seq_len=8,
                output_head="scalar",
            )
        )
        with pytest.raises(RuntimeError):
            generate(critic, np.zeros((1, 2), dtype=int), 2)

    def test_validates_arguments(self, model):
        with pytest.raises(ValueError):
            generate(model, np.zeros(4, dtype=int), 2)
        with pytest.raises(ValueError):
            generate(model, np.zeros((1, 2), dtype=int), 0)


class TestEosTermination:
    def test_mask_marks_eos_and_padding(self, model):
        prompts = np.ones((4, 4), dtype=int)
        out = generate(
            model,
            prompts,
            max_new_tokens=8,
            rng=np.random.default_rng(11),
            eos_token_id=2,
        )
        assert out.response_mask is not None
        assert out.response_mask.shape == out.responses.shape
        for row, mask in zip(out.responses, out.response_mask):
            n = int(mask.sum())
            assert n >= 1
            # contiguous ones then zeros; EOS (if hit) is the last real token
            np.testing.assert_array_equal(
                mask, ([1.0] * n + [0.0] * (8 - n))
            )
            if n < 8:
                assert row[n - 1] == 2
                assert not (row[:n - 1] == 2).any()

    def test_padding_uses_pad_token_and_zero_logp(self, model):
        prompts = np.ones((4, 4), dtype=int)
        out = generate(
            model,
            prompts,
            max_new_tokens=8,
            rng=np.random.default_rng(11),
            eos_token_id=2,
            pad_token_id=0,
        )
        dead = out.response_mask == 0.0
        assert (out.responses[dead] == 0).all()
        assert (out.response_log_probs[dead] == 0.0).all()

    def test_response_lengths_property(self, model):
        prompts = np.ones((3, 4), dtype=int)
        out = generate(
            model,
            prompts,
            max_new_tokens=6,
            rng=np.random.default_rng(12),
            eos_token_id=2,
        )
        np.testing.assert_array_equal(
            out.response_lengths, out.response_mask.sum(axis=1).astype(int)
        )

    def test_no_eos_is_bit_identical_to_legacy_path(self, model):
        # The EOS machinery consumes rng draws in lock-step for finished
        # rows, so running without an EOS token must match the historical
        # output exactly — and carry no mask.
        prompts = np.ones((3, 4), dtype=int)
        legacy = generate(model, prompts, 6, rng=np.random.default_rng(13))
        out = generate(model, prompts, 6, rng=np.random.default_rng(13))
        np.testing.assert_array_equal(legacy.sequences, out.sequences)
        assert out.response_mask is None

    def test_live_rows_unaffected_by_others_finishing(self, model):
        # Greedy decode: a row's tokens before its own EOS must be identical
        # with and without EOS termination enabled (row independence).
        prompts = np.arange(12, dtype=int).reshape(3, 4) % 13
        plain = generate(model, prompts, 8, greedy=True,
                         rng=np.random.default_rng(0))
        eos = generate(model, prompts, 8, greedy=True,
                       rng=np.random.default_rng(0), eos_token_id=2)
        for row in range(3):
            n = int(eos.response_mask[row].sum())
            np.testing.assert_array_equal(
                eos.responses[row, :n], plain.responses[row, :n]
            )

    def test_eos_must_be_in_vocab(self, model):
        with pytest.raises(ValueError):
            generate(
                model, np.ones((1, 2), dtype=int), 2, eos_token_id=13
            )


class TestVectorizedBitExactness:
    """Golden tests: the vectorized sampler vs the historical per-row loop.

    ``sample_tokens`` replaced a per-row ``rng.choice`` loop with one batched
    inverse-CDF pass; these tests pin that the replacement is bit-exact —
    same tokens AND same rng stream consumption — across temperatures,
    shapes, greedy mode, and full EOS/pad generation.
    """

    @pytest.mark.parametrize("temperature", [0.3, 0.7, 1.0, 2.5])
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_matches_reference_across_temperatures(self, temperature, seed):
        logits = np.random.default_rng(seed).normal(size=(16, 29)) * 3.0
        new = sample_tokens(
            logits, np.random.default_rng(seed), temperature=temperature
        )
        old = sample_tokens_reference(
            logits, np.random.default_rng(seed), temperature=temperature
        )
        np.testing.assert_array_equal(new, old)

    def test_rng_stream_stays_in_lockstep(self):
        # After sampling, both generators must sit at the same stream
        # position: their next draws are identical.
        logits = np.random.default_rng(3).normal(size=(8, 13))
        rng_new = np.random.default_rng(42)
        rng_old = np.random.default_rng(42)
        sample_tokens(logits, rng_new)
        sample_tokens_reference(logits, rng_old)
        np.testing.assert_array_equal(rng_new.random(5), rng_old.random(5))

    def test_greedy_matches_reference(self):
        logits = np.random.default_rng(9).normal(size=(6, 11))
        new = sample_tokens(logits, np.random.default_rng(0), greedy=True)
        old = sample_tokens_reference(
            logits, np.random.default_rng(0), greedy=True
        )
        np.testing.assert_array_equal(new, old)

    def test_single_row_batch(self):
        logits = np.random.default_rng(5).normal(size=(1, 13))
        new = sample_tokens(logits, np.random.default_rng(11))
        old = sample_tokens_reference(logits, np.random.default_rng(11))
        np.testing.assert_array_equal(new, old)

    def test_generate_bit_identical_to_reference_sampler(
        self, model, monkeypatch
    ):
        # Full EOS/pad generation with the vectorized sampler must equal the
        # same run with the historical loop swapped in.
        import repro.models.sampler as sampler_mod

        prompts = np.arange(12, dtype=int).reshape(3, 4) % 13
        new = generate(
            model, prompts, 8, rng=np.random.default_rng(21),
            eos_token_id=2, pad_token_id=0,
        )
        monkeypatch.setattr(
            sampler_mod, "sample_tokens", sample_tokens_reference
        )
        old = generate(
            model, prompts, 8, rng=np.random.default_rng(21),
            eos_token_id=2, pad_token_id=0,
        )
        np.testing.assert_array_equal(new.sequences, old.sequences)
        np.testing.assert_array_equal(
            new.response_log_probs, old.response_log_probs
        )
        np.testing.assert_array_equal(new.response_mask, old.response_mask)


class TestSampleTokensBatch:
    """Per-row rng streams for the serving engine's batched decode."""

    def test_equals_per_row_independent_sampling(self):
        logits = np.random.default_rng(2).normal(size=(5, 17))
        rngs = [np.random.default_rng(100 + i) for i in range(5)]
        batched = sample_tokens_batch(logits, rngs, temperature=0.8)
        singles = [
            sample_tokens(
                logits[i : i + 1], np.random.default_rng(100 + i),
                temperature=0.8,
            )[0]
            for i in range(5)
        ]
        np.testing.assert_array_equal(batched, singles)

    def test_each_rng_consumes_exactly_one_draw(self):
        logits = np.random.default_rng(4).normal(size=(3, 7))
        rngs = [np.random.default_rng(i) for i in range(3)]
        controls = [np.random.default_rng(i) for i in range(3)]
        sample_tokens_batch(logits, rngs)
        for rng, control in zip(rngs, controls):
            control.random()  # one scalar uniform per row
            assert rng.random() == control.random()

    def test_greedy_ignores_rngs(self):
        logits = np.array([[0.0, 5.0, 1.0], [9.0, 0.0, 0.0]])
        rngs = [np.random.default_rng(0), np.random.default_rng(1)]
        out = sample_tokens_batch(logits, rngs, greedy=True)
        np.testing.assert_array_equal(out, [1, 0])
        assert rngs[0].random() == np.random.default_rng(0).random()

    def test_rng_count_must_match_rows(self):
        with pytest.raises(ValueError):
            sample_tokens_batch(
                np.zeros((3, 5)), [np.random.default_rng(0)] * 2
            )
