"""Tests for DataBatch and the synthetic datasets."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import DataBatch, PromptDataset, SyntheticPreferenceTask


class TestDataBatch:
    def make(self, n=8):
        return DataBatch(
            {
                "prompts": np.arange(n * 3).reshape(n, 3),
                "scores": np.arange(n, dtype=float),
            },
            meta={"prompt_length": 3},
        )

    def test_batch_size_and_columns(self):
        b = self.make()
        assert len(b) == 8
        assert "prompts" in b and "missing" not in b
        with pytest.raises(KeyError, match="no column"):
            b["missing"]

    def test_rejects_mismatched_batch(self):
        b = self.make()
        with pytest.raises(ValueError, match="batch"):
            b["bad"] = np.zeros(5)

    def test_rejects_scalar_column(self):
        b = self.make()
        with pytest.raises(ValueError):
            b["bad"] = np.float64(3.0)

    def test_chunk_concat_roundtrip(self):
        b = self.make()
        parts = b.chunk(4)
        assert all(len(p) == 2 for p in parts)
        rebuilt = DataBatch.concat(parts)
        np.testing.assert_array_equal(rebuilt["prompts"], b["prompts"])
        assert rebuilt.meta["prompt_length"] == 3

    def test_chunk_indivisible_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            self.make().chunk(3)

    def test_concat_mismatched_columns_rejected(self):
        a = DataBatch({"x": np.zeros(2)})
        b = DataBatch({"y": np.zeros(2)})
        with pytest.raises(ValueError, match="mismatch"):
            DataBatch.concat([a, b])

    def test_union_merges_and_detects_conflicts(self):
        b = self.make()
        extra = DataBatch({"values": np.ones(8)})
        merged = b.union(extra)
        assert set(merged.keys()) == {"prompts", "scores", "values"}
        conflicting = DataBatch({"scores": np.zeros(8)})
        with pytest.raises(ValueError, match="conflict"):
            b.union(conflicting)

    def test_union_allows_identical_overlap(self):
        b = self.make()
        same = DataBatch({"scores": b["scores"].copy()})
        assert "scores" in b.union(same)

    def test_select(self):
        sel = self.make().select(["scores"])
        assert list(sel.keys()) == ["scores"]
        assert sel.meta["prompt_length"] == 3

    def test_repeat_interleaves_rows(self):
        b = DataBatch({"x": np.array([1, 2])})
        r = b.repeat(3)
        np.testing.assert_array_equal(r["x"], [1, 1, 1, 2, 2, 2])

    def test_shuffle_is_permutation(self):
        b = self.make()
        s = b.shuffle(np.random.default_rng(0))
        assert sorted(s["scores"]) == sorted(b["scores"])

    def test_copy_is_deep(self):
        b = self.make()
        c = b.copy()
        c["scores"][0] = 99
        assert b["scores"][0] == 0

    def test_empty_batch_has_no_size(self):
        with pytest.raises(ValueError):
            DataBatch().batch_size

    @settings(max_examples=20, deadline=None)
    @given(n_chunks=st.sampled_from([1, 2, 4, 8]), seed=st.integers(0, 50))
    def test_chunk_concat_identity_property(self, n_chunks, seed):
        rng = np.random.default_rng(seed)
        b = DataBatch({"x": rng.normal(size=(8, 2)), "y": rng.integers(0, 5, 8)})
        rebuilt = DataBatch.concat(b.chunk(n_chunks))
        np.testing.assert_array_equal(rebuilt["x"], b["x"])
        np.testing.assert_array_equal(rebuilt["y"], b["y"])


class TestPromptDataset:
    def test_deterministic_by_seed(self):
        a = PromptDataset(10, 4, 16, seed=3)
        b = PromptDataset(10, 4, 16, seed=3)
        np.testing.assert_array_equal(a.prompts, b.prompts)

    def test_tokens_in_vocab(self):
        ds = PromptDataset(10, 4, 16)
        assert ds.prompts.min() >= 0 and ds.prompts.max() < 16

    def test_batching(self):
        ds = PromptDataset(10, 4, 16)
        batch = ds.batch(2, 3)
        assert batch["prompts"].shape == (3, 4)
        with pytest.raises(IndexError):
            ds.batch(8, 3)

    def test_iter_batches_drops_remainder(self):
        ds = PromptDataset(10, 4, 16)
        batches = list(ds.iter_batches(3))
        assert len(batches) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            PromptDataset(0, 4, 16)
        with pytest.raises(ValueError):
            PromptDataset(4, 4, 1)


class TestSyntheticPreferenceTask:
    def test_reward_is_target_fraction(self):
        task = SyntheticPreferenceTask(vocab_size=8, target_token=2)
        responses = np.array([[2, 2, 0, 0], [2, 2, 2, 2]])
        np.testing.assert_allclose(task.reward(responses), [0.5, 1.0])

    def test_cost_counts_unsafe(self):
        task = SyntheticPreferenceTask(vocab_size=8, unsafe_token=3)
        responses = np.array([[3, 3, 3, 0]])
        np.testing.assert_allclose(task.cost(responses), [0.75])

    def test_token_level_reward_sums_to_sample_reward(self):
        task = SyntheticPreferenceTask(vocab_size=8, target_token=1)
        responses = np.array([[1, 0, 1, 1]])
        np.testing.assert_allclose(
            task.token_level_reward(responses).sum(axis=-1),
            task.reward(responses),
        )

    def test_rejects_tokens_outside_vocab(self):
        with pytest.raises(ValueError):
            SyntheticPreferenceTask(vocab_size=4, target_token=9)
