"""Tests for the continuous-vs-static batching simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import MODEL_SPECS, ClusterSpec
from repro.perf.continuous_batching import (
    continuous_batching_speedup,
    sample_response_lengths,
    serve_continuous,
    serve_static,
)

SPEC = MODEL_SPECS["llama-7b"]
CLUSTER = ClusterSpec(n_machines=1)


class TestSampling:
    def test_lengths_within_bounds(self):
        lengths = sample_response_lengths(100, 64, 256, np.random.default_rng(0))
        assert lengths.min() >= 1 and lengths.max() <= 256

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_response_lengths(0, 64, 256, rng)
        with pytest.raises(ValueError):
            sample_response_lengths(10, 64, 32, rng)


class TestServing:
    def test_equal_lengths_make_disciplines_equal(self):
        """With the paper's fairness control (all lengths equal) the two
        disciplines coincide — which is why §8.1 could enforce it."""
        lengths = [32] * 16
        static = serve_static(lengths, 8, SPEC, CLUSTER)
        continuous = serve_continuous(lengths, 8, SPEC, CLUSTER)
        assert static.n_steps == continuous.n_steps
        assert static.total_time == pytest.approx(continuous.total_time, rel=0.02)

    def test_skewed_lengths_favour_continuous(self):
        lengths = [4] * 15 + [256]
        static = serve_static(lengths, 8, SPEC, CLUSTER)
        continuous = serve_continuous(lengths, 8, SPEC, CLUSTER)
        assert continuous.total_time < static.total_time
        assert continuous.slot_utilisation >= static.slot_utilisation

    def test_all_requests_complete(self):
        lengths = [3, 7, 1, 12, 5]
        result = serve_continuous(lengths, 2, SPEC, CLUSTER)
        # steps must cover the total generated tokens at >= 1 token/step
        assert result.n_steps >= max(lengths)
        assert result.n_steps <= sum(lengths)

    def test_capacity_one_serialises(self):
        lengths = [4, 4]
        result = serve_continuous(lengths, 1, SPEC, CLUSTER)
        assert result.n_steps == 8
        assert result.slot_utilisation == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            serve_static([3], 0, SPEC, CLUSTER)
        with pytest.raises(ValueError):
            serve_continuous([3], 0, SPEC, CLUSTER)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 50),
        capacity=st.sampled_from([4, 8, 16]),
    )
    def test_continuous_never_slower_property(self, seed, capacity):
        rng = np.random.default_rng(seed)
        lengths = sample_response_lengths(32, 32, 128, rng)
        static = serve_static(lengths, capacity, SPEC, CLUSTER)
        continuous = serve_continuous(lengths, capacity, SPEC, CLUSTER)
        assert continuous.total_time <= static.total_time * 1.01


class TestSpeedup:
    def test_realistic_workload_speedup_band(self):
        speedup = continuous_batching_speedup(
            n_requests=64,
            mean_length=64,
            max_length=512,
            capacity=16,
            spec=SPEC,
            cluster=CLUSTER,
        )
        # Orca/vLLM report multi-x gains on skewed lengths
        assert 1.2 < speedup < 20
