"""Tests for the single controller: pools, worker groups, trace, checkpoints."""

import numpy as np
import pytest

from repro.config import ClusterSpec, ParallelConfig
from repro.single_controller import (
    ResourcePool,
    SingleController,
    Worker,
    WorkerGroup,
    register,
)


class CounterWorker(Worker):
    def __init__(self, ctx, start=0):
        super().__init__(ctx)
        self.count = start

    @register(protocol="one_to_all")
    def bump(self):
        self.count += 1
        return self.count

    def state_for_checkpoint(self):
        return {"count": self.count, "arr": np.full(3, self.count, dtype=float)}

    def load_from_checkpoint(self, state):
        self.count = int(state["count"])
        assert state["arr"].shape == (3,)


def controller_with_group(n=2, **kwargs):
    controller = SingleController(ClusterSpec(n_machines=1))
    pool = controller.create_pool(n, name="main")
    group = WorkerGroup(
        CounterWorker, pool, controller=controller, name="counter", **kwargs
    )
    return controller, group


class TestResourcePools:
    def test_pools_do_not_overlap(self):
        controller = SingleController(ClusterSpec(n_machines=1))
        a = controller.create_pool(4, name="a")
        b = controller.create_pool(4, name="b")
        assert not a.overlaps(b)
        assert not a.colocated_with(b)

    def test_duplicate_pool_name_rejected(self):
        controller = SingleController(ClusterSpec(n_machines=1))
        controller.create_pool(1, name="x")
        with pytest.raises(ValueError, match="duplicate"):
            controller.create_pool(1, name="x")

    def test_colocated_groups_share_pool(self):
        controller = SingleController(ClusterSpec(n_machines=1))
        pool = controller.create_pool(2, name="shared")
        g1 = WorkerGroup(CounterWorker, pool, controller=controller, name="g1")
        g2 = WorkerGroup(CounterWorker, pool, controller=controller, name="g2")
        assert pool.worker_groups == [g1, g2]
        assert g1.resource_pool.colocated_with(g2.resource_pool)

    def test_parallel_config_must_match_pool_size(self):
        controller = SingleController(ClusterSpec(n_machines=1))
        pool = controller.create_pool(2)
        with pytest.raises(ValueError, match="devices"):
            WorkerGroup(
                CounterWorker,
                pool,
                parallel_config=ParallelConfig(1, 1, 4),
                controller=controller,
            )


class TestExecutionTrace:
    def test_trace_records_order(self):
        controller, group = controller_with_group()
        group.bump()
        group.bump()
        assert controller.trace_methods() == ["counter.bump", "counter.bump"]
        assert [r.seq for r in controller.trace] == [0, 1]
        controller.reset_trace()
        assert controller.trace == []

    def test_group_lookup(self):
        controller, group = controller_with_group()
        assert controller.group_named("counter") is group
        with pytest.raises(KeyError):
            controller.group_named("nope")


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        controller, group = controller_with_group()
        group.bump()
        group.bump()
        controller.save_checkpoint(tmp_path / "ckpt")

        controller2, group2 = controller_with_group()
        controller2.load_checkpoint(tmp_path / "ckpt")
        assert [w.count for w in group2.workers] == [2, 2]

    def test_missing_group_rejected(self, tmp_path):
        controller, _ = controller_with_group()
        controller.save_checkpoint(tmp_path / "ckpt")
        controller2 = SingleController(ClusterSpec(n_machines=1))
        pool = controller2.create_pool(2)
        WorkerGroup(CounterWorker, pool, controller=controller2, name="other")
        with pytest.raises(ValueError, match="no state"):
            controller2.load_checkpoint(tmp_path / "ckpt")

    def test_rank_count_mismatch_rejected(self, tmp_path):
        controller, _ = controller_with_group(2)
        controller.save_checkpoint(tmp_path / "ckpt")
        controller2, _ = controller_with_group(4)
        with pytest.raises(ValueError, match="rank count"):
            controller2.load_checkpoint(tmp_path / "ckpt")


class TestWorkerContext:
    def test_peer_access(self):
        _, group = controller_with_group(3)
        w0 = group.workers[0]
        assert w0.ctx.peer(2) is group.workers[2]
        with pytest.raises(ValueError):
            w0.ctx.peer(99)

    def test_worker_kwargs_forwarded(self):
        _, group = controller_with_group(2, worker_kwargs={"start": 10})
        assert all(w.count == 10 for w in group.workers)

    def test_gen_topology_absent_by_default(self):
        _, group = controller_with_group(2)
        with pytest.raises(RuntimeError, match="generation topology"):
            group.workers[0].ctx.gen_coords
