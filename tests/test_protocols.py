"""Tests for transfer protocols over a real worker group (Table 3)."""

import numpy as np
import pytest

from repro.config import ClusterSpec, GenParallelConfig, ParallelConfig
from repro.data.batch import DataBatch
from repro.single_controller import (
    DataFuture,
    SingleController,
    Worker,
    WorkerGroup,
    register,
)
from repro.single_controller.protocols import get_protocol, merge_outputs


class EchoWorker(Worker):
    """Records what each rank received; returns rank-tagged output."""

    @register(protocol="one_to_all")
    def broadcasted(self, batch):
        return (self.ctx.global_rank, batch)

    @register(protocol="3d_proto")
    def three_d(self, batch):
        return DataBatch(
            {
                "rows": batch["rows"],
                "rank": np.full(len(batch), self.ctx.global_rank),
            }
        )

    @register(protocol="3d_pp_only")
    def pp_only(self, _batch=None):
        return self.ctx.coords.p

    @register(protocol="pp_as_dp")
    def pp_as_dp_infer(self, batch):
        return DataBatch({"rows": batch["rows"]})

    @register(protocol="dp_proto")
    def dp_compute(self, batch):
        return DataBatch({"rows": batch["rows"] * 10})

    @register(protocol="all_to_all")
    def per_rank(self, value):
        return value + self.ctx.local_rank

    @register(protocol="one_to_all", blocking=False)
    def lazy(self):
        return "done"


def make_group(parallel, cluster_gpus=8, gen_config=None):
    controller = SingleController(ClusterSpec(n_machines=1, gpus_per_machine=cluster_gpus))
    pool = controller.create_pool(parallel.world_size)
    group = WorkerGroup(
        EchoWorker,
        pool,
        parallel_config=parallel,
        gen_config=gen_config,
        controller=controller,
        name="echo",
    )
    return controller, group


def batch_of(n):
    return DataBatch({"rows": np.arange(n)})


class TestOneToAll:
    def test_broadcast_and_collect_all(self):
        _, group = make_group(ParallelConfig(1, 1, 4))
        result = group.broadcasted(batch_of(4)).get()
        assert [r[0] for r in result] == [0, 1, 2, 3]
        # every rank saw the same full batch
        for _rank, batch in result:
            np.testing.assert_array_equal(batch["rows"], np.arange(4))


class Test3DProto:
    def test_dp_split_and_collect_order(self):
        _, group = make_group(ParallelConfig(pp=1, tp=2, dp=2))
        out = group.three_d(batch_of(8)).get()
        # rows reassembled in original order from the DP-rank collect ranks
        np.testing.assert_array_equal(out["rows"], np.arange(8))
        # collected from t=0 rank of each DP group: ranks 0 and 2
        assert set(out["rank"]) == {0, 2}

    def test_all_ranks_of_a_replica_get_same_chunk(self):
        _, group = make_group(ParallelConfig(pp=1, tp=2, dp=2))
        received = group.broadcasted(batch_of(4)).get()
        # one_to_all broadcasts; use three_d path via distribute inspection
        protocol = get_protocol("3d_proto")
        calls = protocol.distribute(group, (batch_of(8),), {})
        chunk0 = calls[0][0][0]["rows"]
        chunk1 = calls[1][0][0]["rows"]
        np.testing.assert_array_equal(chunk0, chunk1)  # same replica
        chunk2 = calls[2][0][0]["rows"]
        assert not np.array_equal(chunk0, chunk2)  # next DP replica
        assert received is not None

    def test_collect_from_last_pp_stage(self):
        _, group = make_group(ParallelConfig(pp=2, tp=1, dp=2))
        out = group.three_d(batch_of(4)).get()
        # collect ranks are p=1,t=0 of each replica: global ranks 1 and 3
        assert set(out["rank"]) == {1, 3}


class Test3DPPOnly:
    def test_one_output_per_pipeline_stage(self):
        _, group = make_group(ParallelConfig(pp=2, tp=2, dp=1))
        out = group.pp_only().get()
        assert out == [0, 1]


class TestPpAsDp:
    def test_fanout_over_pp_and_dp(self):
        _, group = make_group(ParallelConfig(pp=2, tp=1, dp=2))
        out = group.pp_as_dp_infer(batch_of(8)).get()
        np.testing.assert_array_equal(np.sort(out["rows"]), np.arange(8))


class TestDpProto:
    def test_split_and_concat(self):
        _, group = make_group(ParallelConfig(1, 1, 4))
        out = group.dp_compute(batch_of(8)).get()
        np.testing.assert_array_equal(out["rows"], np.arange(8) * 10)

    def test_rejects_non_dp_groups(self):
        _, group = make_group(ParallelConfig(pp=1, tp=2, dp=2))
        with pytest.raises(ValueError, match="pure-DP"):
            group.dp_compute(batch_of(4)).get()


class TestAllToAll:
    def test_per_rank_inputs(self):
        _, group = make_group(ParallelConfig(1, 1, 3))
        out = group.per_rank([10, 20, 30]).get()
        assert out == [10, 21, 32]

    def test_wrong_length_rejected(self):
        _, group = make_group(ParallelConfig(1, 1, 3))
        with pytest.raises(ValueError, match="length 3"):
            group.per_rank([1, 2]).get()


class TestMicroDp:
    def test_distribute_by_generation_dp_rank(self):
        gen = GenParallelConfig(pp=1, tp=1, micro_dp=2)
        _, group = make_group(ParallelConfig(pp=1, tp=2, dp=2), gen_config=gen)
        protocol = get_protocol("3d_all_micro_dp")
        calls = protocol.distribute(group, (batch_of(8),), {})
        # 4 generation replicas -> chunks of 2; rank i's chunk follows its
        # generation DP rank
        chunks = [c[0][0]["rows"] for c in calls]
        np.testing.assert_array_equal(chunks[0], [0, 1])
        np.testing.assert_array_equal(chunks[1], [2, 3])
        np.testing.assert_array_equal(chunks[2], [4, 5])
        np.testing.assert_array_equal(chunks[3], [6, 7])

    def test_requires_gen_topology(self):
        _, group = make_group(ParallelConfig(pp=1, tp=2, dp=2))
        protocol = get_protocol("3d_all_micro_dp")
        with pytest.raises(RuntimeError, match="generation topology"):
            protocol.distribute(group, (batch_of(8),), {})


class TestFutures:
    def test_blocking_call_returns_resolved_future(self):
        _, group = make_group(ParallelConfig(1, 1, 2))
        future = group.broadcasted(batch_of(2))
        assert isinstance(future, DataFuture)
        assert future.resolved

    def test_non_blocking_defers_execution(self):
        controller, group = make_group(ParallelConfig(1, 1, 2))
        future = group.lazy()
        assert not future.resolved
        assert controller.trace == []  # nothing executed yet
        assert future.get() == ["done", "done"]
        assert future.resolved
        assert len(controller.trace) == 1

    def test_future_args_are_unwrapped(self):
        _, group = make_group(ParallelConfig(1, 1, 2))
        wrapped = DataFuture(batch_of(2))
        result = group.broadcasted(wrapped).get()
        np.testing.assert_array_equal(result[0][1]["rows"], [0, 1])

    def test_future_rejects_value_and_thunk(self):
        with pytest.raises(ValueError):
            DataFuture(value=1, thunk=lambda: 2)


class TestMergeOutputs:
    def test_databatch_concat(self):
        parts = [DataBatch({"x": np.array([i])}) for i in range(3)]
        merged = merge_outputs(parts)
        np.testing.assert_array_equal(merged["x"], [0, 1, 2])

    def test_dict_metrics_averaged(self):
        merged = merge_outputs([{"loss": 1.0}, {"loss": 3.0}])
        assert merged["loss"] == 2.0

    def test_none_passthrough(self):
        assert merge_outputs([None, None]) is None
        assert merge_outputs([]) is None

    def test_single_output_passthrough(self):
        assert merge_outputs(["x"]) == "x"

    def test_mixed_returns_list(self):
        assert merge_outputs([1, "a"]) == [1, "a"]

    def test_dict_merge_keeps_keys_missing_from_first_output(self):
        # regression: the merge used to iterate outputs[0]'s keys only, so a
        # metric reported by a later rank (e.g. a lead-rank-only stat)
        # silently vanished
        merged = merge_outputs(
            [{"loss": 1.0}, {"loss": 3.0, "gen_tokens": 12.0}]
        )
        assert merged == {"loss": 2.0, "gen_tokens": 12.0}

    def test_dict_merge_key_order_is_first_seen(self):
        merged = merge_outputs([{"a": 1.0, "b": 2.0}, {"c": 3.0, "a": 5.0}])
        assert list(merged) == ["a", "b", "c"]

    def test_dict_merge_non_numeric_values_collect(self):
        merged = merge_outputs([{"tag": "x"}, {"tag": "y"}])
        assert merged == {"tag": ["x", "y"]}


class TestProtocolRequires:
    """The declarative descriptor both the dispatch gate and the static
    DataflowChecker consume (they must agree by construction)."""

    def test_every_protocol_declares_requires(self):
        for name in (
            "one_to_all", "one_to_one", "3d_proto", "3d_all_micro_dp",
            "3d_pp_only", "pp_as_dp", "dp_proto", "all_to_all",
        ):
            assert get_protocol(name).requires is not None

    def test_single_rank_problem(self):
        requires = get_protocol("one_to_one").requires
        assert requires.single_rank
        kinds = [k for k, _, _ in requires.problems(2, ParallelConfig(1, 1, 2), False)]
        assert kinds == ["single_rank"]
        assert requires.problems(1, ParallelConfig(1, 1, 1), False) == []

    def test_pure_dp_problem(self):
        requires = get_protocol("dp_proto").requires
        problems = requires.problems(4, ParallelConfig(1, 2, 2), False)
        assert [(k, s) for k, s, _ in problems] == [("pure_dp", "error")]

    def test_gen_topology_deferred_to_distribute(self):
        # check_group (the bind-time gate) must NOT raise for a missing
        # generation topology: the HybridEngine installs it after binding
        _, group = make_group(ParallelConfig(pp=1, tp=2, dp=2))
        protocol = get_protocol("3d_all_micro_dp")
        protocol.check_group(group)  # no raise
        assert [
            k for k, _, _ in protocol.validate_shape(
                4, ParallelConfig(1, 2, 2), False
            )
        ] == ["gen_topology"]

    def test_degenerate_shapes_are_warnings(self):
        problems = get_protocol("3d_proto").requires.problems(
            2, ParallelConfig(1, 1, 2), False
        )
        assert [(k, s) for k, s, _ in problems] == [
            ("model_parallel", "warning")
        ]
        problems = get_protocol("3d_pp_only").requires.problems(
            2, ParallelConfig(1, 2, 1), False
        )
        assert [(k, s) for k, s, _ in problems] == [("pipeline", "warning")]

    def test_split_degrees(self):
        par = ParallelConfig(pp=2, tp=2, dp=2)
        gen = GenParallelConfig(pp=1, tp=1, micro_dp=2)
        assert get_protocol("3d_proto").requires.split_degree(par) == 2
        assert (
            get_protocol("3d_all_micro_dp").requires.split_degree(par, gen)
            == 4
        )
        assert get_protocol("pp_as_dp").requires.split_degree(par) == 4
        assert get_protocol("one_to_all").requires.split_degree(par) is None

    def test_bind_time_gate_uses_the_descriptor(self):
        # dp_proto on a non-pure-DP group fails at method bind, before any
        # distribute work happens
        _, group = make_group(ParallelConfig(pp=1, tp=2, dp=2))
        with pytest.raises(ValueError, match="pure-DP"):
            group.dp_compute


class TestRegistration:
    def test_unregistered_method_raises(self):
        _, group = make_group(ParallelConfig(1, 1, 2))
        with pytest.raises(AttributeError, match="no remote method"):
            group.not_a_method

    def test_unknown_protocol_name(self):
        with pytest.raises(KeyError, match="unknown transfer protocol"):
            get_protocol("bogus")

    def test_one_to_one_requires_single_rank(self):
        class OneWorker(Worker):
            @register(protocol="one_to_one")
            def fn(self, x):
                return x * 2

        controller = SingleController(ClusterSpec(n_machines=1))
        group = WorkerGroup(
            OneWorker, controller.create_pool(1), controller=controller
        )
        assert group.fn(21).get() == 42

        group2 = WorkerGroup(
            OneWorker, controller.create_pool(2), controller=controller
        )
        with pytest.raises(ValueError, match="single-rank"):
            group2.fn(21)
