"""Tests for the TinyLM transformer: forward, KV cache, heads, training."""

import dataclasses

import numpy as np
import pytest

from repro.models.adam import Adam
from repro.models.autograd import no_grad
from repro.models.tinylm import KVCache, TinyLM, TinyLMConfig


@pytest.fixture
def config():
    return TinyLMConfig(
        n_layers=2,
        hidden_size=16,
        n_heads=2,
        ffn_hidden_size=24,
        vocab_size=11,
        max_seq_len=16,
    )


@pytest.fixture
def model(config):
    return TinyLM(config, seed=1)


def tokens(config, batch=2, seq=6, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, config.vocab_size, size=(batch, seq))


class TestForward:
    def test_logits_shape(self, model, config):
        out = model.forward(tokens(config))
        assert out.shape == (2, 6, config.vocab_size)

    def test_scalar_head_shape(self, config):
        critic = TinyLM(dataclasses.replace(config, output_head="scalar"))
        out = critic.values(tokens(config))
        assert out.shape == (2, 6)

    def test_causality(self, model, config):
        """Changing a future token must not change earlier logits."""
        ids = tokens(config)
        with no_grad():
            base = model.forward(ids).data
            ids2 = ids.copy()
            ids2[:, -1] = (ids2[:, -1] + 1) % config.vocab_size
            perturbed = model.forward(ids2).data
        np.testing.assert_allclose(base[:, :-1], perturbed[:, :-1])
        assert not np.allclose(base[:, -1], perturbed[:, -1])

    def test_sequence_too_long_rejected(self, model, config):
        with pytest.raises(ValueError, match="max_seq_len"):
            model.forward(np.zeros((1, config.max_seq_len + 1), dtype=int))

    def test_token_ids_must_be_2d(self, model):
        with pytest.raises(ValueError):
            model.forward(np.zeros(4, dtype=int))

    def test_wrong_head_methods_raise(self, model, config):
        with pytest.raises(RuntimeError):
            model.values(tokens(config))
        critic = TinyLM(dataclasses.replace(config, output_head="scalar"))
        with pytest.raises(RuntimeError):
            critic.token_log_probs(tokens(config))


class TestKVCache:
    def test_incremental_matches_full_forward(self, model, config):
        ids = tokens(config, seq=8)
        with no_grad():
            full = model.forward(ids).data
            cache = KVCache(config.n_layers)
            inc = model.forward(ids[:, :3], cache=cache).data
            for t in range(3, 8):
                step = model.forward(ids[:, t : t + 1], cache=cache, pos_offset=t)
                inc = np.concatenate([inc, step.data], axis=1)
        np.testing.assert_allclose(full, inc, atol=1e-10)

    def test_cache_grows_and_reports_bytes(self, model, config):
        cache = KVCache(config.n_layers)
        with no_grad():
            model.forward(tokens(config, seq=4), cache=cache)
        assert cache.seq_len == 4
        # 2 layers * (K + V) * batch 2 * seq 4 * hidden 16 * 8 bytes
        assert cache.nbytes() == 2 * 2 * 2 * 4 * 16 * 8


class TestLogProbs:
    def test_shape_and_range(self, model, config):
        logp = model.token_log_probs(tokens(config)).data
        assert logp.shape == (2, 5)
        assert (logp <= 0).all()

    def test_matches_manual_log_softmax(self, model, config):
        ids = tokens(config)
        with no_grad():
            logits = model.forward(ids[:, :-1]).data
        shifted = logits - logits.max(axis=-1, keepdims=True)
        ref = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        manual = np.take_along_axis(ref, ids[:, 1:, None], axis=-1)[..., 0]
        np.testing.assert_allclose(
            model.token_log_probs(ids).data, manual, atol=1e-10
        )


class TestStateManagement:
    def test_state_dict_roundtrip(self, model, config):
        state = model.state_dict()
        other = TinyLM(config, seed=99)
        other.load_state_dict(state)
        ids = tokens(config)
        np.testing.assert_allclose(
            model.forward(ids).data, other.forward(ids).data
        )

    def test_load_rejects_mismatched_keys(self, model):
        state = model.state_dict()
        del state["embed.weight"]
        with pytest.raises(ValueError, match="missing"):
            model.load_state_dict(state)

    def test_load_rejects_mismatched_shapes(self, model):
        state = model.state_dict()
        state["embed.weight"] = state["embed.weight"][:2]
        with pytest.raises(ValueError, match="shape"):
            model.load_state_dict(state)

    def test_clone_is_independent(self, model, config):
        clone = model.clone()
        ids = tokens(config)
        before = clone.forward(ids).data.copy()
        model.params["embed.weight"].data += 1.0
        np.testing.assert_allclose(clone.forward(ids).data, before)

    def test_param_count_positive_and_matches_bytes(self, model):
        assert model.param_bytes() == model.n_params() * 8


class TestTraining:
    def test_lm_loss_decreases_with_adam(self, model, config):
        ids = tokens(config, batch=4, seq=8, seed=3)
        opt = Adam(model.params, lr=5e-3)
        first = None
        for _ in range(25):
            model.zero_grad()
            loss = -model.token_log_probs(ids).mean()
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < 0.5 * first

    def test_full_gradient_check_one_param(self, model, config):
        """End-to-end finite-difference check through the whole transformer."""
        ids = tokens(config)
        loss = -model.token_log_probs(ids).mean()
        loss.backward()
        name = "layers.1.mlp.w_down"
        p = model.params[name]
        i, j = 2, 3
        eps = 1e-6
        orig = p.data[i, j]
        p.data[i, j] = orig + eps
        up = -model.token_log_probs(ids).mean().item()
        p.data[i, j] = orig - eps
        down = -model.token_log_probs(ids).mean().item()
        p.data[i, j] = orig
        fd = (up - down) / (2 * eps)
        assert abs(p.grad[i, j] - fd) < 1e-6 + 1e-4 * abs(fd)


class TestAdam:
    def test_rejects_bad_lr(self, model):
        with pytest.raises(ValueError):
            Adam(model.params, lr=0.0)

    def test_grad_clipping_bounds_norm(self, model, config):
        opt = Adam(model.params, lr=1e-3, max_grad_norm=0.1)
        loss = -(100.0 * model.token_log_probs(tokens(config))).mean()
        loss.backward()
        assert opt.grad_global_norm() > 0.1
        opt.clip_gradients()
        assert opt.grad_global_norm() <= 0.1 + 1e-9

    def test_state_bytes_counts_both_moments(self, model):
        opt = Adam(model.params, lr=1e-3)
        assert opt.state_bytes() == 2 * model.param_bytes()

    def test_step_skips_params_without_grads(self, model, config):
        opt = Adam(model.params, lr=1e-2)
        before = model.params["embed.weight"].data.copy()
        opt.step()  # no gradients anywhere
        np.testing.assert_allclose(model.params["embed.weight"].data, before)


class TestKVCacheTrimFree:
    def test_trim_keeps_prefix_and_matches_recompute(self, model, config):
        ids = tokens(config, seq=8)
        with no_grad():
            cache = KVCache(config.n_layers)
            model.forward(ids, cache=cache)
            cache.trim(5)
            fresh = KVCache(config.n_layers)
            model.forward(ids[:, :5], cache=fresh)
        assert cache.seq_len == 5
        for k1, v1, k2, v2 in zip(
            cache.keys, cache.values, fresh.keys, fresh.values
        ):
            np.testing.assert_allclose(k1, k2, atol=1e-12)
            np.testing.assert_allclose(v1, v2, atol=1e-12)

    def test_trim_shrinks_bytes_after_preemption(self, model, config):
        # the preempt-and-recompute path in repro.serving relies on trim/free
        # actually returning memory
        ids = tokens(config, seq=8)
        with no_grad():
            cache = KVCache(config.n_layers)
            model.forward(ids, cache=cache)
        before = cache.nbytes()
        cache.trim(3)
        assert cache.nbytes() == before * 3 // 8
        per_layer = cache.nbytes_by_layer()
        assert len(per_layer) == config.n_layers
        assert sum(per_layer) == cache.nbytes()

    def test_trim_to_zero_and_free(self, model, config):
        with no_grad():
            a = KVCache(config.n_layers)
            b = KVCache(config.n_layers)
            model.forward(tokens(config, seq=4), cache=a)
            model.forward(tokens(config, seq=4), cache=b)
        a.trim(0)
        b.free()
        for cache in (a, b):
            assert cache.seq_len == 0
            assert cache.nbytes() == 0
            assert cache.nbytes_by_layer() == [0] * config.n_layers

    def test_trim_validates_bounds(self, model, config):
        with no_grad():
            cache = KVCache(config.n_layers)
            model.forward(tokens(config, seq=4), cache=cache)
        with pytest.raises(ValueError):
            cache.trim(-1)
        cache.trim(5)  # shrink-only: trimming past the end is a no-op
        assert cache.seq_len == 4

    def test_trim_copies_so_tail_is_released(self, model, config):
        with no_grad():
            cache = KVCache(config.n_layers)
            model.forward(tokens(config, seq=8), cache=cache)
        k_before = cache.keys[0]
        cache.trim(4)
        k_after = cache.keys[0]
        # a fresh owned array, not a view pinning the full buffer
        assert k_after.base is None
        assert k_after is not k_before
