"""Tests for the execution-timeline scheduler (Figure 3 semantics)."""

import numpy as np

from repro.config import GenParallelConfig, ParallelConfig
from repro.data.dataset import PromptDataset, SyntheticPreferenceTask
from repro.models.tinylm import TinyLMConfig
from repro.rlhf.core import AlgoType
from repro.runtime import ModelAssignment, PlacementPlan, build_rlhf_system
from repro.runtime.timeline import Timeline, TimelineEvent, build_timeline
from repro.single_controller.controller import ExecutionRecord

CFG = TinyLMConfig(
    n_layers=2,
    hidden_size=32,
    n_heads=4,
    ffn_hidden_size=48,
    vocab_size=16,
    max_seq_len=32,
)
TASK = SyntheticPreferenceTask(vocab_size=16)
PAR = ParallelConfig(1, 2, 1)
GEN = GenParallelConfig.derive(PAR, 1, 1)
ONE = ParallelConfig(1, 1, 1)


def build_system(split: bool):
    if split:
        plan = PlacementPlan(
            pools={"actor_side": 2, "critic_side": 2, "r": 1},
            assignments={
                "actor": ModelAssignment("actor_side", PAR, GEN),
                "reference": ModelAssignment("actor_side", PAR),
                "critic": ModelAssignment("critic_side", PAR),
                "reward": ModelAssignment("r", ONE),
            },
        )
    else:
        plan = PlacementPlan(
            pools={"main": 2, "r": 1},
            assignments={
                "actor": ModelAssignment("main", PAR, GEN),
                "reference": ModelAssignment("main", PAR),
                "critic": ModelAssignment("main", PAR),
                "reward": ModelAssignment("r", ONE),
            },
        )
    return build_rlhf_system(
        AlgoType.PPO, plan, CFG, reward_fn=TASK.reward, max_new_tokens=5
    )


def run_iteration(split: bool):
    system = build_system(split)
    ds = PromptDataset(32, 4, 16, seed=1)
    system.trainer.train(ds, 1, 8)
    return system


class TestDependencyCapture:
    def test_trace_records_dataflow_edges(self):
        system = run_iteration(split=False)
        trace = system.controller.trace
        by_name = {f"{r.group}.{r.method}": r for r in trace}
        gen = by_name["actor.generate_sequences"]
        values = by_name["critic.compute_values"]
        update = by_name["actor.update_actor"]
        assert gen.deps == ()
        assert gen.seq in values.deps
        assert update.deps  # depends on prepared batch

    def test_future_provenance(self):
        system = build_system(split=False)
        from repro.data.batch import DataBatch

        prompts = DataBatch(
            {"prompts": np.zeros((4, 4), dtype=int)}
        )
        out = system.groups["actor"].generate_sequences(prompts)
        assert out.record_seq is not None
        values = system.groups["critic"].compute_values(out)
        rec = system.controller.trace[-1]
        assert out.record_seq in rec.deps
        assert values.record_seq == rec.seq


class TestScheduling:
    def make_records(self):
        # diamond: a -> (b, c) -> d, b and c on different pools
        return [
            ExecutionRecord(0, "a", "m", "p0", ()),
            ExecutionRecord(1, "b", "m", "p1", (0,)),
            ExecutionRecord(2, "c", "m", "p2", (0,)),
            ExecutionRecord(3, "d", "m", "p0", (1, 2)),
        ]

    def test_diamond_overlaps_independent_branches(self):
        class Ctl:  # minimal stand-in
            trace = self.make_records()

        timeline = build_timeline(Ctl(), duration_fn=lambda r: 2.0)
        by_name = {e.name: e for e in timeline.events}
        assert by_name["b.m"].start == by_name["c.m"].start == 2.0
        assert by_name["d.m"].start == 4.0
        assert timeline.makespan == 6.0

    def test_same_pool_serialises(self):
        records = [
            ExecutionRecord(0, "a", "m", "p0", ()),
            ExecutionRecord(1, "b", "m", "p0", ()),
        ]

        class Ctl:
            trace = records

        timeline = build_timeline(Ctl(), duration_fn=lambda r: 1.0)
        assert timeline.makespan == 2.0
        assert timeline.idle_fraction("p0") == 0.0


class TestFigure3Semantics:
    def test_split_overlaps_critic_and_actor_work(self):
        """With actor/ref and critic on different pools, the critic's value
        pass overlaps actor-side work, shortening the makespan vs colocate."""
        colocated = build_timeline(run_iteration(split=False).controller)
        split = build_timeline(run_iteration(split=True).controller)
        assert split.makespan < colocated.makespan

    def test_split_placement_has_idle_time(self):
        """Figure 3 / §2.3: separated models idle during stages they don't
        participate in (e.g. critic during generation)."""
        system = run_iteration(split=True)
        timeline = build_timeline(system.controller)
        gen_event = next(
            e for e in timeline.events if e.name == "actor.generate_sequences"
        )
        busy = timeline.busy_during("critic_side", gen_event.start, gen_event.end)
        assert busy == 0.0  # critic idles through generation
        assert timeline.idle_fraction("critic_side") > 0.2

    def test_colocated_pool_fully_busy(self):
        system = run_iteration(split=False)
        timeline = build_timeline(system.controller)
        assert timeline.idle_fraction("main") < 0.35  # only the reward call

    def test_render_ascii(self):
        system = run_iteration(split=True)
        text = build_timeline(system.controller).render_ascii(width=40)
        assert "actor_side" in text and "idle=" in text and "legend:" in text

    def test_custom_duration_fn(self):
        system = run_iteration(split=False)
        timeline = build_timeline(
            system.controller, duration_fn=lambda r: 5.0
        )
        assert timeline.makespan == 5.0 * len(system.controller.trace) - 5.0 * sum(
            1 for r in system.controller.trace if r.pool != "main"
        ) or timeline.makespan > 0  # duration plumbed through

    def test_empty_timeline(self):
        timeline = Timeline(events=[])
        assert timeline.makespan == 0.0
        assert timeline.render_ascii() == "(empty timeline)"
        event = TimelineEvent(0, "x", "p", 1.0, 3.0)
        assert event.duration == 2.0
