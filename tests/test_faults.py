"""Fault injection, retry/backoff, detection, and automatic recovery (§9)."""

import json

import numpy as np
import pytest

from repro.cluster import SimCluster
from repro.config import ClusterSpec, GenParallelConfig, ParallelConfig
from repro.data import PromptDataset, SyntheticPreferenceTask
from repro.faults import (
    ClusterFaultDriver,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    RetryBudgetExhausted,
    RetryPolicy,
    SimClock,
    TransientRpcError,
    WorkerLostError,
)
from repro.models.tinylm import TinyLMConfig
from repro.perf import (
    expected_goodput,
    goodput_vs_interval,
    mean_time_to_recover,
    optimal_checkpoint_interval,
)
from repro.rlhf import AlgoType
from repro.rlhf.trainers import TrainerConfig
from repro.runtime import (
    ModelAssignment,
    PlacementPlan,
    build_rlhf_system,
    train_with_recovery,
)
from repro.single_controller import (
    CheckpointError,
    SingleController,
    Worker,
    WorkerGroup,
    register,
)


class CounterWorker(Worker):
    def __init__(self, ctx, start=0):
        super().__init__(ctx)
        self.count = start

    @register(protocol="one_to_all")
    def bump(self):
        self.count += 1
        return self.count

    def state_for_checkpoint(self):
        # Mix numpy scalar types in deliberately: the checkpoint sanitizer
        # must coerce them to plain JSON scalars.
        return {
            "count": np.int64(self.count),
            "gain": np.float32(1.5),
            "arr": np.full(3, self.count, dtype=float),
        }

    def load_from_checkpoint(self, state):
        self.count = int(state["count"])


def faulty_controller(plan, n=2, policy=None, n_machines=1):
    controller = SingleController(ClusterSpec(n_machines=n_machines))
    if policy is not None:
        controller.retry_policy = policy
    injector = FaultInjector(plan)
    controller.attach_fault_injector(injector)
    pool = controller.create_pool(n, name="main")
    group = WorkerGroup(
        CounterWorker, pool, controller=controller, name="counter"
    )
    return controller, group, injector


class TestPlanAndPolicy:
    def test_event_validation(self):
        with pytest.raises(ValueError, match="rank"):
            FaultEvent(FaultKind.DEVICE_LOSS, at_step=0)
        with pytest.raises(ValueError, match="machine"):
            FaultEvent(FaultKind.MACHINE_LOSS, at_step=0)
        with pytest.raises(ValueError, match="slower"):
            FaultEvent(FaultKind.STRAGGLER, at_step=0, rank=0, slow_factor=0.5)
        with pytest.raises(ValueError, match="at_step"):
            FaultEvent(FaultKind.TRANSIENT_RPC, at_step=-1)

    def test_plan_sorted_and_fluent(self):
        plan = FaultPlan().transient(at_step=9).kill_device(0, at_step=2)
        assert [e.at_step for e in plan] == [2, 9]
        assert len(plan) == 2

    def test_random_plan_is_seed_deterministic(self):
        a = FaultPlan.random(seed=5, n_events=8, max_step=50, n_ranks=4)
        b = FaultPlan.random(seed=5, n_events=8, max_step=50, n_ranks=4)
        assert a.events == b.events
        c = FaultPlan.random(seed=6, n_events=8, max_step=50, n_ranks=4)
        assert a.events != c.events

    def test_backoff_schedule_deterministic(self):
        p1 = RetryPolicy(max_retries=4, jitter=0.5, seed=11)
        p2 = RetryPolicy(max_retries=4, jitter=0.5, seed=11)
        assert p1.schedule() == p2.schedule()
        # without jitter: pure geometric progression
        p = RetryPolicy(max_retries=3, backoff_base=0.1, backoff_factor=3.0)
        assert p.schedule() == pytest.approx([0.1, 0.3, 0.9])

    def test_clock_monotone(self):
        clock = SimClock()
        clock.advance(1.5)
        assert clock.now == 1.5
        with pytest.raises(ValueError):
            clock.advance(-1.0)


class TestTransientRetry:
    def test_transient_retried_then_succeeds(self):
        plan = FaultPlan().transient(at_step=0, count=2)
        controller, group, injector = faulty_controller(plan)
        result = group.bump().get()
        assert result == [1, 1]
        assert injector.stats.transients_injected == 2
        assert injector.stats.retries_observed == 2

    def test_retries_do_not_corrupt_trace(self):
        plan = FaultPlan().transient(at_step=0, count=2)
        controller, group, _ = faulty_controller(plan)
        group.bump()
        group.bump()
        # each call appears exactly once despite the retries
        assert controller.trace_methods() == ["counter.bump", "counter.bump"]
        assert [r.seq for r in controller.trace] == [0, 1]

    def test_backoff_advances_simulated_clock(self):
        plan = FaultPlan().transient(at_step=0, count=2)
        policy = RetryPolicy(backoff_base=0.05, backoff_factor=2.0)
        controller, group, _ = faulty_controller(plan, policy=policy)
        group.bump()
        # two backoffs (0.05 + 0.10) plus the call's simulated duration
        assert controller.clock.now == pytest.approx(0.15 + 1.0)

    def test_exhausted_retries_escalate(self):
        plan = FaultPlan().transient(at_step=0, count=10)
        policy = RetryPolicy(max_retries=2)
        controller, group, injector = faulty_controller(plan, policy=policy)
        with pytest.raises(WorkerLostError) as exc_info:
            group.bump()
        err = exc_info.value
        assert err.cause == "retries exhausted"
        assert err.group == "counter"
        assert err.pool == "main"
        assert isinstance(err.__cause__, TransientRpcError)
        # first attempt + 2 retries, and the trace stayed clean
        assert injector.stats.transients_injected == 3
        assert controller.trace == []


class TestTimeoutsAndStragglers:
    def test_straggler_inflates_duration(self):
        plan = FaultPlan().straggler(rank=0, at_step=0, slow_factor=4.0)
        controller, group, injector = faulty_controller(plan)
        group.bump()
        assert injector.straggle == {0: 4.0}
        assert controller.clock.now == pytest.approx(4.0)  # 1.0s base x4

    def test_persistent_straggler_times_out_and_escalates(self):
        plan = FaultPlan().straggler(rank=1, at_step=0, slow_factor=8.0)
        policy = RetryPolicy(max_retries=2, timeout=2.0)
        controller, group, _ = faulty_controller(plan, policy=policy)
        with pytest.raises(WorkerLostError) as exc_info:
            group.bump()
        assert exc_info.value.dead_ranks == (1,)  # the slow rank is named
        assert exc_info.value.cause == "retries exhausted"

    def test_fast_call_passes_under_timeout(self):
        controller, group, _ = faulty_controller(
            FaultPlan(), policy=RetryPolicy(timeout=2.0)
        )
        assert group.bump().get() == [1, 1]


class TestDetection:
    def test_dead_device_detected_on_contact(self):
        plan = FaultPlan().kill_device(1, at_step=0)
        controller, group, injector = faulty_controller(plan)
        with pytest.raises(WorkerLostError) as exc_info:
            group.bump()
        err = exc_info.value
        assert err.dead_ranks == (1,)
        assert err.pool == "main"
        assert err.cause == "device loss"
        assert err.step == 0
        assert injector.stats.detections == 1
        assert not controller.cluster.device(1).alive

    def test_kill_arms_only_at_its_step(self):
        plan = FaultPlan().kill_device(0, at_step=2)
        controller, group, _ = faulty_controller(plan)
        group.bump()
        group.bump()  # steps 0 and 1 run normally
        with pytest.raises(WorkerLostError):
            group.bump()

    def test_machine_loss_kills_all_its_devices(self):
        plan = FaultPlan().kill_machine(0, at_step=0)
        controller, group, injector = faulty_controller(plan, n_machines=2)
        with pytest.raises(WorkerLostError):
            group.bump()
        assert injector.stats.devices_killed == 8
        assert controller.cluster.n_alive == 8  # machine 1 survives


class TestClusterAfterFailure:
    def test_dead_ranks_never_reallocated(self):
        cluster = SimCluster(ClusterSpec(n_machines=1, gpus_per_machine=4))
        first = cluster.allocate(2)  # ranks 0, 1
        cluster.fail_device(1)
        cluster.release(first)
        again = cluster.allocate(2)
        assert 1 not in again.global_ranks

    def test_noncontiguous_fallback_after_holes(self):
        cluster = SimCluster(ClusterSpec(n_machines=1, gpus_per_machine=4))
        cluster.fail_device(1)
        # no contiguous pair below rank 2 — allocation still succeeds
        got = cluster.allocate(3)
        assert got.global_ranks == [0, 2, 3]

    def test_exhausted_when_survivors_insufficient(self):
        cluster = SimCluster(ClusterSpec(n_machines=1, gpus_per_machine=2))
        cluster.fail_machine(0)
        with pytest.raises(RuntimeError, match="exhausted"):
            cluster.allocate(1)

    def test_failed_device_memory_wiped(self):
        cluster = SimCluster(ClusterSpec(n_machines=1, gpus_per_machine=2))
        device = cluster.device(0)
        device.memory.alloc("weights", 1000)
        cluster.fail_device(0, at_time=12.5)
        assert device.memory.used == 0
        assert device.failed_at == 12.5


class TestCheckpointRobustness:
    def _controller(self, n=2):
        controller = SingleController(ClusterSpec(n_machines=1))
        pool = controller.create_pool(n, name="main")
        group = WorkerGroup(
            CounterWorker, pool, controller=controller, name="counter"
        )
        return controller, group

    def test_numpy_scalars_sanitized(self, tmp_path):
        controller, group = self._controller()
        group.bump()
        controller.save_checkpoint(tmp_path / "ckpt")
        manifest = json.loads((tmp_path / "ckpt" / "manifest.json").read_text())
        scalars = manifest["groups"][0]["workers"][0]["scalars"]
        assert scalars["count"] == 1 and isinstance(scalars["count"], int)
        assert scalars["gain"] == pytest.approx(1.5)

    def test_unserializable_extra_rejected(self, tmp_path):
        controller, _ = self._controller()
        with pytest.raises(CheckpointError, match="cannot serialize"):
            controller.save_checkpoint(tmp_path / "ckpt", extra={"x": object()})

    def test_save_is_atomic_no_staging_left(self, tmp_path):
        controller, group = self._controller()
        controller.save_checkpoint(tmp_path / "ckpt")
        group.bump()
        controller.save_checkpoint(tmp_path / "ckpt")  # overwrite in place
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "ckpt"]
        assert leftovers == []
        controller2, group2 = self._controller()
        controller2.load_checkpoint(tmp_path / "ckpt")
        assert [w.count for w in group2.workers] == [1, 1]

    def test_trace_seq_persisted(self, tmp_path):
        controller, group = self._controller()
        group.bump()
        group.bump()
        controller.save_checkpoint(tmp_path / "ckpt")
        controller2, _ = self._controller()
        controller2.load_checkpoint(tmp_path / "ckpt")
        assert controller2.next_seq == 2  # trace numbering continues

    def test_missing_directory_is_typed_error(self, tmp_path):
        controller, _ = self._controller()
        with pytest.raises(CheckpointError, match="no checkpoint"):
            controller.load_checkpoint(tmp_path / "nope")

    def test_truncated_manifest_is_typed_error(self, tmp_path):
        controller, _ = self._controller()
        controller.save_checkpoint(tmp_path / "ckpt")
        manifest = tmp_path / "ckpt" / "manifest.json"
        manifest.write_text(manifest.read_text()[: len(manifest.read_text()) // 2])
        with pytest.raises(CheckpointError, match="corrupt"):
            self._controller()[0].load_checkpoint(tmp_path / "ckpt")

    def test_missing_arrays_file_is_typed_error(self, tmp_path):
        controller, _ = self._controller()
        controller.save_checkpoint(tmp_path / "ckpt")
        (tmp_path / "ckpt" / "group0_worker0.npz").unlink()
        with pytest.raises(CheckpointError, match="missing"):
            self._controller()[0].load_checkpoint(tmp_path / "ckpt")

    def test_corrupt_arrays_file_is_typed_error(self, tmp_path):
        controller, _ = self._controller()
        controller.save_checkpoint(tmp_path / "ckpt")
        (tmp_path / "ckpt" / "group0_worker0.npz").write_bytes(b"not an npz")
        with pytest.raises(CheckpointError):
            self._controller()[0].load_checkpoint(tmp_path / "ckpt")


# -- end-to-end: machine loss mid-PPO, automatic bit-exact recovery -------------

CFG = TinyLMConfig(
    n_layers=2,
    hidden_size=32,
    n_heads=4,
    ffn_hidden_size=48,
    vocab_size=16,
    max_seq_len=32,
)
TASK = SyntheticPreferenceTask(vocab_size=16, target_token=7)
PAR = ParallelConfig(pp=1, tp=2, dp=1)
SPEC = ClusterSpec(n_machines=2, gpus_per_machine=4)  # spare for re-placement


def build_ppo(cluster=None):
    plan = PlacementPlan(
        pools={"main": 2, "r": 1},
        assignments={
            "actor": ModelAssignment(
                "main", PAR, GenParallelConfig.derive(PAR, 1, 1)
            ),
            "critic": ModelAssignment("main", PAR),
            "reference": ModelAssignment("main", PAR),
            "reward": ModelAssignment("r", ParallelConfig(1, 1, 1)),
        },
    )
    return build_rlhf_system(
        AlgoType.PPO,
        plan,
        CFG,
        cluster_spec=SPEC,
        trainer_config=TrainerConfig(kl_coef=0.01, seed=7),
        reward_fn=TASK.reward,
        max_new_tokens=6,
        lr=5e-3,
        seed=7,
        cluster=cluster,
    )


def _dataset():
    return PromptDataset(n_prompts=128, prompt_length=4, vocab_size=16, seed=1)


class TestAutomaticRecovery:
    N_ITER = 4

    @pytest.fixture(scope="class")
    def reference(self):
        system = build_ppo()
        seqs = []
        history = []
        for batch in _dataset().iter_batches(8, epochs=1):
            if len(history) == self.N_ITER:
                break
            history.append(system.trainer.step(batch))
            seqs.append(system.controller.next_seq)
        return system, history, seqs

    def _recovered(self, reference, checkpoint_every, kill_at, tmp_path):
        _, _, seqs = reference
        injector = FaultInjector(FaultPlan().kill_machine(0, at_step=kill_at))
        return (
            train_with_recovery(
                build_ppo,
                _dataset(),
                n_iterations=self.N_ITER,
                batch_size=8,
                checkpoint_dir=str(tmp_path / "ckpt"),
                checkpoint_every=checkpoint_every,
                injector=injector,
            ),
            injector,
        )

    def test_machine_loss_recovers_bit_exactly(self, reference, tmp_path):
        ref_system, ref_history, seqs = reference
        # arm the kill mid-way through the second iteration
        kill_at = (seqs[0] + seqs[1]) // 2
        (system, history, report), injector = self._recovered(
            reference, 1, kill_at, tmp_path
        )
        assert injector.stats.devices_killed == 4
        assert report.n_failures == 1
        # the whole trajectory matches the failure-free run exactly
        ref_scores = [h["score_mean"] for h in ref_history]
        got_scores = [h["score_mean"] for h in history]
        assert got_scores == ref_scores
        # and so do the final actor weights, despite re-placement
        ref_state = ref_system.groups["actor"].workers[0].materialize_full_state()
        got_state = system.groups["actor"].workers[0].materialize_full_state()
        for name in ref_state:
            np.testing.assert_array_equal(ref_state[name], got_state[name])

    def test_replaced_onto_surviving_machine(self, reference, tmp_path):
        _, _, seqs = reference
        (system, _, report), _ = self._recovered(reference, 1, seqs[0] + 1, tmp_path)
        ranks = {
            w.ctx.device.global_rank
            for g in system.groups.values()
            for w in g.workers
        }
        assert ranks <= set(range(4, 8))  # machine 0 is ranks 0-3
        assert all(system.controller.cluster.device(r).alive for r in ranks)

    def test_report_accounts_lost_work(self, reference, tmp_path):
        ref_system, ref_history, seqs = reference
        # checkpoint every 2 iterations, fail during iteration 3 (0-based):
        # rollback to iteration 2 loses one completed iteration
        kill_at = (seqs[2] + seqs[3]) // 2
        (system, history, report), _ = self._recovered(
            reference, 2, kill_at, tmp_path
        )
        assert report.n_failures == 1
        event = report.events[0]
        assert event.failed_iteration == 3
        assert event.resumed_iteration == 2
        assert event.lost_iterations == 1
        assert report.total_lost_iterations == 1
        assert event.dead_ranks  # which ranks died is reported
        assert event.restore_time >= 0 and event.reinit_time > 0
        assert report.mttr == pytest.approx(event.downtime)
        assert report.total_time > 0
        assert any("lost" in line for line in report.summary_lines())
        # lost work is re-run to the same result
        assert [h["score_mean"] for h in history] == [
            h["score_mean"] for h in ref_history
        ]

    def test_unrecoverable_when_survivors_insufficient(self, tmp_path):
        # a 1-machine cluster has nowhere to re-place
        spec = ClusterSpec(n_machines=1, gpus_per_machine=4)

        def build(cluster=None):
            plan = PlacementPlan(
                pools={"main": 2, "r": 1},
                assignments={
                    "actor": ModelAssignment(
                        "main", PAR, GenParallelConfig.derive(PAR, 1, 1)
                    ),
                    "critic": ModelAssignment("main", PAR),
                    "reference": ModelAssignment("main", PAR),
                    "reward": ModelAssignment("r", ParallelConfig(1, 1, 1)),
                },
            )
            return build_rlhf_system(
                AlgoType.PPO,
                plan,
                CFG,
                cluster_spec=spec,
                trainer_config=TrainerConfig(kl_coef=0.01, seed=7),
                reward_fn=TASK.reward,
                max_new_tokens=6,
                lr=5e-3,
                seed=7,
                cluster=cluster,
            )

        injector = FaultInjector(FaultPlan().kill_machine(0, at_step=2))
        with pytest.raises(RuntimeError, match="exhausted"):
            train_with_recovery(
                build,
                _dataset(),
                n_iterations=2,
                batch_size=8,
                checkpoint_dir=str(tmp_path / "ckpt"),
                injector=injector,
            )


class TestRecoveryAnalytics:
    def test_young_interval(self):
        assert optimal_checkpoint_interval(2.0, 100.0) == pytest.approx(20.0)
        with pytest.raises(ValueError):
            optimal_checkpoint_interval(0.0, 100.0)

    def test_goodput_bounded_and_penalised_by_faults(self):
        reliable = expected_goodput(1.0, 8, 0.5, 1.0, 2.0, mtbf=1e9)
        flaky = expected_goodput(1.0, 8, 0.5, 1.0, 2.0, mtbf=50.0)
        assert 0 < flaky < reliable < 1.0

    def test_goodput_curve_peaks_between_extremes(self):
        curve = goodput_vs_interval(
            1.0, 0.5, 1.0, 2.0, mtbf=60.0, intervals=(1, 4, 16, 64, 256)
        )
        values = [g for _, g in curve]
        best = max(range(len(values)), key=values.__getitem__)
        assert 0 < best < len(values) - 1  # checkpointing trade-off is real

    def test_mttr(self):
        assert mean_time_to_recover(1.0, 2.0, 3.0) == 6.0
        with pytest.raises(ValueError):
            mean_time_to_recover(-1.0, 0.0)


# -- correlated failures: machine groups and rack-scoped kills ------------------


class TestCorrelatedFailures:
    def test_kill_machines_is_one_correlated_event_per_machine(self):
        plan = FaultPlan().kill_machines([0, 2], at_step=5)
        assert len(plan) == 2
        assert all(
            e.kind is FaultKind.MACHINE_LOSS and e.at_step == 5
            for e in plan.events
        )
        assert [e.machine for e in plan.events] == [0, 2]

    def test_rack_event_validation(self):
        with pytest.raises(ValueError, match="rack"):
            FaultEvent(FaultKind.RACK_LOSS, at_step=1)
        with pytest.raises(ValueError, match="machines_per_rack"):
            FaultEvent(
                FaultKind.RACK_LOSS, at_step=1, rack=0, machines_per_rack=0
            )

    def test_fail_rack_kills_the_whole_machine_block(self):
        cluster = SimCluster(ClusterSpec(n_machines=4, gpus_per_machine=2))
        died = cluster.fail_rack(1, machines_per_rack=2)
        assert died == [4, 5, 6, 7]  # machines 2 and 3
        assert cluster.n_alive == 4
        with pytest.raises(ValueError):
            cluster.fail_rack(2, machines_per_rack=2)  # only racks 0..1

    def test_injector_arms_rack_loss(self):
        plan = FaultPlan().kill_rack(0, at_step=1, machines_per_rack=2)
        controller, group, injector = faulty_controller(plan, n_machines=2)
        with pytest.raises(WorkerLostError) as err:
            for _ in range(4):
                group.bump()
        assert injector.stats.devices_killed == controller.cluster.n_gpus
        assert len(err.value.dead_ranks) > 0

    def test_random_rack_plan_is_seed_deterministic(self):
        kw = dict(
            n_events=6,
            max_step=20,
            n_ranks=8,
            n_machines=4,
            machines_per_rack=2,
            kinds=(FaultKind.RACK_LOSS, FaultKind.MACHINE_LOSS),
        )
        a = FaultPlan.random(seed=3, **kw)
        b = FaultPlan.random(seed=3, **kw)
        assert a.events == b.events
        assert any(e.kind is FaultKind.RACK_LOSS for e in a.events)
        assert all(
            e.rack is not None and 0 <= e.rack < 2
            for e in a.events
            if e.kind is FaultKind.RACK_LOSS
        )


class TestClusterFaultDriver:
    def test_rejects_non_kill_kinds(self):
        plan = FaultPlan().transient(at_step=1)
        with pytest.raises(ValueError, match="kill"):
            ClusterFaultDriver(plan)

    def test_applies_events_due_at_or_before_tick(self):
        plan = FaultPlan()
        plan.kill_device(0, at_step=1)
        plan.kill_machine(1, at_step=3)
        driver = ClusterFaultDriver(plan)
        cluster = SimCluster(ClusterSpec(n_machines=2, gpus_per_machine=2))
        assert driver.apply_due(cluster, tick=0) == []
        assert driver.pending_events
        assert driver.apply_due(cluster, tick=1) == [0]
        # tick 5 catches up on everything due, even skipped ticks
        assert driver.apply_due(cluster, tick=5) == [2, 3]
        assert not driver.pending_events
        assert driver.devices_killed == 3
        assert cluster.n_alive == 1

    def test_rack_event_applies_to_cluster(self):
        plan = FaultPlan().kill_rack(0, at_step=2, machines_per_rack=2)
        driver = ClusterFaultDriver(plan)
        cluster = SimCluster(ClusterSpec(n_machines=4, gpus_per_machine=2))
        assert driver.apply_due(cluster, tick=2) == [0, 1, 2, 3]
        assert cluster.n_alive == 4


# -- per-call retry deadline budget ---------------------------------------------


class TestRetryDeadlineBudget:
    def test_deadline_must_be_positive(self):
        with pytest.raises(ValueError, match="deadline"):
            RetryPolicy(deadline=0.0)

    def test_backoff_delay_clips_to_remaining_budget(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=2.0, deadline=2.5)
        assert policy.backoff_delay(1, spent=0.0) == pytest.approx(1.0)
        # attempt 2 wants 2.0s but only 1.5s of budget remains
        assert policy.backoff_delay(2, spent=1.0) == pytest.approx(1.5)

    def test_backoff_delay_raises_typed_error_when_budget_gone(self):
        policy = RetryPolicy(backoff_base=1.0, deadline=2.0)
        with pytest.raises(RetryBudgetExhausted) as err:
            policy.backoff_delay(3, spent=2.0)
        assert err.value.deadline == 2.0
        assert err.value.spent == 2.0
        assert isinstance(err.value, WorkerLostError)  # recoverable family

    def test_schedule_truncated_by_deadline(self):
        policy = RetryPolicy(
            max_retries=5, backoff_base=1.0, backoff_factor=2.0, deadline=4.0
        )
        schedule = policy.schedule()
        assert schedule == [1.0, 2.0, 1.0]  # last wait clipped, rest dropped
        assert sum(schedule) == pytest.approx(4.0)

    def test_schedule_unbounded_without_deadline(self):
        policy = RetryPolicy(max_retries=3, backoff_base=1.0, backoff_factor=2.0)
        assert policy.schedule() == [1.0, 2.0, 4.0]

    def test_dispatch_gate_escalates_with_context(self):
        plan = FaultPlan().transient(at_step=1, count=10)
        policy = RetryPolicy(
            max_retries=8, backoff_base=1.0, backoff_factor=2.0, deadline=2.5
        )
        controller, group, _ = faulty_controller(plan, policy=policy)
        group.bump()  # seq 0: clean
        with pytest.raises(RetryBudgetExhausted) as err:
            group.bump()
        assert err.value.method == "bump"
        assert err.value.deadline == 2.5
        assert err.value.spent >= 2.5
        assert err.value.attempts >= 2
        assert (
            controller.metrics.total("repro_retry_budget_exhausted_total") == 1
        )

    def test_no_deadline_preserves_retry_exhaustion_behaviour(self):
        plan = FaultPlan().transient(at_step=1, count=10)
        policy = RetryPolicy(max_retries=2, backoff_base=1.0)
        _, group, _ = faulty_controller(plan, policy=policy)
        group.bump()
        with pytest.raises(WorkerLostError) as err:
            group.bump()
        assert not isinstance(err.value, RetryBudgetExhausted)


# -- torn saves: a fault during save_checkpoint never corrupts restore ----------


class TestTornSave:
    def _controller(self, n=2):
        controller = SingleController(ClusterSpec(n_machines=1))
        pool = controller.create_pool(n, name="main")
        group = WorkerGroup(
            CounterWorker, pool, controller=controller, name="counter"
        )
        return controller, group

    def test_crash_mid_staging_preserves_previous_checkpoint(self, tmp_path):
        import repro.single_controller.controller as ctrl_mod

        controller, group = self._controller()
        group.bump()
        controller.save_checkpoint(tmp_path / "ckpt")
        group.bump()

        def torn_savez(*args, **kwargs):
            raise OSError("simulated disk failure mid-save")

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(ctrl_mod.np, "savez", torn_savez)
            with pytest.raises(OSError, match="mid-save"):
                controller.save_checkpoint(tmp_path / "ckpt")
        # the torn attempt stayed in staging; the old root is intact
        assert (tmp_path / ".ckpt.saving").exists()
        fresh, fresh_group = self._controller()
        fresh.load_checkpoint(tmp_path / "ckpt")
        assert [w.count for w in fresh_group.workers] == [1, 1]
        # the next save clears the stale staging and lands the new state
        controller.save_checkpoint(tmp_path / "ckpt")
        assert not (tmp_path / ".ckpt.saving").exists()
        fresh2, fresh_group2 = self._controller()
        fresh2.load_checkpoint(tmp_path / "ckpt")
        assert [w.count for w in fresh_group2.workers] == [2, 2]

    def test_crash_between_renames_falls_back_to_replaced(self, tmp_path):
        controller, group = self._controller()
        group.bump()
        controller.save_checkpoint(tmp_path / "ckpt")
        # simulate dying between "park the old root" and "promote staging":
        # the previous complete checkpoint sits under the .replaced name
        (tmp_path / "ckpt").rename(tmp_path / ".ckpt.replaced")
        fresh, fresh_group = self._controller()
        fresh.load_checkpoint(tmp_path / "ckpt")
        assert [w.count for w in fresh_group.workers] == [1, 1]

    def test_missing_root_and_fallback_is_still_typed(self, tmp_path):
        fresh, _ = self._controller()
        with pytest.raises(CheckpointError, match="no checkpoint"):
            fresh.load_checkpoint(tmp_path / "ckpt")


# -- elastic (resize-aware) checkpoint restore ----------------------------------


def build_ppo_at(dp, tp=2):
    par = ParallelConfig(pp=1, tp=tp, dp=dp)
    plan = PlacementPlan(
        pools={"main": tp * dp, "r": 1},
        assignments={
            "actor": ModelAssignment(
                "main", par, GenParallelConfig.derive(par, 1, 1)
            ),
            "critic": ModelAssignment("main", par),
            "reference": ModelAssignment("main", par),
            "reward": ModelAssignment("r", ParallelConfig(1, 1, 1)),
        },
    )
    return build_rlhf_system(
        AlgoType.PPO,
        plan,
        CFG,
        cluster_spec=SPEC,
        trainer_config=TrainerConfig(kl_coef=0.01, seed=7),
        reward_fn=TASK.reward,
        max_new_tokens=6,
        lr=5e-3,
        seed=7,
    )


def _assert_worker_states_equal(got, want):
    got_state, want_state = got.state_for_checkpoint(), want.state_for_checkpoint()
    assert got_state.keys() == want_state.keys()
    for key in got_state:
        a, b = got_state[key], want_state[key]
        if isinstance(a, np.ndarray):
            np.testing.assert_array_equal(a, b)
        else:
            assert a == b, key


class TestElasticRestore:
    def test_resize_requires_explicit_flag(self, tmp_path):
        donor = build_ppo_at(dp=2)
        donor.controller.save_checkpoint(tmp_path / "ckpt")
        target = build_ppo_at(dp=1)
        with pytest.raises(CheckpointError, match="allow_resize"):
            target.controller.load_checkpoint(tmp_path / "ckpt")

    def test_shrink_restores_first_replica(self, tmp_path):
        donor = build_ppo_at(dp=2)
        donor.controller.save_checkpoint(tmp_path / "ckpt")
        target = build_ppo_at(dp=1)
        target.controller.load_checkpoint(tmp_path / "ckpt", allow_resize=True)
        for role in ("actor", "critic", "reference"):
            for i, worker in enumerate(target.groups[role].workers):
                # local ranks enumerate TP fastest, so the narrow system's
                # workers are exactly the wide system's first DP replica
                _assert_worker_states_equal(
                    worker, donor.groups[role].workers[i]
                )

    def test_grow_clones_last_replica(self, tmp_path):
        donor = build_ppo_at(dp=1)
        donor.controller.save_checkpoint(tmp_path / "ckpt")
        target = build_ppo_at(dp=2)
        target.controller.load_checkpoint(tmp_path / "ckpt", allow_resize=True)
        stage = 2  # pp * tp
        for role in ("actor", "critic", "reference"):
            for i, worker in enumerate(target.groups[role].workers):
                _assert_worker_states_equal(
                    worker, donor.groups[role].workers[i % stage]
                )

    def test_resize_rejects_tp_change(self, tmp_path):
        donor = build_ppo_at(dp=1, tp=2)
        donor.controller.save_checkpoint(tmp_path / "ckpt")
        target = build_ppo_at(dp=1, tp=1)
        with pytest.raises(CheckpointError, match="only resizes DP"):
            target.controller.load_checkpoint(
                tmp_path / "ckpt", allow_resize=True
            )

    def test_resize_rejects_non_3d_layouts(self, tmp_path):
        controller = SingleController(ClusterSpec(n_machines=1))
        pool = controller.create_pool(2, name="main")
        WorkerGroup(CounterWorker, pool, controller=controller, name="counter")
        controller.save_checkpoint(tmp_path / "ckpt")
        wider = SingleController(ClusterSpec(n_machines=1))
        pool = wider.create_pool(3, name="main")
        WorkerGroup(CounterWorker, pool, controller=wider, name="counter")
        with pytest.raises(CheckpointError, match="3d layout"):
            wider.load_checkpoint(tmp_path / "ckpt", allow_resize=True)
