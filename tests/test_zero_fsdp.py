"""Tests for ZeRO/FSDP memory and communication models, and the flat workers."""


import numpy as np
import pytest

from repro.config import ClusterSpec, ParallelConfig
from repro.data.batch import DataBatch
from repro.models.tinylm import TinyLMConfig
from repro.parallel.fsdp import (
    FsdpConfig,
    fsdp_grad_sync_volume,
    fsdp_memory_per_rank,
    fsdp_param_gather_volume,
)
from repro.parallel.zero import (
    ZeroConfig,
    ZeroStage,
    zero_grad_sync_volume,
    zero_memory_per_rank,
    zero_param_gather_volume,
)
from repro.rlhf import losses as L
from repro.single_controller import SingleController, WorkerGroup, register
from repro.workers.base import FSDPWorker, ZeROWorker

P = 1_000_000


class TestZeroMemory:
    def test_stage_progression(self):
        n = 8
        mems = [
            zero_memory_per_rank(P, ZeroConfig(stage, n)) for stage in ZeroStage
        ]
        # each stage shards more: memory strictly decreases
        assert mems[0] > mems[1] > mems[2] > mems[3]

    def test_ddp_is_16_bytes_per_param(self):
        assert zero_memory_per_rank(P, ZeroConfig(ZeroStage.DDP, 4)) == 16 * P

    def test_stage3_divides_everything(self):
        mem = zero_memory_per_rank(P, ZeroConfig(ZeroStage.PARAMETERS, 8))
        assert mem == 16 * P // 8

    def test_dp_one_is_unsharded(self):
        for stage in ZeroStage:
            assert zero_memory_per_rank(P, ZeroConfig(stage, 1)) == 16 * P

    def test_invalid_dp(self):
        with pytest.raises(ValueError):
            ZeroConfig(ZeroStage.DDP, 0)


class TestZeroComm:
    def test_param_gather_only_stage3(self):
        assert zero_param_gather_volume(P, ZeroConfig(ZeroStage.GRADIENTS, 8)) == 0
        vol = zero_param_gather_volume(P, ZeroConfig(ZeroStage.PARAMETERS, 8))
        assert vol == 7 * 2 * P // 8

    def test_grad_sync_halves_with_reduce_scatter(self):
        allreduce = zero_grad_sync_volume(P, ZeroConfig(ZeroStage.OPTIMIZER, 8))
        scatter = zero_grad_sync_volume(P, ZeroConfig(ZeroStage.GRADIENTS, 8))
        assert allreduce == 2 * scatter

    def test_single_rank_no_traffic(self):
        assert zero_grad_sync_volume(P, ZeroConfig(ZeroStage.PARAMETERS, 1)) == 0


class TestFsdp:
    def test_full_shard_equals_zero3(self):
        assert fsdp_memory_per_rank(P, FsdpConfig(8, "full")) == zero_memory_per_rank(
            P, ZeroConfig(ZeroStage.PARAMETERS, 8)
        )
        assert fsdp_param_gather_volume(P, FsdpConfig(8, "full")) == (
            zero_param_gather_volume(P, ZeroConfig(ZeroStage.PARAMETERS, 8))
        )

    def test_strategies(self):
        assert fsdp_memory_per_rank(P, FsdpConfig(8, "no_shard")) == 16 * P
        grad_op = fsdp_memory_per_rank(P, FsdpConfig(8, "grad_op"))
        assert 16 * P // 8 < grad_op < 16 * P
        assert fsdp_grad_sync_volume(P, FsdpConfig(8, "full")) > 0

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            FsdpConfig(8, "magic")


class FlatLmWorker(FSDPWorker):
    """A minimal trainable worker on the flat (FSDP) layout."""

    @register(protocol="dp_proto")
    def nll(self, batch: DataBatch):
        def compute(model):
            return {
                "nll": float(-model.token_log_probs(batch["tokens"]).mean().item())
            }

        return self.replica_forward(compute)

    @register(protocol="dp_proto")
    def train_nll(self, batch: DataBatch):
        def compute(model):
            loss = -model.token_log_probs(batch["tokens"]).mean()
            return loss, {"nll": float(loss.item())}

        return self.replica_train_step(compute)


class ZeroLmWorker(ZeROWorker, FlatLmWorker):
    pass


CFG = TinyLMConfig(
    n_layers=2,
    hidden_size=16,
    n_heads=2,
    ffn_hidden_size=24,
    vocab_size=11,
    max_seq_len=16,
)


def flat_group(worker_cls, n=2):
    controller = SingleController(ClusterSpec(n_machines=1))
    group = WorkerGroup(
        worker_cls,
        controller.create_pool(n),
        parallel_config=ParallelConfig(1, 1, n),
        controller=controller,
        name="flatlm",
        worker_kwargs={"model_config": CFG, "lr": 5e-3},
    )
    return controller, group


def token_batch(n=4, seq=8, seed=0):
    rng = np.random.default_rng(seed)
    return DataBatch({"tokens": rng.integers(0, 11, size=(n, seq))})


class TestFlatWorkers:
    @pytest.mark.parametrize("worker_cls", [FlatLmWorker, ZeroLmWorker])
    def test_forward_averages_across_ranks(self, worker_cls):
        _, group = flat_group(worker_cls)
        out = group.nll(token_batch()).get()
        assert out["nll"] > 0

    def test_training_reduces_loss_and_keeps_ranks_synced(self):
        _, group = flat_group(FlatLmWorker)
        batch = token_batch(n=4)
        losses = []
        for _ in range(15):
            losses.append(group.train_nll(batch).get()["nll"])
        assert losses[-1] < 0.6 * losses[0]
        # both ranks reconstruct the same full model
        a = group.workers[0].materialize_full_state()
        b = group.workers[1].materialize_full_state()
        for name in a:
            np.testing.assert_allclose(a[name], b[name], atol=1e-12)

    def test_flat_matches_3d_dp_training(self):
        """FSDP DP training and a single-replica run see the same gradients
        when fed the same total batch: final losses should track closely."""
        _, flat = flat_group(FlatLmWorker, n=2)
        _, solo = flat_group(FlatLmWorker, n=1)
        batch = token_batch(n=4, seed=9)
        for _ in range(5):
            m_flat = flat.train_nll(batch).get()
            m_solo = solo.train_nll(batch).get()
        assert m_flat["nll"] == pytest.approx(m_solo["nll"], rel=0.15)

    def test_shards_are_balanced_across_ranks(self):
        _, group = flat_group(FlatLmWorker, n=2)
        from repro.models.sharding import shard_nbytes

        sizes = [shard_nbytes(w.shard) for w in group.workers]
        assert abs(sizes[0] - sizes[1]) < 2000
