"""Tests for TinyLM parameter sharding (TP/PP rectangles and flat shards)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.models.sharding import (
    flat_shard_params,
    gather_flat_shards,
    gather_full_params,
    layer_of,
    merge_tp_shards,
    param_partition,
    pp_stage_of,
    shard_nbytes,
    shard_params,
    stage_layers,
)
from repro.models.tinylm import TinyLM, TinyLMConfig


@pytest.fixture
def state():
    cfg = TinyLMConfig(
        n_layers=4,
        hidden_size=16,
        n_heads=4,
        ffn_hidden_size=32,
        vocab_size=16,
        max_seq_len=8,
    )
    return TinyLM(cfg, seed=5).state_dict(), cfg


class TestPartitionSpec:
    def test_column_parallel_axes(self):
        assert param_partition("layers.0.attn.wq") == 1
        assert param_partition("layers.3.mlp.w_up") == 1
        assert param_partition("lm_head.weight") == 1

    def test_row_parallel_axes(self):
        assert param_partition("layers.0.attn.wo") == 0
        assert param_partition("layers.2.mlp.w_down") == 0

    def test_replicated(self):
        assert param_partition("layers.1.attn_norm.weight") is None
        assert param_partition("final_norm.weight") is None
        assert param_partition("pos_embed.weight") is None
        assert param_partition("value_head.weight") is None

    def test_unknown_param_raises(self):
        with pytest.raises(KeyError):
            param_partition("mystery.weight")

    def test_layer_extraction(self):
        assert layer_of("layers.2.attn.wq") == 2
        assert layer_of("embed.weight") is None

    def test_stage_assignment(self):
        assert pp_stage_of("embed.weight", 4, 2) == 0
        assert pp_stage_of("lm_head.weight", 4, 2) == 1
        assert pp_stage_of("layers.0.attn.wq", 4, 2) == 0
        assert pp_stage_of("layers.3.attn.wq", 4, 2) == 1

    def test_stage_layers(self):
        assert list(stage_layers(4, 2, 0)) == [0, 1]
        assert list(stage_layers(4, 2, 1)) == [2, 3]
        with pytest.raises(ValueError):
            stage_layers(5, 2, 0)


class TestShardGather:
    @pytest.mark.parametrize("tp,pp", [(1, 1), (2, 1), (4, 1), (1, 2), (2, 2), (4, 4)])
    def test_roundtrip_bit_exact(self, state, tp, pp):
        full, cfg = state
        shards = {
            (p, t): shard_params(full, t, tp, p, pp, cfg.n_layers)
            for p in range(pp)
            for t in range(tp)
        }
        rebuilt = gather_full_params(shards, tp_size=tp, pp_size=pp)
        assert set(rebuilt) == set(full)
        for name in full:
            np.testing.assert_array_equal(rebuilt[name], full[name])

    def test_pp_partitions_are_disjoint_per_layer_param(self, state):
        full, cfg = state
        s0 = shard_params(full, 0, 1, 0, 2, cfg.n_layers)
        s1 = shard_params(full, 0, 1, 1, 2, cfg.n_layers)
        layer_names0 = {n for n in s0 if layer_of(n) is not None}
        layer_names1 = {n for n in s1 if layer_of(n) is not None}
        assert not layer_names0 & layer_names1
        assert "embed.weight" in s0 and "embed.weight" not in s1
        assert "lm_head.weight" in s1 and "lm_head.weight" not in s0

    def test_tp_shards_split_bytes_for_split_params(self, state):
        full, cfg = state
        s = shard_params(full, 0, 4)
        assert s["layers.0.attn.wq"].shape == (16, 4)
        assert s["layers.0.attn.wo"].shape == (4, 16)
        assert s["layers.0.attn_norm.weight"].shape == (16,)  # replicated

    def test_invalid_ranks_rejected(self, state):
        full, cfg = state
        with pytest.raises(ValueError):
            shard_params(full, 2, 2)
        with pytest.raises(ValueError):
            shard_params(full, 0, 1, 1, 2)  # pp>1 without n_layers

    def test_gather_requires_all_shards(self, state):
        full, cfg = state
        shards = {(0, 0): shard_params(full, 0, 2)}
        with pytest.raises(ValueError, match="all"):
            gather_full_params(shards, tp_size=2)

    def test_indivisible_tp_rejected(self, state):
        full, cfg = state
        with pytest.raises(ValueError, match="divisible"):
            shard_params(full, 0, 3)


class TestMergeTpShards:
    def test_merging_two_tp_shards_halves_the_split(self, state):
        full, cfg = state
        quarters = [shard_params(full, t, 4) for t in range(4)]
        left = merge_tp_shards(quarters[:2])
        expected = shard_params(full, 0, 2)
        assert set(left) == set(expected)
        for name in expected:
            np.testing.assert_array_equal(left[name], expected[name])

    def test_mismatched_names_rejected(self, state):
        full, cfg = state
        a = shard_params(full, 0, 2)
        b = dict(shard_params(full, 1, 2))
        del b["embed.weight"]
        with pytest.raises(ValueError, match="disagree"):
            merge_tp_shards([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_tp_shards([])


class TestFlatShards:
    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(1, 7))
    def test_flat_roundtrip(self, n):
        cfg = TinyLMConfig(
            n_layers=1,
            hidden_size=8,
            n_heads=2,
            ffn_hidden_size=12,
            vocab_size=10,
            max_seq_len=8,
        )
        full = TinyLM(cfg, seed=6).state_dict()
        shapes = {k: v.shape for k, v in full.items()}
        pieces = [flat_shard_params(full, r, n) for r in range(n)]
        rebuilt = gather_flat_shards(pieces, shapes)
        for name in full:
            np.testing.assert_array_equal(rebuilt[name], full[name])

    def test_shards_are_balanced(self, state):
        full, _cfg = state
        pieces = [flat_shard_params(full, r, 3) for r in range(3)]
        sizes = [shard_nbytes(p) for p in pieces]
        assert max(sizes) - min(sizes) <= len(full) * 8  # padding only

    def test_rank_out_of_range(self, state):
        full, _ = state
        with pytest.raises(ValueError):
            flat_shard_params(full, 3, 3)
