"""End-to-end PPO across the parallelism grid: every (p, t, d, t_g, p_g)
combination a small cluster admits must run a full RLHF iteration with
finite metrics and consistent replica weights."""

import numpy as np
import pytest

from repro.config import GenParallelConfig, ParallelConfig
from repro.data.dataset import PromptDataset, SyntheticPreferenceTask
from repro.models.tinylm import TinyLMConfig
from repro.parallel.topology import GenGroupingMode
from repro.rlhf.core import AlgoType
from repro.rlhf.trainers import TrainerConfig
from repro.runtime import ModelAssignment, PlacementPlan, build_rlhf_system

CFG = TinyLMConfig(
    n_layers=4,
    hidden_size=32,
    n_heads=4,
    ffn_hidden_size=48,
    vocab_size=16,
    max_seq_len=32,
)
TASK = SyntheticPreferenceTask(vocab_size=16)

#: (pp, tp, dp, gen_pp, gen_tp) — every shape class the engine supports:
#: pure DP, pure TP, pure PP, mixed, and each generation collapse direction.
GRID = [
    (1, 1, 1, 1, 1),
    (1, 2, 1, 1, 1),
    (1, 2, 1, 1, 2),
    (1, 1, 2, 1, 1),
    (2, 1, 1, 1, 1),
    (2, 1, 1, 2, 1),
    (1, 2, 2, 1, 1),
    (1, 2, 2, 1, 2),
    (2, 2, 1, 1, 1),
    (2, 2, 1, 1, 2),
    (2, 2, 1, 2, 2),
    (1, 4, 1, 1, 2),
    (4, 1, 1, 2, 1),
]


@pytest.mark.parametrize("pp,tp,dp,gen_pp,gen_tp", GRID)
@pytest.mark.parametrize(
    "mode", [GenGroupingMode.HYBRIDFLOW, GenGroupingMode.VANILLA]
)
def test_full_iteration_on_grid(pp, tp, dp, gen_pp, gen_tp, mode):
    parallel = ParallelConfig(pp=pp, tp=tp, dp=dp)
    gen = GenParallelConfig.derive(parallel, gen_pp, gen_tp)
    plan = PlacementPlan(
        pools={"main": parallel.world_size, "r": 1},
        assignments={
            "actor": ModelAssignment("main", parallel, gen),
            "critic": ModelAssignment("main", parallel),
            "reference": ModelAssignment("main", parallel),
            "reward": ModelAssignment("r", ParallelConfig(1, 1, 1)),
        },
    )
    system = build_rlhf_system(
        AlgoType.PPO,
        plan,
        CFG,
        trainer_config=TrainerConfig(kl_coef=0.01),
        gen_mode=mode,
        reward_fn=TASK.reward,
        max_new_tokens=5,
        lr=5e-3,
    )
    dataset = PromptDataset(32, 4, 16, seed=1)
    history = system.trainer.train(dataset, 1, 8)

    metrics = history[0]
    assert np.isfinite(metrics["score_mean"])
    assert np.isfinite(metrics["actor/policy_loss"])
    assert np.isfinite(metrics["critic/value_loss"])

    # every DP replica of the actor holds identical post-update weights
    actor = system.groups["actor"]
    states = [
        worker.materialize_full_state()
        for worker in actor.workers
        if worker.is_replica_lead
    ]
    for other in states[1:]:
        for name in states[0]:
            np.testing.assert_array_equal(states[0][name], other[name])

    # generation buffers are fully released after the iteration
    for worker in actor.workers:
        assert not hasattr(worker, "gen_shard")
        assert worker.ctx.device.memory.bytes_for("actor/gen_params_extra") == 0
