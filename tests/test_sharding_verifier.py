"""ShardingVerifier: static proofs of the resharding geometry (SH4xx).

Clean topologies across the full parallelism grid must verify with zero
findings (the zero-redundancy proof of §5.3); each seeded break — a
partition gap, double-ownership, a dropped or duplicated gather tile, an
overlapping collective group, a bad ZeRO degree — must produce exactly one
finding of its rule.
"""

import dataclasses
from fractions import Fraction

import pytest

from repro.analysis import (
    ShardingVerifier,
    sweep_difference_fraction,
    sweep_overlap_fraction,
)
from repro.comm import ProcessGroup, partition_problems
from repro.config import GenParallelConfig, ParallelConfig
from repro.hybrid_engine import plan_transition
from repro.parallel.fsdp import FsdpConfig
from repro.parallel.sharding import (
    ShardRange,
    WeightShard,
    generation_shard,
    peak_param_fraction,
    redundant_fraction,
    shard_overlap_fraction,
    training_shard,
)
from repro.parallel.topology import (
    GenGroupingMode,
    GenTopology,
    ParallelTopology,
)
from repro.parallel.zero import ZeroConfig, ZeroStage

# same shape classes the end-to-end grid test runs (tests/test_parallelism_grid.py)
GRID = [
    (1, 1, 1, 1, 1),
    (1, 2, 1, 1, 1),
    (1, 2, 1, 1, 2),
    (1, 1, 2, 1, 1),
    (2, 1, 1, 1, 1),
    (2, 1, 1, 2, 1),
    (1, 2, 2, 1, 1),
    (1, 2, 2, 1, 2),
    (2, 2, 1, 1, 1),
    (2, 2, 1, 1, 2),
    (2, 2, 1, 2, 2),
    (1, 4, 1, 1, 2),
    (4, 1, 1, 2, 1),
]
MODES = [GenGroupingMode.HYBRIDFLOW, GenGroupingMode.VANILLA]


def make_gen(pp, tp, dp, gen_pp, gen_tp, mode):
    par = ParallelConfig(pp=pp, tp=tp, dp=dp)
    topo = ParallelTopology(par)
    return GenTopology(topo, GenParallelConfig.derive(par, gen_pp, gen_tp), mode)


class TestCleanGrid:
    @pytest.mark.parametrize("pp,tp,dp,gen_pp,gen_tp", GRID)
    @pytest.mark.parametrize("mode", MODES)
    def test_grid_topology_and_transition_prove_clean(
        self, pp, tp, dp, gen_pp, gen_tp, mode
    ):
        gen = make_gen(pp, tp, dp, gen_pp, gen_tp, mode)
        verifier = ShardingVerifier()
        report = verifier.verify_topology(gen.train)
        verifier.verify_transition(gen, report=report)
        assert report.findings == [], "\n".join(report.summary_lines())
        assert report.checked["replicas"] == dp
        assert report.checked["ranks"] == pp * tp * dp

    @pytest.mark.parametrize("pp,tp,dp,gen_pp,gen_tp", GRID)
    def test_hybridflow_plans_are_zero_redundancy(
        self, pp, tp, dp, gen_pp, gen_tp
    ):
        gen = make_gen(pp, tp, dp, gen_pp, gen_tp, GenGroupingMode.HYBRIDFLOW)
        for rank in gen.train.global_ranks:
            assert redundant_fraction(gen, rank) == 0
        report = ShardingVerifier().verify_transition(gen)
        assert report.findings == []

    @pytest.mark.parametrize("pp,tp,dp,gen_pp,gen_tp", GRID)
    @pytest.mark.parametrize("mode", MODES)
    def test_sweep_agrees_with_closed_forms(
        self, pp, tp, dp, gen_pp, gen_tp, mode
    ):
        # the property the verifier's cross-check rests on: the boundary-
        # refinement sweep and the closed-form §5.3 fractions agree exactly
        gen = make_gen(pp, tp, dp, gen_pp, gen_tp, mode)
        for rank in gen.train.global_ranks:
            train_sh = training_shard(gen.train, rank)
            gen_sh = generation_shard(gen, rank)
            overlap = sweep_overlap_fraction(train_sh, gen_sh)
            redundant = sweep_difference_fraction(train_sh, gen_sh)
            assert overlap == shard_overlap_fraction(gen, rank)
            assert redundant == redundant_fraction(gen, rank)
            assert gen_sh.fraction + redundant == peak_param_fraction(gen, rank)


class TestSeededBreaks:
    def _topo(self):
        return ParallelTopology(ParallelConfig(pp=2, tp=2, dp=2))

    def test_gap_is_exactly_one_sh401(self):
        topo = self._topo()
        shards = {r: training_shard(topo, r) for r in topo.global_ranks}
        # shrink rank 0's tensor range: its replica now has a coverage gap
        s = shards[0]
        shards[0] = WeightShard(
            s.layers, ShardRange(s.tensor.start, s.tensor.stop / 2)
        )
        report = ShardingVerifier().verify_topology(topo, shards=shards)
        assert [f.rule for f in report.findings] == ["SH401"]
        assert "gap fraction 1/8" in report.findings[0].message

    def test_double_ownership_is_exactly_one_sh401(self):
        topo = self._topo()
        shards = {r: training_shard(topo, r) for r in topo.global_ranks}
        # rank 0 claims rank 1's tensor half too: double ownership, no gap
        s = shards[0]
        shards[0] = WeightShard(s.layers, ShardRange(Fraction(0), Fraction(1)))
        report = ShardingVerifier().verify_topology(topo, shards=shards)
        assert [f.rule for f in report.findings] == ["SH401"]
        assert "double-owned fraction 1/4" in report.findings[0].message

    def test_dropped_tile_is_exactly_one_sh402(self):
        gen = make_gen(2, 2, 1, 1, 2, GenGroupingMode.HYBRIDFLOW)
        plan = plan_transition(gen)
        rp = plan.by_rank[0]
        broken = dataclasses.replace(rp, tiles=rp.tiles[1:])
        plan = dataclasses.replace(plan, by_rank={**plan.by_rank, 0: broken})
        report = ShardingVerifier().verify_transition(gen, plan=plan)
        assert [f.rule for f in report.findings] == ["SH402"]
        assert "uncovered gap" in report.findings[0].message

    def test_duplicated_tile_is_exactly_one_sh403(self):
        gen = make_gen(2, 2, 1, 1, 2, GenGroupingMode.HYBRIDFLOW)
        plan = plan_transition(gen)
        rp = plan.by_rank[0]
        broken = dataclasses.replace(rp, tiles=rp.tiles + rp.tiles[:1])
        plan = dataclasses.replace(plan, by_rank={**plan.by_rank, 0: broken})
        report = ShardingVerifier().verify_transition(gen, plan=plan)
        assert [f.rule for f in report.findings] == ["SH403"]
        assert "redundant fraction" in report.findings[0].message

    def test_foreign_tile_is_sh402_provenance(self):
        gen = make_gen(2, 2, 1, 1, 2, GenGroupingMode.HYBRIDFLOW)
        plan = plan_transition(gen)
        rp = plan.by_rank[0]
        # replace a tile's source with a rank that does not own it
        tile = dataclasses.replace(rp.tiles[0], source_rank=3)
        broken = dataclasses.replace(rp, tiles=(tile,) + rp.tiles[1:])
        plan = dataclasses.replace(plan, by_rank={**plan.by_rank, 0: broken})
        report = ShardingVerifier().verify_transition(gen, plan=plan)
        rules = [f.rule for f in report.findings]
        assert rules == ["SH402"]
        assert "outside that rank's training shard" in report.findings[0].message

    def test_overlapping_groups_are_exactly_one_sh404(self):
        groups = [
            ProcessGroup([0, 1], name="g0"),
            ProcessGroup([1, 2], name="g1"),
        ]
        report = ShardingVerifier().verify_group_family(
            "tp", groups, universe=[0, 1, 2, 3]
        )
        assert [f.rule for f in report.findings] == ["SH404"]
        msg = report.findings[0].message
        assert "rank 1" in msg and "[3]" in msg

    def test_partition_problems_reports_each_kind(self):
        groups = [ProcessGroup([0, 9], name="g0")]
        problems = partition_problems(groups, universe=[0, 1])
        assert any("9" in p for p in problems)  # outside the universe
        assert any("1" in p for p in problems)  # missing

    def test_bad_zero_degree_is_exactly_one_sh405(self):
        report = ShardingVerifier().verify_zero(
            ZeroConfig(ZeroStage.PARAMETERS, dp=4), n_params=1000, world_size=8
        )
        assert [f.rule for f in report.findings] == ["SH405"]
        assert "world size" in report.findings[0].message

    def test_zero_over_capacity_is_sh405(self):
        report = ShardingVerifier().verify_zero(
            ZeroConfig(ZeroStage.DDP, dp=1),
            n_params=10**9,
            world_size=1,
            capacity_bytes=10**9,  # 16 GB of state cannot fit 1 GB
        )
        assert [f.rule for f in report.findings] == ["SH405"]
        assert "capacity" in report.findings[0].message

    def test_clean_zero_and_fsdp_verify(self):
        verifier = ShardingVerifier()
        report = verifier.verify_zero(
            ZeroConfig(ZeroStage.PARAMETERS, dp=8),
            n_params=10**9,
            world_size=8,
            capacity_bytes=80 * 10**9,
        )
        verifier.verify_fsdp(
            FsdpConfig(dp=8, strategy="full"),
            10**9,
            8,
            capacity_bytes=80 * 10**9,
            report=report,
        )
        assert report.findings == [], "\n".join(report.summary_lines())
        assert report.checked["zero_configs"] == 2
