"""Tests for advantage estimators and RLHF losses."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.batch import DataBatch
from repro.models.autograd import Tensor
from repro.rlhf import losses as L
from repro.rlhf.advantage import (
    compose_token_rewards,
    gae_advantages,
    grpo_advantages,
    remax_advantages,
    whiten,
)
from repro.rlhf.core import AlgoType, compute_advantages


class TestComposeTokenRewards:
    def test_score_lands_on_final_token(self):
        scores = np.array([2.0])
        logp = np.zeros((1, 4))
        rewards = compose_token_rewards(scores, logp, logp, kl_coef=0.1)
        np.testing.assert_allclose(rewards, [[0, 0, 0, 2.0]])

    def test_kl_penalty_sign(self):
        """Actor more confident than reference => negative shaped reward."""
        scores = np.zeros(1)
        logp = np.full((1, 3), -0.5)
        ref = np.full((1, 3), -1.0)
        rewards = compose_token_rewards(scores, logp, ref, kl_coef=0.2)
        np.testing.assert_allclose(rewards, np.full((1, 3), -0.1))

    def test_kl_clipping(self):
        scores = np.zeros(1)
        logp = np.zeros((1, 2))
        ref = np.full((1, 2), -100.0)
        rewards = compose_token_rewards(scores, logp, ref, kl_coef=1.0, clip_kl=5.0)
        np.testing.assert_allclose(rewards, [[-5.0, -5.0]])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            compose_token_rewards(np.zeros(2), np.zeros((1, 3)), np.zeros((1, 3)))
        with pytest.raises(ValueError):
            compose_token_rewards(np.zeros(1), np.zeros((1, 3)), np.zeros((1, 4)))


class TestGAE:
    def test_matches_manual_recursion(self):
        rewards = np.array([[1.0, 0.0, 2.0]])
        values = np.array([[0.5, 0.2, 0.1]])
        gamma, lam = 0.9, 0.8
        adv, ret = gae_advantages(rewards, values, gamma, lam)
        # manual backwards recursion
        d2 = 2.0 + 0 - 0.1
        d1 = 0.0 + 0.9 * 0.1 - 0.2
        d0 = 1.0 + 0.9 * 0.2 - 0.5
        a2 = d2
        a1 = d1 + 0.9 * 0.8 * a2
        a0 = d0 + 0.9 * 0.8 * a1
        np.testing.assert_allclose(adv, [[a0, a1, a2]])
        np.testing.assert_allclose(ret, adv + values)

    def test_lambda_zero_is_td_error(self):
        rewards = np.array([[1.0, 1.0]])
        values = np.array([[0.3, 0.6]])
        adv, _ = gae_advantages(rewards, values, gamma=1.0, lam=0.0)
        np.testing.assert_allclose(adv, [[1.0 + 0.6 - 0.3, 1.0 - 0.6]])

    def test_perfect_critic_gives_zero_advantage(self):
        """When values equal the exact returns, advantages vanish."""
        rewards = np.array([[0.0, 0.0, 3.0]])
        values = np.array([[3.0, 3.0, 3.0]])  # undiscounted sum-to-go
        adv, _ = gae_advantages(rewards, values, gamma=1.0, lam=1.0)
        np.testing.assert_allclose(adv, np.zeros((1, 3)), atol=1e-12)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            gae_advantages(np.zeros((1, 3)), np.zeros((1, 4)))

    @settings(max_examples=20, deadline=None)
    @given(
        batch=st.integers(1, 4),
        horizon=st.integers(1, 10),
        seed=st.integers(0, 100),
    )
    def test_lambda_one_gamma_one_is_reward_to_go_minus_value(
        self, batch, horizon, seed
    ):
        rng = np.random.default_rng(seed)
        rewards = rng.normal(size=(batch, horizon))
        values = rng.normal(size=(batch, horizon))
        adv, _ = gae_advantages(rewards, values, gamma=1.0, lam=1.0)
        togo = np.cumsum(rewards[:, ::-1], axis=1)[:, ::-1]
        np.testing.assert_allclose(adv, togo - values, atol=1e-9)


class TestWhiten:
    def test_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        x = whiten(rng.normal(3.0, 5.0, size=(4, 8)))
        assert abs(x.mean()) < 1e-10
        assert abs(x.std() - 1.0) < 1e-6


class TestReMaxAdvantage:
    def test_baseline_subtraction_and_broadcast(self):
        adv = remax_advantages(np.array([2.0, 1.0]), np.array([1.5, 1.5]), 3)
        np.testing.assert_allclose(adv, [[0.5] * 3, [-0.5] * 3])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            remax_advantages(np.zeros(2), np.zeros(3), 4)


class TestGRPOAdvantage:
    def test_group_normalisation(self):
        rewards = np.array([1.0, 3.0, 0.0, 0.0])
        adv = grpo_advantages(rewards, group_size=2, response_length=2)
        assert adv.shape == (4, 2)
        np.testing.assert_allclose(adv[0], [-1.0, -1.0], atol=1e-6)
        np.testing.assert_allclose(adv[1], [1.0, 1.0], atol=1e-6)
        np.testing.assert_allclose(adv[2], [0.0, 0.0], atol=1e-6)  # zero std

    def test_validation(self):
        with pytest.raises(ValueError):
            grpo_advantages(np.zeros(4), group_size=1, response_length=2)
        with pytest.raises(ValueError):
            grpo_advantages(np.zeros(5), group_size=2, response_length=2)
        with pytest.raises(ValueError):
            grpo_advantages(np.zeros((2, 2)), group_size=2, response_length=2)


class TestPPOLoss:
    def test_zero_drift_loss_is_negative_mean_advantage(self):
        logp = Tensor(np.full((2, 3), -1.0), requires_grad=True)
        adv = np.full((2, 3), 0.5)
        loss, metrics = L.ppo_policy_loss(logp, logp.data.copy(), adv)
        assert loss.item() == pytest.approx(-0.5)
        assert metrics["clip_frac"] == 0.0
        assert metrics["ratio_mean"] == pytest.approx(1.0)

    def test_gradient_pushes_towards_positive_advantage(self):
        logp = Tensor(np.zeros((1, 2)), requires_grad=True)
        old = np.zeros((1, 2))
        adv = np.array([[1.0, -1.0]])
        loss, _ = L.ppo_policy_loss(logp, old, adv)
        loss.backward()
        assert logp.grad[0, 0] < 0  # increase log-prob of positive-adv token
        assert logp.grad[0, 1] > 0

    def test_clipping_kills_gradient_outside_range(self):
        # ratio = e^1 ≈ 2.7 >> 1+eps with positive advantage: clipped, so
        # the surrogate is constant and gradient vanishes
        logp = Tensor(np.array([[1.0]]), requires_grad=True)
        old = np.array([[0.0]])
        adv = np.array([[1.0]])
        loss, metrics = L.ppo_policy_loss(logp, old, adv, clip_ratio=0.2)
        loss.backward()
        assert metrics["clip_frac"] == 1.0
        np.testing.assert_allclose(logp.grad, [[0.0]])


class TestValueLoss:
    def test_perfect_values_zero_loss(self):
        values = Tensor(np.ones((2, 2)), requires_grad=True)
        loss, metrics = L.value_loss(values, np.ones((2, 2)), np.ones((2, 2)))
        assert loss.item() == 0.0
        assert metrics["explained_var"] == 0.0  # zero-variance target

    def test_clip_takes_worse_error(self):
        values = Tensor(np.array([[2.0]]), requires_grad=True)
        old = np.array([[0.0]])
        returns = np.array([[2.0]])
        loss, _ = L.value_loss(values, old, returns, clip_range=0.2)
        # clipped prediction is 0.2 -> error (0.2-2)^2 = 3.24; unclipped 0
        assert loss.item() == pytest.approx(0.5 * 3.24)


class TestKLAndSafety:
    def test_k1_and_k3_estimators(self):
        logp = Tensor(np.full((1, 2), -1.0))
        ref = np.full((1, 2), -1.5)
        assert L.kl_penalty(logp, ref, "k1").item() == pytest.approx(0.5)
        k3 = L.kl_penalty(logp, ref, "k3").item()
        assert k3 == pytest.approx(np.exp(-0.5) - 1 + 0.5)
        with pytest.raises(ValueError):
            L.kl_penalty(logp, ref, "k9")

    def test_k3_nonnegative_property(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            logp = Tensor(rng.normal(size=(2, 3)))
            ref = rng.normal(size=(2, 3))
            assert L.kl_penalty(logp, ref, "k3").item() >= 0

    def test_pretrain_loss_is_nll(self):
        logp = Tensor(np.full((2, 2), -2.0))
        assert L.pretrain_loss(logp).item() == pytest.approx(2.0)

    def test_safe_rlhf_combines_advantages(self):
        logp = Tensor(np.zeros((1, 1)), requires_grad=True)
        old = np.zeros((1, 1))
        loss, metrics = L.safe_rlhf_policy_loss(
            logp, old, np.array([[1.0]]), np.array([[1.0]]), lagrange_multiplier=1.0
        )
        # combined advantage (1 - 1*1)/(1+1) = 0 -> loss 0
        assert loss.item() == pytest.approx(0.0)
        assert metrics["lagrange_multiplier"] == 1.0

    def test_lagrange_update_direction(self):
        up = L.update_lagrange_multiplier(0.5, np.array([0.9]), cost_limit=0.1, lr=1.0)
        assert up == pytest.approx(1.3)
        down = L.update_lagrange_multiplier(0.5, np.array([0.0]), cost_limit=0.1, lr=1.0)
        assert down == pytest.approx(0.4)
        floor = L.update_lagrange_multiplier(0.0, np.array([0.0]), cost_limit=1.0, lr=1.0)
        assert floor == 0.0

    def test_grpo_loss_adds_kl_term(self):
        logp = Tensor(np.zeros((1, 2)), requires_grad=True)
        old = np.zeros((1, 2))
        ref = np.full((1, 2), -1.0)
        adv = np.zeros((1, 2))
        loss, metrics = L.grpo_policy_loss(logp, old, adv, ref, kl_coef=0.5)
        assert metrics["kl_to_ref"] > 0
        assert loss.item() == pytest.approx(0.5 * metrics["kl_to_ref"])


class TestComputeAdvantages:
    def batch(self, n=4, t=3):
        rng = np.random.default_rng(0)
        return DataBatch(
            {
                "scores": rng.normal(size=n),
                "log_probs": -np.abs(rng.normal(size=(n, t))),
                "ref_log_probs": -np.abs(rng.normal(size=(n, t))),
                "values": rng.normal(size=(n, t)),
            }
        )

    def test_ppo_adds_advantages_and_returns(self):
        out = compute_advantages(self.batch(), AlgoType.PPO)
        assert out["advantages"].shape == (4, 3)
        assert out["returns"].shape == (4, 3)
        assert abs(out["advantages"].mean()) < 1e-9  # whitened

    def test_safe_rlhf_adds_cost_columns(self):
        b = self.batch()
        b["costs"] = np.abs(np.random.default_rng(1).normal(size=4))
        b["cost_values"] = np.zeros((4, 3))
        out = compute_advantages(b, AlgoType.SAFE_RLHF)
        assert "cost_advantages" in out and "cost_returns" in out

    def test_remax(self):
        b = self.batch()
        b["baseline_scores"] = np.zeros(4)
        out = compute_advantages(b, AlgoType.REMAX)
        assert out["advantages"].shape == (4, 3)
        # sequence-level advantage broadcast: identical across tokens
        assert np.allclose(out["advantages"].std(axis=1), 0)

    def test_grpo(self):
        out = compute_advantages(self.batch(), AlgoType.GRPO, group_size=2)
        assert out["advantages"].shape == (4, 3)

    def test_accepts_string_algo(self):
        b = self.batch()
        out = compute_advantages(b, "ppo")
        assert "advantages" in out

    def test_original_batch_unmodified(self):
        b = self.batch()
        compute_advantages(b, AlgoType.PPO)
        assert "advantages" not in b
