"""Gradient-correctness tests for the autograd engine (finite differences)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.models import autograd as ag
from repro.models.autograd import Tensor, no_grad


def finite_diff(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f`` at ``x``."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = f(x)
        flat[i] = orig - eps
        down = f(x)
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return grad


def check_gradient(op, shape=(3, 4), seed=0, positive=False):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=shape)
    if positive:
        data = np.abs(data) + 0.5
    x = Tensor(data.copy(), requires_grad=True)
    out = op(x)
    loss = out.sum() if out.size > 1 else out
    loss.backward()

    def f(arr):
        return float(op(Tensor(arr)).sum().item())

    expected = finite_diff(f, data.copy())
    np.testing.assert_allclose(x.grad, expected, rtol=1e-5, atol=1e-7)


UNARY_OPS = {
    "exp": lambda x: x.exp(),
    "log": lambda x: x.log(),
    "tanh": lambda x: x.tanh(),
    "sigmoid": lambda x: x.sigmoid(),
    "silu": lambda x: x.silu(),
    "relu": lambda x: x.relu(),
    "sqrt": lambda x: x.sqrt(),
    "abs": lambda x: x.abs(),
    "neg": lambda x: -x,
    "square": lambda x: x**2,
    "clip": lambda x: x.clip(-0.5, 0.5),
    "mean": lambda x: x.mean(),
    "sum_axis": lambda x: x.sum(axis=1),
    "reshape": lambda x: x.reshape(12),
    "transpose": lambda x: x.transpose(1, 0),
    "softmax": lambda x: ag.softmax(x),
    "log_softmax": lambda x: ag.log_softmax(x),
    "getitem": lambda x: x[1:, :2],
}


@pytest.mark.parametrize("name", sorted(UNARY_OPS))
def test_unary_gradients(name):
    positive = name in ("log", "sqrt")
    check_gradient(UNARY_OPS[name], positive=positive)


def test_matmul_gradients():
    rng = np.random.default_rng(1)
    a_data = rng.normal(size=(3, 4))
    b_data = rng.normal(size=(4, 5))
    a = Tensor(a_data.copy(), requires_grad=True)
    b = Tensor(b_data.copy(), requires_grad=True)
    (a @ b).sum().backward()
    fd_a = finite_diff(lambda arr: float((Tensor(arr) @ Tensor(b_data)).sum().item()), a_data.copy())
    fd_b = finite_diff(lambda arr: float((Tensor(a_data) @ Tensor(arr)).sum().item()), b_data.copy())
    np.testing.assert_allclose(a.grad, fd_a, rtol=1e-6)
    np.testing.assert_allclose(b.grad, fd_b, rtol=1e-6)


def test_batched_matmul_gradients():
    rng = np.random.default_rng(2)
    a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
    b = Tensor(rng.normal(size=(2, 4, 5)), requires_grad=True)
    (a @ b).sum().backward()
    assert a.grad.shape == (2, 3, 4)
    assert b.grad.shape == (2, 4, 5)
    np.testing.assert_allclose(a.grad, np.ones((2, 3, 5)) @ np.swapaxes(b.data, -1, -2))


def test_broadcast_gradients_fold_back():
    bias = Tensor(np.zeros(4), requires_grad=True)
    x = Tensor(np.ones((3, 4)))
    (x + bias).sum().backward()
    np.testing.assert_allclose(bias.grad, [3.0, 3.0, 3.0, 3.0])


def test_scalar_broadcast():
    x = Tensor(np.ones((2, 2)), requires_grad=True)
    (2.0 * x + 1.0).sum().backward()
    np.testing.assert_allclose(x.grad, 2.0 * np.ones((2, 2)))


def test_ndarray_left_operand_defers_to_tensor():
    x = Tensor(np.ones(3), requires_grad=True)
    out = np.array([1.0, 2.0, 3.0]) + x
    assert isinstance(out, Tensor)
    out = np.array([2.0, 2.0, 2.0]) * x
    assert isinstance(out, Tensor)
    out.sum().backward()
    np.testing.assert_allclose(x.grad, [2.0, 2.0, 2.0])


def test_division_gradients():
    rng = np.random.default_rng(3)
    a_data = rng.normal(size=(3,)) + 3.0
    b_data = rng.normal(size=(3,)) + 3.0
    a = Tensor(a_data.copy(), requires_grad=True)
    b = Tensor(b_data.copy(), requires_grad=True)
    (a / b).sum().backward()
    np.testing.assert_allclose(a.grad, 1.0 / b_data)
    np.testing.assert_allclose(b.grad, -a_data / b_data**2)


def test_maximum_routes_gradient_to_winner():
    a = Tensor(np.array([1.0, 5.0]), requires_grad=True)
    b = Tensor(np.array([3.0, 2.0]), requires_grad=True)
    a.maximum(b).sum().backward()
    np.testing.assert_allclose(a.grad, [0.0, 1.0])
    np.testing.assert_allclose(b.grad, [1.0, 0.0])


def test_where_routes_gradient():
    a = Tensor(np.ones(3), requires_grad=True)
    b = Tensor(np.zeros(3), requires_grad=True)
    cond = np.array([True, False, True])
    ag.where(cond, a, b).sum().backward()
    np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
    np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])


def test_concatenate_and_stack_gradients():
    a = Tensor(np.ones((2, 2)), requires_grad=True)
    b = Tensor(np.ones((3, 2)), requires_grad=True)
    out = ag.concatenate([a, b], axis=0)
    (out * Tensor(np.arange(10.0).reshape(5, 2))).sum().backward()
    np.testing.assert_allclose(a.grad, [[0, 1], [2, 3]])
    np.testing.assert_allclose(b.grad, [[4, 5], [6, 7], [8, 9]])

    c = Tensor(np.ones(3), requires_grad=True)
    d = Tensor(np.ones(3), requires_grad=True)
    ag.stack([c, d])[1].sum().backward()
    np.testing.assert_allclose(c.grad, [0, 0, 0])
    np.testing.assert_allclose(d.grad, [1, 1, 1])


def test_embedding_accumulates_duplicate_indices():
    table = Tensor(np.zeros((4, 2)), requires_grad=True)
    ids = np.array([[1, 1, 3]])
    ag.embedding(table, ids).sum().backward()
    np.testing.assert_allclose(table.grad[1], [2.0, 2.0])
    np.testing.assert_allclose(table.grad[3], [1.0, 1.0])
    np.testing.assert_allclose(table.grad[0], [0.0, 0.0])


def test_gather_last_gradient():
    x = Tensor(np.zeros((2, 3)), requires_grad=True)
    idx = np.array([2, 0])
    ag.gather_last(x, idx).sum().backward()
    expected = np.zeros((2, 3))
    expected[0, 2] = 1.0
    expected[1, 0] = 1.0
    np.testing.assert_allclose(x.grad, expected)


def test_gradient_accumulates_across_uses():
    x = Tensor(np.ones(2), requires_grad=True)
    (x + x).sum().backward()
    np.testing.assert_allclose(x.grad, [2.0, 2.0])


def test_no_grad_blocks_graph():
    x = Tensor(np.ones(2), requires_grad=True)
    with no_grad():
        y = (x * 2).sum()
    assert not y.requires_grad
    with pytest.raises(RuntimeError):
        y.backward()


def test_backward_requires_scalar_or_grad():
    x = Tensor(np.ones(3), requires_grad=True)
    with pytest.raises(RuntimeError, match="scalar"):
        (x * 2).backward()
    (x * 2).backward(np.ones(3))
    np.testing.assert_allclose(x.grad, [2.0, 2.0, 2.0])


def test_deep_graph_no_recursion_error():
    x = Tensor(np.array([1.0]), requires_grad=True)
    y = x
    for _ in range(3000):
        y = y + 1.0
    y.sum().backward()
    np.testing.assert_allclose(x.grad, [1.0])


@settings(max_examples=20, deadline=None)
@given(
    rows=st.integers(1, 4),
    cols=st.integers(2, 6),
    seed=st.integers(0, 100),
)
def test_softmax_rows_sum_to_one_and_logsoftmax_consistent(rows, cols, seed):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(rows, cols)) * 5)
    sm = ag.softmax(x).data
    np.testing.assert_allclose(sm.sum(axis=-1), np.ones(rows), rtol=1e-12)
    np.testing.assert_allclose(np.log(sm), ag.log_softmax(x).data, atol=1e-9)
