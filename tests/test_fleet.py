"""Multi-tenant fleet scheduling: admission, chaos, preemption, accounting.

The acceptance scenario: three concurrent tenant jobs on one shared
12-GPU cluster, a correlated double-machine kill at tick 2, every job
completes, the elastic tenant resizes dp=2 -> dp=1 and its post-restore
trajectory is bit-exact with a fresh resized build restored from the same
checkpoint, and the DF/TA/SH/RC analysis gate stays clean.
"""

import json

import pytest

from repro.config import ClusterSpec
from repro.faults import FaultPlan
from repro.fleet import FleetScheduler, JobSpec, JobState, jain_fairness
from repro.observability import collect_fleet_metrics
from repro.rlhf import AlgoType
from repro.runtime import restore_system

SPEC_12 = ClusterSpec(n_machines=3, gpus_per_machine=4)
SPEC_8 = ClusterSpec(n_machines=2, gpus_per_machine=4)

#: Trainer metric keys compared for bit-exactness.
FLOAT_KEYS = (
    "score_mean",
    "critic/value_loss",
    "critic/value_clip_frac",
    "critic/explained_var",
    "actor/policy_loss",
    "actor/clip_frac",
    "actor/approx_kl",
    "actor/ratio_mean",
)


def tenant(name, **kw):
    kw.setdefault("n_iterations", 3)
    kw.setdefault("seed", {"alpha": 7, "beta": 11, "gamma": 13}.get(name, 7))
    return JobSpec(name=name, **kw)


def assert_bit_exact(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        for key in FLOAT_KEYS:
            assert g[key] == w[key], key


def run_solo(spec, tmp_path, dp=None):
    """One job alone on its own fleet: the bit-exactness reference."""
    solo = JobSpec(**{**spec.__dict__, "preferred_dp": dp or spec.preferred_dp})
    scheduler = FleetScheduler(SPEC_12, [solo], checkpoint_root=str(tmp_path / "solo"))
    report = scheduler.run()
    assert report.all_completed
    return scheduler.jobs[0].history


class TestJobSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty name"):
            JobSpec(name="")
        with pytest.raises(ValueError, match="n_iterations"):
            JobSpec(name="j", n_iterations=0)
        with pytest.raises(ValueError, match="checkpoint_every"):
            JobSpec(name="j", checkpoint_every=0)
        with pytest.raises(ValueError, match="min_dp"):
            JobSpec(name="j", preferred_dp=1, min_dp=2)
        with pytest.raises(ValueError, match="support"):
            JobSpec(name="j", algo=AlgoType.SAFE_RLHF)
        with pytest.raises(ValueError, match="no admissible DP width"):
            JobSpec(name="j", preferred_dp=3, min_dp=3, batch_size=8)

    def test_candidate_dps_skip_indivisible_widths(self):
        spec = JobSpec(name="j", preferred_dp=4, min_dp=1, batch_size=8)
        assert spec.candidate_dps() == [4, 2, 1]  # 3 does not divide 8

    def test_gpu_demand(self):
        spec = JobSpec(name="j", tp=2, preferred_dp=2, min_dp=1)
        assert spec.gpus_at(2) == 5  # 2x2 model pool + 1 reward GPU
        assert spec.min_gpus == 3

    def test_build_rejects_inadmissible_width(self):
        spec = JobSpec(name="j", preferred_dp=2, min_dp=1, batch_size=8)
        with pytest.raises(ValueError, match="cannot run at dp=3"):
            spec.build(cluster_spec=SPEC_12, dp=3)


class TestJainFairness:
    def test_bounds_and_known_values(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([0.0, 0.0]) == 1.0
        assert jain_fairness([0.5, 0.5, 0.5]) == pytest.approx(1.0)
        assert jain_fairness([1.0, 0.0]) == pytest.approx(0.5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            jain_fairness([0.5, -0.1])


class TestCleanFleet:
    def test_three_tenants_complete_bit_exactly(self, tmp_path):
        jobs = [
            tenant("alpha", preferred_dp=2, min_dp=1, n_iterations=4),
            tenant("beta"),
            tenant("gamma"),
        ]
        scheduler = FleetScheduler(
            SPEC_12, jobs, checkpoint_root=str(tmp_path), run_checks=True
        )
        report = scheduler.run()
        assert report.all_completed
        assert report.devices_killed == 0
        assert report.failures == 0
        assert report.fairness == pytest.approx(1.0)
        assert report.checks_run and report.analysis_findings == {}
        # sharing a cluster must not perturb any tenant's numerics
        for runtime in scheduler.jobs:
            assert_bit_exact(
                runtime.history, run_solo(runtime.spec, tmp_path / runtime.spec.name)
            )

    def test_report_round_trips_through_json(self, tmp_path):
        jobs = [tenant("alpha"), tenant("beta")]
        report = FleetScheduler(
            SPEC_12, jobs, checkpoint_root=str(tmp_path)
        ).run()
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["all_completed"] is True
        assert {j["name"] for j in payload["jobs"]} == {"alpha", "beta"}
        assert all(j["goodput"] > 0 for j in payload["jobs"])

    def test_duplicate_names_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unique"):
            FleetScheduler(
                SPEC_12,
                [tenant("alpha"), tenant("alpha")],
                checkpoint_root=str(tmp_path),
            )


class TestChaosAcceptance:
    """Correlated double-machine kill: resize, degrade, resume bit-exact."""

    @pytest.fixture(scope="class")
    def chaos(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("fleet-chaos")
        plan = FaultPlan()
        plan.kill_machines([0, 2], at_step=2)  # one correlated event
        jobs = [
            tenant("alpha", preferred_dp=2, min_dp=1, n_iterations=4),
            tenant("beta"),
            tenant("gamma"),
        ]
        scheduler = FleetScheduler(
            SPEC_12,
            jobs,
            checkpoint_root=str(tmp_path),
            fault_plan=plan,
            run_checks=True,
            keep_recovery_checkpoints=True,
        )
        return scheduler, scheduler.run()

    def test_every_job_completes(self, chaos):
        _, report = chaos
        assert report.all_completed
        assert report.devices_killed == 8  # machines 0 and 2, 4 GPUs each

    def test_elastic_tenant_resized(self, chaos):
        _, report = chaos
        alpha = report.job("alpha")
        assert alpha.failures == 1
        assert alpha.resizes == 1 and alpha.dp == 1
        # checkpoint_every=1: only the in-flight iteration was lost, never
        # completed work
        assert alpha.lost_iterations == 0

    def test_mttr_and_goodput_accounted(self, chaos):
        _, report = chaos
        for name in ("alpha", "gamma"):
            row = report.job(name)
            assert row.failures == 1
            assert row.mttr > 0
            assert 0 < row.goodput < 1  # repairs and re-runs erode it
        assert report.job("beta").failures == 0
        assert report.mttr == pytest.approx(
            sum(j.downtime for j in report.jobs) / report.failures
        )
        assert 0 < report.fairness <= 1

    def test_degraded_tenant_waited_not_failed(self, chaos):
        scheduler, report = chaos
        # alpha could not readmit right away (only one surviving machine,
        # partly occupied): it aged in the queue — degraded, never failed —
        # until capacity freed up, then resumed narrow
        assert report.job("alpha").wait_ticks > 0
        assert report.job("alpha").state == JobState.COMPLETED
        # gamma's recovery found capacity the moment beta completed, so it
        # was readmitted inline at its original width
        assert report.job("gamma").state == JobState.COMPLETED
        assert report.job("gamma").resizes == 0

    def test_analysis_gate_clean(self, chaos):
        _, report = chaos
        assert report.checks_run
        assert report.analysis_findings == {}

    def test_resized_resume_is_bit_exact(self, chaos):
        """Post-restore trajectory == fresh resized build + same checkpoint."""
        scheduler, _ = chaos
        alpha = next(j for j in scheduler.jobs if j.spec.name == "alpha")
        assert len(alpha.recovery_points) == 1
        point = alpha.recovery_points[0]
        assert point["dp"] == 1 and point["snapshot"] is not None

        spec = alpha.spec
        reference = spec.build(
            cluster_spec=ClusterSpec(n_machines=1, gpus_per_machine=4),
            dp=point["dp"],
        )
        resumed, _ = restore_system(
            reference, point["snapshot"], allow_resize=True
        )
        assert resumed == point["resumed_iteration"]
        batches = spec.dataset().iter_batches(spec.batch_size, epochs=10**6)
        for _ in range(resumed):
            next(batches)
        replay = [
            reference.trainer.run_step(next(batches))
            for _ in range(spec.n_iterations - resumed)
        ]
        assert_bit_exact(alpha.history[resumed:], replay)


class TestPreemption:
    def test_high_priority_arrival_preempts_weakest(self, tmp_path):
        jobs = [
            tenant("low-a", priority=0, preferred_dp=2, min_dp=1, n_iterations=4),
            tenant("low-b", priority=0, n_iterations=4),
            tenant("high", priority=10, arrival_tick=1),
        ]
        scheduler = FleetScheduler(
            SPEC_8, jobs, checkpoint_root=str(tmp_path), run_checks=True
        )
        report = scheduler.run()
        assert report.all_completed
        assert report.preemptions == 1
        victim = report.job("low-a")
        assert victim.preemptions == 1
        # checkpoint-and-evict: progress at eviction survives
        assert victim.lost_iterations == 0
        assert victim.iterations == 4
        # preemption overhead is not repair time
        assert victim.failures == 0 and victim.mttr == 0.0
        assert report.analysis_findings == {}
        runtime = next(j for j in scheduler.jobs if j.spec.name == "low-a")
        assert_bit_exact(
            runtime.history, run_solo(runtime.spec, tmp_path / "ref")
        )

    def test_preemption_never_evicts_equal_priority(self, tmp_path):
        jobs = [
            tenant("low-a", priority=0, preferred_dp=2, min_dp=1, n_iterations=2),
            tenant("low-b", priority=0, n_iterations=2),
            tenant("peer", priority=0, arrival_tick=1, n_iterations=2),
        ]
        report = FleetScheduler(
            SPEC_8, jobs, checkpoint_root=str(tmp_path)
        ).run()
        assert report.all_completed  # peer waits its turn instead
        assert report.preemptions == 0
        assert report.job("peer").wait_ticks > 0

    def test_preemption_can_be_disabled(self, tmp_path):
        jobs = [
            tenant("low-a", priority=0, preferred_dp=2, min_dp=1, n_iterations=2),
            tenant("low-b", priority=0, n_iterations=2),
            tenant("high", priority=10, arrival_tick=1, n_iterations=2),
        ]
        report = FleetScheduler(
            SPEC_8, jobs, checkpoint_root=str(tmp_path), preemption=False
        ).run()
        assert report.all_completed
        assert report.preemptions == 0
        assert report.job("high").wait_ticks > 0


class TestGracefulDegradation:
    def test_oversized_job_fails_typed_not_livelocked(self, tmp_path):
        small = ClusterSpec(n_machines=1, gpus_per_machine=2)
        jobs = [tenant("huge", preferred_dp=2, min_dp=2)]  # needs 5 of 2 GPUs
        report = FleetScheduler(
            small, jobs, checkpoint_root=str(tmp_path)
        ).run()
        huge = report.job("huge")
        assert huge.state == JobState.FAILED
        assert "unschedulable" in huge.detail
        assert report.ticks < 10  # detected promptly, no tick-budget spin

    def test_fitting_peer_still_completes(self, tmp_path):
        small = ClusterSpec(n_machines=1, gpus_per_machine=4)
        jobs = [
            tenant("huge", preferred_dp=4, min_dp=4, batch_size=8),  # 9 GPUs
            tenant("small", n_iterations=2),
        ]
        report = FleetScheduler(
            small, jobs, checkpoint_root=str(tmp_path)
        ).run()
        assert report.job("small").state == JobState.COMPLETED
        assert report.job("huge").state == JobState.FAILED


class TestFleetMetrics:
    def test_collect_fleet_metrics_samples_per_job_gauges(self, tmp_path):
        jobs = [tenant("alpha"), tenant("beta")]
        scheduler = FleetScheduler(SPEC_12, jobs, checkpoint_root=str(tmp_path))
        report = scheduler.run()
        registry = collect_fleet_metrics(scheduler)
        for name in ("alpha", "beta"):
            assert registry.value("repro_fleet_job_state", job=name) == 2.0
            assert registry.value("repro_fleet_job_iterations", job=name) == 3.0
            assert registry.value("repro_fleet_job_goodput", job=name) > 0
        assert registry.value("repro_fleet_fairness") == pytest.approx(
            report.fairness
        )
        assert registry.value("repro_fleet_clock_seconds") == pytest.approx(
            report.makespan
        )
        # idempotent: sampling twice does not change anything
        again = collect_fleet_metrics(scheduler)
        assert again.value("repro_fleet_job_iterations", job="alpha") == 3.0
