"""Tests for shard-rectangle geometry and the zero-redundancy theorem (§5.3)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import GenParallelConfig, ParallelConfig
from repro.parallel.sharding import (
    ShardRange,
    WeightShard,
    generation_shard,
    peak_param_fraction,
    redundant_fraction,
    shard_overlap_fraction,
    training_shard,
)
from repro.parallel.topology import GenGroupingMode, GenTopology, ParallelTopology


class TestShardRange:
    def test_partition_lengths(self):
        r = ShardRange.of_partition(1, 4)
        assert r.start == Fraction(1, 4) and r.length == Fraction(1, 4)

    def test_overlap(self):
        a = ShardRange(Fraction(0), Fraction(1, 2))
        b = ShardRange(Fraction(1, 4), Fraction(1))
        assert a.overlap(b) == Fraction(1, 4)
        c = ShardRange(Fraction(1, 2), Fraction(1))
        assert a.overlap(c) == 0

    def test_contains(self):
        outer = ShardRange(Fraction(0), Fraction(1, 2))
        inner = ShardRange(Fraction(1, 4), Fraction(1, 2))
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            ShardRange(Fraction(1, 2), Fraction(1, 4))
        with pytest.raises(ValueError):
            ShardRange.of_partition(4, 4)


class TestWeightShard:
    def test_fraction_is_product(self):
        shard = WeightShard(
            ShardRange.of_partition(0, 2), ShardRange.of_partition(1, 4)
        )
        assert shard.fraction == Fraction(1, 8)

    def test_overlap_fraction(self):
        a = WeightShard(
            ShardRange.of_partition(0, 1), ShardRange.of_partition(0, 2)
        )
        b = WeightShard(
            ShardRange.of_partition(0, 2), ShardRange.of_partition(0, 4)
        )
        assert a.overlap_fraction(b) == Fraction(1, 8)


def _grid():
    return st.tuples(
        st.sampled_from([1, 2, 4]),  # p
        st.sampled_from([1, 2, 4, 8]),  # t
        st.integers(1, 3),  # d
        st.sampled_from([1, 2]),  # pg divisor
        st.sampled_from([1, 2, 4]),  # tg divisor
    )


@settings(max_examples=50, deadline=None)
@given(_grid())
def test_hybridflow_grouping_is_zero_redundancy(grid):
    """§5.3's theorem: with interval grouping, every rank's training shard is
    contained in its generation shard — zero duplicate memory."""
    p, t, d, pg_div, tg_div = grid
    if p % pg_div or t % tg_div:
        return
    train = ParallelTopology(ParallelConfig(pp=p, tp=t, dp=d))
    gen = GenTopology(
        train,
        GenParallelConfig.derive(train.config, p // pg_div, t // tg_div),
        mode=GenGroupingMode.HYBRIDFLOW,
    )
    for rank in range(p * t * d):
        assert redundant_fraction(gen, rank) == 0
        assert generation_shard(gen, rank).contains(training_shard(train, rank))
        # the peak memory is exactly the generation shard (Table 2)
        expected_peak = Fraction(1, (p // pg_div) * (t // tg_div))
        assert peak_param_fraction(gen, rank) == expected_peak


@settings(max_examples=50, deadline=None)
@given(_grid())
def test_vanilla_grouping_never_beats_hybridflow(grid):
    """HybridFlow-V's redundancy and peak memory dominate HybridFlow's.

    Vanilla grouping *can* be redundancy-free for configurations that happen
    to align (e.g. the collapse is purely along PP while TP is unchanged),
    but it is never better than interval grouping on any rank.
    """
    p, t, d, pg_div, tg_div = grid
    if p % pg_div or t % tg_div:
        return
    train = ParallelTopology(ParallelConfig(pp=p, tp=t, dp=d))
    gen_cfg = GenParallelConfig.derive(train.config, p // pg_div, t // tg_div)
    vanilla = GenTopology(train, gen_cfg, mode=GenGroupingMode.VANILLA)
    hybrid = GenTopology(train, gen_cfg, mode=GenGroupingMode.HYBRIDFLOW)
    for rank in range(p * t * d):
        assert redundant_fraction(vanilla, rank) >= 0
        assert redundant_fraction(vanilla, rank) >= redundant_fraction(
            hybrid, rank
        )
        assert peak_param_fraction(vanilla, rank) >= peak_param_fraction(
            hybrid, rank
        )


def test_figure8_vanilla_zero_overlap_ranks():
    """Figure 8(a): G2, G3, G6, G7 get no overlap between stages."""
    train = ParallelTopology(ParallelConfig(pp=1, tp=4, dp=2))
    gen = GenTopology(
        train,
        GenParallelConfig.derive(train.config, 1, 2),
        mode=GenGroupingMode.VANILLA,
    )
    zero = [r for r in range(8) if shard_overlap_fraction(gen, r) == 0]
    assert zero == [1, 2, 5, 6]


def test_figure8_hybridflow_full_overlap():
    train = ParallelTopology(ParallelConfig(pp=1, tp=4, dp=2))
    gen = GenTopology(
        train,
        GenParallelConfig.derive(train.config, 1, 2),
        mode=GenGroupingMode.HYBRIDFLOW,
    )
    for rank in range(8):
        assert shard_overlap_fraction(gen, rank) == Fraction(1, 4)
