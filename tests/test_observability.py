"""Observability layer: spans, metrics, exporters, and their runtime wiring."""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.runtime.timeline as timeline_mod
from repro.config import (
    ClusterSpec,
    GenParallelConfig,
    ParallelConfig,
)
from repro.data import PromptDataset, SyntheticPreferenceTask
from repro.faults import FaultInjector, FaultPlan
from repro.faults.policy import SimClock
from repro.models.tinylm import TinyLMConfig
from repro.observability import (
    MetricsRegistry,
    SpanTracer,
    chrome_trace,
    collect_system_metrics,
    pool_fractions_from_trace,
    render_chrome_trace,
)
from repro.rlhf.core import AlgoType
from repro.rlhf.trainers import TrainerConfig
from repro.runtime import (
    ModelAssignment,
    PlacementPlan,
    build_rlhf_system,
    build_timeline,
    system_report_dict,
    train_with_recovery,
)
from repro.runtime.report import metrics_summary, observability_summary
from repro.runtime.timeline import Timeline, TimelineEvent

GOLDEN = "tests/golden/chrome_trace.json"


# -- metrics registry ---------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_accumulates_per_labelset(self):
        reg = MetricsRegistry()
        reg.counter("calls_total", "calls", method="a").inc()
        reg.counter("calls_total", method="a").inc(2)
        reg.counter("calls_total", method="b").inc()
        assert reg.value("calls_total", method="a") == 3
        assert reg.value("calls_total", method="b") == 1
        assert reg.total("calls_total") == 4

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("x").inc(-1)

    def test_gauge_set_is_idempotent(self):
        reg = MetricsRegistry()
        for _ in range(3):
            reg.gauge("mem_bytes", rank=0).set(100.0)
        assert reg.value("mem_bytes", rank=0) == 100.0
        reg.gauge("mem_bytes", rank=0).set_max(50.0)
        assert reg.value("mem_bytes", rank=0) == 100.0

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 5.0))
        for v in (0.5, 3.0, 30.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(33.5)
        assert h.bucket_counts == [1, 1]

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_prometheus_text(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "help text", group="g").inc(2)
        reg.gauge("g_now").set(1.5)
        reg.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        text = reg.render_prometheus()
        assert "# HELP c_total help text" in text
        assert "# TYPE c_total counter" in text
        assert 'c_total{group="g"} 2' in text
        assert "g_now 1.5" in text
        assert 'h_seconds_bucket{le="1"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_count 1" in text

    def test_as_dict_is_json_safe(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(np.float32(2.5))
        json.dumps(reg.as_dict())


# -- span tracer --------------------------------------------------------------------


class TestSpanTracer:
    def test_nesting_and_clock(self):
        clock = SimClock()
        tracer = SpanTracer(clock)
        outer = tracer.begin("outer", category="iteration")
        clock.advance(1.0)
        inner = tracer.begin("inner", category="dispatch")
        clock.advance(2.0)
        tracer.end(inner)
        tracer.end(outer)
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert (outer.start, outer.end) == (0.0, 3.0)
        assert (inner.start, inner.end) == (1.0, 3.0)

    def test_seq_links(self):
        tracer = SpanTracer()
        producer = tracer.end(tracer.begin("p", category="dispatch"))
        tracer.register_seq(7, producer)
        assert tracer.links_for((7, 99)) == (producer.span_id,)
        assert producer.attrs["seq"] == 7

    def test_context_manager_marks_errors(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("fails", category="dispatch"):
                raise RuntimeError("boom")
        (span,) = tracer.spans
        assert span.finished
        assert span.attrs["status"] == "error"
        assert span.attrs["error"] == "RuntimeError"

    def test_out_of_order_end_unwinds_stack(self):
        tracer = SpanTracer()
        outer = tracer.begin("outer")
        tracer.begin("inner")
        tracer.end(outer)  # inner never closed explicitly
        assert tracer.begin("next").parent_id is None

    def test_counts_by_category(self):
        tracer = SpanTracer()
        tracer.instant("a", category="x")
        tracer.instant("b", category="x")
        tracer.instant("c", category="y")
        assert tracer.counts_by_category() == {"x": 2, "y": 1}


# -- timeline satellites ------------------------------------------------------------


def _three_pool_timeline() -> Timeline:
    return Timeline(
        events=[
            TimelineEvent(seq=0, name="a.gen", pool="a", start=0.0, end=2.0),
            TimelineEvent(seq=1, name="b.score", pool="b", start=2.0, end=4.0),
        ]
    )


class TestTimelineWindows:
    def test_idle_fraction_defaults_to_makespan(self):
        tl = _three_pool_timeline()
        assert tl.idle_fraction("a") == pytest.approx(0.5)

    def test_idle_fraction_within_window(self):
        tl = _three_pool_timeline()
        assert tl.idle_fraction("a", within=(0.0, 2.0)) == pytest.approx(0.0)
        assert tl.idle_fraction("a", within=(2.0, 4.0)) == pytest.approx(1.0)
        assert tl.idle_fraction("a", within=tl.active_window("a")) == 0.0

    def test_active_window(self):
        tl = _three_pool_timeline()
        assert tl.active_window("b") == (2.0, 4.0)
        assert tl.active_window("missing") == (0.0, 0.0)

    def test_empty_window_is_zero(self):
        tl = _three_pool_timeline()
        assert tl.idle_fraction("a", within=(1.0, 1.0)) == 0.0

    def test_render_reports_both_fractions(self):
        out = _three_pool_timeline().render_ascii()
        assert "idle=50% (win 0%)" in out


class TestLegendMarkers:
    def _many_events(self, n: int) -> Timeline:
        return Timeline(
            events=[
                TimelineEvent(
                    seq=i, name=f"g.m{i}", pool="p", start=float(i), end=i + 1.0
                )
                for i in range(n)
            ]
        )

    def test_markers_unique_past_26(self):
        tl = self._many_events(30)
        out = tl.render_ascii(max_legend=64)
        # the 27th event is A1, not a duplicate A
        assert "  p/A1: g.m26" in out
        markers = [
            line.split(":")[0].strip()
            for line in out.splitlines()
            if line.startswith("  p/")
        ]
        assert len(markers) == len(set(markers)) == 30

    def test_legend_capped_with_explicit_remainder(self):
        out = self._many_events(30).render_ascii(max_legend=5)
        assert "... 25 more event(s)" in out
        assert out.count("  p/") == 5


class TestFallbackAccounting:
    def _controller_with_unknown_method(self):
        from repro.single_controller.controller import (
            ExecutionRecord,
            SingleController,
        )

        controller = SingleController(ClusterSpec(n_machines=1))
        trace = [
            ExecutionRecord(seq=0, group="g", method="mystery_method", pool="p"),
            ExecutionRecord(seq=1, group="g", method="mystery_method", pool="p"),
        ]
        return controller, trace

    def test_fallback_warns_once_and_counts(self):
        controller, trace = self._controller_with_unknown_method()
        timeline_mod._FALLBACK_WARNED.discard("mystery_method")
        with pytest.warns(UserWarning, match="no duration model"):
            build_timeline(controller, trace=trace)
        assert (
            controller.metrics.value(
                "repro_timeline_fallback_total", method="mystery_method"
            )
            == 2
        )
        # second build: counted again, but not warned again
        import warnings as warnings_mod

        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            build_timeline(controller, trace=trace)
        assert (
            controller.metrics.value(
                "repro_timeline_fallback_total", method="mystery_method"
            )
            == 4
        )

    def test_known_methods_do_not_warn(self):
        from repro.single_controller.controller import (
            ExecutionRecord,
            SingleController,
        )

        controller = SingleController(ClusterSpec(n_machines=1))
        trace = [
            ExecutionRecord(
                seq=0, group="g", method="generate_sequences", pool="p"
            )
        ]
        import warnings as warnings_mod

        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            build_timeline(controller, trace=trace)


# -- golden-file Chrome trace -------------------------------------------------------


def golden_scenario():
    """A deterministic faulted-and-recovered scenario, built by hand.

    Emulates the span structure of a real run — an iteration with nested
    dispatches and protocol phases, a checkpoint save, then a failure with
    teardown/rebuild/restore phases — on a hand-advanced simulated clock, so
    the exported trace is byte-stable.
    """
    clock = SimClock()
    tracer = SpanTracer(clock)

    it0 = tracer.begin("iteration[0]", category="iteration", algo="ppo", iteration=0)
    gen = tracer.begin(
        "actor.generate_sequences",
        category="dispatch",
        pool="main",
        ranks=(0, 1),
        payload_bytes=1024,
        protocol="dp_compute",
        deps=[],
    )
    with tracer.span("distribute", category="protocol", pool="main"):
        pass
    with tracer.span("collect", category="protocol", pool="main"):
        pass
    clock.advance(6.0)
    tracer.end(gen)
    tracer.register_seq(0, gen)
    upd = tracer.begin(
        "actor.update_actor",
        category="dispatch",
        pool="main",
        ranks=(0, 1),
        payload_bytes=2048,
        links=tracer.links_for((0,)),
        protocol="dp_compute",
        deps=[0],
    )
    clock.advance(3.0)
    tracer.end(upd)
    tracer.register_seq(1, upd)
    tracer.end(it0)

    with tracer.span("checkpoint.save", category="checkpoint", iteration=1):
        tracer.instant("checkpoint.write", category="checkpoint", payload_bytes=4096)
        clock.advance(0.5)

    recovery = tracer.begin(
        "recovery[0]",
        category="recovery",
        pool="main",
        ranks=(1,),
        cause="device loss",
        failed_iteration=1,
    )
    with tracer.span("recovery.teardown", category="recovery"):
        pass
    with tracer.span("recovery.rebuild", category="recovery"):
        clock.advance(2.0)
    with tracer.span("recovery.restore", category="recovery"):
        tracer.instant("checkpoint.read", category="checkpoint", payload_bytes=4096)
        clock.advance(1.0)
    tracer.end(recovery, resumed_iteration=1, lost_iterations=0)

    timeline = Timeline(
        events=[
            TimelineEvent(
                seq=0, name="actor.generate_sequences", pool="main",
                start=0.0, end=6.0,
            ),
            TimelineEvent(
                seq=2, name="reward.compute_reward", pool="r",
                start=6.0, end=7.0,
            ),
            TimelineEvent(
                seq=1, name="actor.update_actor", pool="main",
                start=6.0, end=9.0,
            ),
        ]
    )
    return timeline, tracer


class TestChromeTraceGolden:
    def test_matches_golden_file(self):
        timeline, tracer = golden_scenario()
        rendered = render_chrome_trace(timeline=timeline, spans=tracer.spans)
        with open(GOLDEN) as f:
            assert rendered == f.read(), (
                "Chrome trace output drifted from tests/golden/chrome_trace.json; "
                "if the change is intentional, regenerate with "
                "python -c \"from tests.test_observability import regen_golden; "
                'regen_golden()"'
            )

    def test_golden_structure(self):
        timeline, tracer = golden_scenario()
        doc = chrome_trace(timeline=timeline, spans=tracer.spans)
        events = doc["traceEvents"]
        by_phase = {}
        for e in events:
            by_phase.setdefault(e["ph"], []).append(e)
        # two process tracks with named threads
        process_names = {
            e["args"]["name"]
            for e in by_phase["M"]
            if e["name"] == "process_name"
        }
        assert process_names == {"timeline (Figure 3 replay)", "runtime spans"}
        # flow arrows for the dataflow link gen -> update
        assert {e["id"] for e in by_phase["s"]} == {e["id"] for e in by_phase["f"]}
        assert len(by_phase["s"]) == 1
        # nesting: the recovery phases all point at the recovery span
        spans_by_name = {
            e["name"]: e for e in by_phase["X"] if e["pid"] == 1
        }
        rec_id = spans_by_name["recovery[0]"]["args"]["span_id"]
        for phase in ("recovery.teardown", "recovery.rebuild", "recovery.restore"):
            assert spans_by_name[phase]["args"]["parent_id"] == rec_id
        restore_id = spans_by_name["recovery.restore"]["args"]["span_id"]
        assert spans_by_name["checkpoint.read"]["args"]["parent_id"] == restore_id

    def test_fractions_recomputed_from_doc(self):
        timeline, tracer = golden_scenario()
        doc = chrome_trace(timeline=timeline, spans=tracer.spans)
        fractions = pool_fractions_from_trace(doc)
        assert fractions["main"]["busy"] == pytest.approx(9.0)
        assert fractions["r"]["idle_fraction"] == pytest.approx(
            timeline.idle_fraction("r")
        )


def regen_golden() -> None:
    """Rewrite the golden file from the synthetic scenario (manual tool)."""
    timeline, tracer = golden_scenario()
    with open(GOLDEN, "w") as f:
        f.write(render_chrome_trace(timeline=timeline, spans=tracer.spans))


# -- integration: a faulted-and-recovered functional run ----------------------------

CFG = TinyLMConfig(
    n_layers=2,
    hidden_size=32,
    n_heads=4,
    ffn_hidden_size=48,
    vocab_size=16,
    max_seq_len=32,
)
TASK = SyntheticPreferenceTask(vocab_size=16, target_token=7)
PAR = ParallelConfig(pp=1, tp=2, dp=1)
SPEC = ClusterSpec(n_machines=2, gpus_per_machine=4)


def build_ppo(cluster=None):
    plan = PlacementPlan(
        pools={"main": 2, "r": 1},
        assignments={
            "actor": ModelAssignment(
                "main", PAR, GenParallelConfig.derive(PAR, 1, 1)
            ),
            "critic": ModelAssignment("main", PAR),
            "reference": ModelAssignment("main", PAR),
            "reward": ModelAssignment("r", ParallelConfig(1, 1, 1)),
        },
    )
    return build_rlhf_system(
        AlgoType.PPO,
        plan,
        CFG,
        cluster_spec=SPEC,
        trainer_config=TrainerConfig(kl_coef=0.01, seed=7),
        reward_fn=TASK.reward,
        max_new_tokens=6,
        lr=5e-3,
        seed=7,
        cluster=cluster,
    )


@pytest.fixture(scope="module")
def recovered_run(tmp_path_factory):
    injector = FaultInjector(FaultPlan().kill_device(1, at_step=10))
    system, history, report = train_with_recovery(
        build_ppo,
        PromptDataset(n_prompts=128, prompt_length=4, vocab_size=16, seed=1),
        n_iterations=3,
        batch_size=8,
        checkpoint_dir=str(tmp_path_factory.mktemp("obs") / "ckpt"),
        injector=injector,
    )
    assert report.n_failures == 1
    return system, history, report


class TestRecoveredRunObservability:
    def test_exported_fractions_match_timeline(self, recovered_run):
        """The acceptance criterion: trace file vs Timeline accounting."""
        system, _, _ = recovered_run
        controller = system.controller
        timeline = build_timeline(controller)
        doc = chrome_trace(timeline=timeline, spans=controller.tracer.spans)
        # round-trip through the serialized JSON, as a viewer would read it
        doc = json.loads(json.dumps(doc))
        fractions = pool_fractions_from_trace(doc)
        assert set(fractions) == set(timeline.pools())
        for pool in timeline.pools():
            assert fractions[pool]["busy"] == pytest.approx(
                timeline.busy_time(pool), abs=1e-6
            )
            assert fractions[pool]["idle_fraction"] == pytest.approx(
                timeline.idle_fraction(pool), abs=1e-6
            )

    def test_one_tracer_spans_the_whole_run(self, recovered_run):
        system, _, _ = recovered_run
        tracer = system.controller.tracer
        counts = tracer.counts_by_category()
        for category in (
            "dispatch", "protocol", "iteration", "checkpoint",
            "recovery", "transition",
        ):
            assert counts.get(category, 0) > 0, f"no {category} spans"
        assert all(s.finished for s in tracer.spans)
        assert all(s.end >= s.start for s in tracer.spans)

    def test_recovery_span_nesting(self, recovered_run):
        system, _, report = recovered_run
        tracer = system.controller.tracer
        recovery = [
            s for s in tracer.by_category("recovery")
            if s.name.startswith("recovery[")
        ]
        assert len(recovery) == 1
        (rec,) = recovery
        assert rec.attrs["lost_iterations"] == report.events[0].lost_iterations
        assert rec.start == pytest.approx(report.events[0].detected_at)
        phases = {
            s.name for s in tracer.spans if s.parent_id == rec.span_id
        }
        assert phases == {
            "recovery.teardown", "recovery.rebuild", "recovery.restore",
        }
        # checkpoint restore happened inside the restore phase
        (restore,) = [s for s in tracer.spans if s.name == "recovery.restore"]
        reads = [
            s for s in tracer.spans
            if s.name == "checkpoint.read" and s.parent_id == restore.span_id
        ]
        assert len(reads) == 1

    def test_failed_dispatch_marked_error(self, recovered_run):
        system, _, _ = recovered_run
        tracer = system.controller.tracer
        errored = [
            s for s in tracer.by_category("dispatch")
            if s.attrs.get("status") == "error"
        ]
        assert len(errored) == 1
        assert errored[0].attrs["error"] == "WorkerLostError"

    def test_dispatch_spans_carry_dataflow_links(self, recovered_run):
        system, _, _ = recovered_run
        tracer = system.controller.tracer
        linked = [s for s in tracer.by_category("dispatch") if s.links]
        assert linked, "no dispatch spans carry provenance links"
        by_id = {s.span_id: s for s in tracer.spans}
        for span in linked:
            for link in span.links:
                assert by_id[link].category == "dispatch"

    def test_metrics_survive_recovery_without_double_counting(
        self, recovered_run
    ):
        system, history, report = recovered_run
        metrics = system.controller.metrics
        assert metrics.total("repro_worker_losses_total") == 1
        assert metrics.total("repro_recoveries_total") == 1
        assert metrics.total("repro_devices_killed_total") == 1
        assert (
            metrics.total("repro_lost_iterations_total")
            == report.total_lost_iterations
        )
        # re-run iterations are counted as work done, rolled-back history is
        # not double-kept
        assert metrics.total("repro_iterations_total") == len(
            history
        ) + report.total_lost_iterations
        assert (
            metrics.total("repro_checkpoint_saves_total")
            == report.checkpoints_saved
        )
        assert metrics.total("repro_checkpoint_restores_total") == 1

    def test_collectors_are_idempotent(self, recovered_run):
        system, _, _ = recovered_run
        controller = system.controller
        first = collect_system_metrics(controller).render_prometheus()
        second = collect_system_metrics(controller).render_prometheus()
        assert first == second
        # 2 machines x 4 GPUs, one killed by the injected fault
        assert controller.metrics.value("repro_devices_alive") == 7

    def test_tokens_generated_counted(self, recovered_run):
        system, _, _ = recovered_run
        tracer = system.controller.tracer
        metrics = system.controller.metrics
        generates = [
            s
            for s in tracer.by_category("dispatch")
            if s.name == "actor.generate_sequences"
            and s.attrs.get("status") != "error"
        ]
        # 8 prompts x 6 new tokens per successful generation dispatch
        assert metrics.total("repro_tokens_generated_total") == 8 * 6 * len(
            generates
        )


# -- report integration -------------------------------------------------------------


class TestReportSerialization:
    def test_numpy_scalars_do_not_leak_into_json(self, recovered_run):
        system, _, report = recovered_run
        system.trainer.history[-1]["np_leak"] = np.float32(1.25)
        try:
            doc = system_report_dict(system, recovery=report)
            text = json.dumps(doc)
        finally:
            del system.trainer.history[-1]["np_leak"]
        assert '"np_leak": 1.25' in text
        assert doc["recovery"]["n_failures"] == 1
        assert doc["metrics"]["repro_recoveries_total"]["children"][0]["value"] == 1

    def test_metrics_summary_includes_float32(self, recovered_run):
        system, _, _ = recovered_run
        system.trainer.history[-1]["np_leak"] = np.float32(1.25)
        try:
            lines = metrics_summary(system)
        finally:
            del system.trainer.history[-1]["np_leak"]
        assert any("np_leak = +1.2500" in line for line in lines)

    def test_observability_summary(self, recovered_run):
        system, _, _ = recovered_run
        lines = observability_summary(system)
        assert "spans" in lines[0]
        assert any("iteration" in line for line in lines)
        assert any("worker_losses=1" in line for line in lines)


# -- histogram +Inf conformance -----------------------------------------------------


class TestHistogramOverflow:
    """Prometheus conformance for observations above the largest bucket."""

    def test_overflow_counter_tracks_out_of_range_observations(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 5.0))
        for v in (0.5, 3.0, 30.0, 100.0):
            h.observe(v)
        assert h.overflow == 2
        assert h.bucket_counts == [1, 1]
        # finite buckets plus overflow account for every observation
        assert sum(h.bucket_counts) + h.overflow == h.count == 4

    def test_inf_sample_equals_count(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0,))
        for v in (0.5, 2.0, 9.0):
            h.observe(v)
        samples = {
            (name, dict(key).get("le")): value
            for name, key, value in h.samples("lat", ())
        }
        assert samples[("lat_bucket", "+Inf")] == h.count == 3
        assert samples[("lat_bucket", "1")] == 1
        assert samples[("lat_count", None)] == 3

    def test_as_dict_includes_inf_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 5.0))
        for v in (0.5, 30.0, 40.0):
            h.observe(v)
        (child,) = reg.as_dict()["lat"]["children"]
        assert child["buckets"][-1] == ["+Inf", 2]
        assert child["count"] == 3
        json.dumps(reg.as_dict())

    def test_prometheus_text_inf_bucket_is_cumulative(self):
        reg = MetricsRegistry()
        reg.histogram("h_seconds", buckets=(1.0,)).observe(10.0)
        text = reg.render_prometheus()
        assert 'h_seconds_bucket{le="1"} 0' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_count 1" in text
