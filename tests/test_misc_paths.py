"""Edge-path tests across modules: less-travelled APIs and error branches."""

import numpy as np
import pytest

from repro.config import (
    ClusterSpec,
    GenParallelConfig,
    ParallelConfig,
    RlhfWorkload,
    MODEL_SPECS,
)
from repro.models.tinylm import TinyLMConfig
from repro.parallel.topology import GenGroupingMode
from repro.runtime.timeline import Timeline, TimelineEvent
from repro.single_controller import SingleController, Worker, WorkerGroup, register


class PingWorker(Worker):
    @register(protocol="one_to_all")
    def ping(self):
        return self.ctx.local_rank


class TestWorkerGroupPaths:
    def make(self, n=2):
        controller = SingleController(ClusterSpec(n_machines=1))
        group = WorkerGroup(
            PingWorker, controller.create_pool(n), controller=controller
        )
        return controller, group

    def test_set_gen_topology_after_construction(self):
        _, group = self.make(4)
        group.train_topology = group.train_topology  # unchanged
        gen = GenParallelConfig(pp=1, tp=1, micro_dp=1)
        # world is pure DP: mp size 1, so gen mp must be 1
        group.set_gen_topology(gen, mode=GenGroupingMode.VANILLA)
        assert group.gen_topology is not None
        for worker in group.workers:
            assert worker.ctx.gen_topology is group.gen_topology

    def test_broadcast_call(self):
        _, group = self.make(3)
        ranks = group.broadcast_call(lambda w: w.ctx.global_rank)
        assert ranks == [0, 1, 2]

    def test_private_attribute_lookup_raises_attribute_error(self):
        _, group = self.make(1)
        with pytest.raises(AttributeError):
            group._does_not_exist

    def test_repr_mentions_name_and_shape(self):
        _, group = self.make(2)
        assert "pingworker" in repr(group)

    def test_worker_repr(self):
        _, group = self.make(1)
        assert "rank=0" in repr(group.workers[0])

    def test_default_checkpoint_hooks(self):
        _, group = self.make(1)
        worker = group.workers[0]
        assert worker.state_for_checkpoint() == {}
        worker.load_from_checkpoint({})
        with pytest.raises(NotImplementedError):
            worker.load_from_checkpoint({"x": 1})


class TestTimelinePaths:
    def test_busy_during_partial_overlap(self):
        timeline = Timeline(
            events=[TimelineEvent(0, "a.m", "p", 0.0, 4.0)]
        )
        assert timeline.busy_during("p", 2.0, 6.0) == 2.0
        assert timeline.busy_during("p", 5.0, 6.0) == 0.0
        assert timeline.busy_during("other", 0.0, 4.0) == 0.0

    def test_pools_sorted(self):
        timeline = Timeline(
            events=[
                TimelineEvent(0, "a.m", "z", 0.0, 1.0),
                TimelineEvent(1, "b.m", "a", 0.0, 1.0),
            ]
        )
        assert timeline.pools() == ["a", "z"]


class TestSimulatorValidation:
    def test_unknown_generation_args_default_to_training(self):
        from repro.perf.simu import Stage, simulate_latency

        latency = simulate_latency(
            Stage.GENERATION,
            MODEL_SPECS["llama-7b"],
            ClusterSpec(n_machines=1),
            ParallelConfig(1, 8, 1),
            RlhfWorkload(),
        )
        assert latency > 0

    def test_memory_model_validation(self):
        from repro.cluster.device import DeviceMemory, SimDevice
        from repro.config import GpuSpec

        with pytest.raises(ValueError):
            DeviceMemory(0, SimDevice(0, 0, GpuSpec()))


class TestConfigPaths:
    def test_model_spec_value_head_variant(self):
        spec = MODEL_SPECS["llama-7b"]
        critic = spec.with_value_head()
        assert critic.name.endswith("-critic")
        assert critic.n_params() == spec.n_params()

    def test_gpu_presets_distinct(self):
        from repro.config import GPU_SPECS

        assert GPU_SPECS["H100-80GB"].peak_flops > GPU_SPECS["A100-80GB"].peak_flops
        assert GPU_SPECS["V100-32GB"].memory_bytes < GPU_SPECS["A100-40GB"].memory_bytes

    def test_gen_parallel_str(self):
        assert str(GenParallelConfig(pp=1, tp=2, micro_dp=4)) == "1-2-4"

    def test_workload_rejects_nothing_but_reports(self):
        wl = RlhfWorkload(prompt_length=10, response_length=6)
        assert wl.seq_length == 16


class TestTinyLMExtraPaths:
    def test_repr_of_tensor(self):
        from repro.models.autograd import Tensor

        t = Tensor(np.zeros(3), requires_grad=True, name="w")
        assert "name='w'" in repr(t)
        assert t.detach().requires_grad is False

    def test_stage_memory_properties(self):
        from repro.perf.memory import StageMemory

        stage = StageMemory(params=10, grads=5, optimizer=15, activations=2, kv_cache=3)
        assert stage.persistent == 30
        assert stage.total == 35

    def test_tinylm_config_validation(self):
        with pytest.raises(ValueError, match="divisible"):
            TinyLMConfig(hidden_size=30, n_heads=4)
        with pytest.raises(ValueError, match="head"):
            TinyLMConfig(output_head="regression")
