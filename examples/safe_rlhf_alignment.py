"""Safe-RLHF: aligning for helpfulness while constraining harmfulness (§2.1).

Reproduces the Figure 6 Safe-RLHF driver: on top of PPO, a *cost model*
scores safety violations, a Lagrangian dual variable trades reward against
cost, and an auxiliary pretraining loss (PPO-ptx) regularises the actor.

The synthetic task makes both signals verifiable: reward is the frequency of
a "helpful" token, cost the frequency of an "unsafe" token.  Watch the policy
raise reward while the multiplier pushes cost below the limit.

Run:  python examples/safe_rlhf_alignment.py
"""

import numpy as np

from repro.config import GenParallelConfig, ParallelConfig
from repro.data import PromptDataset, SyntheticPreferenceTask
from repro.models.tinylm import TinyLMConfig
from repro.rlhf import AlgoType
from repro.rlhf.trainers import TrainerConfig
from repro.runtime import ModelAssignment, PlacementPlan, build_rlhf_system


def main() -> None:
    model_config = TinyLMConfig(
        n_layers=2,
        hidden_size=32,
        n_heads=4,
        ffn_hidden_size=48,
        vocab_size=16,
        max_seq_len=32,
    )
    task = SyntheticPreferenceTask(
        vocab_size=16, target_token=7, unsafe_token=3
    )

    # five models: the cost model reuses the RewardWorker class, exactly as
    # Figure 6's "cost = RewardWorker(cost_config, resource_pool)"
    parallel = ParallelConfig(pp=1, tp=2, dp=1)
    gen = GenParallelConfig.derive(parallel, 1, 1)
    one = ParallelConfig(1, 1, 1)
    plan = PlacementPlan(
        pools={"main": 2, "reward_pool": 1, "cost_pool": 1},
        assignments={
            "actor": ModelAssignment("main", parallel, gen),
            "critic": ModelAssignment("main", parallel),
            "reference": ModelAssignment("main", parallel),
            "cost": ModelAssignment("cost_pool", one),
            "reward": ModelAssignment("reward_pool", one),
        },
    )

    pretrain = PromptDataset(n_prompts=64, prompt_length=8, vocab_size=16, seed=7)
    system = build_rlhf_system(
        AlgoType.SAFE_RLHF,
        plan,
        model_config,
        trainer_config=TrainerConfig(
            kl_coef=0.01,
            cost_limit=0.02,
            lagrange_lr=1.0,
            ptx_coef=0.05,
            ppo_epochs=2,
            updates_per_epoch=2,
        ),
        reward_fn=task.reward,
        cost_fn=task.cost,
        pretrain_dataset=pretrain,
        max_new_tokens=8,
        lr=5e-3,
    )

    prompts = PromptDataset(n_prompts=256, prompt_length=4, vocab_size=16, seed=1)
    print("Safe-RLHF: maximise reward subject to cost <= 0.02")
    history = system.trainer.train(prompts, n_iterations=25, batch_size=16)

    print(f"{'iter':>4} {'reward':>7} {'cost':>6} {'lambda':>7} {'ptx':>6}")
    for i, h in enumerate(history):
        if i % 4 == 0 or i == len(history) - 1:
            print(
                f"{i:4d} {h['score_mean']:7.3f} {h['cost_mean']:6.3f} "
                f"{h['lagrange_multiplier']:7.3f} "
                f"{h.get('pretrain_loss', float('nan')):6.2f}"
            )

    rewards = [h["score_mean"] for h in history]
    costs = [h["cost_mean"] for h in history]
    print(
        f"\nreward {np.mean(rewards[:5]):.3f} -> {np.mean(rewards[-5:]):.3f}; "
        f"cost {np.mean(costs[:5]):.3f} -> {np.mean(costs[-5:]):.3f} "
        f"(limit 0.02)"
    )
    print(
        "the cost model's dataflow additions over PPO (Figure 6): "
        "cost.compute_cost + the Lagrangian actor loss"
    )
    trace = system.controller.trace_methods()
    assert "cost.compute_cost" in trace


if __name__ == "__main__":
    main()
