"""Execution patterns under different placements (Figure 3 / Table 1).

Runs one functional PPO iteration under three placements and renders the
per-pool Gantt chart the single controller's trace implies under the
asynchronous-execution semantics of §4.1:

* **colocate** — every stage serialises on one pool (DeepSpeed-Chat's
  pattern in Table 1),
* **split** — actor/reference vs critic/reward pools overlap within the
  preparation and learning stages (NeMo-Aligner's pattern),
* **standalone** — every model on its own pool: maximal overlap, maximal
  idle time (OpenRLHF's pattern; Figure 3's "1/3 of their GPU time idle").

Run:  python examples/execution_timelines.py
"""

from repro.config import GenParallelConfig, ParallelConfig
from repro.data import PromptDataset, SyntheticPreferenceTask
from repro.models.tinylm import TinyLMConfig
from repro.rlhf import AlgoType
from repro.runtime import ModelAssignment, PlacementPlan, build_rlhf_system
from repro.runtime.timeline import build_timeline

CFG = TinyLMConfig(
    n_layers=2,
    hidden_size=32,
    n_heads=4,
    ffn_hidden_size=48,
    vocab_size=16,
    max_seq_len=32,
)
PAR = ParallelConfig(1, 2, 1)
GEN = GenParallelConfig.derive(PAR, 1, 1)
ONE = ParallelConfig(1, 1, 1)
TASK = SyntheticPreferenceTask(vocab_size=16)


def plan_for(kind: str) -> PlacementPlan:
    if kind == "colocate":
        return PlacementPlan(
            pools={"shared": 2, "rfn": 1},
            assignments={
                "actor": ModelAssignment("shared", PAR, GEN),
                "critic": ModelAssignment("shared", PAR),
                "reference": ModelAssignment("shared", PAR),
                "reward": ModelAssignment("rfn", ONE),
            },
        )
    if kind == "split":
        return PlacementPlan(
            pools={"actor_side": 2, "critic_side": 2, "rfn": 1},
            assignments={
                "actor": ModelAssignment("actor_side", PAR, GEN),
                "reference": ModelAssignment("actor_side", PAR),
                "critic": ModelAssignment("critic_side", PAR),
                "reward": ModelAssignment("rfn", ONE),
            },
        )
    return PlacementPlan(  # standalone
        pools={"p_actor": 2, "p_critic": 2, "p_ref": 2, "rfn": 1},
        assignments={
            "actor": ModelAssignment("p_actor", PAR, GEN),
            "critic": ModelAssignment("p_critic", PAR),
            "reference": ModelAssignment("p_ref", PAR),
            "reward": ModelAssignment("rfn", ONE),
        },
    )


def main() -> None:
    prompts = PromptDataset(32, 4, 16, seed=1)
    for kind in ("colocate", "split", "standalone"):
        system = build_rlhf_system(
            AlgoType.PPO,
            plan_for(kind),
            CFG,
            reward_fn=TASK.reward,
            max_new_tokens=5,
        )
        system.trainer.train(prompts, 1, 8)
        timeline = build_timeline(system.controller)
        print(f"\n=== placement: {kind} (one PPO iteration) ===")
        print(timeline.render_ascii(width=60))
        print(f"makespan: {timeline.makespan:.1f} simulated units")


if __name__ == "__main__":
    main()
