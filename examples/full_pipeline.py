"""The complete alignment recipe: SFT -> reward model -> PPO (§1, §2.1).

Everything the paper's introduction describes, end to end on one
programming model:

1. **SFT** — the actor is supervised-fine-tuned on a token corpus.
2. **Reward modelling** — a scalar-head LM is trained on synthetic human
   preference pairs with the Bradley-Terry objective, then evaluated for
   held-out pairwise accuracy.
3. **RLHF (PPO)** — the four-model dataflow runs against the *learned*
   reward model (no ground-truth leakage), and we verify the policy's
   *true* task reward improved anyway.

Run:  python examples/full_pipeline.py
      python examples/full_pipeline.py --trace run.json --metrics run.prom
"""

import argparse
import dataclasses

import numpy as np

from repro.config import ClusterSpec, GenParallelConfig, ParallelConfig
from repro.data import PromptDataset, SyntheticPreferenceTask
from repro.models.tinylm import TinyLMConfig
from repro.rlhf import AlgoType
from repro.rlhf.pipeline import RewardModelTrainer, SFTTrainer
from repro.rlhf.trainers import TrainerConfig
from repro.runtime import ModelAssignment, PlacementPlan, build_rlhf_system
from repro.single_controller import SingleController, WorkerGroup
from repro.workers.scorers import TrainableRewardWorker

LM_CFG = TinyLMConfig(
    n_layers=2,
    hidden_size=32,
    n_heads=4,
    ffn_hidden_size=48,
    vocab_size=16,
    max_seq_len=32,
)
TASK = SyntheticPreferenceTask(vocab_size=16, target_token=7)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a Chrome trace_event JSON of the PPO stage (chrome://tracing)",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="write the run's metrics as Prometheus text",
    )
    args = parser.parse_args(argv)
    parallel = ParallelConfig(pp=1, tp=2, dp=1)
    plan = PlacementPlan(
        pools={"main": 2},
        assignments={
            "actor": ModelAssignment(
                "main", parallel, GenParallelConfig.derive(parallel, 1, 1)
            ),
            "critic": ModelAssignment("main", parallel),
            "reference": ModelAssignment("main", parallel),
            "reward": ModelAssignment("main", parallel),
        },
    )
    system = build_rlhf_system(
        AlgoType.PPO,
        plan,
        LM_CFG,
        trainer_config=TrainerConfig(kl_coef=0.01, ppo_epochs=2, updates_per_epoch=2),
        max_new_tokens=8,
        lr=5e-3,
    )
    # SF7xx runtime witness: the controller samples every collected batch's
    # array shapes so the --trace audit can cross-validate them against the
    # static symbolic inference
    from repro.analysis import ShapeRecorder

    system.controller.shape_recorder = ShapeRecorder()

    # ---- stage 1: supervised fine-tuning -----------------------------------
    print("stage 1: SFT on the corpus")
    sft = SFTTrainer(system.groups["actor"])
    history = sft.train(PromptDataset(64, 8, 16, seed=3), 8, 8)
    print(
        f"  nll {history[0]['sft_loss']:.3f} -> {history[-1]['sft_loss']:.3f}"
    )

    # ---- stage 2: reward-model training on preference pairs ----------------
    print("stage 2: reward model on human-preference pairs (Bradley-Terry)")
    controller = SingleController(ClusterSpec(n_machines=1))
    reward = WorkerGroup(
        TrainableRewardWorker,
        controller.create_pool(2),
        parallel_config=parallel,
        controller=controller,
        name="reward",
        worker_kwargs={
            "model_config": dataclasses.replace(LM_CFG, output_head="scalar"),
            "lr": 5e-3,
        },
    )
    rm_trainer = RewardModelTrainer(reward, seed=0)
    acc0 = rm_trainer.evaluate_accuracy(TASK, 256, 8)
    rm_trainer.train(TASK, 40, 32, response_length=8)
    acc1 = rm_trainer.evaluate_accuracy(TASK, 256, 8)
    print(f"  held-out pairwise accuracy {acc0:.2f} -> {acc1:.2f}")

    # ---- stage 3: PPO against the learned reward model ----------------------
    print("stage 3: PPO against the LEARNED reward model")
    system.trainer.reward = reward
    prompts = PromptDataset(128, 4, 16, seed=1)

    def true_reward() -> float:
        out = system.groups["actor"].generate_sequences(
            prompts.batch(0, 16)
        ).get()
        return float(TASK.reward(out["sequences"][:, 4:]).mean())

    before = true_reward()
    ppo_history = system.trainer.train(prompts, 20, 16)
    after = true_reward()
    rm_scores = [h["score_mean"] for h in ppo_history]
    print(
        f"  RM score during PPO: {np.mean(rm_scores[:3]):+.3f} -> "
        f"{np.mean(rm_scores[-3:]):+.3f}"
    )
    print(f"  TRUE task reward of generations: {before:.3f} -> {after:.3f}")
    print(
        "\nthe policy improved on the ground-truth objective it never saw — "
        "the learned reward model carried the signal."
    )

    # ---- optional profiling output ------------------------------------------
    ppo_controller = system.controller
    tracer = ppo_controller.tracer
    print(
        f"\nobservability: {len(tracer.spans)} spans recorded "
        f"({', '.join(f'{k}={v}' for k, v in tracer.counts_by_category().items())})"
    )
    exit_code = 0
    if args.trace:
        from repro.analysis import RaceDetector, TraceAuditor
        from repro.observability import write_chrome_trace
        from repro.runtime.report import system_report_dict
        from repro.runtime.timeline import build_timeline

        out = write_chrome_trace(
            args.trace,
            timeline=build_timeline(ppo_controller),
            spans=tracer.spans,
        )
        print(f"  wrote Chrome trace to {out} (load in chrome://tracing)")

        # post-run audit: happens-before over the spans and ledgers; the
        # findings ride along inside the machine-readable run report
        audit = TraceAuditor().audit_system(system)
        # vector-clock race detection over the same trace plus the
        # shared-state access log (device memory, checkpoints, merges)
        RaceDetector().detect_system(system, report=audit)
        for line in audit.summary_lines():
            print(f"  {line}")
        # SF7xx cross-validation: recorded runtime shapes vs the static
        # symbolic inference over the same system
        from repro.analysis import predict_system_outputs, shape_cross_validate

        predictions = predict_system_outputs(
            system, batch_size=16, prompt_length=4
        )
        shapes = shape_cross_validate(
            system.controller.shape_recorder, predictions
        )
        for line in shapes.summary_lines():
            print(f"  {line}")
        report_doc = system_report_dict(system, analysis=audit, shapes=shapes)
        print(
            f"  run report embeds {len(report_doc['analysis']['findings'])} "
            "audit finding(s)"
        )
        races = [f for f in audit.findings if f.rule.startswith("RC")]
        if races:
            print(f"  RACE DETECTED: {len(races)} RC5xx finding(s)")
            exit_code = 1
        if shapes.findings:
            print(
                f"  SHAPE MISMATCH: {len(shapes.findings)} SF7xx finding(s)"
            )
            exit_code = 1
    if args.metrics:
        from repro.observability import collect_system_metrics, write_prometheus

        collect_system_metrics(ppo_controller)
        out = write_prometheus(args.metrics, ppo_controller.metrics)
        print(f"  wrote Prometheus metrics to {out}")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
