"""Fault tolerance (§9): checkpoint, crash, and bit-exact recovery.

"Our programming model enables the single controller to coordinate
checkpoint operations via RPC, allowing the saving of model states within
each ParallelWorker Group.  This includes saving parameters of actor/critic
models, dataloader IDs, and Random Number Generator (RNG) states to ensure
system-wide consistency."

Part 1 trains PPO for a few iterations, checkpoints, simulates a full
job loss (the entire controller and every worker discarded), rebuilds the
system from scratch, restores, and shows the resumed run reproducing the
uninterrupted trajectory *exactly* — same rewards, same weights.

Part 2 goes further: a :class:`~repro.faults.FaultInjector` kills a whole
machine mid-training, and :func:`~repro.runtime.train_with_recovery` detects
the loss, re-places the job on the surviving devices, restores the last
atomic checkpoint, and finishes the run — still bit-exact, with the
recovery cost (lost work, restore, re-init) accounted on the simulated
clock.

Run:  python examples/fault_tolerance.py
"""

import tempfile

import numpy as np

from repro.config import ClusterSpec, GenParallelConfig, ParallelConfig
from repro.data import PromptDataset, SyntheticPreferenceTask
from repro.faults import FaultInjector, FaultPlan
from repro.models.tinylm import TinyLMConfig
from repro.rlhf import AlgoType
from repro.rlhf.trainers import TrainerConfig
from repro.runtime import (
    ModelAssignment,
    PlacementPlan,
    build_rlhf_system,
    train_with_recovery,
)

CFG = TinyLMConfig(
    n_layers=2,
    hidden_size=32,
    n_heads=4,
    ffn_hidden_size=48,
    vocab_size=16,
    max_seq_len=32,
)
TASK = SyntheticPreferenceTask(vocab_size=16, target_token=7)
PAR = ParallelConfig(pp=1, tp=2, dp=1)


def build(cluster=None, cluster_spec=None):
    plan = PlacementPlan(
        pools={"main": 2, "r": 1},
        assignments={
            "actor": ModelAssignment("main", PAR, GenParallelConfig.derive(PAR, 1, 1)),
            "critic": ModelAssignment("main", PAR),
            "reference": ModelAssignment("main", PAR),
            "reward": ModelAssignment("r", ParallelConfig(1, 1, 1)),
        },
    )
    return build_rlhf_system(
        AlgoType.PPO,
        plan,
        CFG,
        cluster_spec=cluster_spec,
        trainer_config=TrainerConfig(kl_coef=0.01, seed=7),
        reward_fn=TASK.reward,
        max_new_tokens=6,
        lr=5e-3,
        seed=7,
        cluster=cluster,
    )


def main() -> None:
    dataset = PromptDataset(n_prompts=128, prompt_length=4, vocab_size=16, seed=1)

    print("reference run: 6 uninterrupted PPO iterations")
    reference = build()
    ref_history = reference.trainer.train(dataset, 6, 8)
    print("  rewards:", [round(h["score_mean"], 3) for h in ref_history])

    with tempfile.TemporaryDirectory() as ckpt_dir:
        print("\ninterrupted run: 3 iterations, checkpoint, simulated crash")
        first = build()
        first.trainer.train(dataset, 3, 8)
        first.controller.save_checkpoint(ckpt_dir)
        trainer_state = first.trainer.state_dict()
        del first  # the whole job is gone

        print("recovery: rebuild from scratch, restore checkpoint, resume")
        resumed = build()
        resumed.controller.load_checkpoint(ckpt_dir)
        resumed.trainer.load_state_dict(trainer_state)
        batches = dataset.iter_batches(8, epochs=10**6)
        for _ in range(3):  # fast-forward the dataloader (saved position)
            next(batches)
        resumed_history = [resumed.trainer.step(next(batches)) for _ in range(3)]

    resumed_scores = [round(h["score_mean"], 3) for h in resumed_history]
    ref_scores = [round(h["score_mean"], 3) for h in ref_history[3:]]
    print("  resumed rewards:  ", resumed_scores)
    print("  reference rewards:", ref_scores)
    assert resumed_scores == ref_scores, "recovery diverged!"

    ref_state = reference.groups["actor"].workers[0].materialize_full_state()
    res_state = resumed.groups["actor"].workers[0].materialize_full_state()
    max_diff = max(
        float(np.abs(ref_state[name] - res_state[name]).max())
        for name in ref_state
    )
    print(f"  max |weight difference| vs uninterrupted run: {max_diff:.1e}")
    print("\nrecovery is bit-exact: parameters, optimizer, RNG, dataloader.")

    # -- part 2: automatic recovery from a machine loss mid-training --------
    print("\nautomatic recovery: a whole machine dies mid-training")
    spec = ClusterSpec(n_machines=2, gpus_per_machine=4)  # spare capacity
    injector = FaultInjector(FaultPlan().kill_machine(0, at_step=30))
    with tempfile.TemporaryDirectory() as ckpt_dir:
        system, history, report = train_with_recovery(
            lambda cluster: build(cluster, cluster_spec=spec),
            dataset,
            n_iterations=6,
            batch_size=8,
            checkpoint_dir=ckpt_dir,
            checkpoint_every=1,
            injector=injector,
        )
    for line in report.summary_lines():
        print("  " + line)
    survivors = sorted(
        w.ctx.device.global_rank for w in system.groups["actor"].workers
    )
    print(f"  actor re-placed on surviving GPUs {survivors}")
    recovered_scores = [round(h["score_mean"], 3) for h in history]
    print("  recovered rewards:   ", recovered_scores)
    print("  uninterrupted rewards:", [round(h["score_mean"], 3) for h in ref_history])
    assert recovered_scores == [round(h["score_mean"], 3) for h in ref_history], (
        "automatic recovery diverged!"
    )
    print("\nmachine loss survived; trajectory identical to the failure-free run.")


if __name__ == "__main__":
    main()
