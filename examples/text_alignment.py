"""Text-level RLHF: align a character LM to respond politely.

The other examples work on raw token ids; this one closes the loop with a
character tokenizer so prompts and responses are readable.  The "human
preference" is programmatic (a §9-style reward function): responses should
use the polite vocabulary (characters of "please") and avoid shouting
("!").  Watch actual generations change over training.

Run:  python examples/text_alignment.py
"""

import numpy as np

from repro.config import GenParallelConfig, ParallelConfig
from repro.data import CharTokenizer, DataBatch
from repro.models.tinylm import TinyLMConfig
from repro.rlhf import AlgoType
from repro.rlhf.trainers import TrainerConfig
from repro.runtime import ModelAssignment, PlacementPlan, build_rlhf_system

CORPUS = "please help me! say it nicely."
PROMPTS = ["help: ", "say:  ", "me:   ", "it:   "]
POLITE = set("please")


def main() -> None:
    tokenizer = CharTokenizer.from_corpus([CORPUS] + PROMPTS)

    def politeness(responses: np.ndarray) -> np.ndarray:
        """Reward = polite-character fraction minus a '!' penalty."""
        texts = tokenizer.decode_batch(responses)
        scores = []
        for text in texts:
            if not text:
                scores.append(0.0)
                continue
            polite = sum(c in POLITE for c in text) / len(text)
            shouting = text.count("!") / len(text)
            scores.append(polite - 2.0 * shouting)
        return np.asarray(scores)

    model_config = TinyLMConfig(
        n_layers=2,
        hidden_size=48,
        n_heads=4,
        ffn_hidden_size=64,
        vocab_size=tokenizer.vocab_size,
        max_seq_len=32,
    )
    parallel = ParallelConfig(pp=1, tp=2, dp=1)
    plan = PlacementPlan(
        pools={"main": 2, "judge": 1},
        assignments={
            "actor": ModelAssignment(
                "main", parallel, GenParallelConfig.derive(parallel, 1, 1)
            ),
            "critic": ModelAssignment("main", parallel),
            "reference": ModelAssignment("main", parallel),
            "reward": ModelAssignment("judge", ParallelConfig(1, 1, 1)),
        },
    )
    system = build_rlhf_system(
        AlgoType.PPO,
        plan,
        model_config,
        trainer_config=TrainerConfig(kl_coef=0.005, ppo_epochs=2, updates_per_epoch=2),
        reward_fn=politeness,
        max_new_tokens=8,
        lr=8e-3,
    )

    prompt_ids = tokenizer.encode_batch(PROMPTS * 4, length=7)

    def sample_responses() -> list:
        out = system.groups["actor"].generate_sequences(
            DataBatch({"prompts": prompt_ids[:4]})
        ).get()
        return tokenizer.decode_batch(out["sequences"][:, 7:])

    print("before training, the model responds with noise:")
    for prompt, response in zip(PROMPTS, sample_responses()):
        print(f"  {prompt!r} -> {response!r}")

    print("\ntraining PPO on the politeness reward...")
    history = []
    for block in range(5):
        for _ in range(6):
            history.append(system.trainer.step(DataBatch({"prompts": prompt_ids})))
        score = history[-1]["score_mean"]
        print(f"  after {(block + 1) * 6} iterations: politeness={score:+.3f}")

    print("\nafter training:")
    for prompt, response in zip(PROMPTS, sample_responses()):
        print(f"  {prompt!r} -> {response!r}")
    final = np.mean([h["score_mean"] for h in history[-5:]])
    first = np.mean([h["score_mean"] for h in history[:5]])
    print(f"\npoliteness score: {first:+.3f} -> {final:+.3f}")


if __name__ == "__main__":
    main()
