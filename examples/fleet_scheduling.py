"""Multi-tenant fleet scheduling: several RLHF jobs, one shared cluster.

HybridFlow maps one RLHF dataflow onto one cluster; ``repro.fleet`` layers
the production story on top: several concurrent tenant jobs — each a full
single-controller :class:`~repro.runtime.builder.RlhfSystem` — are
gang-scheduled onto one shared simulated cluster and survive machine loss
*across* tenants.  This example walks three scenarios:

1. A clean run: three tenants share 12 GPUs, everyone completes, Jain
   fairness over per-job goodput is reported.
2. A correlated double-machine kill: the elastic tenant is evicted, resized
   to a narrower data-parallel width on the survivors, restored from its
   atomic checkpoint, and resumes bit-exact; a fixed-width tenant degrades
   gracefully (requeues with aging) until capacity frees up.
3. Priority preemption: a high-priority job arrives into a full cluster, a
   low-priority victim is checkpointed-and-evicted, and later resumes from
   its own checkpoint with no lost iterations.

Run:  python examples/fleet_scheduling.py
"""

import tempfile

from repro.config import ClusterSpec
from repro.faults import FaultPlan
from repro.fleet import FleetScheduler, JobSpec


def run_fleet(title, cluster_spec, jobs, fault_plan=None, **kwargs):
    print(f"\n=== {title} ===")
    with tempfile.TemporaryDirectory() as ckpt_root:
        scheduler = FleetScheduler(
            cluster_spec,
            jobs,
            checkpoint_root=ckpt_root,
            fault_plan=fault_plan,
            run_checks=True,
            **kwargs,
        )
        report = scheduler.run()
    for line in report.summary_lines():
        print(line)
    return report


def main() -> None:
    cluster = ClusterSpec(n_machines=3, gpus_per_machine=4)  # 12 GPUs

    # -- 1. clean multi-tenant run ---------------------------------------------------
    tenants = [
        JobSpec(name="alpha", preferred_dp=2, min_dp=1, n_iterations=4, seed=7),
        JobSpec(name="beta", n_iterations=3, seed=11),
        JobSpec(name="gamma", n_iterations=3, seed=13),
    ]
    report = run_fleet("three tenants, no faults", cluster, tenants)
    assert report.all_completed

    # -- 2. correlated machine kill: resize + graceful degradation -------------------
    # Machines 0 and 2 die in the same tick (a correlated failure: think one
    # power feed).  Only machine 1's four GPUs survive, so alpha — admitted
    # wide at dp=2 — can only be readmitted narrow, at dp=1, restored from
    # its latest atomic checkpoint.
    chaos = FaultPlan()
    chaos.kill_machines([0, 2], at_step=2)
    report = run_fleet(
        "correlated double-machine kill at tick 2",
        cluster,
        [
            JobSpec(name="alpha", preferred_dp=2, min_dp=1, n_iterations=4, seed=7),
            JobSpec(name="beta", n_iterations=3, seed=11),
            JobSpec(name="gamma", n_iterations=3, seed=13),
        ],
        fault_plan=chaos,
    )
    assert report.all_completed
    alpha = report.job("alpha")
    assert alpha.resizes >= 1 and alpha.dp == 1
    print(
        f"  -> alpha survived {alpha.failures} failure(s) "
        f"(MTTR {alpha.mttr:.2f}s), finished at dp={alpha.dp}"
    )

    # -- 3. priority preemption ------------------------------------------------------
    # Two low-priority tenants fill a 2-machine cluster; a high-priority job
    # arrives one tick later and does not fit, so the weakest running victim
    # is checkpointed and evicted, then resumes after the VIP finishes.
    small = ClusterSpec(n_machines=2, gpus_per_machine=4)  # 8 GPUs
    report = run_fleet(
        "high-priority arrival preempts a low-priority tenant",
        small,
        [
            JobSpec(name="low-a", priority=0, preferred_dp=2, n_iterations=4, seed=7),
            JobSpec(name="low-b", priority=0, n_iterations=4, seed=11),
            JobSpec(
                name="high",
                priority=10,
                n_iterations=3,
                seed=13,
                arrival_tick=1,
            ),
        ],
        fault_plan=None,
    )
    assert report.all_completed
    assert report.preemptions >= 1
    victim = max(report.jobs, key=lambda j: j.preemptions)
    print(
        f"  -> {victim.name} was preempted x{victim.preemptions} and still "
        f"completed {victim.iterations} iteration(s) "
        f"({victim.lost_iterations} lost)"
    )


if __name__ == "__main__":
    main()
