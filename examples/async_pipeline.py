"""One-step-off RLHF: rollout t+1 overlaps training of t (repro.pipeline).

The synchronous PPO loop serializes generation -> scoring -> update, so the
actor's devices idle while the scorer pool runs and vice versa.  The
:class:`repro.pipeline.AsyncPipelineDriver` relaxes the dataflow by a
bounded staleness window *W*: while the trainer consumes iteration *t*, the
rollout engine already generates *t+1* on the last *published* policy.
Every sequence carries its behaviour policy's version tag, and stale
batches are corrected with truncated importance weights inside the PPO
loss.

Three guarantees, demonstrated end to end below:

1. ``staleness_window=0`` is **bit-exact** with the synchronous trainer —
   the relaxation is opt-in, never silent.
2. ``staleness_window=1`` collapses the generation<->training bubble on the
   modeled timeline (the speedup is printed, and pinned in the
   ``async_ppo_overlap`` bench workload).
3. The overlapped schedule is **provably race-free**: weight publication
   uses double-buffered version snapshots, and the vector-clock race
   detector (RC5xx) passes over the exported trace.

Run:  python examples/async_pipeline.py
      python examples/async_pipeline.py --staleness 2 --trace async.json
"""

import argparse

import numpy as np

from repro.config import ClusterSpec, GenParallelConfig, ParallelConfig
from repro.data import PromptDataset
from repro.models.tinylm import TinyLMConfig
from repro.pipeline import AsyncPipelineDriver, PipelineConfig
from repro.rlhf import AlgoType
from repro.rlhf.trainers import TrainerConfig
from repro.runtime import ModelAssignment, PlacementPlan, build_rlhf_system
from repro.runtime.timeline import build_timeline

LM_CFG = TinyLMConfig(
    n_layers=2,
    hidden_size=32,
    n_heads=4,
    ffn_hidden_size=48,
    vocab_size=16,
    max_seq_len=32,
)


def build_system():
    """PPO with the actor alone on its pool — the placement overlap needs.

    Critic, reference, and reward share a scorer pool; in the synchronous
    loop the actor idles while the scoring chain runs on it.  The async
    driver fills that idle with the next iteration's generation.
    """
    actor_par = ParallelConfig(pp=1, tp=2, dp=1)
    scorer_par = ParallelConfig(pp=1, tp=1, dp=1)
    plan = PlacementPlan(
        pools={"actor": 2, "scorer": 1},
        assignments={
            "actor": ModelAssignment(
                "actor", actor_par, GenParallelConfig.derive(actor_par, 1, 1)
            ),
            "critic": ModelAssignment("scorer", scorer_par),
            "reference": ModelAssignment("scorer", scorer_par),
            "reward": ModelAssignment("scorer", scorer_par),
        },
    )
    return build_rlhf_system(
        AlgoType.PPO,
        plan,
        LM_CFG,
        cluster_spec=ClusterSpec(n_machines=1, gpus_per_machine=4),
        trainer_config=TrainerConfig(kl_coef=0.01, seed=7),
        max_new_tokens=6,
        lr=5e-3,
        seed=7,
    )


def states_equal(sys_a, sys_b) -> bool:
    for name in sys_a.groups:
        for wa, wb in zip(
            sys_a.groups[name].workers, sys_b.groups[name].workers
        ):
            sa, sb = wa.state_for_checkpoint(), wb.state_for_checkpoint()
            if set(sa) != set(sb):
                return False
            for key in sa:
                va, vb = sa[key], sb[key]
                if isinstance(va, np.ndarray) or isinstance(vb, np.ndarray):
                    if not np.array_equal(np.asarray(va), np.asarray(vb)):
                        return False
                elif va != vb:
                    return False
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--staleness", type=int, default=1, help="staleness window W"
    )
    parser.add_argument("--iterations", type=int, default=4)
    parser.add_argument("--batch", type=int, default=4)
    parser.add_argument(
        "--stream",
        action="store_true",
        help="score with the frozen models at rollout time (same numerics)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a Chrome trace and run the RC5xx race detector on it",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="write the run's metrics as Prometheus text",
    )
    args = parser.parse_args(argv)

    def dataset() -> PromptDataset:
        return PromptDataset(
            n_prompts=64, prompt_length=4, vocab_size=16, seed=1
        )

    # ---- stage 1: the synchronous reference --------------------------------
    print(f"stage 1: synchronous PPO, {args.iterations} iterations")
    sync_sys = build_system()
    sync_sys.trainer.train(dataset(), args.iterations, args.batch)
    sync_makespan = build_timeline(sync_sys.controller).makespan
    print(f"  modeled makespan {sync_makespan:.1f}s")

    # ---- stage 2: staleness=0 must be the same loop, bit for bit -----------
    print("stage 2: async driver with an EMPTY window (W=0)")
    exact_sys = build_system()
    AsyncPipelineDriver(
        exact_sys.trainer, PipelineConfig(staleness_window=0)
    ).train(dataset(), args.iterations, args.batch)
    if not states_equal(sync_sys, exact_sys):
        print("  BIT-EXACTNESS VIOLATED — the relaxation leaked into W=0")
        return 1
    print("  bit-exact with the synchronous trainer (weights + optimizer)")

    # ---- stage 3: the overlapped schedule ----------------------------------
    print(f"stage 3: one-step-off overlap (W={args.staleness})")
    async_sys = build_system()
    driver = AsyncPipelineDriver(
        async_sys.trainer,
        PipelineConfig(
            staleness_window=args.staleness, stream_scoring=args.stream
        ),
    )
    history = driver.train(dataset(), args.iterations, args.batch)
    timeline = build_timeline(async_sys.controller)
    report = driver.report()
    print(
        f"  max staleness seen {report['max_staleness_seen']} "
        f"(window {report['staleness_window']}), buffer peak "
        f"{report['buffer_peak_occupancy']}/{report['buffer_capacity']}"
    )
    print(
        f"  {report['publications']} weight publications, "
        f"{report['published_bytes']} bytes via the train->gen plan"
    )
    if args.staleness > 0:
        stale = [h for h in history if "pipeline/staleness" in h]
        print(
            f"  {len(stale)}/{len(history)} iterations trained on stale "
            "experience (importance-weight corrected)"
        )
    speedup = sync_makespan / max(timeline.makespan, 1e-9)
    print(
        f"  modeled makespan {timeline.makespan:.1f}s "
        f"(speedup {speedup:.3f}x over synchronous)"
    )
    for pool in timeline.pools():
        print(
            f"    pool {pool:8s} idle "
            f"{timeline.idle_fraction(pool) * 100:5.1f}%"
        )

    exit_code = 0
    if args.trace:
        from repro.analysis import RaceDetector, TraceAuditor
        from repro.observability import write_chrome_trace

        out = write_chrome_trace(
            args.trace,
            timeline=timeline,
            spans=async_sys.controller.tracer.spans,
        )
        print(f"  wrote Chrome trace to {out} (load in chrome://tracing)")
        audit = TraceAuditor().audit_system(async_sys)
        RaceDetector().detect_system(async_sys, report=audit)
        for line in audit.summary_lines():
            print(f"  {line}")
        races = [f for f in audit.findings if f.rule.startswith("RC")]
        if races:
            print(f"  RACE DETECTED: {len(races)} RC5xx finding(s)")
            exit_code = 1
        else:
            print("  race detector: the overlapped schedule is clean")
    if args.metrics:
        from repro.observability import collect_system_metrics, write_prometheus

        collect_system_metrics(async_sys.controller)
        out = write_prometheus(args.metrics, async_sys.controller.metrics)
        print(f"  wrote Prometheus metrics to {out}")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
