"""Quickstart: PPO RLHF on a simulated 4-GPU cluster in ~30 lines of API.

Mirrors the paper's Figure 5/6 workflow:

1. virtualise GPUs into ResourcePools and place the four PPO models,
2. let the single controller spawn worker groups under 3D parallelism
   (training 1-2-2, generation 1-1 with micro-DP 2 via the 3D-HybridEngine),
3. drive the 3-stage PPO dataflow and watch the reward climb on a synthetic
   preference task (reward = fraction of a target token in the response —
   the non-NN reward-module pattern of §9).

Run:  python examples/quickstart.py
"""

from repro.config import GenParallelConfig, ParallelConfig
from repro.data import PromptDataset, SyntheticPreferenceTask
from repro.models.tinylm import TinyLMConfig
from repro.rlhf import AlgoType
from repro.rlhf.trainers import TrainerConfig
from repro.runtime import ModelAssignment, PlacementPlan, build_rlhf_system


def main() -> None:
    # the "LLM": a miniature Llama-style transformer the simulator can train
    model_config = TinyLMConfig(
        n_layers=2,
        hidden_size=32,
        n_heads=4,
        ffn_hidden_size=48,
        vocab_size=16,
        max_seq_len=32,
    )

    # placement: actor/critic/reference colocated on 4 GPUs with 3D
    # parallelism 1-2-2; the programmatic reward runs on a 5th device
    train_parallel = ParallelConfig(pp=1, tp=2, dp=2)
    gen_parallel = GenParallelConfig.derive(train_parallel, gen_pp=1, gen_tp=1)
    plan = PlacementPlan(
        pools={"main": 4, "reward_pool": 1},
        assignments={
            "actor": ModelAssignment("main", train_parallel, gen_parallel),
            "critic": ModelAssignment("main", train_parallel),
            "reference": ModelAssignment("main", train_parallel),
            "reward": ModelAssignment("reward_pool", ParallelConfig(1, 1, 1)),
        },
    )

    task = SyntheticPreferenceTask(vocab_size=16, target_token=7)
    system = build_rlhf_system(
        AlgoType.PPO,
        plan,
        model_config,
        trainer_config=TrainerConfig(kl_coef=0.01, ppo_epochs=2, updates_per_epoch=2),
        reward_fn=task.reward,
        max_new_tokens=8,
        lr=5e-3,
    )

    prompts = PromptDataset(n_prompts=256, prompt_length=4, vocab_size=16, seed=1)
    print("training PPO for 20 iterations on the synthetic preference task...")
    history = system.trainer.train(prompts, n_iterations=20, batch_size=16)

    for i, h in enumerate(history):
        if i % 4 == 0 or i == len(history) - 1:
            print(
                f"  iter {i:2d}  reward={h['score_mean']:.3f}  "
                f"policy_loss={h.get('actor/policy_loss', 0):+.4f}  "
                f"kl={h.get('actor/approx_kl', 0):+.4f}"
            )

    first, last = history[0]["score_mean"], history[-1]["score_mean"]
    print(f"\nreward: {first:.3f} -> {last:.3f} (target token learned)")

    print("\nfirst RLHF iteration's dataflow, as traced by the controller:")
    for call in system.controller.trace_methods()[:7]:
        print(f"  {call}")
    total_gb = system.controller.meter.total_bytes() / 1e9
    print(f"\nsimulated inter-GPU traffic this run: {total_gb:.3f} GB")


if __name__ == "__main__":
    main()
