"""Rollout serving: continuous batching, paged KV, priorities, and SLOs.

The generation stage of §2.3 is a *serving* workload: many requests with
wildly different response lengths sharing a fixed set of decode slots and a
fixed KV budget.  The paper's evaluation pins response lengths equal
because "the baseline systems may not incorporate continuous-batching
optimization"; `repro.serving` is that optimisation made functional.

Part 1 runs a matched workload and shows the engine replaying the analytic
Orca schedule of `repro.perf.continuous_batching` *exactly*, while beating
static wave batching on the same responses.

Part 2 serves a bursty Poisson stream with three priority classes under a
deliberately tight KV-block budget: requests are preempted and recomputed,
the block ledger never overflows, and the report shows TTFT/TPOT/latency
percentiles plus SLO attainment.

Part 3 drops the engine into a full RLHF system: the actor generates
through the `RolloutServer` (``use_serving=True``), EOS-terminated with a
``response_mask`` the losses respect — and greedy output stays bit-exact
with the sequential sampler.

Run:  python examples/rollout_serving.py
"""

import numpy as np

from repro.config import GenParallelConfig, ParallelConfig
from repro.data import PromptDataset
from repro.models.tinylm import TinyLM, TinyLMConfig
from repro.perf.continuous_batching import (
    continuous_schedule_stats,
    sample_response_lengths,
)
from repro.rlhf import AlgoType
from repro.runtime import ModelAssignment, PlacementPlan, build_rlhf_system
from repro.serving import RolloutServer, ServingConfig, static_batch_steps

CFG = TinyLMConfig(
    n_layers=2,
    hidden_size=32,
    n_heads=4,
    ffn_hidden_size=48,
    vocab_size=16,
    max_seq_len=48,
)


def part1_matched_workload():
    print("=" * 72)
    print("Part 1: matched workload — engine vs analytic schedule")
    print("=" * 72)
    model = TinyLM(CFG, seed=0)
    rng = np.random.default_rng(0)
    lengths = sample_response_lengths(24, 8, 32, rng)
    server = RolloutServer(
        model, ServingConfig(max_slots=6, block_size=8, greedy=True)
    )
    for length in lengths:
        server.submit(
            rng.integers(0, CFG.vocab_size, size=4),
            max_new_tokens=int(length),
        )
    report = server.drain()
    for line in report.summary_lines():
        print(f"  {line}")
    n_steps, util = continuous_schedule_stats(lengths, 6)
    static = static_batch_steps(lengths, 6)
    print(f"  analytic model       : {n_steps} steps, {util:.3f} utilisation")
    print(f"  static wave batching : {static} steps "
          f"({static / report.n_steps:.2f}x the engine)")
    assert report.n_steps == n_steps, "engine diverged from the Orca schedule"
    assert abs(report.slot_utilisation - util) < 1e-9


def part2_bursty_slo_stream():
    print()
    print("=" * 72)
    print("Part 2: bursty prioritised stream, tight KV budget, SLOs")
    print("=" * 72)
    model = TinyLM(CFG, seed=0)
    rng = np.random.default_rng(7)
    config = ServingConfig(
        max_slots=4,
        block_size=4,
        n_blocks=14,  # tight: forces preempt-and-recompute
        eos_token_id=0,
        slo_ttft=0.25,
        slo_latency=0.60,
        seed=7,
    )
    server = RolloutServer(model, config)
    arrival = 0.0
    for _ in range(24):
        arrival += float(rng.exponential(2.0)) * config.step_time
        server.submit(
            rng.integers(0, CFG.vocab_size, size=6),
            max_new_tokens=24,
            priority=int(rng.integers(0, 3)),
            arrival_time=arrival,
        )
        server.scheduler.check_invariants()
    report = server.drain()
    for line in report.summary_lines():
        print(f"  {line}")
    by_priority = {}
    for r in report.completed:
        by_priority.setdefault(r.priority, []).append(r.latency)
    print("  mean latency by priority class:")
    for prio in sorted(by_priority, reverse=True):
        lat = by_priority[prio]
        print(f"    priority {prio}: {np.mean(lat):.4f}s over {len(lat)} req")


def part3_serving_backed_actor():
    print()
    print("=" * 72)
    print("Part 3: the serving engine inside the RLHF pipeline")
    print("=" * 72)
    par = ParallelConfig(pp=1, tp=2, dp=1)
    gen = GenParallelConfig.derive(par, 1, 1)
    cfg = TinyLMConfig(
        n_layers=2,
        hidden_size=32,
        n_heads=4,
        ffn_hidden_size=48,
        vocab_size=16,
        max_seq_len=32,
    )
    plan = PlacementPlan(
        pools={"main": 2},
        assignments={
            m: ModelAssignment("main", par, gen if m == "actor" else None)
            for m in ("actor", "critic", "reference", "reward")
        },
    )

    def build(use_serving):
        return build_rlhf_system(
            AlgoType.PPO,
            plan,
            cfg,
            max_new_tokens=8,
            lr=5e-3,
            eos_token_id=0,
            use_serving=use_serving,
        )

    prompts = PromptDataset(
        n_prompts=16, prompt_length=4, vocab_size=16, seed=1
    ).batch(0, 8)
    served = build(True).groups["actor"].generate_sequences(
        prompts, do_sample=False
    ).get()
    plain = build(False).groups["actor"].generate_sequences(
        prompts, do_sample=False
    ).get()
    mask = served["response_mask"].astype(bool)
    assert np.array_equal(served["response_mask"], plain["response_mask"])
    assert np.array_equal(
        served["sequences"][:, 4:][mask], plain["sequences"][:, 4:][mask]
    )
    lengths = served["response_mask"].sum(axis=1).astype(int)
    print("  greedy serving output is bit-exact with the sequential sampler")
    print(f"  EOS-terminated response lengths: {lengths.tolist()}")

    system = build(True)
    history = system.trainer.train(
        PromptDataset(n_prompts=64, prompt_length=4, vocab_size=16, seed=1),
        2,
        8,
    )
    print("  2 PPO iterations through the serving path, score_mean:",
          [round(h["score_mean"], 3) for h in history])
    tokens = system.controller.metrics.total("repro_serving_tokens_total")
    spans = system.controller.tracer.counts_by_category().get("serving", 0)
    print(f"  observability: {int(tokens)} served tokens, {spans} serving spans")


if __name__ == "__main__":
    part1_matched_workload()
    part2_bursty_slo_stream()
    part3_serving_backed_actor()
