"""From alignment to reasoning (§9): GRPO with a verifiable reward function.

The paper's discussion section: "the reward model can be replaced by
non-neural-network reward modules ... a reward function to validate
mathematical results.  HybridFlow can seamlessly integrate these reward
modules by wrapping them as remote functions."

Here the verifiable task is *echo reasoning*: each prompt states its answer
token (repeated), and the reward function checks the response against that
ground truth — no reward model anywhere in the dataflow.  GRPO (the
critic-free algorithm DeepSeekMath introduced, also cited in §9) normalises
rewards within groups of samples per prompt.

Run:  python examples/reasoning_grpo.py
"""

import numpy as np

from repro.config import GenParallelConfig, ParallelConfig
from repro.data import PromptDataset
from repro.models.tinylm import TinyLMConfig
from repro.rlhf import AlgoType
from repro.rlhf.trainers import TrainerConfig
from repro.runtime import ModelAssignment, PlacementPlan, build_rlhf_system


def exact_answer_reward(prompts: np.ndarray, responses: np.ndarray) -> np.ndarray:
    """Ground-truth checker: score = fraction of response tokens equal to
    the prompt's final token (the 'answer')."""
    answers = prompts[:, -1]
    return (responses == answers[:, None]).mean(axis=-1)


def main() -> None:
    model_config = TinyLMConfig(
        n_layers=2,
        hidden_size=48,
        n_heads=4,
        ffn_hidden_size=64,
        vocab_size=8,
        max_seq_len=32,
    )
    parallel = ParallelConfig(pp=1, tp=2, dp=1)
    plan = PlacementPlan(
        pools={"main": 2, "checker": 1},
        assignments={
            "actor": ModelAssignment(
                "main", parallel, GenParallelConfig.derive(parallel, 1, 1)
            ),
            "reference": ModelAssignment("main", parallel),
            # the reward "model" is a sandbox-style checker on one device
            "reward": ModelAssignment("checker", ParallelConfig(1, 1, 1)),
        },
    )

    system = build_rlhf_system(
        AlgoType.GRPO,
        plan,
        model_config,
        trainer_config=TrainerConfig(
            kl_coef=0.001, group_size=8, ppo_epochs=2, updates_per_epoch=2
        ),
        reward_fn=exact_answer_reward,
        reward_fn_pass_prompts=True,
        max_new_tokens=4,
        lr=1e-2,
    )

    # each prompt repeats its answer token — a dense, verifiable target
    prompts = PromptDataset(n_prompts=256, prompt_length=4, vocab_size=8, seed=2)
    prompts.prompts = np.repeat(prompts.prompts[:, :1], 4, axis=1)
    print(
        "GRPO, 8 samples/prompt, verifiable reward = respond with the "
        "prompt's answer token"
    )
    history = system.trainer.train(prompts, n_iterations=50, batch_size=8)

    for i, h in enumerate(history):
        if i % 5 == 0 or i == len(history) - 1:
            print(
                f"  iter {i:2d}  accuracy={h['score_mean']:.3f}  "
                f"kl_to_ref={h.get('actor/kl_to_ref', 0):.4f}"
            )

    scores = [h["score_mean"] for h in history]
    print(
        f"\nanswer accuracy {np.mean(scores[:5]):.3f} -> "
        f"{np.mean(scores[-5:]):.3f}"
    )
    trace = system.controller.trace_methods()
    assert "critic" not in " ".join(trace), "GRPO dataflow has no critic"
    print("dataflow (one iteration):", " -> ".join(trace[:4]))


if __name__ == "__main__":
    main()
