"""A guided tour of the 3D-HybridEngine with real weight shards (§5).

Recreates the paper's Figure 8 on an actual (miniature) transformer: 8
simulated GPUs, training groups 1-4-2, generation groups 1-2-2-2.  Shows,
with observed bytes rather than formulas:

* how the interval grouping makes each rank's training shard a sub-slice of
  its generation shard (zero-redundancy),
* how the vanilla grouping (HybridFlow-V) leaves G2/G3/G6/G7 with fully
  duplicate weights and a full-model memory peak,
* the per-rank all-gather traffic of the transition, against Table 2.

Run:  python examples/hybrid_engine_tour.py
"""

from repro.config import ClusterSpec, GenParallelConfig, ParallelConfig
from repro.hybrid_engine import EngineKind, HybridEngine3D, transition_overhead
from repro.models.sharding import shard_nbytes
from repro.models.tinylm import TinyLM, TinyLMConfig
from repro.parallel.topology import GenGroupingMode
from repro.single_controller import SingleController, WorkerGroup
from repro.workers import ActorWorker

MODEL = TinyLMConfig(
    n_layers=4,
    hidden_size=64,
    n_heads=4,
    ffn_hidden_size=96,
    vocab_size=32,
    max_seq_len=32,
)
TRAIN = ParallelConfig(pp=1, tp=4, dp=2)
GEN = GenParallelConfig.derive(TRAIN, gen_pp=1, gen_tp=2)


def build_actor(mode: GenGroupingMode) -> WorkerGroup:
    controller = SingleController(ClusterSpec(n_machines=1))
    return WorkerGroup(
        ActorWorker,
        controller.create_pool(TRAIN.world_size),
        parallel_config=TRAIN,
        gen_config=GEN,
        gen_mode=mode,
        controller=controller,
        name="actor",
        worker_kwargs={"model_config": MODEL},
    )


def tour(mode: GenGroupingMode) -> None:
    print(f"\n--- generation grouping: {mode.value} ---")
    group = build_actor(mode)
    gen = group.gen_topology
    print("  generation TP groups:", [g.ranks for g in {
        tuple(gen.gen_tp_group(r).ranks): gen.gen_tp_group(r)
        for r in range(8)
    }.values()])
    print("  micro-DP groups:     ", [g.ranks for g in gen.all_micro_dp_groups()])

    engine = HybridEngine3D(group)
    report = engine.to_generation()
    model_bytes = sum(
        a.nbytes for a in TinyLM(MODEL, seed=0).state_dict().values()
    )
    print(f"  model size M = {model_bytes:,} bytes")
    print("  rank  train_shard  gen_shard  comm_bytes  redundant  peak")
    for worker in group.workers:
        rank = worker.ctx.global_rank
        print(
            f"   G{rank + 1}   {shard_nbytes(worker.shard):>10,} "
            f"{shard_nbytes(worker.gen_shard):>10,} "
            f"{report.comm_bytes_per_rank[rank]:>11,} "
            f"{report.redundant_bytes_per_rank[rank]:>10,} "
            f"{report.peak_param_bytes_per_rank[rank]:>11,}"
        )
    print(
        f"  totals: redundant={report.total_redundant_bytes:,} B, "
        f"peak max={report.max_peak_bytes:,} B, "
        f"comm max={report.max_comm_bytes:,} B"
    )
    engine.to_training()


def main() -> None:
    print(
        f"3D-HybridEngine on 8 simulated GPUs: training {TRAIN} -> "
        f"generation {GEN} (Figure 8)"
    )
    tour(GenGroupingMode.HYBRIDFLOW)
    tour(GenGroupingMode.VANILLA)

    print("\nTable 2 closed forms for this configuration:")
    for kind in (EngineKind.HYBRIDFLOW, EngineKind.HYBRIDFLOW_V):
        o = transition_overhead(kind, TRAIN, GEN)
        print(
            f"  {kind.value:13s} comm={o.comm_fraction} M  "
            f"peak={o.peak_memory_fraction} M  "
            f"redundancy={o.redundancy_fraction} M"
        )


if __name__ == "__main__":
    main()
