"""Auto device mapping (§6): search placements + parallelism for real scales.

Runs Algorithm 1 on Llama-class model sizes over simulated A100 clusters,
prints the chosen placement, GPU allocation, 3D parallel strategies (training
and generation), and the estimated RLHF iteration breakdown — then compares
against the named placement strategies of §8.3 and the three baseline
systems of §8.2.

Run:  python examples/auto_device_mapping.py
"""

from repro.baselines import ALL_SYSTEMS
from repro.baselines.common import InfeasibleScenario
from repro.baselines.hybridflow import PLACEMENT_STRATEGIES, estimate_hybridflow
from repro.config import MODEL_SPECS, ClusterSpec, RlhfWorkload
from repro.mapping import map_dataflow
from repro.rlhf.core import AlgoType

PPO_MODELS = ("actor", "critic", "reference", "reward")


def describe_mapping(model_name: str, n_machines: int) -> None:
    spec = MODEL_SPECS[model_name]
    specs = {m: spec for m in PPO_MODELS}
    cluster = ClusterSpec(n_machines=n_machines)
    workload = RlhfWorkload()

    result = map_dataflow(AlgoType.PPO, specs, cluster, workload)
    print(f"\n=== {model_name} PPO on {cluster.n_gpus} GPUs ===")
    print(f"  placement: {result.describe()}")
    for model, choice in result.strategies.items():
        gen = (
            f", generation tp={choice.gen_tp} pp={choice.gen_pp}"
            if choice.gen_tp
            else ""
        )
        print(f"    {model:9s} 3D parallel {choice.parallel}{gen}")
    b = result.breakdown
    print(
        f"  iteration: total={b.total:.1f}s  gen={b.generation:.1f}s  "
        f"prep={b.preparation:.1f}s  train={b.training:.1f}s  "
        f"transition={b.transition:.2f}s"
    )
    print(f"  throughput: {b.throughput(workload):,.0f} tokens/sec")

    print("  vs named placements (§8.3):")
    for strategy in PLACEMENT_STRATEGIES[:-1]:
        try:
            est = estimate_hybridflow(
                AlgoType.PPO, specs, cluster, workload, placement=strategy
            )
            print(f"    {strategy:11s} {est.throughput(workload):>10,.0f} tok/s")
        except (InfeasibleScenario, RuntimeError):
            print(f"    {strategy:11s} {'infeasible':>10}")

    print("  vs baseline systems (§8.2):")
    for system, estimate_fn in ALL_SYSTEMS.items():
        if system == "HybridFlow":
            continue
        try:
            est = estimate_fn(AlgoType.PPO, specs, cluster, workload)
            tput = est.throughput(workload)
            speedup = b.throughput(workload) / tput
            print(f"    {system:15s} {tput:>10,.0f} tok/s  ({speedup:.2f}x)")
        except InfeasibleScenario as exc:
            print(f"    {system:15s} {'OOM':>10}  ({exc})")


def main() -> None:
    print("Algorithm 1: optimized GPU allocation and placement (§6)")
    describe_mapping("llama-7b", 1)
    describe_mapping("llama-13b", 2)
    describe_mapping("llama-70b", 16)


if __name__ == "__main__":
    main()
