"""HybridFlow reproduction: a flexible and efficient RLHF framework.

A pure-Python rebuild of *HybridFlow* (EuroSys 2025, open-sourced as verl)
on a simulated GPU cluster.  The public surface mirrors the paper's
workflow (§3): describe models and a placement, let the single controller
spawn parallel worker groups, and drive an RLHF algorithm as a
single-process script — or ask the auto-mapping algorithm (§6) to choose
the placement and parallelism for you.

Typical entry points:

>>> from repro import build_rlhf_system, PlacementPlan, AlgoType
>>> from repro import map_dataflow, MODEL_SPECS, ClusterSpec, RlhfWorkload

See README.md for a full tour, DESIGN.md for the system inventory, and
EXPERIMENTS.md for the paper-vs-measured record.
"""

from repro.config import (
    MODEL_SPECS,
    ClusterSpec,
    GenParallelConfig,
    GpuSpec,
    ModelSpec,
    ParallelConfig,
    RlhfWorkload,
)
from repro.data import DataBatch, PromptDataset, SyntheticPreferenceTask
from repro.mapping import map_dataflow
from repro.models import TinyLM, TinyLMConfig
from repro.observability import MetricsRegistry, SpanTracer, chrome_trace
from repro.rlhf import AlgoType
from repro.rlhf.trainers import TrainerConfig
from repro.runtime import (
    ModelAssignment,
    PlacementPlan,
    RlhfSystem,
    build_rlhf_system,
    build_timeline,
)
from repro.single_controller import ResourcePool, SingleController, WorkerGroup

__version__ = "1.0.0"

__all__ = [
    "AlgoType",
    "ClusterSpec",
    "DataBatch",
    "GenParallelConfig",
    "GpuSpec",
    "MODEL_SPECS",
    "MetricsRegistry",
    "ModelAssignment",
    "ModelSpec",
    "ParallelConfig",
    "PlacementPlan",
    "PromptDataset",
    "ResourcePool",
    "RlhfSystem",
    "RlhfWorkload",
    "SingleController",
    "SpanTracer",
    "SyntheticPreferenceTask",
    "TinyLM",
    "TinyLMConfig",
    "TrainerConfig",
    "WorkerGroup",
    "build_rlhf_system",
    "build_timeline",
    "chrome_trace",
    "map_dataflow",
    "__version__",
]
