"""Functional tensor-parallel compute primitives (Megatron-style, [71]).

These are the actual distributed matmul patterns 3D parallelism relies on,
executed over real numpy shards with the metered collectives — so the
repository's claim that a TP group "jointly holds one replica" is backed by
arithmetic, not just bookkeeping:

* **column-parallel linear**: ``W`` split on the output axis; each rank
  computes a slice of the outputs; an all-gather (or nothing, when the next
  layer is row-parallel) restores the full activation.
* **row-parallel linear**: ``W`` split on the input axis; each rank holds a
  partial sum; an all-reduce completes the result.
* **parallel attention/MLP pairing**: column- then row-parallel, needing
  exactly one all-reduce per pair — the two-all-reduce-per-layer count the
  analytical TP cost model charges (``TP_ALLREDUCE_PER_LAYER_FWD``).
* **vocab-parallel logits + cross-entropy**: the LM head split over the
  vocabulary with a numerically-stable distributed log-softmax.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.comm import collectives
from repro.comm.groups import ProcessGroup


def _require_shards(shards: Sequence[np.ndarray], group: ProcessGroup) -> None:
    if len(shards) != group.size:
        raise ValueError(
            f"need one weight shard per rank: got {len(shards)} for group "
            f"size {group.size}"
        )


def column_parallel_linear(
    x: np.ndarray,
    weight_shards: Sequence[np.ndarray],
    group: ProcessGroup,
    gather_output: bool = True,
) -> List[np.ndarray]:
    """``y = x @ W`` with ``W`` column-split: ``W = concat(shards, axis=1)``.

    ``x`` is replicated on every rank (the residual stream).  Returns each
    rank's output — the full ``y`` on every rank when ``gather_output``,
    otherwise each rank's slice (the input to a following row-parallel op).
    """
    _require_shards(weight_shards, group)
    partials = [np.asarray(x) @ np.asarray(w) for w in weight_shards]
    if not gather_output:
        return partials
    return collectives.all_gather(partials, group, axis=-1)


def row_parallel_linear(
    x_shards: Sequence[np.ndarray],
    weight_shards: Sequence[np.ndarray],
    group: ProcessGroup,
) -> List[np.ndarray]:
    """``y = x @ W`` with ``W`` row-split and ``x`` correspondingly split.

    Each rank computes a partial product; a single all-reduce sums them —
    the collective that completes an attention-output or MLP-down
    projection.
    """
    _require_shards(weight_shards, group)
    if len(x_shards) != group.size:
        raise ValueError(
            f"need one input shard per rank: got {len(x_shards)}"
        )
    partials = [
        np.asarray(xs) @ np.asarray(w)
        for xs, w in zip(x_shards, weight_shards)
    ]
    return collectives.all_reduce(partials, group, op="sum")


def parallel_mlp(
    x: np.ndarray,
    up_shards: Sequence[np.ndarray],
    down_shards: Sequence[np.ndarray],
    group: ProcessGroup,
) -> List[np.ndarray]:
    """Column-parallel up-projection + ReLU + row-parallel down-projection.

    The canonical Megatron MLP: one all-reduce for the whole block.
    """
    hidden = column_parallel_linear(x, up_shards, group, gather_output=False)
    activated = [np.maximum(h, 0.0) for h in hidden]
    return row_parallel_linear(activated, down_shards, group)


def vocab_parallel_logits(
    x: np.ndarray,
    head_shards: Sequence[np.ndarray],
    group: ProcessGroup,
) -> List[np.ndarray]:
    """LM-head logits with the vocabulary split across ranks."""
    return column_parallel_linear(x, head_shards, group, gather_output=True)


def vocab_parallel_log_softmax(
    x: np.ndarray,
    head_shards: Sequence[np.ndarray],
    group: ProcessGroup,
) -> List[np.ndarray]:
    """Numerically-stable distributed log-softmax over a split vocabulary.

    Each rank computes its logit slice; the max and the sum-of-exponentials
    are combined with two all-reduces (max then sum), after which every rank
    holds the log-softmax of its slice; a final all-gather restores the full
    distribution.  This is how vocab-parallel cross-entropy avoids ever
    materialising full logits on one device.
    """
    _require_shards(head_shards, group)
    local_logits = [np.asarray(x) @ np.asarray(w) for w in head_shards]
    local_max = [lg.max(axis=-1, keepdims=True) for lg in local_logits]
    global_max = collectives.all_reduce(local_max, group, op="max")
    shifted = [lg - m for lg, m in zip(local_logits, global_max)]
    local_sum = [np.exp(s).sum(axis=-1, keepdims=True) for s in shifted]
    global_sum = collectives.all_reduce(local_sum, group, op="sum")
    local_logp = [
        s - np.log(g) for s, g in zip(shifted, global_sum)
    ]
    return collectives.all_gather(local_logp, group, axis=-1)
