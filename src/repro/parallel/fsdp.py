"""PyTorch FSDP sharding model ([57], §4.1).

HybridFlow's ``FSDPWorker`` base class supports fully-sharded data parallel
training.  FSDP's FULL_SHARD mode is memory-equivalent to ZeRO-3: parameters,
gradients and optimizer states are all sharded over the DP group and
parameters are all-gathered per layer for compute.
"""

from __future__ import annotations

import dataclasses

from repro.parallel.zero import (
    ZeroConfig,
    ZeroStage,
    zero_grad_sync_volume,
    zero_memory_per_rank,
    zero_param_gather_volume,
)


@dataclasses.dataclass(frozen=True)
class FsdpConfig:
    """FSDP configuration: sharding degree and strategy."""

    dp: int
    #: "full" shards params+grads+opt (ZeRO-3-like); "grad_op" shards
    #: grads+opt only (ZeRO-2-like); "no_shard" is plain DDP.
    strategy: str = "full"

    def __post_init__(self) -> None:
        if self.dp < 1:
            raise ValueError(f"dp must be >= 1, got {self.dp}")
        if self.strategy not in ("full", "grad_op", "no_shard"):
            raise ValueError(f"unknown FSDP strategy {self.strategy!r}")

    def as_zero(self) -> ZeroConfig:
        stage = {
            "full": ZeroStage.PARAMETERS,
            "grad_op": ZeroStage.GRADIENTS,
            "no_shard": ZeroStage.DDP,
        }[self.strategy]
        return ZeroConfig(stage=stage, dp=self.dp)


def fsdp_memory_per_rank(n_params: int, config: FsdpConfig) -> int:
    """Training-state bytes per rank under FSDP."""
    return zero_memory_per_rank(n_params, config.as_zero())


def fsdp_param_gather_volume(n_params: int, config: FsdpConfig) -> int:
    """Per-rank all-gather bytes to materialise parameters for one pass."""
    return zero_param_gather_volume(n_params, config.as_zero())


def fsdp_grad_sync_volume(n_params: int, config: FsdpConfig) -> int:
    """Per-rank gradient synchronisation bytes per training step."""
    return zero_grad_sync_volume(n_params, config.as_zero())
