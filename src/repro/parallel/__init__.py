"""3D parallel topology math: training groups, generation groups, sharding.

Implements the parallel-grouping rules of §5 of the paper:

* Training groups ``p-t-d`` use the classic Megatron convention — consecutive
  ranks form TP groups, consecutive blocks form pipeline stages, and DP groups
  pick ranks at interval ``p*t``.
* Generation groups ``p_g-t_g-d_g-d`` come in two flavours: the **vanilla**
  method (HybridFlow-V) reuses the training convention with generation sizes,
  while the **hybridflow** method selects generation TP/PP ranks at intervals
  ``t/t_g`` and ``p/p_g`` so every device's training shard is a sub-slice of
  its generation shard (zero-redundancy resharding, §5.3).
"""

from repro.parallel.topology import (
    GenGroupingMode,
    GenTopology,
    ParallelTopology,
    Rank3D,
    Rank4D,
)
from repro.parallel.sharding import ShardRange, WeightShard, shard_overlap_fraction
from repro.parallel.zero import ZeroConfig, ZeroStage, zero_memory_per_rank
from repro.parallel.fsdp import FsdpConfig, fsdp_memory_per_rank
from repro.parallel.tp_compute import (
    column_parallel_linear,
    parallel_mlp,
    row_parallel_linear,
    vocab_parallel_log_softmax,
    vocab_parallel_logits,
)

__all__ = [
    "FsdpConfig",
    "GenGroupingMode",
    "GenTopology",
    "ParallelTopology",
    "Rank3D",
    "Rank4D",
    "ShardRange",
    "WeightShard",
    "ZeroConfig",
    "ZeroStage",
    "column_parallel_linear",
    "parallel_mlp",
    "row_parallel_linear",
    "vocab_parallel_log_softmax",
    "vocab_parallel_logits",
    "fsdp_memory_per_rank",
    "shard_overlap_fraction",
    "zero_memory_per_rank",
]
