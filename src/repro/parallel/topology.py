"""Rank topology for training and generation parallel groups (§5.1, §5.3).

Conventions (matching the paper's Figure 8 and Megatron-LM):

* A world of ``N = p*t*d`` ranks is decomposed with TP fastest, then PP, then
  DP: global group-rank ``r = d_idx*(p*t) + p_idx*t + t_idx``.
* Within each training DP replica (a contiguous block of ``p*t`` ranks), the
  generation stage re-decomposes ranks into ``p_g-t_g-d_g`` groups using one
  of two methods:

  - ``GenGroupingMode.VANILLA`` (HybridFlow-V): the same consecutive-rank
    convention applied to generation sizes, i.e.
    ``m = dg_idx*(p_g*t_g) + pg_idx*t_g + tg_idx``.
  - ``GenGroupingMode.HYBRIDFLOW`` (the paper's new method): generation TP/PP
    indices are the training indices divided by ``t/t_g`` and ``p/p_g``, so
    each rank's training shard is contained in its generation shard, and micro
    DP groups are formed by the residual indices (consecutive ranks).

Worked example (Figure 8, ``p=1, t=4, d=2`` training, ``p_g=1, t_g=2`` gen):

* vanilla gen TP groups: ``[0,1], [2,3], [4,5], [6,7]``;
  micro DP groups: ``[0,2], [1,3], [4,6], [5,7]``.
* hybridflow gen TP groups: ``[0,2], [1,3], [4,6], [5,7]``;
  micro DP groups: ``[0,1], [2,3], [4,5], [6,7]``.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Sequence

from repro.comm.groups import GroupCache, ProcessGroup, TrafficMeter
from repro.config import GenParallelConfig, ParallelConfig


@dataclasses.dataclass(frozen=True)
class Rank3D:
    """Training-stage coordinates of one rank: pipeline, tensor, data indices."""

    p: int
    t: int
    d: int


@dataclasses.dataclass(frozen=True)
class Rank4D:
    """Generation-stage coordinates: gen pipeline/tensor, micro-DP, train DP."""

    pg: int
    tg: int
    dg: int
    d: int


class GenGroupingMode(enum.Enum):
    """How generation parallel groups are formed from training ranks (§5.3)."""

    VANILLA = "vanilla"  # HybridFlow-V: consecutive-rank grouping
    HYBRIDFLOW = "hybridflow"  # interval grouping -> zero-redundancy overlap


class ParallelTopology:
    """Training 3D parallel groups over an ordered list of global ranks."""

    def __init__(
        self,
        config: ParallelConfig,
        global_ranks: Optional[Sequence[int]] = None,
        meter: Optional[TrafficMeter] = None,
        name: str = "model",
    ) -> None:
        self.config = config
        n = config.world_size
        if global_ranks is None:
            global_ranks = list(range(n))
        if len(global_ranks) != n:
            raise ValueError(
                f"topology {config} needs {n} ranks, got {len(global_ranks)}"
            )
        self.global_ranks: List[int] = list(global_ranks)
        self.meter = meter
        self.name = name
        self._coords: Dict[int, Rank3D] = {}
        p, t, _d = config.pp, config.tp, config.dp
        for r, g in enumerate(self.global_ranks):
            d_idx, rem = divmod(r, p * t)
            p_idx, t_idx = divmod(rem, t)
            self._coords[g] = Rank3D(p=p_idx, t=t_idx, d=d_idx)
        #: Group geometry is immutable after construction, so every
        #: ``*_group`` lookup is memoized by its fully-qualified name.
        self.group_cache = GroupCache()

    @property
    def world_size(self) -> int:
        return self.config.world_size

    def coords(self, global_rank: int) -> Rank3D:
        try:
            return self._coords[global_rank]
        except KeyError:
            raise ValueError(
                f"rank {global_rank} not in topology {self.name!r}"
            ) from None

    def global_rank_at(self, p: int, t: int, d: int) -> int:
        cfg = self.config
        if not (0 <= p < cfg.pp and 0 <= t < cfg.tp and 0 <= d < cfg.dp):
            raise ValueError(f"coords ({p},{t},{d}) out of range for {cfg}")
        return self.global_ranks[d * cfg.pp * cfg.tp + p * cfg.tp + t]

    def _group(self, kind: str, ranks_fn) -> ProcessGroup:
        return self.group_cache.get_or_build(
            f"{self.name}/{kind}", ranks_fn, meter=self.meter
        )

    def tp_group(self, global_rank: int) -> ProcessGroup:
        c = self.coords(global_rank)
        return self._group(
            f"tp[p{c.p},d{c.d}]",
            lambda: [
                self.global_rank_at(c.p, t, c.d) for t in range(self.config.tp)
            ],
        )

    def pp_group(self, global_rank: int) -> ProcessGroup:
        c = self.coords(global_rank)
        return self._group(
            f"pp[t{c.t},d{c.d}]",
            lambda: [
                self.global_rank_at(p, c.t, c.d) for p in range(self.config.pp)
            ],
        )

    def dp_group(self, global_rank: int) -> ProcessGroup:
        c = self.coords(global_rank)
        return self._group(
            f"dp[p{c.p},t{c.t}]",
            lambda: [
                self.global_rank_at(c.p, c.t, d) for d in range(self.config.dp)
            ],
        )

    def mp_group(self, global_rank: int) -> ProcessGroup:
        """Model-parallel group: all ranks of this rank's DP replica."""
        c = self.coords(global_rank)
        return self._group(
            f"mp[d{c.d}]",
            lambda: [
                self.global_rank_at(p, t, c.d)
                for p in range(self.config.pp)
                for t in range(self.config.tp)
            ],
        )

    def all_tp_groups(self) -> List[ProcessGroup]:
        return [
            self.tp_group(self.global_rank_at(p, 0, d))
            for d in range(self.config.dp)
            for p in range(self.config.pp)
        ]

    def all_dp_groups(self) -> List[ProcessGroup]:
        return [
            self.dp_group(self.global_rank_at(p, t, 0))
            for p in range(self.config.pp)
            for t in range(self.config.tp)
        ]

    def all_pp_groups(self) -> List[ProcessGroup]:
        return [
            self.pp_group(self.global_rank_at(0, t, d))
            for d in range(self.config.dp)
            for t in range(self.config.tp)
        ]

    def is_last_pp_stage(self, global_rank: int) -> bool:
        return self.coords(global_rank).p == self.config.pp - 1

    def __repr__(self) -> str:
        return f"ParallelTopology({self.name!r}, {self.config})"


class GenTopology:
    """Generation-stage groups layered on a training topology (§5.1, §5.3)."""

    def __init__(
        self,
        train: ParallelTopology,
        gen: GenParallelConfig,
        mode: GenGroupingMode = GenGroupingMode.HYBRIDFLOW,
    ) -> None:
        tcfg = train.config
        expected_micro_dp = tcfg.model_parallel_size // gen.model_parallel_size
        if gen.model_parallel_size * gen.micro_dp != tcfg.model_parallel_size:
            raise ValueError(
                f"generation groups {gen} incompatible with training {tcfg}: "
                f"micro_dp must be {expected_micro_dp}"
            )
        if tcfg.pp % gen.pp or tcfg.tp % gen.tp:
            raise ValueError(
                f"generation sizes p_g={gen.pp}, t_g={gen.tp} must divide "
                f"training sizes p={tcfg.pp}, t={tcfg.tp}"
            )
        self.train = train
        self.config = gen
        self.mode = mode
        self._coords: Dict[int, Rank4D] = {}
        for g in train.global_ranks:
            self._coords[g] = self._compute_coords(g)
        #: Separate from the training topology's cache: gen group names are
        #: ``gen_``-prefixed but keeping the caches apart makes hit/miss
        #: accounting per layer meaningful.
        self.group_cache = GroupCache()

    def _compute_coords(self, global_rank: int) -> Rank4D:
        tcfg = self.train.config
        c = self.train.coords(global_rank)
        # index of this rank within its training DP replica
        m = c.p * tcfg.tp + c.t
        gen = self.config
        if self.mode is GenGroupingMode.VANILLA:
            dg_idx, rem = divmod(m, gen.pp * gen.tp)
            pg_idx, tg_idx = divmod(rem, gen.tp)
        else:
            p_ratio = tcfg.pp // gen.pp
            t_ratio = tcfg.tp // gen.tp
            pg_idx, p_res = divmod(c.p, p_ratio)
            tg_idx, t_res = divmod(c.t, t_ratio)
            dg_idx = p_res * t_ratio + t_res
        return Rank4D(pg=pg_idx, tg=tg_idx, dg=dg_idx, d=c.d)

    def coords(self, global_rank: int) -> Rank4D:
        try:
            return self._coords[global_rank]
        except KeyError:
            raise ValueError(
                f"rank {global_rank} not in generation topology"
            ) from None

    def _ranks_where(self, predicate) -> List[int]:
        return [g for g in self.train.global_ranks if predicate(self._coords[g])]

    def _group(self, kind: str, ranks_fn) -> ProcessGroup:
        return self.group_cache.get_or_build(
            f"{self.train.name}/gen_{kind}", ranks_fn, meter=self.train.meter
        )

    def gen_tp_group(self, global_rank: int) -> ProcessGroup:
        c = self.coords(global_rank)
        return self._group(
            f"tp[pg{c.pg},dg{c.dg},d{c.d}]",
            lambda: self._ranks_where(
                lambda x: x.pg == c.pg and x.dg == c.dg and x.d == c.d
            ),
        )

    def gen_pp_group(self, global_rank: int) -> ProcessGroup:
        c = self.coords(global_rank)
        return self._group(
            f"pp[tg{c.tg},dg{c.dg},d{c.d}]",
            lambda: self._ranks_where(
                lambda x: x.tg == c.tg and x.dg == c.dg and x.d == c.d
            ),
        )

    def micro_dp_group(self, global_rank: int) -> ProcessGroup:
        """Ranks holding the same generation shard within one training replica.

        The 3D-HybridEngine's transition all-gather runs within this group
        (§5.3) — it is the group whose members together hold the full set of
        training shards that make up one generation shard.  Cached: every
        member of the group asks for it during each transition, but only the
        first call pays the full-world membership scan.
        """
        c = self.coords(global_rank)
        return self._group(
            f"micro_dp[pg{c.pg},tg{c.tg},d{c.d}]",
            lambda: self._ranks_where(
                lambda x: x.pg == c.pg and x.tg == c.tg and x.d == c.d
            ),
        )

    def all_micro_dp_groups(self) -> List[ProcessGroup]:
        seen = set()
        groups = []
        for g in self.train.global_ranks:
            c = self.coords(g)
            key = (c.pg, c.tg, c.d)
            if key not in seen:
                seen.add(key)
                groups.append(self.micro_dp_group(g))
        return groups

    @property
    def effective_dp(self) -> int:
        """Generation data-parallel size: ``d_g * d`` model replicas."""
        return self.config.micro_dp * self.train.config.dp

    def dp_rank_for_generation(self, global_rank: int) -> int:
        """Which of the ``d_g*d`` generation replicas this rank serves."""
        c = self.coords(global_rank)
        return c.d * self.config.micro_dp + c.dg

    def __repr__(self) -> str:
        return (
            f"GenTopology({self.config}, mode={self.mode.value}, "
            f"train={self.train.config})"
        )
