"""ZeRO data-parallel sharding memory/communication model ([59], §2.1).

DeepSpeed-Chat and OpenRLHF train the actor with ZeRO-3 (Table 1), so the
baseline models need ZeRO's per-rank memory footprint and the extra
communication it adds to each training step.

Memory model per rank for a model of ``P`` parameters over ``n`` DP ranks,
with BF16 params/grads (2 bytes) and FP32 Adam states (master copy + two
moments = 12 bytes), following Rajbhandari et al.:

* stage 0 (plain DDP): ``2P + 2P + 12P``
* stage 1 (optimizer sharded): ``2P + 2P + 12P/n``
* stage 2 (+gradient sharded): ``2P + 2P/n + 12P/n``
* stage 3 (+parameters sharded): ``(2P + 2P + 12P)/n``
"""

from __future__ import annotations

import dataclasses
import enum

from repro.config import BYTES_BF16, BYTES_FP32


class ZeroStage(enum.IntEnum):
    DDP = 0
    OPTIMIZER = 1
    GRADIENTS = 2
    PARAMETERS = 3


#: Adam keeps an FP32 master copy of the weights plus two FP32 moments.
OPTIMIZER_BYTES_PER_PARAM = 3 * BYTES_FP32
GRAD_BYTES_PER_PARAM = BYTES_BF16
PARAM_BYTES_PER_PARAM = BYTES_BF16


@dataclasses.dataclass(frozen=True)
class ZeroConfig:
    """ZeRO configuration: stage and data-parallel degree."""

    stage: ZeroStage
    dp: int

    def __post_init__(self) -> None:
        if self.dp < 1:
            raise ValueError(f"dp must be >= 1, got {self.dp}")


def zero_memory_per_rank(n_params: int, config: ZeroConfig) -> int:
    """Training-state bytes per rank (params + grads + optimizer)."""
    n = config.dp
    params = n_params * PARAM_BYTES_PER_PARAM
    grads = n_params * GRAD_BYTES_PER_PARAM
    opt = n_params * OPTIMIZER_BYTES_PER_PARAM
    if config.stage >= ZeroStage.PARAMETERS:
        params //= n
    if config.stage >= ZeroStage.GRADIENTS:
        grads //= n
    if config.stage >= ZeroStage.OPTIMIZER:
        opt //= n
    return params + grads + opt


def zero_param_gather_volume(n_params: int, config: ZeroConfig) -> int:
    """Bytes each rank must gather to materialise full parameters (stage 3).

    ZeRO-3 must all-gather parameters before every forward/backward; this is
    the extra traffic DeepSpeed-Chat pays per training step and during the
    transition to generation.  Stages < 3 keep full parameters resident.
    """
    if config.stage < ZeroStage.PARAMETERS or config.dp == 1:
        return 0
    total = n_params * PARAM_BYTES_PER_PARAM
    return (config.dp - 1) * total // config.dp


def zero_grad_sync_volume(n_params: int, config: ZeroConfig) -> int:
    """Per-rank gradient synchronisation bytes per training step.

    Stage >= 2 uses reduce-scatter (``(n-1)/n * G``); below that, ring
    all-reduce (``2(n-1)/n * G``).
    """
    if config.dp == 1:
        return 0
    grads = n_params * GRAD_BYTES_PER_PARAM
    factor = 1 if config.stage >= ZeroStage.GRADIENTS else 2
    return factor * (config.dp - 1) * grads // config.dp
