"""Fractional weight-shard geometry for overlap/redundancy analysis (§5.3).

A model replica's weights are modelled as a 2-D unit square: the *layer* axis
is split by pipeline parallelism and the *tensor* axis by tensor parallelism.
A rank's shard is then a rectangle; the overlap between a rank's training
shard and its generation shard determines how much training memory can be
reused during generation — the quantity whose non-overlap the paper's new
grouping method drives to zero (Figure 8, Table 2).
"""

from __future__ import annotations

import dataclasses
from fractions import Fraction

from repro.parallel.topology import GenTopology, ParallelTopology


@dataclasses.dataclass(frozen=True)
class ShardRange:
    """A half-open fractional interval ``[start, stop)`` of one weight axis."""

    start: Fraction
    stop: Fraction

    def __post_init__(self) -> None:
        if not 0 <= self.start <= self.stop <= 1:
            raise ValueError(f"invalid shard range [{self.start}, {self.stop})")

    @classmethod
    def of_partition(cls, index: int, n_parts: int) -> "ShardRange":
        if not 0 <= index < n_parts:
            raise ValueError(f"partition {index} out of {n_parts}")
        return cls(Fraction(index, n_parts), Fraction(index + 1, n_parts))

    @property
    def length(self) -> Fraction:
        return self.stop - self.start

    def overlap(self, other: "ShardRange") -> Fraction:
        lo = max(self.start, other.start)
        hi = min(self.stop, other.stop)
        return max(Fraction(0), hi - lo)

    def contains(self, other: "ShardRange") -> bool:
        return self.start <= other.start and other.stop <= self.stop


@dataclasses.dataclass(frozen=True)
class WeightShard:
    """A rank's rectangle of the (layer, tensor) unit square."""

    layers: ShardRange
    tensor: ShardRange

    @property
    def fraction(self) -> Fraction:
        return self.layers.length * self.tensor.length

    def overlap_fraction(self, other: "WeightShard") -> Fraction:
        return self.layers.overlap(other.layers) * self.tensor.overlap(other.tensor)

    def contains(self, other: "WeightShard") -> bool:
        return self.layers.contains(other.layers) and self.tensor.contains(
            other.tensor
        )


def training_shard(topology: ParallelTopology, global_rank: int) -> WeightShard:
    """The rectangle of weights rank ``global_rank`` holds during training."""
    c = topology.coords(global_rank)
    cfg = topology.config
    return WeightShard(
        layers=ShardRange.of_partition(c.p, cfg.pp),
        tensor=ShardRange.of_partition(c.t, cfg.tp),
    )


def generation_shard(gen: GenTopology, global_rank: int) -> WeightShard:
    """The rectangle of weights rank ``global_rank`` holds during generation."""
    c = gen.coords(global_rank)
    return WeightShard(
        layers=ShardRange.of_partition(c.pg, gen.config.pp),
        tensor=ShardRange.of_partition(c.tg, gen.config.tp),
    )


def shard_overlap_fraction(gen: GenTopology, global_rank: int) -> Fraction:
    """Fraction of the full model shared by a rank's training and gen shards.

    With the paper's HYBRIDFLOW grouping this always equals the training shard
    size ``1/(p*t)`` (the training shard is contained in the generation
    shard); with VANILLA grouping some ranks get zero overlap, which is the
    redundancy HybridFlow-V pays in Table 2.
    """
    train = training_shard(gen.train, global_rank)
    gshard = generation_shard(gen, global_rank)
    return train.overlap_fraction(gshard)


def redundant_fraction(gen: GenTopology, global_rank: int) -> Fraction:
    """Fraction of the model that must be *duplicated* on this rank.

    During generation the rank must hold its generation shard; any part of its
    training shard not contained in the generation shard must be kept in a
    separate buffer for the next training stage (the grey boxes in Figure 8a).
    """
    train = training_shard(gen.train, global_rank)
    return train.fraction - shard_overlap_fraction(gen, global_rank)


def peak_param_fraction(gen: GenTopology, global_rank: int) -> Fraction:
    """Peak parameter-memory fraction on this rank during the transition.

    The rank ends up holding its generation shard plus any non-overlapping
    part of its training shard.
    """
    gshard = generation_shard(gen, global_rank)
    return gshard.fraction + redundant_fraction(gen, global_rank)
