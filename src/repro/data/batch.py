"""``DataBatch``: a dict of equal-length numpy arrays plus metadata.

This is the reproduction's TensorDict / verl ``DataProto``: every edge of the
RLHF dataflow carries one of these.  Transfer protocols split it across DP
ranks (``split``/``chunk``) and reassemble worker outputs (``concat``); RLHF
stages extend it in place-ish style via ``union`` (each stage adds its
columns: responses, then values, log-probs, rewards, then advantages).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

#: Meta key carrying the execution-trace records that produced this batch's
#: columns (dataflow lineage).  Merged on union/concat; consumed by the
#: timeline scheduler to rebuild the dependency DAG.
LINEAGE_KEY = "_lineage"


def merge_lineage(*metas: Mapping[str, Any]) -> tuple:
    seqs = set()
    for meta in metas:
        seqs.update(meta.get(LINEAGE_KEY, ()))
    return tuple(sorted(seqs))


class DataBatch:
    """Named arrays sharing a leading batch dimension, plus free-form meta."""

    def __init__(
        self,
        tensors: Optional[Mapping[str, np.ndarray]] = None,
        meta: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.tensors: Dict[str, np.ndarray] = {}
        self.meta: Dict[str, Any] = dict(meta or {})
        for name, arr in (tensors or {}).items():
            self[name] = arr

    # -- mapping interface -------------------------------------------------------

    def __setitem__(self, name: str, arr: np.ndarray) -> None:
        arr = np.asarray(arr)
        if arr.ndim == 0:
            raise ValueError(f"column {name!r} must have a batch dimension")
        if self.tensors:
            expected = self.batch_size
            if arr.shape[0] != expected:
                raise ValueError(
                    f"column {name!r} has batch {arr.shape[0]}, expected {expected}"
                )
        self.tensors[name] = arr

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self.tensors[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; have {sorted(self.tensors)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self.tensors

    def keys(self) -> Iterable[str]:
        return self.tensors.keys()

    @property
    def batch_size(self) -> int:
        if not self.tensors:
            raise ValueError("empty DataBatch has no batch size")
        return next(iter(self.tensors.values())).shape[0]

    def __len__(self) -> int:
        return self.batch_size

    def nbytes(self) -> int:
        return sum(a.nbytes for a in self.tensors.values())

    # -- restructuring -------------------------------------------------------------

    def select(self, names: Sequence[str]) -> "DataBatch":
        """A new batch with only the given columns (arrays shared)."""
        return DataBatch({n: self[n] for n in names}, meta=self.meta)

    def union(self, other: "DataBatch") -> "DataBatch":
        """Merge columns; colliding names must be identical arrays."""
        merged = dict(self.tensors)
        for name, arr in other.tensors.items():
            if name in merged and not np.array_equal(merged[name], arr):
                raise ValueError(f"union conflict on column {name!r}")
            merged[name] = arr
        meta = dict(self.meta)
        meta.update(other.meta)
        lineage = merge_lineage(self.meta, other.meta)
        if lineage:
            meta[LINEAGE_KEY] = lineage
        return DataBatch(merged, meta=meta)

    def slice(self, start: int, stop: int) -> "DataBatch":
        return DataBatch(
            {n: a[start:stop] for n, a in self.tensors.items()}, meta=self.meta
        )

    def chunk(self, n_chunks: int) -> List["DataBatch"]:
        """Split into ``n_chunks`` equal parts (batch must divide evenly)."""
        if n_chunks < 1:
            raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
        size = self.batch_size
        if size % n_chunks:
            raise ValueError(
                f"batch size {size} not divisible into {n_chunks} chunks"
            )
        per = size // n_chunks
        return [self.slice(i * per, (i + 1) * per) for i in range(n_chunks)]

    @staticmethod
    def concat(batches: Sequence["DataBatch"]) -> "DataBatch":
        """Concatenate along the batch dimension; column sets must match."""
        if not batches:
            raise ValueError("nothing to concat")
        names = set(batches[0].tensors)
        for b in batches[1:]:
            if set(b.tensors) != names:
                raise ValueError(
                    f"concat column mismatch: {sorted(names)} vs "
                    f"{sorted(b.tensors)}"
                )
        meta: Dict[str, Any] = {}
        for b in batches:
            meta.update(b.meta)
        lineage = merge_lineage(*(b.meta for b in batches))
        if lineage:
            meta[LINEAGE_KEY] = lineage
        return DataBatch(
            {
                n: np.concatenate([b.tensors[n] for b in batches], axis=0)
                for n in batches[0].tensors
            },
            meta=meta,
        )

    def repeat(self, times: int) -> "DataBatch":
        """Repeat every row ``times`` times (GRPO's n-samples-per-prompt)."""
        if times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        return DataBatch(
            {n: np.repeat(a, times, axis=0) for n, a in self.tensors.items()},
            meta=self.meta,
        )

    def shuffle(self, rng: np.random.Generator) -> "DataBatch":
        """Row-permuted copy (PPO minibatch shuffling between epochs)."""
        perm = rng.permutation(self.batch_size)
        return DataBatch(
            {n: a[perm] for n, a in self.tensors.items()}, meta=self.meta
        )

    def copy(self) -> "DataBatch":
        return DataBatch(
            {n: a.copy() for n, a in self.tensors.items()}, meta=dict(self.meta)
        )

    def __repr__(self) -> str:
        cols = {n: tuple(a.shape) for n, a in self.tensors.items()}
        return f"DataBatch({cols})"
