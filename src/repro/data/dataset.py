"""Synthetic stand-in for the Dahoas/full-hh-rlhf prompt dataset (§8.1).

The paper's benchmarks fix prompt and response lengths (1024/1024) and only
use the dataset as a prompt source, so a synthetic token stream preserves the
relevant behaviour.  For *functional* RLHF runs the module also defines a
:class:`SyntheticPreferenceTask` with a programmatic ground-truth reward, so
tests can verify that PPO/ReMax/GRPO actually increase reward — the paper's
"from alignment to reasoning" discussion (§9) explicitly endorses replacing
the reward model with a reward function.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

import numpy as np

from repro.data.batch import DataBatch


class PromptDataset:
    """Deterministic synthetic prompts: ``(n_prompts, prompt_length)`` tokens."""

    def __init__(
        self,
        n_prompts: int,
        prompt_length: int,
        vocab_size: int,
        seed: int = 0,
    ) -> None:
        if n_prompts < 1 or prompt_length < 1 or vocab_size < 2:
            raise ValueError(
                f"bad dataset shape: n={n_prompts}, len={prompt_length}, "
                f"vocab={vocab_size}"
            )
        rng = np.random.default_rng(seed)
        self.prompts = rng.integers(
            0, vocab_size, size=(n_prompts, prompt_length), dtype=np.int64
        )
        self.vocab_size = vocab_size

    def __len__(self) -> int:
        return self.prompts.shape[0]

    @property
    def prompt_length(self) -> int:
        return self.prompts.shape[1]

    def batch(self, start: int, size: int) -> DataBatch:
        if start < 0 or start + size > len(self):
            raise IndexError(
                f"batch [{start}, {start + size}) out of range for {len(self)}"
            )
        return DataBatch({"prompts": self.prompts[start : start + size]})

    def iter_batches(
        self, batch_size: int, epochs: int = 1
    ) -> Iterator[DataBatch]:
        """Yield full batches; drops the remainder like the paper's loader."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        for _ in range(epochs):
            for start in range(0, len(self) - batch_size + 1, batch_size):
                yield self.batch(start, batch_size)


@dataclasses.dataclass
class SyntheticPreferenceTask:
    """A toy alignment task with a programmatic ground-truth reward.

    The "human preference" is: responses should repeat the *target token*.
    The reward of a response is the fraction of its tokens equal to
    ``target_token``, scaled to ``[0, reward_scale]``.  A small model can
    learn this quickly, making end-to-end RLHF convergence testable.

    An optional *cost* signal (for Safe-RLHF) penalises the fraction of
    ``unsafe_token`` occurrences.
    """

    vocab_size: int = 32
    target_token: int = 7
    unsafe_token: int = 3
    reward_scale: float = 1.0

    def __post_init__(self) -> None:
        for name in ("target_token", "unsafe_token"):
            tok = getattr(self, name)
            if not 0 <= tok < self.vocab_size:
                raise ValueError(f"{name} {tok} outside vocab {self.vocab_size}")

    def reward(self, responses: np.ndarray) -> np.ndarray:
        """Sample-level reward in ``[0, reward_scale]``; shape ``(batch,)``."""
        responses = np.asarray(responses)
        return (
            (responses == self.target_token).mean(axis=-1) * self.reward_scale
        )

    def cost(self, responses: np.ndarray) -> np.ndarray:
        """Sample-level safety cost in ``[0, 1]``; shape ``(batch,)``."""
        responses = np.asarray(responses)
        return (responses == self.unsafe_token).mean(axis=-1)

    def token_level_reward(self, responses: np.ndarray) -> np.ndarray:
        """Per-token reward (the paper notes rewards can be token-level)."""
        responses = np.asarray(responses)
        return (responses == self.target_token).astype(np.float64) * (
            self.reward_scale / responses.shape[-1]
        )

    def preference_pairs(
        self,
        n_pairs: int,
        response_length: int,
        rng: np.random.Generator,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Sample (chosen, rejected) response pairs labelled by the task.

        The human-preference dataset stand-in for reward-model training
        (§2.1): random responses, ordered by ground-truth reward, with ties
        broken by planting one extra target token in the chosen response.
        """
        if n_pairs < 1 or response_length < 1:
            raise ValueError(
                f"bad pair shape: n={n_pairs}, len={response_length}"
            )
        a = rng.integers(0, self.vocab_size, size=(n_pairs, response_length))
        b = rng.integers(0, self.vocab_size, size=(n_pairs, response_length))
        ra, rb = self.reward(a), self.reward(b)
        chosen = np.where((ra >= rb)[:, None], a, b).astype(np.int64)
        rejected = np.where((ra >= rb)[:, None], b, a).astype(np.int64)
        ties = self.reward(chosen) == self.reward(rejected)
        if ties.any():
            positions = rng.integers(0, response_length, size=int(ties.sum()))
            rows = np.flatnonzero(ties)
            chosen[rows, positions] = self.target_token
            rejected[rows, positions] = (self.target_token + 1) % self.vocab_size
        return chosen, rejected
