"""Data plumbing: the ``DataBatch`` exchanged between models, and datasets.

The paper stores intermediate RLHF data (prompts, responses, values, rewards,
advantages) in TensorDicts moved by the transfer protocols (§7).
:class:`DataBatch` is that container here; :mod:`repro.data.dataset` provides
the synthetic stand-in for the Dahoas/full-hh-rlhf prompt set (§8.1).
"""

from repro.data.batch import DataBatch
from repro.data.dataset import PromptDataset, SyntheticPreferenceTask
from repro.data.tokenizer import CharTokenizer

__all__ = [
    "CharTokenizer",
    "DataBatch",
    "PromptDataset",
    "SyntheticPreferenceTask",
]
