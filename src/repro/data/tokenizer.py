"""A character-level tokenizer for human-readable functional demos.

The benchmarks only need token streams, but the examples are friendlier
when prompts and responses are text.  This is a deterministic char-level
tokenizer with the usual special tokens; at TinyLM's scale a character
vocabulary is plenty.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

PAD = "<pad>"
BOS = "<bos>"
EOS = "<eos>"
UNK = "<unk>"
SPECIALS = (PAD, BOS, EOS, UNK)


class CharTokenizer:
    """Character vocabulary with pad/bos/eos/unk specials."""

    def __init__(self, alphabet: Iterable[str]) -> None:
        chars = sorted({c for c in alphabet if len(c) == 1})
        if not chars:
            raise ValueError("the alphabet needs at least one character")
        self._tokens: List[str] = list(SPECIALS) + chars
        self._index = {tok: i for i, tok in enumerate(self._tokens)}

    @classmethod
    def from_corpus(cls, texts: Sequence[str]) -> "CharTokenizer":
        return cls({c for text in texts for c in text})

    @property
    def vocab_size(self) -> int:
        return len(self._tokens)

    @property
    def pad_id(self) -> int:
        return self._index[PAD]

    @property
    def bos_id(self) -> int:
        return self._index[BOS]

    @property
    def eos_id(self) -> int:
        return self._index[EOS]

    @property
    def unk_id(self) -> int:
        return self._index[UNK]

    def token_id(self, char: str) -> int:
        return self._index.get(char, self.unk_id)

    def encode(self, text: str, add_bos: bool = False) -> List[int]:
        ids = [self.token_id(c) for c in text]
        return [self.bos_id] + ids if add_bos else ids

    def decode(self, ids: Iterable[int], strip_specials: bool = True) -> str:
        out = []
        for i in ids:
            i = int(i)
            if not 0 <= i < len(self._tokens):
                raise ValueError(f"token id {i} outside vocabulary")
            tok = self._tokens[i]
            if strip_specials and tok in SPECIALS:
                continue
            out.append(tok)
        return "".join(out)

    def encode_batch(
        self, texts: Sequence[str], length: int, add_bos: bool = True
    ) -> np.ndarray:
        """Fixed-length batch: truncate or left-pad each row to ``length``."""
        if length < 1:
            raise ValueError(f"length must be >= 1, got {length}")
        batch = np.full((len(texts), length), self.pad_id, dtype=np.int64)
        for row, text in enumerate(texts):
            ids = self.encode(text, add_bos=add_bos)[:length]
            batch[row, length - len(ids) :] = ids
        return batch

    def decode_batch(self, ids: np.ndarray) -> List[str]:
        return [self.decode(row) for row in np.asarray(ids)]
