"""Exporters: Chrome ``trace_event`` JSON and Prometheus text dumps.

The Chrome exporter emits two process tracks, both loadable in
``chrome://tracing`` / Perfetto:

* **pid 0 — the timeline replay**: one thread per resource pool, mirroring
  the per-pool Gantt rows of Figure 3.  These events come from
  :class:`~repro.runtime.timeline.Timeline`, so per-pool busy/idle read off
  the trace file matches the ``Timeline`` accounting exactly
  (:func:`pool_fractions_from_trace` recomputes them from the exported JSON
  for verification).
* **pid 1 — runtime spans**: the :class:`~repro.observability.SpanTracer`
  record — dispatches, protocol reshards, HybridEngine transitions,
  checkpoint writes, retry backoffs, and recovery phases — nested by parent
  linkage, with dataflow provenance drawn as flow arrows.

All fields are emitted in a fixed order and times are rounded to a fixed
precision, so the output is byte-stable for golden-file tests.
"""

from __future__ import annotations

import json
import pathlib
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional

from repro.serialization import json_safe

if TYPE_CHECKING:  # avoid a runtime cycle with repro.runtime.timeline
    from repro.observability.spans import Span
    from repro.runtime.timeline import Timeline

#: Microseconds per simulated second (trace_event timestamps are in µs).
_US = 1e6
#: pid of the Figure 3 timeline-replay track.
TIMELINE_PID = 0
#: pid of the runtime-span track.
SPANS_PID = 1


def _us(seconds: float) -> float:
    """Simulated seconds -> µs, rounded for byte-stable output."""
    return round(seconds * _US, 3)


def _meta(name: str, pid: int, tid: int, value: str) -> Dict[str, Any]:
    return {
        "name": name,
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": value},
    }


def timeline_trace_events(
    timeline: "Timeline", pid: int = TIMELINE_PID
) -> List[Dict[str, Any]]:
    """Complete (``ph: X``) events, one thread per pool (Figure 3 rows)."""
    pools = timeline.pools()
    tid_of = {pool: i for i, pool in enumerate(pools)}
    events: List[Dict[str, Any]] = [
        _meta("process_name", pid, 0, "timeline (Figure 3 replay)")
    ]
    for pool in pools:
        events.append(_meta("thread_name", pid, tid_of[pool], f"pool {pool}"))
    for event in sorted(timeline.events, key=lambda e: (e.start, e.seq)):
        events.append(
            {
                "name": event.name,
                "cat": "timeline",
                "ph": "X",
                "ts": _us(event.start),
                "dur": _us(event.duration),
                "pid": pid,
                "tid": tid_of[event.pool],
                "args": {"seq": event.seq, "pool": event.pool},
            }
        )
    return events


def span_trace_events(
    spans: Iterable["Span"], pid: int = SPANS_PID
) -> List[Dict[str, Any]]:
    """Span events nested per pool track, plus dataflow flow arrows."""
    spans = [s for s in spans if s.finished]
    tracks = sorted({s.pool or "(controller)" for s in spans})
    tid_of = {track: i for i, track in enumerate(tracks)}
    events: List[Dict[str, Any]] = [_meta("process_name", pid, 0, "runtime spans")]
    for track in tracks:
        events.append(_meta("thread_name", pid, tid_of[track], track))
    by_id = {s.span_id: s for s in spans}
    for span in sorted(spans, key=lambda s: (s.start, s.span_id)):
        tid = tid_of[span.pool or "(controller)"]
        args: Dict[str, Any] = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.ranks:
            args["ranks"] = list(span.ranks)
        if span.payload_bytes:
            args["payload_bytes"] = span.payload_bytes
        if span.links:
            args["links"] = list(span.links)
        for key in sorted(span.attrs):
            args[key] = span.attrs[key]
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": _us(span.start),
                "dur": _us(span.duration),
                "pid": pid,
                "tid": tid,
                "args": json_safe(args, f"span[{span.span_id}].args"),
            }
        )
        # dataflow provenance as flow arrows: producer end -> this span start
        for link in span.links:
            producer = by_id.get(link)
            if producer is None or producer.end is None:
                continue
            flow_id = f"{link}->{span.span_id}"
            events.append(
                {
                    "name": "dataflow",
                    "cat": "provenance",
                    "ph": "s",
                    "id": flow_id,
                    "ts": _us(producer.end),
                    "pid": pid,
                    "tid": tid_of[producer.pool or "(controller)"],
                }
            )
            events.append(
                {
                    "name": "dataflow",
                    "cat": "provenance",
                    "ph": "f",
                    "bp": "e",
                    "id": flow_id,
                    "ts": _us(span.start),
                    "pid": pid,
                    "tid": tid,
                }
            )
    return events


def chrome_trace(
    timeline: Optional["Timeline"] = None,
    spans: Optional[Iterable["Span"]] = None,
) -> Dict[str, Any]:
    """The full ``trace_event`` document for one run."""
    events: List[Dict[str, Any]] = []
    if timeline is not None:
        events.extend(timeline_trace_events(timeline))
    if spans is not None:
        events.extend(span_trace_events(spans))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated", "generator": "repro.observability"},
    }


def render_chrome_trace(
    timeline: Optional["Timeline"] = None,
    spans: Optional[Iterable["Span"]] = None,
) -> str:
    """Deterministic JSON text of :func:`chrome_trace` (golden-testable)."""
    return json.dumps(chrome_trace(timeline=timeline, spans=spans), indent=2) + "\n"


def write_chrome_trace(
    path: str,
    timeline: Optional["Timeline"] = None,
    spans: Optional[Iterable["Span"]] = None,
) -> pathlib.Path:
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(render_chrome_trace(timeline=timeline, spans=spans))
    return out


def pool_fractions_from_trace(
    trace: Dict[str, Any], pid: int = TIMELINE_PID
) -> Dict[str, Dict[str, float]]:
    """Per-pool busy time and idle fraction recomputed from an exported trace.

    Reads only the serialized document (as a viewer would), so tests and the
    ``repro trace`` CLI can verify the exporter against the in-memory
    :class:`~repro.runtime.timeline.Timeline` accounting.
    """
    thread_names: Dict[int, str] = {}
    busy: Dict[int, float] = {}
    makespan = 0.0
    for event in trace.get("traceEvents", []):
        if event.get("pid") != pid:
            continue
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            name = event["args"]["name"]
            prefix = "pool "
            thread_names[event["tid"]] = (
                name[len(prefix):] if name.startswith(prefix) else name
            )
        elif event.get("ph") == "X":
            tid = event["tid"]
            busy[tid] = busy.get(tid, 0.0) + event["dur"] / _US
            makespan = max(makespan, (event["ts"] + event["dur"]) / _US)
    out: Dict[str, Dict[str, float]] = {}
    for tid, name in sorted(thread_names.items()):
        pool_busy = busy.get(tid, 0.0)
        out[name] = {
            "busy": pool_busy,
            "idle_fraction": 1.0 - pool_busy / makespan if makespan else 0.0,
        }
    return out


def write_prometheus(path: str, registry) -> pathlib.Path:
    """Dump a :class:`~repro.observability.MetricsRegistry` as text."""
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(registry.render_prometheus())
    return out
