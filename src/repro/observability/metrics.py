"""A small metrics registry: counters, gauges, histograms, Prometheus text.

The registry is fed by the simulated cluster (per-device memory high-water
marks, link bytes), the fault gate (retries, timeouts, worker losses), and
the RLHF pipeline (per-role dispatch latencies, tokens generated).  Metric
instances are keyed by ``(name, labels)``; ``set`` on gauges is idempotent,
so re-collecting after a recovery re-placement never double-counts.

Exposition follows the Prometheus text format closely enough to be scraped
(``# HELP`` / ``# TYPE`` headers, ``name{label="v"} value`` samples,
``_bucket``/``_sum``/``_count`` series for histograms) while staying
dependency-free.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.serialization import json_safe

#: Default histogram buckets (simulated seconds).
DEFAULT_BUCKETS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey) -> str:
    if not key:
        return ""
    parts = []
    for name, value in key:
        escaped = value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        parts.append(f'{name}="{escaped}"')
    return "{" + ",".join(parts) + "}"


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing value."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        self.value += amount

    def samples(self, name: str, key: LabelKey) -> List[Tuple[str, LabelKey, float]]:
        return [(name, key, self.value)]


class Gauge:
    """A value that can be set arbitrarily (idempotent under re-collection)."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def set_max(self, value: float) -> None:
        """High-water-mark update: keep the max of current and ``value``."""
        self.value = max(self.value, float(value))

    def samples(self, name: str, key: LabelKey) -> List[Tuple[str, LabelKey, float]]:
        return [(name, key, self.value)]


class Histogram:
    """Cumulative-bucket histogram with sum and count."""

    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * len(self.buckets)
        #: Observations above the largest finite bucket — the implicit
        #: ``le="+Inf"`` bucket Prometheus requires.  Tracked explicitly so
        #: they appear in ``as_dict`` too, not only implicitly via ``count``.
        self.overflow = 0
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += float(value)
        # bucket_counts are per-bucket; samples() accumulates them into the
        # cumulative series Prometheus expects
        for i, le in enumerate(self.buckets):
            if value <= le:
                self.bucket_counts[i] += 1
                break
        else:
            self.overflow += 1

    def samples(self, name: str, key: LabelKey) -> List[Tuple[str, LabelKey, float]]:
        out: List[Tuple[str, LabelKey, float]] = []
        cumulative = 0
        for le, n in zip(self.buckets, self.bucket_counts):
            cumulative += n
            out.append((f"{name}_bucket", key + (("le", _fmt(le)),), cumulative))
        # +Inf is cumulative-over-everything: finite buckets plus overflow,
        # which by construction equals count
        out.append(
            (f"{name}_bucket", key + (("le", "+Inf"),), cumulative + self.overflow)
        )
        out.append((f"{name}_sum", key, self.sum))
        out.append((f"{name}_count", key, self.count))
        return out


class MetricsRegistry:
    """Named metric families, each a set of label-keyed children."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelKey], Any] = {}
        self._families: Dict[str, Tuple[str, str]] = {}  # name -> (kind, help)

    # -- creation / lookup -------------------------------------------------------------

    def _child(self, cls, name: str, help_text: str, labels: Dict[str, Any], **kwargs):
        kind = cls.kind
        known = self._families.get(name)
        if known is not None and known[0] != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {known[0]}, "
                f"not a {kind}"
            )
        if known is None or (help_text and not known[1]):
            self._families[name] = (kind, help_text or (known[1] if known else ""))
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(**kwargs)
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self._child(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._child(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        **labels: Any,
    ) -> Histogram:
        return self._child(
            Histogram, name, help, labels, buckets=buckets or DEFAULT_BUCKETS
        )

    def get(self, name: str, **labels: Any) -> Optional[Any]:
        """The existing metric for ``(name, labels)``, or ``None``."""
        return self._metrics.get((name, _label_key(labels)))

    def value(self, name: str, **labels: Any) -> float:
        """Counter/gauge value (0.0 when the child does not exist yet)."""
        metric = self.get(name, **labels)
        if metric is None:
            return 0.0
        return metric.value

    def total(self, name: str) -> float:
        """Sum of a counter/gauge family across all label sets."""
        return sum(
            m.value
            for (n, _), m in self._metrics.items()
            if n == name and hasattr(m, "value")
        )

    def labelsets(self, name: str) -> List[Dict[str, str]]:
        return [
            dict(key)
            for (n, key) in sorted(self._metrics)
            if n == name
        ]

    def families(self) -> List[str]:
        return sorted(self._families)

    # -- exposition --------------------------------------------------------------------

    def render_prometheus(self) -> str:
        """Prometheus text exposition, deterministically ordered."""
        lines: List[str] = []
        for name in sorted(self._families):
            kind, help_text = self._families[name]
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            children = sorted(
                (key, metric)
                for (n, key), metric in self._metrics.items()
                if n == name
            )
            for key, metric in children:
                for sample_name, sample_key, value in metric.samples(name, key):
                    lines.append(
                        f"{sample_name}{_render_labels(sample_key)} {_fmt(value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe nested dump: family -> [{labels, value(s)}]."""
        out: Dict[str, Any] = {}
        for name in sorted(self._families):
            kind, help_text = self._families[name]
            children = []
            for (n, key), metric in sorted(self._metrics.items()):
                if n != name:
                    continue
                entry: Dict[str, Any] = {"labels": dict(key)}
                if isinstance(metric, Histogram):
                    entry.update(
                        {
                            "count": metric.count,
                            "sum": metric.sum,
                            "buckets": [
                                [le, c]
                                for le, c in zip(
                                    metric.buckets, metric.bucket_counts
                                )
                            ]
                            + [["+Inf", metric.overflow]],
                        }
                    )
                else:
                    entry["value"] = metric.value
                children.append(entry)
            out[name] = {"kind": kind, "help": help_text, "children": children}
        return json_safe(out, "metrics")

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self._families)} families, "
            f"{len(self._metrics)} series)"
        )
