"""Structured span tracing on the simulated clock.

A :class:`Span` is one timed unit of runtime work — a controller dispatch, a
transfer-protocol reshard, a HybridEngine train<->generation transition, a
checkpoint write, a fault-recovery phase.  Spans carry simulated-clock
start/end times, the resource pool and device ranks they ran on, payload
bytes, and two kinds of structure:

* **parent linkage** — the span that was open on the tracer's stack when
  this one began (dispatch inside an iteration, a checkpoint write inside a
  recovery restore), giving the nesting Chrome's trace viewer renders; and
* **dataflow links** — the span ids of the dispatches whose output futures
  fed this call, derived from future provenance (the same lineage the
  timeline scheduler replays), exported as Chrome flow arrows.

The tracer survives controller rebuilds: recovery re-attaches the same
:class:`SpanTracer` to the re-placed controller, so one trace spans the
faulted run, the recovery phases, and the resumed run.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Any, Dict, Iterator, List, Optional, Tuple


@dataclasses.dataclass
class Span:
    """One timed unit of work on the simulated clock."""

    span_id: int
    name: str
    category: str
    start: float
    end: Optional[float] = None
    parent_id: Optional[int] = None
    pool: Optional[str] = None
    ranks: Tuple[int, ...] = ()
    payload_bytes: int = 0
    #: Span ids of the dispatches whose outputs fed this span (dataflow).
    links: Tuple[int, ...] = ()
    attrs: Dict[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "parent_id": self.parent_id,
            "pool": self.pool,
            "ranks": list(self.ranks),
            "payload_bytes": self.payload_bytes,
            "links": list(self.links),
            "attrs": dict(self.attrs),
        }


class SpanTracer:
    """Collects spans against a simulated clock, with a parent stack.

    Args:
        clock: Anything with a ``now`` attribute (the controller's
            :class:`~repro.faults.SimClock`).  ``None`` pins every span at
            time 0 — useful for tracers built before a clock exists.
    """

    def __init__(self, clock: Optional[Any] = None) -> None:
        self.clock = clock
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 0
        self._span_by_seq: Dict[int, int] = {}

    # -- time ------------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.clock.now if self.clock is not None else 0.0

    def set_clock(self, clock: Any) -> None:
        """Re-point the tracer at a rebuilt controller's clock (recovery)."""
        self.clock = clock

    # -- span lifecycle ----------------------------------------------------------------

    def begin(
        self,
        name: str,
        category: str = "span",
        pool: Optional[str] = None,
        ranks: Tuple[int, ...] = (),
        payload_bytes: int = 0,
        links: Tuple[int, ...] = (),
        **attrs: Any,
    ) -> Span:
        """Open a span; its parent is whatever span is currently open."""
        span = Span(
            span_id=self._next_id,
            name=name,
            category=category,
            start=self.now,
            parent_id=self._stack[-1].span_id if self._stack else None,
            pool=pool,
            ranks=tuple(ranks),
            payload_bytes=payload_bytes,
            links=tuple(links),
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end(
        self, span: Span, payload_bytes: Optional[int] = None, **attrs: Any
    ) -> Span:
        """Close a span at the current clock time (idempotent)."""
        if payload_bytes is not None:
            span.payload_bytes = payload_bytes
        span.attrs.update(attrs)
        if not span.finished:
            span.end = self.now
        # tolerate out-of-order closes (error paths): pop through the span
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        return span

    @contextlib.contextmanager
    def span(self, name: str, category: str = "span", **kwargs: Any) -> Iterator[Span]:
        """Context-managed span; marks ``status=error`` on exceptions."""
        opened = self.begin(name, category=category, **kwargs)
        try:
            yield opened
        except BaseException as exc:
            opened.attrs.setdefault("status", "error")
            opened.attrs.setdefault("error", type(exc).__name__)
            raise
        finally:
            self.end(opened)

    def instant(
        self, name: str, category: str = "span", **kwargs: Any
    ) -> Span:
        """A zero-duration span at the current clock time (not pushed)."""
        span = self.begin(name, category=category, **kwargs)
        return self.end(span)

    # -- dataflow provenance -----------------------------------------------------------

    def register_seq(self, seq: Optional[int], span: Span) -> None:
        """Associate a controller trace sequence number with its span."""
        if seq is not None:
            self._span_by_seq[seq] = span.span_id
            span.attrs.setdefault("seq", seq)

    def span_id_for_seq(self, seq: int) -> Optional[int]:
        return self._span_by_seq.get(seq)

    def links_for(self, deps: Tuple[int, ...]) -> Tuple[int, ...]:
        """Span ids of the dispatches that produced the given trace seqs."""
        return tuple(
            self._span_by_seq[d] for d in deps if d in self._span_by_seq
        )

    # -- queries -----------------------------------------------------------------------

    def by_category(self, category: str) -> List[Span]:
        return [s for s in self.spans if s.category == category]

    def counts_by_category(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for span in self.spans:
            counts[span.category] = counts.get(span.category, 0) + 1
        return dict(sorted(counts.items()))

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        return f"SpanTracer({len(self.spans)} spans, {len(self._stack)} open)"
