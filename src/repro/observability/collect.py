"""Snapshot collectors: cluster and communication state -> metrics registry.

Dispatch-path metrics (calls, latencies, retries, tokens) are incremented at
the event site; cluster state (memory high-water marks, busy time, link
bytes) is *sampled* instead.  Samples use gauge ``set``, which is
idempotent, so collecting before and after a recovery re-placement never
double-counts — the high-water marks simply reflect the surviving world.
"""

from __future__ import annotations

from repro.observability.metrics import MetricsRegistry


def collect_cluster_metrics(controller) -> MetricsRegistry:
    """Sample per-device gauges from the controller's simulated cluster."""
    metrics: MetricsRegistry = controller.metrics
    metrics.gauge(
        "repro_sim_clock_seconds", "Simulated wall clock of the job"
    ).set(controller.clock.now)
    alive = 0
    for device in controller.cluster.devices:
        rank = device.global_rank
        metrics.gauge(
            "repro_device_peak_memory_bytes",
            "Per-device memory high-water mark",
            rank=rank,
        ).set(device.memory.peak_used)
        metrics.gauge(
            "repro_device_resident_memory_bytes",
            "Per-device resident allocation bytes",
            rank=rank,
        ).set(device.memory.used)
        metrics.gauge(
            "repro_device_busy_seconds",
            "Accumulated simulated busy time per device",
            rank=rank,
        ).set(device.busy_time)
        metrics.gauge(
            "repro_device_alive", "1 when the device is alive, 0 when dead",
            rank=rank,
        ).set(1.0 if device.alive else 0.0)
        alive += device.alive
    metrics.gauge(
        "repro_devices_alive", "Alive devices in the cluster"
    ).set(alive)
    return metrics


def collect_traffic_metrics(controller) -> MetricsRegistry:
    """Sample the traffic meter's per-(group, op) link bytes."""
    metrics: MetricsRegistry = controller.metrics
    snapshot = controller.meter.snapshot()
    for (group, op), volume in sorted(snapshot.items()):
        metrics.gauge(
            "repro_comm_bytes", "Bytes moved per (process group, collective)",
            group=group, op=op,
        ).set(volume)
    metrics.gauge(
        "repro_comm_bytes_all", "Total bytes moved by all collectives"
    ).set(controller.meter.total_bytes())
    return metrics


def collect_system_metrics(controller) -> MetricsRegistry:
    """All snapshot collectors in one call; returns the registry."""
    collect_cluster_metrics(controller)
    collect_traffic_metrics(controller)
    return controller.metrics


#: Numeric encoding of fleet job states for the state gauge.
_FLEET_STATE_CODES = {"pending": 0.0, "running": 1.0, "completed": 2.0, "failed": 3.0}


def collect_fleet_metrics(scheduler) -> MetricsRegistry:
    """Sample per-job gauges from a :class:`~repro.fleet.FleetScheduler`.

    Incremental events (preemptions, resizes, failures, devices killed) are
    counters the scheduler bumps at the event site; this collector samples
    the *current* per-job picture — progress, state, goodput — into the
    fleet-level registry, idempotently, so it can run every tick or once at
    the end with the same result.
    """
    metrics: MetricsRegistry = scheduler.metrics
    metrics.gauge(
        "repro_fleet_clock_seconds", "Simulated wall clock of the fleet"
    ).set(scheduler.clock.now)
    metrics.gauge(
        "repro_fleet_ticks", "Scheduler ticks executed so far"
    ).set(scheduler.ticks_run)
    report = scheduler.report()
    for row in report.jobs:
        name = row.name
        metrics.gauge(
            "repro_fleet_job_state",
            "Job state (0=pending, 1=running, 2=completed, 3=failed)",
            job=name,
        ).set(_FLEET_STATE_CODES[row.state])
        metrics.gauge(
            "repro_fleet_job_iterations", "Completed surviving iterations",
            job=name,
        ).set(row.iterations)
        metrics.gauge(
            "repro_fleet_job_dp", "Current data-parallel width (0 = not placed)",
            job=name,
        ).set(row.dp)
        metrics.gauge(
            "repro_fleet_job_goodput",
            "Useful time over fleet wall time for the job",
            job=name,
        ).set(row.goodput)
        metrics.gauge(
            "repro_fleet_job_wait_ticks", "Ticks spent schedulable but queued",
            job=name,
        ).set(row.wait_ticks)
    metrics.gauge(
        "repro_fleet_fairness",
        "Jain's fairness index over completed jobs' goodput",
    ).set(report.fairness)
    return metrics
