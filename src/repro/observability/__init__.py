"""Observability for the single-controller runtime: spans, metrics, exporters.

Three layers, all fed from the same seams the fault gate established:

* :class:`SpanTracer` / :class:`Span` — structured span tracing of every
  controller dispatch, transfer-protocol reshard, HybridEngine transition,
  checkpoint save/restore, and fault-recovery phase, with simulated-clock
  timing and dataflow links from future provenance.
* :class:`MetricsRegistry` — counters, gauges, and histograms fed by the
  cluster (memory high-water marks, link bytes), the fault gate (retries,
  timeouts, worker losses), and the RLHF pipeline (per-role latencies,
  tokens generated).
* Exporters — Chrome ``trace_event`` JSON (one track per pool, Figure 3),
  Prometheus text, and the per-iteration summary in
  :mod:`repro.runtime.report`.
"""

from repro.observability.collect import (
    collect_cluster_metrics,
    collect_fleet_metrics,
    collect_system_metrics,
    collect_traffic_metrics,
)
from repro.observability.export import (
    chrome_trace,
    pool_fractions_from_trace,
    render_chrome_trace,
    span_trace_events,
    timeline_trace_events,
    write_chrome_trace,
    write_prometheus,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.spans import Span, SpanTracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanTracer",
    "chrome_trace",
    "collect_cluster_metrics",
    "collect_fleet_metrics",
    "collect_system_metrics",
    "collect_traffic_metrics",
    "pool_fractions_from_trace",
    "render_chrome_trace",
    "span_trace_events",
    "timeline_trace_events",
    "write_chrome_trace",
    "write_prometheus",
]
