"""Continuous vs. static batching for the generation stage (Orca [83]).

The paper's baselines "may not incorporate continuous-batching optimization
during generation", so its benchmarks pin all response lengths equal (§8.1).
This module implements both serving disciplines as step-level simulations,
quantifying what that fairness control removed: with *variable* response
lengths, static batching holds every slot until the longest sequence of the
wave finishes, while continuous batching refills slots as sequences
complete.

Both disciplines share the per-step decode cost model of
:mod:`repro.perf.generation`, so the comparison isolates scheduling.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.config import ClusterSpec, ModelSpec
from repro.perf.generation import _decode_step_time


@dataclasses.dataclass(frozen=True)
class ServingResult:
    """Outcome of serving one batch of generation requests."""

    total_time: float
    n_steps: int
    #: Mean fraction of KV slots occupied over the run (scheduler quality).
    slot_utilisation: float


def sample_response_lengths(
    n_requests: int,
    mean_length: int,
    max_length: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Geometric-ish response lengths clipped to ``max_length`` (real RLHF
    generation lengths are highly skewed)."""
    if n_requests < 1 or mean_length < 1 or max_length < mean_length:
        raise ValueError(
            f"bad request shape: n={n_requests}, mean={mean_length}, "
            f"max={max_length}"
        )
    lengths = rng.geometric(1.0 / mean_length, size=n_requests)
    return np.clip(lengths, 1, max_length).astype(np.int64)


def _step_time(
    spec: ModelSpec,
    cluster: ClusterSpec,
    gen_tp: int,
    gen_pp: int,
    active: int,
    context_len: float,
) -> float:
    return _decode_step_time(
        spec, cluster, gen_tp, gen_pp, active, context_len, use_kv_cache=True
    )


def serve_static(
    lengths: Sequence[int],
    capacity: int,
    spec: ModelSpec,
    cluster: ClusterSpec,
    gen_tp: int = 1,
    gen_pp: int = 1,
    prompt_length: int = 1024,
) -> ServingResult:
    """Wave scheduling: a wave of ``capacity`` requests runs until its
    longest member finishes; freed slots idle until the next wave."""
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    lengths = np.asarray(lengths)
    total_time = 0.0
    n_steps = 0
    occupied_steps = 0.0
    for start in range(0, len(lengths), capacity):
        wave = lengths[start : start + capacity]
        wave_steps = int(wave.max())
        for step in range(wave_steps):
            active = int((wave > step).sum())
            # static batching keeps padded slots in the batch: cost scales
            # with the wave size, not the live count
            total_time += _step_time(
                spec, cluster, gen_tp, gen_pp, len(wave),
                prompt_length + step,
            )
            occupied_steps += active
            n_steps += 1
    denominator = n_steps * capacity if n_steps else 1
    return ServingResult(
        total_time=total_time,
        n_steps=n_steps,
        slot_utilisation=occupied_steps / denominator,
    )


def _continuous_trace(
    lengths: Sequence[int], capacity: int
) -> Iterator[Tuple[int, float]]:
    """Step-level ``(n_active, mean_progress)`` trace of the Orca schedule.

    The pure scheduling decision sequence, shared by the cost-model wrapper
    below and the step-count cross-check the functional engine
    (:mod:`repro.serving`) is validated against.
    """
    remaining: List[int] = list(int(x) for x in lengths)
    active: List[int] = []
    progress: List[int] = []
    while remaining or active:
        while remaining and len(active) < capacity:
            active.append(remaining.pop(0))
            progress.append(0)
        yield len(active), (
            sum(progress) / len(progress) if progress else 0.0
        )
        progress = [p + 1 for p in progress]
        keep = [
            i for i, (length, p) in enumerate(zip(active, progress)) if p < length
        ]
        active = [active[i] for i in keep]
        progress = [progress[i] for i in keep]


def continuous_schedule_stats(
    lengths: Sequence[int], capacity: int
) -> Tuple[int, float]:
    """``(n_steps, slot_utilisation)`` of continuous batching, no cost model.

    What a perfect iteration-level scheduler achieves on ``lengths``; the
    functional engine's measured utilisation must agree with this on a
    matched workload (one token per occupied slot-step in both).
    """
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    n_steps = 0
    occupied = 0.0
    for n_active, _ in _continuous_trace(lengths, capacity):
        n_steps += 1
        occupied += n_active
    denominator = n_steps * capacity if n_steps else 1
    return n_steps, occupied / denominator


def static_schedule_stats(
    lengths: Sequence[int], capacity: int
) -> Tuple[int, float]:
    """``(n_steps, slot_utilisation)`` of static wave batching, no cost model."""
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    lengths = np.asarray(lengths)
    n_steps = 0
    occupied = 0.0
    for start in range(0, len(lengths), capacity):
        wave = lengths[start : start + capacity]
        wave_steps = int(wave.max())
        n_steps += wave_steps
        occupied += float(wave.sum())
    denominator = n_steps * capacity if n_steps else 1
    return n_steps, occupied / denominator


def serve_continuous(
    lengths: Sequence[int],
    capacity: int,
    spec: ModelSpec,
    cluster: ClusterSpec,
    gen_tp: int = 1,
    gen_pp: int = 1,
    prompt_length: int = 1024,
) -> ServingResult:
    """Orca-style iteration-level scheduling: finished sequences leave the
    batch at step granularity and waiting requests join immediately."""
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    total_time = 0.0
    n_steps = 0
    occupied_steps = 0.0
    for n_active, mean_progress in _continuous_trace(lengths, capacity):
        avg_ctx = prompt_length + mean_progress
        total_time += _step_time(
            spec, cluster, gen_tp, gen_pp, n_active, avg_ctx
        )
        occupied_steps += n_active
        n_steps += 1
    denominator = n_steps * capacity if n_steps else 1
    return ServingResult(
        total_time=total_time,
        n_steps=n_steps,
        slot_utilisation=occupied_steps / denominator,
    )


def continuous_batching_speedup(
    n_requests: int,
    mean_length: int,
    max_length: int,
    capacity: int,
    spec: ModelSpec,
    cluster: ClusterSpec,
    gen_tp: int = 1,
    seed: int = 0,
) -> float:
    """Static / continuous serving-time ratio for a sampled workload."""
    rng = np.random.default_rng(seed)
    lengths = sample_response_lengths(n_requests, mean_length, max_length, rng)
    static = serve_static(lengths, capacity, spec, cluster, gen_tp=gen_tp)
    continuous = serve_continuous(lengths, capacity, spec, cluster, gen_tp=gen_tp)
    return static.total_time / continuous.total_time
