"""Analytical performance models for Llama-scale RLHF on the simulated cluster.

This is the reproduction's counterpart of the paper's ``simu`` module
(Appendix C): "three simulators for training, inference, and generation
workloads, all are analytical models following previous research [42, 84,
92]. The training and inference workload is compute-bound while the
generation workload is memory-bound."

The same latency primitives power the auto-mapping algorithm (§6), the
baseline system models (§2.4 / Table 1), and every end-to-end figure.
"""

from repro.perf.async_pipeline import (
    AsyncSchedule,
    async_schedule,
    overlap_speedup,
)
from repro.perf.bench import (
    compare_fleet_records,
    compare_records,
    run_bench,
)
from repro.perf.memory import MemoryModel, StageMemory
from repro.perf.compute import inference_latency, training_latency
from repro.perf.generation import GenerationEstimate, generation_latency
from repro.perf.transition import transition_time
from repro.perf.simu import Stage, simulate_latency
from repro.perf.iteration import (
    GenerationPlan,
    IterationBreakdown,
    ModelExecution,
    estimate_iteration,
)
from repro.perf.pipeline import (
    bubble_fraction,
    bubble_multiplier,
    gpipe_schedule,
)
from repro.perf.recovery import (
    expected_goodput,
    goodput_vs_interval,
    mean_time_to_recover,
    optimal_checkpoint_interval,
)

__all__ = [
    "AsyncSchedule",
    "GenerationEstimate",
    "async_schedule",
    "overlap_speedup",
    "GenerationPlan",
    "IterationBreakdown",
    "ModelExecution",
    "bubble_fraction",
    "bubble_multiplier",
    "compare_fleet_records",
    "compare_records",
    "run_bench",
    "gpipe_schedule",
    "MemoryModel",
    "Stage",
    "StageMemory",
    "estimate_iteration",
    "expected_goodput",
    "generation_latency",
    "goodput_vs_interval",
    "inference_latency",
    "mean_time_to_recover",
    "optimal_checkpoint_interval",
    "simulate_latency",
    "training_latency",
    "transition_time",
]
