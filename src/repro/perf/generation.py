"""Memory-bound auto-regressive generation latency (App. C, §2.3, Fig. 15).

Decode cost per step on a replica of ``t_g * p_g`` GPUs is the max of:

* **parameter reads**: every step streams the rank's weight shard from HBM
  (``M / (t_g p_g)`` bytes — amortised over the whole in-flight batch),
* **KV-cache reads**: the in-flight sequences' cached keys/values,
* **arithmetic** (binding only at large per-replica batch),

plus tensor-parallel all-reduce per layer — a *latency*-dominated term for
small decode messages, which is what makes over-sharded generation
(``t_g = t``, the NeMo-Aligner configuration) slow (§8.4).

When the replica's prompt share exceeds the KV capacity of its devices, the
batch is served in sequential *waves* — the mechanism behind Figure 15's
"a smaller t_g necessitates maintaining a larger KVCache per GPU".
A ``use_kv_cache=False`` mode recomputes the full prefix every step,
reproducing the paper's description of NeMo-Aligner's generation bottleneck
("Due to the lack of KVCache in generation engine").
"""

from __future__ import annotations

import dataclasses
import math

from repro.comm.cost import group_bandwidth
from repro.config import (
    BYTES_BF16,
    ClusterSpec,
    ModelSpec,
    RlhfWorkload,
)
from repro.perf.compute import TP_ALLREDUCE_PER_LAYER_FWD
from repro.perf.memory import MemoryModel


#: How often an inefficient (no paged-KV) generation engine re-encodes the
#: prefix, amortising the paper's "lack of KVCache in generation engine"
#: bottleneck (§8.2) into a per-step cost.
RECOMPUTE_INTERVAL = 8

#: Minimum per-decode-step time regardless of model/batch: sampling, token
#: dispatch, kernel launches — the serial floor that caps strong scaling of
#: the generation stage (§8.2's scaling discussion).
STEP_TIME_FLOOR = 0.002


@dataclasses.dataclass(frozen=True)
class GenerationEstimate:
    """Latency breakdown of the generation stage."""

    prefill_time: float
    decode_time: float
    n_waves: int
    concurrent_sequences: int

    @property
    def total(self) -> float:
        return self.prefill_time + self.decode_time


def _decode_step_time(
    spec: ModelSpec,
    cluster: ClusterSpec,
    gen_tp: int,
    gen_pp: int,
    batch: float,
    context_len: float,
    use_kv_cache: bool,
) -> float:
    gpu = cluster.gpu
    mp = gen_tp * gen_pp
    param_bytes = spec.n_params() * BYTES_BF16 / mp
    hbm = gpu.hbm_bandwidth * gpu.hbm_efficiency

    kv_bytes = batch * context_len * spec.kv_cache_bytes_per_token() / mp
    mem_time = (param_bytes + kv_bytes) / hbm
    flops = batch * spec.flops_per_token_forward(int(context_len))
    compute_time = flops / (mp * gpu.peak_flops * gpu.flops_efficiency)
    if not use_kv_cache:
        # inefficient generation engine: the prefix is re-encoded every
        # RECOMPUTE_INTERVAL steps (cache rebuilds / unfused generation loop)
        recompute_flops = (
            batch * context_len * spec.flops_per_token_forward(int(context_len))
        )
        compute_time += recompute_flops / (
            mp * gpu.peak_flops * gpu.flops_efficiency
        ) / RECOMPUTE_INTERVAL

    # TP all-reduce per layer: latency-dominated for single-token decode
    tp_time = 0.0
    if gen_tp > 1:
        ranks = list(range(min(gen_tp, cluster.n_gpus)))
        bw = group_bandwidth(cluster, ranks)
        per_op = 2.0 * (gen_tp - 1) / gen_tp * batch * spec.hidden_size * BYTES_BF16
        ops = TP_ALLREDUCE_PER_LAYER_FWD * spec.n_layers
        tp_time = ops * (cluster.link_latency * 2 * (gen_tp - 1) + per_op / bw)
    # pipeline handoffs between stages, per step
    pp_time = 0.0
    if gen_pp > 1:
        pp_time = (gen_pp - 1) * (
            cluster.link_latency
            + batch * spec.hidden_size * BYTES_BF16 / cluster.intra_node_bandwidth
        )
    return max(mem_time, compute_time, STEP_TIME_FLOOR) + tp_time + pp_time


def generation_latency(
    spec: ModelSpec,
    cluster: ClusterSpec,
    gen_tp: int,
    gen_pp: int,
    n_replicas: int,
    workload: RlhfWorkload,
    use_kv_cache: bool = True,
    reserved_bytes: float = 0.0,
    n_generation_passes: int = 1,
    step_overhead: float = 0.0,
) -> GenerationEstimate:
    """Latency of generating the global batch across ``n_replicas`` replicas.

    Args:
        gen_tp / gen_pp: Generation-stage model-parallel sizes per replica.
        n_replicas: Model replicas decoding concurrently (``d * d_g``).
        reserved_bytes: Per-GPU memory held by colocated residents, shrinking
            the KV budget (best-effort allocation, §8.4).
        n_generation_passes: >1 for ReMax's extra greedy rollout.
        step_overhead: Fixed per-decode-step engine overhead (seconds) for
            systems without an optimised serving loop.
    """
    if n_replicas < 1:
        raise ValueError(f"need at least one replica, got {n_replicas}")
    gpu = cluster.gpu
    mp = gen_tp * gen_pp
    batch_per_replica = math.ceil(
        workload.global_batch_size
        * workload.n_generations_per_prompt
        / n_replicas
    )

    memory = MemoryModel(spec, cluster)
    if use_kv_cache:
        capacity = memory.kv_capacity_sequences(mp, workload, reserved_bytes)
        if capacity <= 0:
            return GenerationEstimate(
                prefill_time=float("inf"),
                decode_time=float("inf"),
                n_waves=0,
                concurrent_sequences=0,
            )
        concurrent = min(batch_per_replica, capacity)
    else:
        concurrent = batch_per_replica
    n_waves = math.ceil(batch_per_replica / concurrent)

    # prefill: compute-bound forward over the prompts
    prefill_flops = (
        batch_per_replica
        * workload.prompt_length
        * spec.flops_per_token_forward(workload.prompt_length)
    )
    prefill = prefill_flops / (mp * gpu.peak_flops * gpu.flops_efficiency)

    # decode: response_length steps at the average context length
    avg_context = workload.prompt_length + workload.response_length / 2.0
    step = (
        _decode_step_time(
            spec, cluster, gen_tp, gen_pp, concurrent, avg_context, use_kv_cache
        )
        + step_overhead
    )
    decode = n_waves * workload.response_length * step

    return GenerationEstimate(
        prefill_time=prefill * n_generation_passes,
        decode_time=decode * n_generation_passes,
        n_waves=n_waves,
        concurrent_sequences=concurrent,
    )
