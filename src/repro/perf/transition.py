"""Transition-time model: actor resharding between training and generation.

Combines the Table 2 communication volumes with the cluster's bandwidth
hierarchy, plus each baseline's mechanism (§8.4):

* **HybridFlow**: one all-gather per micro-DP group (a single collective;
  micro-DP groups are consecutive ranks — intra-machine whenever
  ``d_g <= 8``).
* **HybridFlow-V**: all-gather within training MP groups.
* **DS-Chat**: all-gather across *all* actor GPUs; "all model parameters must
  be collected during transition, necessitating layer-by-layer collections
  multiple times to prevent OOM" — charged as one collective launch per
  layer.
* **OpenRLHF**: no resharding but a weight *synchronisation* between the
  training copy and the separate generation copy, crossing machines.
"""

from __future__ import annotations

from repro.comm.cost import group_bandwidth
from repro.config import (
    BYTES_BF16,
    ClusterSpec,
    GenParallelConfig,
    ModelSpec,
    ParallelConfig,
)
from repro.hybrid_engine.overhead import EngineKind, transition_overhead


def _ranks_spanning(cluster: ClusterSpec, n: int, stride: int = 1) -> list:
    return [min(i * stride, cluster.n_gpus - 1) for i in range(n)]


def transition_time(
    kind: EngineKind,
    spec: ModelSpec,
    cluster: ClusterSpec,
    train: ParallelConfig,
    gen: GenParallelConfig,
) -> float:
    """Seconds to reshard actor weights from training to generation layout."""
    model_bytes = spec.n_params() * BYTES_BF16
    overhead = transition_overhead(kind, train, gen)
    volume = overhead.comm_bytes(model_bytes)
    if volume <= 0:
        return 0.0

    if kind is EngineKind.HYBRIDFLOW:
        # one all-gather within each micro-DP group (consecutive ranks)
        group = _ranks_spanning(cluster, gen.micro_dp)
        bw = group_bandwidth(cluster, group)
        return cluster.link_latency + volume / bw
    if kind is EngineKind.HYBRIDFLOW_V:
        group = _ranks_spanning(cluster, train.model_parallel_size)
        bw = group_bandwidth(cluster, group)
        return cluster.link_latency + volume / bw
    if kind is EngineKind.DS_CHAT:
        group = _ranks_spanning(cluster, train.world_size)
        bw = group_bandwidth(cluster, group)
        # layer-by-layer collections to bound the gather buffer (§8.4)
        n_collectives = spec.n_layers
        return n_collectives * cluster.link_latency * len(group) + volume / bw
    raise ValueError(f"no transition-time model for {kind}")


def weight_sync_time(
    spec: ModelSpec,
    cluster: ClusterSpec,
    n_generation_gpus: int,
) -> float:
    """OpenRLHF-style synchronisation of a full weight copy across machines.

    The training ranks broadcast the updated parameters to the generation
    ranks, bottlenecked by the inter-machine links of the receiving side and
    performed layer by layer.
    """
    model_bytes = spec.n_params() * BYTES_BF16
    bw = cluster.inter_node_bandwidth
    n_collectives = spec.n_layers
    return (
        n_collectives * cluster.link_latency * max(n_generation_gpus, 1)
        + model_bytes / bw
    )
