"""``simu``: the unified latency oracle used by auto-mapping (Appendix C).

One entry point over the three analytical simulators (training, inference,
generation), so Algorithm 2's strategy search and Algorithm 1's ``d_cost``
consume a single interface — mirroring the paper's ``simu(l, W[i])`` calls.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.config import ClusterSpec, ModelSpec, ParallelConfig, RlhfWorkload
from repro.perf.compute import inference_latency, training_latency
from repro.perf.generation import generation_latency


class Stage(enum.Enum):
    """The computation kinds a model performs across RLHF stages (§2.1)."""

    TRAINING = "training"
    INFERENCE = "inference"
    GENERATION = "generation"


def simulate_latency(
    stage: Stage,
    spec: ModelSpec,
    cluster: ClusterSpec,
    parallel: ParallelConfig,
    workload: RlhfWorkload,
    zero3: bool = False,
    gen_tp: Optional[int] = None,
    gen_pp: Optional[int] = None,
    use_kv_cache: bool = True,
    reserved_bytes: float = 0.0,
    n_passes: float = 1.0,
) -> float:
    """Estimated seconds for one stage of one model over the global batch.

    For ``Stage.GENERATION``, ``parallel`` is the *training* configuration of
    the actor's pool and ``gen_tp``/``gen_pp`` the generation model-parallel
    sizes; replicas are derived as ``world_size / (gen_tp * gen_pp)``.
    """
    if stage is Stage.TRAINING:
        return training_latency(
            spec, cluster, parallel, workload, zero3=zero3,
            n_passes_over_batch=n_passes,
        )
    if stage is Stage.INFERENCE:
        return inference_latency(spec, cluster, parallel, workload) * n_passes
    if stage is Stage.GENERATION:
        tp = gen_tp if gen_tp is not None else parallel.tp
        pp = gen_pp if gen_pp is not None else parallel.pp
        n_replicas = max(1, parallel.world_size // (tp * pp))
        estimate = generation_latency(
            spec,
            cluster,
            gen_tp=tp,
            gen_pp=pp,
            n_replicas=n_replicas,
            workload=workload,
            use_kv_cache=use_kv_cache,
            reserved_bytes=reserved_bytes,
            n_generation_passes=int(n_passes),
        )
        return estimate.total
    raise ValueError(f"unknown stage {stage}")  # pragma: no cover
