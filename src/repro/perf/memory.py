"""Per-GPU memory model for training / inference / generation (§2.3, App. C).

Mixed-precision accounting matches §8.1: BF16 parameters (2 B/param), FP32
gradients (4 B/param), FP32 optimizer states (master weights + two Adam
moments, 12 B/param).  Model states are divided by the model-parallel size
(3D parallelism) or the DP size (ZeRO-3/FSDP); activations are an estimate
with selective recomputation; the KV cache is sized from the workload.
"""

from __future__ import annotations

import dataclasses

from repro.config import (
    BYTES_BF16,
    BYTES_FP32,
    ClusterSpec,
    ModelSpec,
    ParallelConfig,
    RlhfWorkload,
)

GRAD_BYTES = BYTES_FP32
OPTIMIZER_BYTES = 3 * BYTES_FP32  # FP32 master copy + two Adam moments
#: Activation bytes per token per layer per hidden unit with selective
#: recomputation (Megatron-LM estimate; checkpointing keeps ~1 copy of the
#: layer input plus attention softmax workspace).
ACTIVATION_BYTES_PER_ELEM = 16
#: Fraction of device memory usable for model state (the rest is framework
#: workspace, fragmentation, comm buffers).
USABLE_FRACTION = 0.90


@dataclasses.dataclass(frozen=True)
class StageMemory:
    """Bytes per GPU a model needs in one execution stage."""

    params: float
    grads: float = 0.0
    optimizer: float = 0.0
    activations: float = 0.0
    kv_cache: float = 0.0

    @property
    def persistent(self) -> float:
        """State resident between stages (what colocation must co-fit)."""
        return self.params + self.grads + self.optimizer

    @property
    def total(self) -> float:
        return self.persistent + self.activations + self.kv_cache


class MemoryModel:
    """Memory estimates for one model under one parallel strategy."""

    def __init__(self, spec: ModelSpec, cluster: ClusterSpec) -> None:
        self.spec = spec
        self.cluster = cluster
        self.n_params = spec.n_params()

    # -- stages ------------------------------------------------------------------

    def training(
        self,
        parallel: ParallelConfig,
        workload: RlhfWorkload,
        zero3: bool = False,
        micro_batch: int = 1,
    ) -> StageMemory:
        """Per-GPU bytes while training (params+grads+opt+activations)."""
        if zero3:
            shard = parallel.dp * parallel.model_parallel_size
        else:
            shard = parallel.model_parallel_size
        params = self.n_params * BYTES_BF16 / shard
        grads = self.n_params * GRAD_BYTES / (
            shard if zero3 else parallel.model_parallel_size
        )
        optimizer = self.n_params * OPTIMIZER_BYTES / (
            shard if zero3 else parallel.model_parallel_size
        )
        if zero3:
            # ZeRO-3 must additionally hold one materialised layer at a time;
            # approximate with the largest layer's parameters
            params += self._largest_layer_bytes()
        act_tokens = micro_batch * workload.seq_length
        activations = (
            act_tokens
            * self.spec.hidden_size
            * self.spec.n_layers
            * ACTIVATION_BYTES_PER_ELEM
            / max(parallel.tp, 1)
        )
        return StageMemory(
            params=params, grads=grads, optimizer=optimizer, activations=activations
        )

    def inference(self, parallel: ParallelConfig, workload: RlhfWorkload) -> StageMemory:
        """Forward-only models: parameters plus a thin activation slab."""
        params = self.n_params * BYTES_BF16 / parallel.model_parallel_size
        activations = (
            workload.seq_length
            * self.spec.hidden_size
            * ACTIVATION_BYTES_PER_ELEM
            / max(parallel.tp, 1)
        )
        return StageMemory(params=params, activations=activations)

    def generation(
        self,
        gen_mp_size: int,
        concurrent_sequences: int,
        workload: RlhfWorkload,
    ) -> StageMemory:
        """Generation-stage bytes: gen-shard params plus the KV cache."""
        params = self.n_params * BYTES_BF16 / gen_mp_size
        kv = (
            concurrent_sequences
            * workload.seq_length
            * self.spec.kv_cache_bytes_per_token()
            / gen_mp_size
        )
        return StageMemory(params=params, kv_cache=kv)

    # -- capacity questions ---------------------------------------------------------

    def _largest_layer_bytes(self) -> float:
        h, f = self.spec.hidden_size, self.spec.ffn_hidden_size
        kv = self.spec.n_kv_heads * self.spec.head_dim
        layer = (2 * h * h + 2 * h * kv) + 3 * h * f
        return layer * BYTES_BF16

    def usable_bytes_per_gpu(self) -> float:
        return self.cluster.gpu.memory_bytes * USABLE_FRACTION

    def kv_capacity_sequences(
        self,
        gen_mp_size: int,
        workload: RlhfWorkload,
        reserved_bytes: float = 0.0,
    ) -> int:
        """Max sequences whose KV cache co-fits with the generation shard.

        This is the "best-effort allocation" of §8.4: KV cache takes whatever
        memory remains after parameters and any colocated residents.
        """
        budget = (
            self.usable_bytes_per_gpu()
            - self.n_params * BYTES_BF16 / gen_mp_size
            - reserved_bytes
        )
        per_seq = (
            workload.seq_length
            * self.spec.kv_cache_bytes_per_token()
            / gen_mp_size
        )
        if budget <= 0 or per_seq <= 0:
            return 0
        return int(budget // per_seq)
