"""Analytic fault-tolerance cost model: MTTR, goodput vs checkpoint interval.

Complements the *measured* recovery accounting of
:mod:`repro.runtime.recovery` with the classic first-order algebra
(Young 1974 / Daly 2006) so the checkpoint-interval trade-off can be studied
without running anything: checkpoint too often and the overhead dominates;
too rarely and each failure throws away half an interval of work on average.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


def optimal_checkpoint_interval(checkpoint_time: float, mtbf: float) -> float:
    """Young's approximation: the work (seconds) between checkpoints.

    ``sqrt(2 * delta * MTBF)`` with ``delta`` the time to write one
    checkpoint — optimal to first order when ``delta << MTBF``.
    """
    if checkpoint_time <= 0 or mtbf <= 0:
        raise ValueError(
            f"need positive checkpoint_time and mtbf, got "
            f"{checkpoint_time} and {mtbf}"
        )
    return math.sqrt(2.0 * checkpoint_time * mtbf)


def expected_goodput(
    iteration_time: float,
    interval_iterations: int,
    checkpoint_time: float,
    restore_time: float,
    reinit_time: float,
    mtbf: float,
) -> float:
    """Expected fraction of wall time spent on *retained* work.

    One cycle does ``interval_iterations`` iterations of useful work, pays
    one checkpoint write, and — at rate ``cycle / mtbf`` — a failure that
    costs half the interval's work (uniform failure position) plus the
    repair (restore + re-init).
    """
    if interval_iterations < 1:
        raise ValueError(f"interval must be >= 1 iteration, got {interval_iterations}")
    if iteration_time <= 0 or mtbf <= 0:
        raise ValueError("iteration_time and mtbf must be positive")
    useful = interval_iterations * iteration_time
    cycle = useful + checkpoint_time
    failures_per_cycle = cycle / mtbf
    rework = useful / 2.0 + restore_time + reinit_time
    return useful / (cycle + failures_per_cycle * rework)


def goodput_vs_interval(
    iteration_time: float,
    checkpoint_time: float,
    restore_time: float,
    reinit_time: float,
    mtbf: float,
    intervals: Sequence[int] = (1, 2, 4, 8, 16, 32),
) -> List[Tuple[int, float]]:
    """The goodput curve over candidate checkpoint intervals (iterations)."""
    return [
        (
            k,
            expected_goodput(
                iteration_time, k, checkpoint_time, restore_time, reinit_time, mtbf
            ),
        )
        for k in intervals
    ]


def mean_time_to_recover(
    restore_time: float, reinit_time: float, lost_work_time: float = 0.0
) -> float:
    """MTTR of one failure: repair cost plus the re-run of lost work."""
    if min(restore_time, reinit_time, lost_work_time) < 0:
        raise ValueError("recovery times must be non-negative")
    return restore_time + reinit_time + lost_work_time
