"""Pinned perf workloads and the committed-baseline gate (``repro bench``).

HybridFlow's headline claim is throughput (§6: 1.5–20× over baselines), so
the reproduction keeps a *measured* perf trajectory instead of an asserted
one: ``repro bench`` runs the pinned workloads below, writes a
``BENCH_perf.json`` record, and CI compares every run against the committed
baseline — a regression beyond tolerance fails the build.

Comparison policy (the part that makes the gate portable):

* ``exact`` metrics are **structure-derived** integers/booleans — token
  counts with EOS disabled, schedule steps, dispatch-call counts, metered
  collective bytes (a function of array shapes), cache hit counts.  They
  must match the baseline bit-for-bit on any platform; none of them depends
  on float arithmetic or the sampled token stream, so they are stable
  across Python/numpy versions.
* ``wall`` metrics are host wall-clock seconds.  CI machines are shared and
  slow, so a run only *fails* when it exceeds ``baseline * WALL_FACTOR +
  WALL_FLOOR`` — the gate catches order-of-magnitude rot (an accidental
  O(n²), a dropped cache), not scheduler jitter.  Being faster never fails.
* ``min`` metrics carry their own absolute floor (speedup ratios measured
  A/B in the same process, where machine speed divides out).  The floor is
  part of the pinned record: the vectorized sampler must stay measurably
  faster than the per-row loop it replaced, on every run, forever.
* ``info`` metrics are recorded for the trajectory but never compared.

Workload *pins* (model sizes, batch shapes, seeds) are compared exactly;
changing a pin requires an explicit re-baseline (``repro bench --update``),
so the committed numbers always describe the committed workloads.
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

SCHEMA = 1
SUITE = "repro.perf.bench"

#: A wall metric regresses only beyond ``baseline * WALL_FACTOR +
#: WALL_FLOOR`` — loose on purpose; see the module docstring.
WALL_FACTOR = 4.0
WALL_FLOOR = 0.05


def _now() -> float:
    """Host wall-clock for *measuring the harness itself*.

    The simulation never reads wall time (rule ``RL302``); the bench
    harness is the one sanctioned exception, since its entire job is to
    measure how fast the host executes the simulation.
    """
    return time.perf_counter()  # repro-lint: ignore[RL302]


def _time_best(fn: Callable[[], Any], repeats: int = 3) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` — the standard noise filter."""
    best = math.inf
    for _ in range(repeats):
        t0 = _now()
        fn()
        best = min(best, _now() - t0)
    return best


def _metric(kind: str, value: Any, **extra: Any) -> Dict[str, Any]:
    if kind not in ("exact", "wall", "min", "info"):
        raise ValueError(f"unknown metric kind {kind!r}")
    return {"kind": kind, "value": value, **extra}


# -- workloads -----------------------------------------------------------------------


def bench_sequential_generate() -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Auto-regressive ``generate`` plus the sampler A/B microbenchmark."""
    from repro.models.sampler import (
        generate,
        sample_tokens,
        sample_tokens_reference,
    )
    from repro.models.tinylm import TinyLM, TinyLMConfig

    pins = {
        "n_layers": 2,
        "hidden_size": 32,
        "n_heads": 4,
        "ffn_hidden_size": 48,
        "vocab_size": 32,
        "max_seq_len": 64,
        "batch": 8,
        "prompt_length": 4,
        "max_new_tokens": 16,
        "seed": 0,
        "sampler_rows": 256,
        "sampler_vocab": 64,
        "sampler_iters": 20,
    }
    cfg = TinyLMConfig(
        n_layers=pins["n_layers"],
        hidden_size=pins["hidden_size"],
        n_heads=pins["n_heads"],
        ffn_hidden_size=pins["ffn_hidden_size"],
        vocab_size=pins["vocab_size"],
        max_seq_len=pins["max_seq_len"],
    )
    model = TinyLM(cfg, seed=pins["seed"])
    prompt_rng = np.random.default_rng(pins["seed"])
    prompts = prompt_rng.integers(
        0, cfg.vocab_size, size=(pins["batch"], pins["prompt_length"])
    )

    def run() -> None:
        generate(
            model,
            prompts,
            max_new_tokens=pins["max_new_tokens"],
            rng=np.random.default_rng(pins["seed"]),
        )

    wall = _time_best(run)
    tokens = pins["batch"] * pins["max_new_tokens"]  # no EOS: every slot fills

    # sampler A/B: identical logits, identically-seeded rngs, so the only
    # difference is the per-row loop vs the batched inverse-CDF pass
    logits = np.random.default_rng(1).normal(
        size=(pins["sampler_rows"], pins["sampler_vocab"])
    )
    rng_ref = np.random.default_rng(2)
    rng_vec = np.random.default_rng(2)
    t0 = _now()
    for _ in range(pins["sampler_iters"]):
        ref_tokens = sample_tokens_reference(logits, rng_ref)
    ref_time = _now() - t0
    t0 = _now()
    for _ in range(pins["sampler_iters"]):
        vec_tokens = sample_tokens(logits, rng_vec)
    vec_time = _now() - t0
    bit_exact = bool(np.array_equal(ref_tokens, vec_tokens))

    metrics = {
        "tokens": _metric("exact", tokens),
        "sampler_bit_exact": _metric("exact", bit_exact),
        "wall_seconds": _metric("wall", wall),
        "tokens_per_second": _metric("info", tokens / max(wall, 1e-9)),
        "sampler_speedup": _metric(
            "min", ref_time / max(vec_time, 1e-9), floor=1.2
        ),
    }
    return pins, metrics


def bench_serving_drain() -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Continuous-batching drain, batched decode A/B'd against per-slot."""
    from repro.models.tinylm import TinyLM, TinyLMConfig
    from repro.serving import RolloutServer, ServingConfig

    pins = {
        "n_layers": 2,
        "hidden_size": 32,
        "n_heads": 4,
        "ffn_hidden_size": 48,
        "vocab_size": 32,
        "max_seq_len": 64,
        "n_requests": 12,
        "prompt_length": 4,
        "max_new_tokens": 16,
        "max_slots": 4,
        "seed": 0,
    }
    cfg = TinyLMConfig(
        n_layers=pins["n_layers"],
        hidden_size=pins["hidden_size"],
        n_heads=pins["n_heads"],
        ffn_hidden_size=pins["ffn_hidden_size"],
        vocab_size=pins["vocab_size"],
        max_seq_len=pins["max_seq_len"],
    )
    model = TinyLM(cfg, seed=pins["seed"])
    prompt_rng = np.random.default_rng(pins["seed"])
    prompts = prompt_rng.integers(
        0, cfg.vocab_size, size=(pins["n_requests"], pins["prompt_length"])
    )

    def drain(batched: bool):
        server = RolloutServer(
            model,
            ServingConfig(
                max_slots=pins["max_slots"],
                seed=pins["seed"],
                batched_decode=batched,
            ),
        )
        for i in range(pins["n_requests"]):
            server.submit(prompts[i], max_new_tokens=pins["max_new_tokens"])
        return server.drain()

    # equal prompt lengths, no EOS: every step's runners share one KV
    # length, so the batched path runs one forward per step instead of one
    # per slot — the best case the cohort grouping is designed to hit
    batched_wall = _time_best(lambda: drain(batched=True))
    per_slot_wall = _time_best(lambda: drain(batched=False))
    report = drain(batched=True)
    baseline = drain(batched=False)
    outputs_equal = all(
        np.array_equal(a.response, b.response)
        for a, b in zip(report.completed, baseline.completed)
    )

    metrics = {
        "n_steps": _metric("exact", report.n_steps),
        "total_tokens": _metric("exact", report.total_tokens),
        "n_preemptions": _metric("exact", report.n_preemptions),
        "batched_equals_per_slot": _metric("exact", outputs_equal),
        "wall_seconds": _metric("wall", batched_wall),
        "tokens_per_second": _metric(
            "info", report.total_tokens / max(batched_wall, 1e-9)
        ),
        "decode_speedup": _metric(
            "min", per_slot_wall / max(batched_wall, 1e-9), floor=1.1
        ),
    }
    return pins, metrics


def _build_tiny_ppo():
    """The tiny 4-model PPO system every functional subcommand pins."""
    from repro.config import (
        ClusterSpec,
        GenParallelConfig,
        ParallelConfig,
    )
    from repro.data import SyntheticPreferenceTask
    from repro.models.tinylm import TinyLMConfig
    from repro.rlhf.core import AlgoType
    from repro.rlhf.trainers import TrainerConfig
    from repro.runtime import ModelAssignment, PlacementPlan, build_rlhf_system

    cfg = TinyLMConfig(
        n_layers=2,
        hidden_size=32,
        n_heads=4,
        ffn_hidden_size=48,
        vocab_size=16,
        max_seq_len=32,
    )
    par = ParallelConfig(pp=1, tp=2, dp=1)
    plan = PlacementPlan(
        pools={"main": 2, "r": 1},
        assignments={
            "actor": ModelAssignment(
                "main", par, GenParallelConfig.derive(par, 1, 1)
            ),
            "critic": ModelAssignment("main", par),
            "reference": ModelAssignment("main", par),
            "reward": ModelAssignment("r", ParallelConfig(1, 1, 1)),
        },
    )
    task = SyntheticPreferenceTask(vocab_size=16, target_token=7)
    return build_rlhf_system(
        AlgoType.PPO,
        plan,
        cfg,
        cluster_spec=ClusterSpec(n_machines=1, gpus_per_machine=4),
        trainer_config=TrainerConfig(kl_coef=0.01, seed=7),
        reward_fn=task.reward,
        max_new_tokens=6,
        lr=5e-3,
        seed=7,
    )


def bench_ppo_iteration() -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """One full PPO iteration through the single-controller dispatch path."""
    from repro.data import PromptDataset

    pins = {
        "algo": "ppo",
        "n_iterations": 1,
        "batch_size": 8,
        "max_new_tokens": 6,
        "prompt_length": 4,
        "seed": 7,
    }
    system = _build_tiny_ppo()
    dataset = PromptDataset(
        n_prompts=32, prompt_length=pins["prompt_length"], vocab_size=16, seed=1
    )

    t0 = _now()
    system.trainer.train(
        dataset, n_iterations=pins["n_iterations"], batch_size=pins["batch_size"]
    )
    wall = _now() - t0
    dispatch_calls = int(
        system.controller.metrics.total("repro_dispatch_calls_total")
    )

    metrics = {
        # the dataflow's structure: how many remote calls one iteration
        # dispatches is a property of the algorithm graph, not the floats
        "dispatch_calls": _metric("exact", dispatch_calls),
        "iterations": _metric("exact", pins["n_iterations"]),
        "wall_seconds": _metric("wall", wall),
        "simulated_seconds": _metric("info", float(system.controller.clock.now)),
    }
    return pins, metrics


def bench_train_gen_transition() -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Two 3D-HybridEngine transition cycles, plan/group caches observed."""
    from repro.config import ClusterSpec, GenParallelConfig, ParallelConfig
    from repro.hybrid_engine import (
        HybridEngine3D,
        clear_plan_cache,
        plan_cache_stats,
        plan_transition,
    )
    from repro.models.tinylm import TinyLMConfig
    from repro.single_controller import SingleController, WorkerGroup
    from repro.workers import ActorWorker

    pins = {
        "n_layers": 4,
        "hidden_size": 32,
        "n_heads": 4,
        "ffn_hidden_size": 48,
        "vocab_size": 16,
        "max_seq_len": 32,
        "pp": 1,
        "tp": 4,
        "dp": 2,
        "gen_tp": 2,
        "gen_pp": 1,
        "cycles": 2,
    }
    cfg = TinyLMConfig(
        n_layers=pins["n_layers"],
        hidden_size=pins["hidden_size"],
        n_heads=pins["n_heads"],
        ffn_hidden_size=pins["ffn_hidden_size"],
        vocab_size=pins["vocab_size"],
        max_seq_len=pins["max_seq_len"],
    )
    parallel = ParallelConfig(pp=pins["pp"], tp=pins["tp"], dp=pins["dp"])
    controller = SingleController(ClusterSpec(n_machines=2))
    pool = controller.create_pool(parallel.world_size)
    group = WorkerGroup(
        ActorWorker,
        pool,
        parallel_config=parallel,
        gen_config=GenParallelConfig.derive(parallel, pins["gen_pp"], pins["gen_tp"]),
        controller=controller,
        name="actor",
        worker_kwargs={"model_config": cfg},
    )
    engine = HybridEngine3D(group)

    clear_plan_cache()
    t0 = _now()
    for _ in range(pins["cycles"]):
        plan_transition(group.gen_topology)
        engine.to_generation()
        engine.to_training()
    wall = _now() - t0
    plan_stats = plan_cache_stats()
    group_stats = group.gen_topology.group_cache.stats()
    comm_bytes = int(controller.meter.total_bytes())

    metrics = {
        # collective bytes are a function of shard shapes — Table 2 algebra,
        # identical on every platform
        "comm_bytes": _metric("exact", comm_bytes),
        "plan_cache_hits": _metric("exact", plan_stats["hits"]),
        "plan_cache_misses": _metric("exact", plan_stats["misses"]),
        "group_cache_hits_min": _metric(
            "min", group_stats["hits"], floor=1
        ),
        "wall_seconds": _metric("wall", wall),
        "group_cache_size": _metric("info", group_stats["size"]),
    }
    return pins, metrics


def _build_disaggregated_ppo():
    """PPO with the actor alone on its pool — the async-overlap placement.

    Rollout and training both run on the actor's devices, so overlap gains
    come from the *other* pools: with critic/reference/reward colocated on
    one scorer pool, the synchronous loop leaves the actor idle while the
    scoring chain runs; the one-step-off schedule fills that idle with the
    next iteration's generation.
    """
    from repro.config import ClusterSpec, GenParallelConfig, ParallelConfig
    from repro.models.tinylm import TinyLMConfig
    from repro.rlhf.core import AlgoType
    from repro.rlhf.trainers import TrainerConfig
    from repro.runtime import ModelAssignment, PlacementPlan, build_rlhf_system

    cfg = TinyLMConfig(
        n_layers=2,
        hidden_size=32,
        n_heads=4,
        ffn_hidden_size=48,
        vocab_size=16,
        max_seq_len=32,
    )
    actor_par = ParallelConfig(pp=1, tp=2, dp=1)
    scorer_par = ParallelConfig(pp=1, tp=1, dp=1)
    plan = PlacementPlan(
        pools={"actor": 2, "scorer": 1},
        assignments={
            "actor": ModelAssignment(
                "actor", actor_par, GenParallelConfig.derive(actor_par, 1, 1)
            ),
            "critic": ModelAssignment("scorer", scorer_par),
            "reference": ModelAssignment("scorer", scorer_par),
            "reward": ModelAssignment("scorer", scorer_par),
        },
    )
    return build_rlhf_system(
        AlgoType.PPO,
        plan,
        cfg,
        cluster_spec=ClusterSpec(n_machines=1, gpus_per_machine=4),
        trainer_config=TrainerConfig(kl_coef=0.01, seed=7),
        max_new_tokens=6,
        lr=5e-3,
        seed=7,
    )


def _system_states_equal(sys_a, sys_b) -> bool:
    """Bit-equality of every worker's checkpointable state across systems."""
    for name in sys_a.groups:
        workers_a = sys_a.groups[name].workers
        workers_b = sys_b.groups[name].workers
        if len(workers_a) != len(workers_b):
            return False
        for wa, wb in zip(workers_a, workers_b):
            sa, sb = wa.state_for_checkpoint(), wb.state_for_checkpoint()
            if set(sa) != set(sb):
                return False
            for key in sa:
                va, vb = sa[key], sb[key]
                if isinstance(va, np.ndarray) or isinstance(vb, np.ndarray):
                    if not np.array_equal(np.asarray(va), np.asarray(vb)):
                        return False
                elif va != vb:
                    return False
    return True


def bench_async_ppo_overlap() -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """One-step-off async pipeline vs the synchronous loop, same workload.

    Three runs of the same pinned workload: the synchronous trainer, the
    async driver with ``staleness_window=0`` (must be bit-exact with the
    first — the structural guarantee), and the async driver with
    ``staleness_window=1``.  The overlap win is measured on the modeled
    execution timeline (simulated seconds, deterministic on every host);
    the floor pins the bubble collapse so it can never silently regress.
    """
    from repro.data import PromptDataset
    from repro.pipeline import AsyncPipelineDriver, PipelineConfig
    from repro.runtime.timeline import build_timeline

    pins = {
        "algo": "ppo",
        "n_iterations": 4,
        "batch_size": 4,
        "prompt_length": 4,
        "max_new_tokens": 6,
        "staleness_window": 1,
        "seed": 7,
        "placement": "actor@actor[2gpu,tp2] critic+reference+reward@scorer",
    }

    def dataset() -> PromptDataset:
        return PromptDataset(
            n_prompts=32,
            prompt_length=pins["prompt_length"],
            vocab_size=16,
            seed=1,
        )

    sync_sys = _build_disaggregated_ppo()
    sync_sys.trainer.train(
        dataset(),
        n_iterations=pins["n_iterations"],
        batch_size=pins["batch_size"],
    )
    sync_makespan = build_timeline(sync_sys.controller).makespan

    exact_sys = _build_disaggregated_ppo()
    AsyncPipelineDriver(
        exact_sys.trainer, PipelineConfig(staleness_window=0)
    ).train(
        dataset(),
        n_iterations=pins["n_iterations"],
        batch_size=pins["batch_size"],
    )
    staleness0_bit_exact = _system_states_equal(sync_sys, exact_sys)

    async_sys = _build_disaggregated_ppo()
    driver = AsyncPipelineDriver(
        async_sys.trainer,
        PipelineConfig(staleness_window=pins["staleness_window"]),
    )
    t0 = _now()
    driver.train(
        dataset(),
        n_iterations=pins["n_iterations"],
        batch_size=pins["batch_size"],
    )
    wall = _now() - t0
    async_makespan = build_timeline(async_sys.controller).makespan
    report = driver.report()

    metrics = {
        # schedule structure: staleness tags, buffer pressure, publication
        # bytes are functions of the dataflow and shard shapes, not floats
        "staleness0_bit_exact": _metric("exact", bool(staleness0_bit_exact)),
        "max_staleness": _metric("exact", report["max_staleness_seen"]),
        "buffer_peak_occupancy": _metric(
            "exact", report["buffer_peak_occupancy"]
        ),
        "publications": _metric("exact", report["publications"]),
        "published_bytes": _metric("exact", report["published_bytes"]),
        "overlap_speedup": _metric(
            "min", sync_makespan / max(async_makespan, 1e-9), floor=1.1
        ),
        "wall_seconds": _metric("wall", wall),
        "sync_makespan": _metric("info", float(sync_makespan)),
        "async_makespan": _metric("info", float(async_makespan)),
    }
    return pins, metrics


def bench_shape_check() -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """The SF7xx symbolic shape pass over every shipped algorithm graph.

    The pass runs in CI (``repro check --shapes``), so its wall time is a
    budget worth watching: the abstract interpretation is pure Python over
    symbolic dims and must stay cheap relative to the real workloads it
    guards.  Zero findings on the shipped graphs is pinned as an exact
    metric — the clean-run guarantee the seeded-mutant tests depend on.
    """
    from repro.analysis import shipped_graph_reports

    pins = {"batch": 8}

    def run() -> int:
        return sum(
            len(report.findings)
            for _name, report in shipped_graph_reports(batch=pins["batch"])
        )

    findings = run()
    wall = _time_best(run)
    reports = shipped_graph_reports(batch=pins["batch"])
    checked = sum(
        sum(report.checked.values()) for _name, report in reports
    )
    metrics = {
        "findings": _metric("exact", findings),
        "graphs": _metric("exact", len(reports)),
        "facts_checked": _metric("exact", checked),
        "wall_seconds": _metric("wall", wall),
        "shape_pass_seconds": _metric("info", wall),
    }
    return pins, metrics


WORKLOADS: Dict[str, Callable[[], Tuple[Dict[str, Any], Dict[str, Any]]]] = {
    "sequential_generate": bench_sequential_generate,
    "serving_drain": bench_serving_drain,
    "ppo_iteration": bench_ppo_iteration,
    "train_gen_transition": bench_train_gen_transition,
    "async_ppo_overlap": bench_async_ppo_overlap,
    "shape_check": bench_shape_check,
}


def run_bench(names: Optional[List[str]] = None) -> Dict[str, Any]:
    """Run the pinned workloads; returns the ``BENCH_perf.json`` record."""
    if names is None:
        names = list(WORKLOADS)
    unknown = [n for n in names if n not in WORKLOADS]
    if unknown:
        raise ValueError(
            f"unknown workload(s) {unknown}; have {sorted(WORKLOADS)}"
        )
    record: Dict[str, Any] = {
        "schema": SCHEMA,
        "suite": SUITE,
        "workloads": {},
    }
    for name in names:
        pins, metrics = WORKLOADS[name]()
        record["workloads"][name] = {"pins": pins, "metrics": metrics}
    return record


# -- comparison ----------------------------------------------------------------------


def _check_min_metrics(record: Dict[str, Any]) -> List[str]:
    """Floor violations of a record's own ``min`` metrics (self-contained)."""
    problems = []
    for wname, workload in record.get("workloads", {}).items():
        for mname, metric in workload.get("metrics", {}).items():
            if metric.get("kind") != "min":
                continue
            floor = metric.get("floor")
            value = metric.get("value")
            if floor is None:
                problems.append(f"{wname}.{mname}: min metric has no floor")
            elif value < floor:
                problems.append(
                    f"{wname}.{mname}: {value:.3f} below its pinned floor "
                    f"{floor}"
                )
    return problems


def compare_records(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    wall_factor: float = WALL_FACTOR,
    wall_floor: float = WALL_FLOOR,
) -> List[str]:
    """Regressions of ``current`` against the committed ``baseline``.

    Returns human-readable problem strings; empty means the gate passes.
    Pin or workload-set drift is reported as a problem too — the fix is an
    explicit re-baseline, never a silent one.
    """
    problems: List[str] = []
    if current.get("suite") != baseline.get("suite") or current.get(
        "schema"
    ) != baseline.get("schema"):
        problems.append(
            f"record identity mismatch: current "
            f"({current.get('suite')}, schema {current.get('schema')}) vs "
            f"baseline ({baseline.get('suite')}, schema {baseline.get('schema')})"
        )
        return problems
    cur_wl = current.get("workloads", {})
    base_wl = baseline.get("workloads", {})
    for name in sorted(set(base_wl) - set(cur_wl)):
        problems.append(f"workload {name!r} in baseline but not in this run")
    for name in sorted(set(cur_wl) - set(base_wl)):
        problems.append(
            f"workload {name!r} not in baseline — re-baseline with "
            "'repro bench --update'"
        )
    problems.extend(_check_min_metrics(current))
    for name in sorted(set(cur_wl) & set(base_wl)):
        cur, base = cur_wl[name], base_wl[name]
        if cur.get("pins") != base.get("pins"):
            problems.append(
                f"{name}: workload pins changed — re-baseline with "
                f"'repro bench --update' (current {cur.get('pins')} vs "
                f"baseline {base.get('pins')})"
            )
            continue
        cur_m, base_m = cur.get("metrics", {}), base.get("metrics", {})
        for mname in sorted(set(base_m) | set(cur_m)):
            if mname not in cur_m or mname not in base_m:
                problems.append(
                    f"{name}.{mname}: present in only one record — re-baseline"
                )
                continue
            cm, bm = cur_m[mname], base_m[mname]
            if cm.get("kind") != bm.get("kind"):
                problems.append(
                    f"{name}.{mname}: metric kind changed "
                    f"({bm.get('kind')} -> {cm.get('kind')}) — re-baseline"
                )
                continue
            kind = cm.get("kind")
            if kind == "exact" and cm["value"] != bm["value"]:
                problems.append(
                    f"{name}.{mname}: {cm['value']!r} != baseline "
                    f"{bm['value']!r}"
                )
            elif kind == "wall":
                limit = bm["value"] * wall_factor + wall_floor
                if cm["value"] > limit:
                    problems.append(
                        f"{name}.{mname}: {cm['value']:.3f}s exceeds "
                        f"{limit:.3f}s (baseline {bm['value']:.3f}s x "
                        f"{wall_factor:g} + {wall_floor:g}s)"
                    )
            elif kind == "min" and cm.get("floor") != bm.get("floor"):
                problems.append(
                    f"{name}.{mname}: pinned floor changed "
                    f"({bm.get('floor')} -> {cm.get('floor')}) — re-baseline"
                )
    return problems


def compare_fleet_records(
    current: Dict[str, Any], baseline: Dict[str, Any]
) -> List[str]:
    """Trajectory check for ``repro fleet --bench-out`` records.

    The fleet record mixes structural facts (job/cluster shape, kill
    count) with outcome flags; only those are compared — goodput magnitudes
    are host-speed-free but schedule-derived, so they are required positive
    rather than equal.
    """
    problems: List[str] = []
    for field in ("benchmark", "jobs", "cluster_gpus", "devices_killed"):
        if current.get(field) != baseline.get(field):
            problems.append(
                f"{field}: {current.get(field)!r} != baseline "
                f"{baseline.get(field)!r} — re-baseline the fleet record"
            )
    for flag in ("all_completed", "ok"):
        if not current.get(flag):
            problems.append(f"{flag} is false in the current fleet run")
    if not current.get("goodput_mean", 0) > 0:
        problems.append("goodput_mean is not positive in the current fleet run")
    findings = current.get("analysis_findings") or {}
    if any(findings.values()):
        problems.append(f"fleet analysis gate found issues: {findings}")
    return problems


def summary_lines(record: Dict[str, Any]) -> List[str]:
    """Human-readable rendering of a bench record."""
    lines: List[str] = []
    for name, workload in record.get("workloads", {}).items():
        lines.append(f"{name}:")
        for mname, metric in workload.get("metrics", {}).items():
            value = metric["value"]
            if isinstance(value, float):
                shown = f"{value:.4f}"
            else:
                shown = repr(value)
            suffix = ""
            if metric["kind"] == "min":
                suffix = f" (floor {metric.get('floor')})"
            lines.append(f"  {mname:24s} [{metric['kind']}] {shown}{suffix}")
    return lines
