"""Pipeline-parallel schedules: GPipe and 1F1B bubble analysis ([32], [53]).

The training latency model multiplies compute by ``(m + p - 1) / m`` for
``p`` stages and ``m`` microbatches — the pipeline *bubble* factor.  This
module derives that factor from an actual event-driven schedule rather than
asserting it, and exposes per-stage busy/idle accounting (useful for the
placement discussions: pipeline bubbles are another source of the idle time
Figure 3 reasons about).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple


def bubble_fraction(pp: int, n_microbatches: int) -> float:
    """Idle fraction of a GPipe/1F1B pipeline: ``(p-1) / (m + p - 1)``."""
    if pp < 1 or n_microbatches < 1:
        raise ValueError(
            f"need pp >= 1 and microbatches >= 1, got {pp}, {n_microbatches}"
        )
    return (pp - 1) / (n_microbatches + pp - 1)


def bubble_multiplier(pp: int, n_microbatches: int) -> float:
    """Latency multiplier over the bubble-free ideal: ``(m + p - 1) / m``."""
    if pp < 1 or n_microbatches < 1:
        raise ValueError(
            f"need pp >= 1 and microbatches >= 1, got {pp}, {n_microbatches}"
        )
    return (n_microbatches + pp - 1) / n_microbatches


@dataclasses.dataclass(frozen=True)
class StageOp:
    """One forward or backward of one microbatch on one stage."""

    stage: int
    microbatch: int
    kind: str  # "fwd" or "bwd"
    start: float
    end: float


@dataclasses.dataclass
class PipelineSchedule:
    """An executed schedule with per-stage accounting."""

    ops: List[StageOp]
    pp: int

    @property
    def makespan(self) -> float:
        return max(op.end for op in self.ops)

    def busy_time(self, stage: int) -> float:
        return sum(op.end - op.start for op in self.ops if op.stage == stage)

    def idle_fraction(self, stage: int) -> float:
        return 1.0 - self.busy_time(stage) / self.makespan


def gpipe_schedule(
    pp: int,
    n_microbatches: int,
    fwd_time: float = 1.0,
    bwd_time: float = 2.0,
) -> PipelineSchedule:
    """Event-driven GPipe: all forwards flow down, all backwards flow up.

    Forward of microbatch ``i`` on stage ``s`` waits for its predecessor
    stage and for the stage itself to be free; backwards run in reverse
    stage order after the last forward.
    """
    if pp < 1 or n_microbatches < 1:
        raise ValueError("need at least one stage and one microbatch")
    stage_free = [0.0] * pp
    fwd_done: Dict[Tuple[int, int], float] = {}
    ops: List[StageOp] = []
    for mb in range(n_microbatches):
        for s in range(pp):
            ready = fwd_done[(mb, s - 1)] if s > 0 else 0.0
            start = max(ready, stage_free[s])
            end = start + fwd_time
            stage_free[s] = end
            fwd_done[(mb, s)] = end
            ops.append(StageOp(s, mb, "fwd", start, end))
    bwd_done: Dict[Tuple[int, int], float] = {}
    for mb in range(n_microbatches):
        for s in reversed(range(pp)):
            ready = bwd_done[(mb, s + 1)] if s < pp - 1 else 0.0
            start = max(ready, stage_free[s])
            end = start + bwd_time
            stage_free[s] = end
            bwd_done[(mb, s)] = end
            ops.append(StageOp(s, mb, "bwd", start, end))
    return PipelineSchedule(ops=ops, pp=pp)


def peak_in_flight_microbatches(
    schedule: PipelineSchedule, stage: int = 0
) -> int:
    """Max microbatches whose activations a stage holds simultaneously.

    GPipe keeps all ``m`` in flight on stage 0 (its memory weakness; 1F1B
    caps this at ``p``), which is why the memory model charges activations
    per microbatch.
    """
    fwd_end: Dict[int, float] = {}
    bwd_end: Dict[int, float] = {}
    for op in schedule.ops:
        if op.stage != stage:
            continue
        if op.kind == "fwd":
            fwd_end[op.microbatch] = op.end
        else:
            bwd_end[op.microbatch] = op.end
    peak = 0
    times = sorted(
        {t for t in list(fwd_end.values()) + list(bwd_end.values())}
    )
    for t in times:
        live = sum(
            1
            for mb in fwd_end
            if fwd_end[mb] <= t and bwd_end.get(mb, float("inf")) > t
        )
        peak = max(peak, live)
    return peak
