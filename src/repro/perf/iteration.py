"""End-to-end RLHF iteration latency under a placement (the d_cost model, §6).

The iteration is the 3-stage structure of Figure 1 plus the actor's
train<->generation transition.  Within one stage, colocated models (same
pool) execute sequentially and models on disjoint pools execute in parallel
— exactly the ``d_cost`` accounting of Algorithm 1 (sum within a colocated
set, max across sets, sum over stages).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.config import (
    BYTES_BF16,
    ClusterSpec,
    GenParallelConfig,
    ModelSpec,
    ParallelConfig,
    RlhfWorkload,
)
from repro.hybrid_engine.overhead import EngineKind
from repro.perf.compute import inference_latency, training_latency
from repro.perf.generation import generation_latency
from repro.perf.transition import transition_time, weight_sync_time
from repro.rlhf.core import AlgoType


@dataclasses.dataclass(frozen=True)
class ModelExecution:
    """How one model runs: its architecture, pool, and parallel strategy.

    ``cluster`` optionally overrides the job-wide cluster for this model's
    latency estimates — the hook behind heterogeneous-device mapping (§6:
    "Algorithm 1 can be readily extended ... by considering heterogeneous
    devices in simu and auto_parallel").
    """

    spec: ModelSpec
    pool: str
    parallel: ParallelConfig
    zero3: bool = False
    cluster: Optional[ClusterSpec] = None


@dataclasses.dataclass(frozen=True)
class GenerationPlan:
    """How and where the actor generates."""

    tp: int
    pp: int
    n_replicas: int
    pool: str
    #: Resharding engine on shared devices, or None when the generation
    #: parallelism equals training (NeMo-Aligner) or runs on separate
    #: devices (OpenRLHF).
    engine: Optional[EngineKind] = EngineKind.HYBRIDFLOW
    #: OpenRLHF: a second weight copy synchronised across machines.
    weight_sync: bool = False
    use_kv_cache: bool = True
    reserved_bytes: float = 0.0
    #: Fixed per-decode-step engine overhead (unoptimised generation loops).
    step_overhead: float = 0.0
    #: Optional cluster override for the generation pool (heterogeneity).
    cluster: Optional[ClusterSpec] = None


@dataclasses.dataclass(frozen=True)
class IterationBreakdown:
    """Latency decomposition of one RLHF iteration."""

    transition: float
    generation: float
    preparation: float
    training: float
    data_transfer: float

    @property
    def total(self) -> float:
        return (
            self.transition
            + self.generation
            + self.preparation
            + self.training
            + self.data_transfer
        )

    def throughput(self, workload: RlhfWorkload) -> float:
        """Tokens/sec as the paper defines it (§8.1)."""
        if self.total == float("inf"):
            return 0.0
        return workload.tokens_per_iteration / self.total


#: (prep-stage models, train-stage models, extra passes) per algorithm.
_STAGE_ROLES: Dict[AlgoType, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    AlgoType.PPO: (("critic", "reference", "reward"), ("actor", "critic")),
    AlgoType.REMAX: (("reference", "reward"), ("actor",)),
    AlgoType.SAFE_RLHF: (
        ("critic", "reference", "reward", "cost"),
        ("actor", "critic"),
    ),
    AlgoType.GRPO: (("reference", "reward"), ("actor",)),
}

#: Safe-RLHF trains the actor on RL data plus the auxiliary pretraining batch.
SAFE_RLHF_ACTOR_TRAIN_FACTOR = 1.5

#: Per-iteration serial overhead: dataloading, controller dispatch, optimizer
#: step launches, checkpoint/bookkeeping — independent of the cluster size,
#: this floor is what pushes strong-scaling efficiency below 100% (§8.2).
FRAMEWORK_OVERHEAD_BASE = 3.0
FRAMEWORK_OVERHEAD_PER_UPDATE = 0.5


def _stage_latency(
    per_model: Dict[str, Tuple[str, float]],
) -> float:
    """Sum latencies within each pool, take the max across pools."""
    by_pool: Dict[str, float] = {}
    for _model, (pool, latency) in per_model.items():
        by_pool[pool] = by_pool.get(pool, 0.0) + latency
    return max(by_pool.values()) if by_pool else 0.0


def estimate_iteration(
    algo: AlgoType,
    executions: Dict[str, ModelExecution],
    gen_plan: GenerationPlan,
    workload: RlhfWorkload,
    cluster: ClusterSpec,
) -> IterationBreakdown:
    """Latency of one RLHF iteration under a full system configuration.

    ``executions`` maps the algorithm's model roles (Figure 1) to their
    placement and parallelism; ``gen_plan`` describes the actor's generation
    configuration and resharding mechanism.
    """
    algo = AlgoType(algo)
    prep_roles, train_roles = _STAGE_ROLES[algo]
    missing = [
        r for r in set(prep_roles + train_roles) if r not in executions
    ]
    if missing:
        raise ValueError(f"{algo.value} needs executions for {missing}")
    actor = executions["actor"]

    # -- transition --------------------------------------------------------------
    transition = 0.0
    actor_cluster = actor.cluster or cluster
    gen_cluster = gen_plan.cluster or actor_cluster
    if gen_plan.weight_sync:
        gen_gpus = gen_plan.n_replicas * gen_plan.tp * gen_plan.pp
        transition = weight_sync_time(actor.spec, gen_cluster, gen_gpus)
    elif gen_plan.engine is not None:
        if actor.zero3:
            # ZeRO-3 shards parameters over all ranks: the transition gathers
            # across the whole DP world (the DS-Chat row of Table 2)
            train_cfg = ParallelConfig(pp=1, tp=1, dp=actor.parallel.world_size)
            gen_cfg = GenParallelConfig(pp=1, tp=1, micro_dp=1)
        else:
            train_cfg = actor.parallel
            gen_cfg = GenParallelConfig.derive(
                train_cfg, gen_plan.pp, gen_plan.tp
            )
        transition = transition_time(
            gen_plan.engine, actor.spec, actor_cluster, train_cfg, gen_cfg
        )

    # -- stage 1: generation --------------------------------------------------------
    n_gen_passes = 2 if algo is AlgoType.REMAX else 1
    gen_estimate = generation_latency(
        actor.spec,
        gen_cluster,
        gen_tp=gen_plan.tp,
        gen_pp=gen_plan.pp,
        n_replicas=gen_plan.n_replicas,
        workload=workload,
        use_kv_cache=gen_plan.use_kv_cache,
        reserved_bytes=gen_plan.reserved_bytes,
        n_generation_passes=n_gen_passes,
        step_overhead=gen_plan.step_overhead,
    )
    generation = gen_estimate.total

    # -- stage 2: preparation ---------------------------------------------------------
    prep: Dict[str, Tuple[str, float]] = {}
    for role in prep_roles:
        execution = executions[role]
        latency = inference_latency(
            execution.spec,
            execution.cluster or cluster,
            execution.parallel,
            workload,
            zero3=execution.zero3,
        )
        if role == "reward" and algo is AlgoType.REMAX:
            latency *= 2.0  # scores for sampled and greedy responses
        prep[role] = (execution.pool, latency)
    preparation = _stage_latency(prep)

    # -- stage 3: training ----------------------------------------------------------------
    train: Dict[str, Tuple[str, float]] = {}
    for role in train_roles:
        execution = executions[role]
        n_passes = float(workload.ppo_epochs)
        if role == "actor" and algo is AlgoType.SAFE_RLHF:
            n_passes *= SAFE_RLHF_ACTOR_TRAIN_FACTOR
        latency = training_latency(
            execution.spec,
            execution.cluster or cluster,
            execution.parallel,
            workload,
            zero3=execution.zero3,
            n_passes_over_batch=n_passes,
        )
        train[role] = (execution.pool, latency)
    training = _stage_latency(train)

    # -- inter-model data movement ------------------------------------------------------
    # sequences + per-token floats flow between models; tiny next to weights
    batch_tokens = workload.tokens_per_iteration
    edge_bytes = batch_tokens * (8 + 4 * BYTES_BF16)
    n_edges = len(prep_roles) + len(train_roles)
    data_transfer = n_edges * edge_bytes / cluster.inter_node_bandwidth
    data_transfer += (
        FRAMEWORK_OVERHEAD_BASE
        + FRAMEWORK_OVERHEAD_PER_UPDATE
        * workload.ppo_epochs
        * workload.ppo_updates_per_epoch
    )

    return IterationBreakdown(
        transition=transition,
        generation=generation,
        preparation=preparation,
        training=training,
        data_transfer=data_transfer,
    )
