"""Analytic model of the one-step-off (bounded-staleness) RLHF schedule.

The synchronous loop serializes every iteration: generation, scoring, and
the optimizer step form one chain, so the per-iteration latency is their
sum and the rollout engine idles while the trainer runs (and vice versa) —
the generation↔training bubble.  With a staleness window *W*, rollout *i*
only needs policy version ``max(0, i - W)``, so it can start as soon as the
rollout track is free and that version's optimizer step has finished; the
steady-state period collapses toward ``max(t_gen, t_score + t_update)``.

The recurrences mirror the two tracks of
:class:`repro.pipeline.AsyncPipelineDriver`:

* ``gen_end[i]   = max(gen_end[i-1], publish[i-W]) + t_gen[i]``
* ``train_end[t] = max(train_end[t-1], gen_end[t]) + t_score + t_update``

where ``publish[v]`` is the completion of the optimizer step producing
version *v* (0 for version 0).  ``W = 0`` reproduces the synchronous chain
exactly; larger windows additionally absorb generation-time jitter (one
slow rollout no longer stalls the trainer as long as the buffer holds
earlier batches).
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence


@dataclasses.dataclass(frozen=True)
class AsyncSchedule:
    """The modeled two-track schedule for one staleness window."""

    staleness_window: int
    gen_end: tuple
    train_end: tuple
    makespan: float
    #: Fraction of the makespan the rollout track spends idle.
    rollout_bubble_fraction: float
    #: Fraction of the makespan the training track spends idle.
    train_bubble_fraction: float

    @property
    def n_iterations(self) -> int:
        return len(self.train_end)


def async_schedule(
    gen_times: Sequence[float],
    score_time: float,
    update_time: float,
    staleness_window: int = 1,
) -> AsyncSchedule:
    """Schedule ``len(gen_times)`` iterations under a staleness window.

    Args:
        gen_times: Per-iteration generation latency (heterogeneous values
            model response-length jitter).
        score_time: Scoring chain latency per iteration (values, reference
            log-probs, rewards — whatever sits between rollout and update).
        update_time: Optimizer-step latency per iteration.
        staleness_window: ``0`` = synchronous; ``W`` lets rollout run up to
            ``W`` iterations ahead of the trainer.
    """
    if staleness_window < 0:
        raise ValueError(
            f"staleness_window must be >= 0, got {staleness_window}"
        )
    if score_time < 0 or update_time < 0 or any(t < 0 for t in gen_times):
        raise ValueError("stage times must be non-negative")
    n = len(gen_times)
    if n == 0:
        raise ValueError("need at least one iteration")
    # the two tracks feed each other (rollout i waits on the optimizer step
    # producing its version; train t waits on rollout t), so walk them in
    # the driver's order: fill the window, then take one optimizer step
    gen_end: List[float] = []
    train_end: List[float] = []
    next_gen = 0
    for t in range(n):
        horizon = min(t + staleness_window, n - 1)
        while next_gen <= horizon:
            i = next_gen
            need_version = max(0, i - staleness_window)
            published = (
                train_end[need_version - 1] if need_version >= 1 else 0.0
            )
            start = max(gen_end[-1] if gen_end else 0.0, published)
            gen_end.append(start + float(gen_times[i]))
            next_gen += 1
        start = max(train_end[-1] if train_end else 0.0, gen_end[t])
        train_end.append(start + float(score_time) + float(update_time))
    makespan = train_end[-1]
    gen_busy = float(sum(gen_times))
    train_busy = n * (float(score_time) + float(update_time))
    return AsyncSchedule(
        staleness_window=staleness_window,
        gen_end=tuple(gen_end),
        train_end=tuple(train_end),
        makespan=makespan,
        rollout_bubble_fraction=1.0 - gen_busy / makespan,
        train_bubble_fraction=1.0 - train_busy / makespan,
    )


def overlap_speedup(
    gen_times: Sequence[float],
    score_time: float,
    update_time: float,
    staleness_window: int = 1,
) -> float:
    """Synchronous makespan over the windowed makespan (>= 1)."""
    sync = async_schedule(gen_times, score_time, update_time, 0)
    overlapped = async_schedule(
        gen_times, score_time, update_time, staleness_window
    )
    return sync.makespan / overlapped.makespan


__all__ = ["AsyncSchedule", "async_schedule", "overlap_speedup"]
