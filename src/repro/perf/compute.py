"""Compute-bound latency models: training and single-pass inference (App. C).

Latency = arithmetic time on the model's GPUs (roofline against achievable
FLOP/s) + tensor-parallel activation traffic + pipeline bubble + data-parallel
gradient synchronisation (+ ZeRO-3 parameter gathering when selected).
"""

from __future__ import annotations

from repro.comm.cost import group_bandwidth
from repro.config import (
    BYTES_BF16,
    ClusterSpec,
    ModelSpec,
    ParallelConfig,
    RlhfWorkload,
)

#: All-reduce ops per transformer layer in a TP forward pass (Megatron: one
#: after attention, one after the MLP); backward doubles it.
TP_ALLREDUCE_PER_LAYER_FWD = 2

#: Tokens per GPU per pass at which matmuls reach half their peak
#: efficiency.  Scaling a fixed global batch over more GPUs shrinks local
#: batches and drops utilisation — the paper's stated reason strong-scaling
#: efficiency is 66.8% rather than 100% (§8.2).
SATURATION_TOKENS_PER_GPU = 1536


def batch_efficiency(tokens_per_gpu: float) -> float:
    """Fraction of achievable FLOP/s realised at this per-GPU batch size."""
    if tokens_per_gpu <= 0:
        return 0.0
    return tokens_per_gpu / (tokens_per_gpu + SATURATION_TOKENS_PER_GPU)


def _tp_ranks(cluster: ClusterSpec, tp: int) -> list:
    """Representative rank set for a TP group (consecutive device ranks)."""
    return list(range(min(tp, cluster.n_gpus)))


def _dp_ranks(cluster: ClusterSpec, parallel: ParallelConfig) -> list:
    """Representative rank set for a DP group (stride = MP size)."""
    stride = parallel.model_parallel_size
    return [min(i * stride, cluster.n_gpus - 1) for i in range(parallel.dp)]


def _tp_traffic_time(
    spec: ModelSpec,
    cluster: ClusterSpec,
    tp: int,
    tokens_per_replica: float,
    n_passes: int,
) -> float:
    """Activation all-reduce time for ``tokens`` flowing through TP layers."""
    if tp <= 1:
        return 0.0
    ranks = _tp_ranks(cluster, tp)
    bw = group_bandwidth(cluster, ranks)
    per_op_bytes = tokens_per_replica * spec.hidden_size * BYTES_BF16
    volume = 2.0 * (tp - 1) / tp * per_op_bytes  # ring all-reduce per op
    ops = TP_ALLREDUCE_PER_LAYER_FWD * spec.n_layers * n_passes
    return ops * (cluster.link_latency * 2 * (tp - 1) + volume / bw)


def training_latency(
    spec: ModelSpec,
    cluster: ClusterSpec,
    parallel: ParallelConfig,
    workload: RlhfWorkload,
    zero3: bool = False,
    n_passes_over_batch: float = 1.0,
) -> float:
    """Seconds to run one training phase over the global batch.

    ``n_passes_over_batch`` scales for PPO epochs > 1.  The paper's training
    stage covers the whole global batch once per epoch regardless of the
    minibatch count, so update count only affects optimizer overhead (small,
    folded into the efficiency factor).
    """
    n_gpus = parallel.world_size
    tokens = workload.tokens_per_iteration * n_passes_over_batch
    flops = tokens * spec.flops_per_token_train(workload.seq_length)
    n_updates = max(1, workload.ppo_updates_per_epoch)
    tokens_per_gpu_pass = workload.tokens_per_iteration / (n_gpus * n_updates)
    achievable = (
        cluster.gpu.peak_flops
        * cluster.gpu.flops_efficiency
        * batch_efficiency(tokens_per_gpu_pass)
    )
    compute = flops / (n_gpus * achievable)

    # pipeline bubble: (p-1)/m extra with m microbatches per DP rank
    if parallel.pp > 1:
        microbatches = max(
            parallel.pp, workload.global_batch_size // max(parallel.dp, 1)
        )
        compute *= 1.0 + (parallel.pp - 1) / microbatches

    tokens_per_replica = tokens / max(parallel.dp, 1)
    tp_time = _tp_traffic_time(
        spec, cluster, parallel.tp, tokens_per_replica, n_passes=3
    )

    # data-parallel gradient synchronisation (per optimizer pass over batch)
    dp_time = 0.0
    if parallel.dp > 1:
        grad_bytes = spec.n_params() * BYTES_BF16 / parallel.model_parallel_size
        ranks = _dp_ranks(cluster, parallel)
        bw = group_bandwidth(cluster, ranks)
        factor = 1.0 if zero3 else 2.0  # reduce-scatter vs all-reduce
        n_updates = max(1, workload.ppo_updates_per_epoch)
        dp_time = (
            factor * (parallel.dp - 1) / parallel.dp * grad_bytes / bw
        ) * n_updates
        if zero3:
            # ZeRO-3 re-gathers parameters for the forward and backward of
            # *every* minibatch update — the per-step traffic that makes
            # ZeRO-3 training lose to 3D parallelism across machines
            param_bytes = spec.n_params() * BYTES_BF16 / parallel.model_parallel_size
            dp_time += (
                2.0 * (parallel.dp - 1) / parallel.dp * param_bytes / bw
            ) * n_updates
        dp_time *= n_passes_over_batch

    # DP traffic overlaps with backward compute (bucketed all-reduce /
    # ZeRO prefetch); only the excess over half the compute time is exposed
    dp_exposed = max(0.0, dp_time - 0.5 * compute)
    return compute + tp_time + dp_exposed


def inference_latency(
    spec: ModelSpec,
    cluster: ClusterSpec,
    parallel: ParallelConfig,
    workload: RlhfWorkload,
    zero3: bool = False,
) -> float:
    """Seconds for one forward pass of the global batch (prep-stage scoring).

    ``zero3`` adds the parameter all-gather a ZeRO-sharded forward needs
    (DeepSpeed-Chat keeps even forward-only models ZeRO-3-sharded).
    """
    n_gpus = parallel.world_size
    tokens = workload.tokens_per_iteration
    flops = tokens * spec.flops_per_token_forward(workload.seq_length)
    achievable = (
        cluster.gpu.peak_flops
        * cluster.gpu.flops_efficiency
        * batch_efficiency(tokens / n_gpus)
    )
    compute = flops / (n_gpus * achievable)
    if parallel.pp > 1:
        microbatches = max(
            parallel.pp, workload.global_batch_size // max(parallel.dp, 1)
        )
        compute *= 1.0 + (parallel.pp - 1) / microbatches
    tokens_per_replica = tokens / max(parallel.dp, 1)
    tp_time = _tp_traffic_time(
        spec, cluster, parallel.tp, tokens_per_replica, n_passes=1
    )
    zero_time = 0.0
    if zero3 and parallel.dp > 1:
        param_bytes = spec.n_params() * BYTES_BF16 / parallel.model_parallel_size
        ranks = _dp_ranks(cluster, parallel)
        bw = group_bandwidth(cluster, ranks)
        gather = (parallel.dp - 1) / parallel.dp * param_bytes / bw
        zero_time = max(0.0, gather - 0.5 * compute)  # prefetch overlap
    return compute + tp_time + zero_time
