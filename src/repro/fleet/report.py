"""Fleet accounting: per-job recovery/goodput rows and fleet-wide fairness.

Everything is measured on the simulated clocks the rest of the repo uses:
per-job *useful* time is the simulated seconds that job's controller spent
on iterations whose work survived (lost work is subtracted on rollback),
and goodput is useful time over the job's wall time inside the fleet —
queue waits, repairs, and re-runs all erode it.  Fairness is Jain's index
over per-job goodput.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List


def jain_fairness(values: List[float]) -> float:
    """Jain's fairness index ``(Σx)² / (n·Σx²)`` — 1.0 means perfectly even.

    Defined for non-negative allocations; an empty or all-zero list counts
    as perfectly fair (nothing is being divided unevenly).
    """
    if not values:
        return 1.0
    if any(v < 0 for v in values):
        raise ValueError(f"fairness is defined over non-negative values: {values}")
    total = sum(values)
    squares = sum(v * v for v in values)
    if not squares:  # all-zero allocations: nothing divided unevenly
        return 1.0
    return (total * total) / (len(values) * squares)


@dataclasses.dataclass
class JobReport:
    """Final accounting of one tenant job."""

    name: str
    priority: int
    state: str  # "completed" | "failed" | "pending" | "running"
    dp: int  # DP width at the end (post any resizes)
    iterations: int
    preemptions: int
    resizes: int
    failures: int  # worker-loss events this job survived (or not)
    lost_iterations: int
    wait_ticks: int  # ticks spent schedulable-but-not-running
    downtime: float  # simulated repair seconds (reinit + restore)
    useful_time: float  # simulated seconds of surviving iteration work
    checkpoint_time: float  # simulated seconds writing checkpoints
    total_time: float  # submission -> completion on the fleet clock
    detail: str = ""  # failure reason, if any

    @property
    def mttr(self) -> float:
        """Mean simulated time to repair one of this job's failures."""
        if not self.failures:
            return 0.0
        return self.downtime / self.failures

    @property
    def goodput(self) -> float:
        """Fraction of the job's fleet wall time spent on surviving work."""
        if self.total_time <= 0:
            return 0.0
        return self.useful_time / self.total_time

    def to_dict(self) -> Dict[str, Any]:
        d = dataclasses.asdict(self)
        d["mttr"] = self.mttr
        d["goodput"] = self.goodput
        return d


@dataclasses.dataclass
class FleetReport:
    """What one fleet run did, job by job."""

    jobs: List[JobReport]
    makespan: float  # fleet clock at the end of the run
    ticks: int
    devices_killed: int
    #: ``AnalysisReport`` finding counts by family (empty = clean) when the
    #: scheduler ran the DF/TA/SH/RC check gate over each completed job.
    analysis_findings: Dict[str, int] = dataclasses.field(default_factory=dict)
    checks_run: bool = False

    @property
    def all_completed(self) -> bool:
        return bool(self.jobs) and all(j.state == "completed" for j in self.jobs)

    @property
    def preemptions(self) -> int:
        return sum(j.preemptions for j in self.jobs)

    @property
    def resizes(self) -> int:
        return sum(j.resizes for j in self.jobs)

    @property
    def failures(self) -> int:
        return sum(j.failures for j in self.jobs)

    @property
    def fairness(self) -> float:
        """Jain's index over per-job goodput (completed jobs only)."""
        return jain_fairness(
            [j.goodput for j in self.jobs if j.state == "completed"]
        )

    @property
    def mttr(self) -> float:
        """Fleet-wide mean repair time across every job failure."""
        failures = self.failures
        if not failures:
            return 0.0
        return sum(j.downtime for j in self.jobs) / failures

    def job(self, name: str) -> JobReport:
        for j in self.jobs:
            if j.name == name:
                return j
        raise KeyError(f"no job named {name!r} in this report")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "jobs": [j.to_dict() for j in self.jobs],
            "makespan": self.makespan,
            "ticks": self.ticks,
            "devices_killed": self.devices_killed,
            "preemptions": self.preemptions,
            "resizes": self.resizes,
            "failures": self.failures,
            "mttr": self.mttr,
            "fairness": self.fairness,
            "all_completed": self.all_completed,
            "analysis_findings": dict(self.analysis_findings),
            "checks_run": self.checks_run,
        }

    def summary_lines(self) -> List[str]:
        lines = [
            f"fleet: {len(self.jobs)} job(s) over {self.ticks} tick(s), "
            f"makespan {self.makespan:.2f}s, {self.devices_killed} device(s) "
            f"killed, {self.preemptions} preemption(s), "
            f"{self.resizes} resize(s)"
        ]
        for j in sorted(self.jobs, key=lambda j: j.name):
            extras = []
            if j.failures:
                extras.append(f"{j.failures} failure(s), MTTR {j.mttr:.2f}s")
            if j.preemptions:
                extras.append(f"preempted x{j.preemptions}")
            if j.resizes:
                extras.append(f"resized x{j.resizes} (dp={j.dp})")
            if j.detail:
                extras.append(j.detail)
            suffix = f" [{'; '.join(extras)}]" if extras else ""
            lines.append(
                f"  {j.name}: {j.state}, {j.iterations} iter(s), "
                f"goodput {j.goodput:.3f}{suffix}"
            )
        lines.append(f"  fairness (Jain over goodput): {self.fairness:.3f}")
        if self.checks_run:
            if self.analysis_findings:
                counts = ", ".join(
                    f"{fam}={n}" for fam, n in sorted(self.analysis_findings.items())
                )
                lines.append(f"  analysis gate: FINDINGS {counts}")
            else:
                lines.append("  analysis gate: clean (DF/TA/SH/RC)")
        return lines
