"""Multi-tenant gang scheduler over one shared :class:`SimCluster`.

One :class:`FleetScheduler` drives several tenant RLHF jobs — each a full
:class:`~repro.runtime.builder.RlhfSystem` with its own single controller,
clock, tracer, and metrics — against one shared cluster, in discrete
scheduler *ticks*:

1. **Faults** — kill events from a fleet-level :class:`FaultPlan` (keyed by
   tick, applied by :class:`~repro.faults.ClusterFaultDriver`) mutate the
   shared cluster; every job carries a (possibly empty-plan)
   :class:`FaultInjector`, so each tenant *detects* the loss on its next
   remote call, exactly like single-job fault handling.
2. **Admission** — schedulable jobs are ranked by effective priority
   (``priority + aging * wait_ticks``) and gang-admitted at the widest
   data-parallel width that fits free capacity; when nothing fits, a
   lower-priority running victim is checkpointed and evicted
   (checkpoint-and-preempt) and the waiter takes its devices.
3. **Step** — every running job executes one RLHF iteration on disjoint
   devices; the fleet clock advances by the *maximum* per-job delta (the
   jobs run concurrently in simulated time).  A job whose step detects a
   worker loss is torn down, elastically resized onto the survivors
   (narrower DP if needed), restored from its atomic checkpoint, and
   resumes bit-exact; if even its narrowest width no longer fits, it is
   requeued — degraded, not failed.

Completion optionally runs the repo's analysis gate (dataflow DF, trace
audit TA, sharding SH, race RC) over each finished job's trace.
"""

from __future__ import annotations

import pathlib
import shutil
from typing import Any, Dict, List, Optional

from repro.config import ClusterSpec
from repro.cluster.cluster import SimCluster
from repro.faults.errors import WorkerLostError
from repro.faults.injector import ClusterFaultDriver, FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.policy import RetryPolicy, SimClock
from repro.fleet.job import JobSpec
from repro.fleet.report import FleetReport, JobReport
from repro.observability.metrics import MetricsRegistry
from repro.runtime.builder import RlhfSystem
from repro.runtime.recovery import (
    RecoveryCostModel,
    _checkpoint_nbytes,
    restore_system,
)


class JobState:
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"


class _JobRuntime:
    """Mutable scheduler-side state of one tenant job."""

    def __init__(self, spec: JobSpec, checkpoint_dir: pathlib.Path) -> None:
        self.spec = spec
        self.checkpoint_dir = checkpoint_dir
        self.state = JobState.PENDING
        self.system: Optional[RlhfSystem] = None
        self.dp: Optional[int] = None
        self.it = 0
        self.batches = None
        self.history: List[Dict[str, Any]] = []
        self.iter_durations: List[float] = []
        #: One injector per job for the lifetime of the fleet run: the
        #: dispatch gate only does dead-device detection when an injector is
        #: attached, so even fault-free tenants carry an empty-plan one.
        self.injector = FaultInjector(FaultPlan())
        #: Tracer/metrics captured at first build and re-attached on every
        #: rebuild, so one observability record spans the job's whole life.
        self.obs: Dict[str, Any] = {}
        self.has_checkpoint = False
        self.requeued_by_fault = False
        self.pending_snapshot: Optional[str] = None
        self.preemptions = 0
        self.resizes = 0
        self.failures = 0
        self.lost_iterations = 0
        self.lost_time = 0.0
        self.downtime = 0.0
        self.useful_time = 0.0
        self.checkpoint_time = 0.0
        self.wait_ticks = 0
        self.submitted_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self.detail = ""
        #: ``(resumed_iteration, dp, snapshot_dir)`` per fault recovery when
        #: the scheduler keeps recovery checkpoints (bit-exactness audits).
        self.recovery_points: List[Dict[str, Any]] = []

    def effective_priority(self, aging: float) -> float:
        return self.spec.priority + aging * self.wait_ticks

    @property
    def gpus_held(self) -> int:
        if self.state != JobState.RUNNING or self.dp is None:
            return 0
        return self.spec.gpus_at(self.dp)


class FleetScheduler:
    """Gang-schedules tenant RLHF jobs onto one shared simulated cluster.

    Args:
        cluster_spec: Shape of the shared cluster.
        jobs: Tenant job specs (unique names).
        checkpoint_root: Directory holding one checkpoint dir per job.
        fault_plan: Fleet-level kill events, keyed by scheduler tick
            (see :class:`~repro.faults.ClusterFaultDriver`).
        aging: Effective-priority gain per tick a schedulable job waits —
            the anti-starvation knob; 0 disables aging.
        preemption: Allow checkpoint-and-evict of strictly lower-priority
            running jobs when a waiter cannot be admitted otherwise.
        retry_policy: Optional override applied to every job's controller.
        run_checks: Run the DF/TA/SH/RC analysis gate on each completed
            job's system and trace; findings land in the report.
        keep_recovery_checkpoints: Snapshot the checkpoint a fault recovery
            restored from (the job overwrites its live checkpoint as it
            advances); tests replay these to prove bit-exact resumes.
        max_failures_per_job: Fault recoveries a job may consume before it
            is declared failed.
        max_ticks: Hard stop against livelock.
    """

    def __init__(
        self,
        cluster_spec: ClusterSpec,
        jobs: List[JobSpec],
        checkpoint_root: str,
        fault_plan: Optional[FaultPlan] = None,
        aging: float = 0.25,
        preemption: bool = True,
        cost_model: Optional[RecoveryCostModel] = None,
        retry_policy: Optional[RetryPolicy] = None,
        run_checks: bool = False,
        keep_recovery_checkpoints: bool = False,
        max_failures_per_job: int = 4,
        max_ticks: int = 10_000,
    ) -> None:
        names = [spec.name for spec in jobs]
        if len(set(names)) != len(names):
            raise ValueError(f"job names must be unique, got {names}")
        if not jobs:
            raise ValueError("a fleet needs at least one job")
        if aging < 0:
            raise ValueError(f"aging must be >= 0, got {aging}")
        self.cluster_spec = cluster_spec
        self.cluster = SimCluster(cluster_spec)
        self.clock = SimClock()
        self.metrics = MetricsRegistry()
        self.cost = cost_model or RecoveryCostModel()
        self.retry_policy = retry_policy
        self.aging = aging
        self.preemption = preemption
        self.run_checks = run_checks
        self.keep_recovery_checkpoints = keep_recovery_checkpoints
        self.max_failures_per_job = max_failures_per_job
        self.max_ticks = max_ticks
        self.driver = (
            ClusterFaultDriver(fault_plan)
            if fault_plan is not None and len(fault_plan)
            else None
        )
        root = pathlib.Path(checkpoint_root)
        self.jobs = [_JobRuntime(spec, root / spec.name) for spec in jobs]
        self.devices_killed = 0
        self.ticks_run = 0
        self.analysis = None  # AnalysisReport once run_checks fires

    # -- capacity ----------------------------------------------------------------------

    def _free_gpus(self) -> int:
        return len(self.cluster.allocatable_ranks())

    def _choose_dp(self, spec: JobSpec, budget: int) -> Optional[int]:
        for dp in spec.candidate_dps():
            if spec.gpus_at(dp) <= budget:
                return dp
        return None

    # -- job lifecycle -----------------------------------------------------------------

    def _wire(self, job: _JobRuntime, system: RlhfSystem) -> None:
        controller = system.controller
        if self.retry_policy is not None:
            controller.retry_policy = self.retry_policy
        controller.attach_fault_injector(job.injector)
        if not job.obs:
            job.obs = {"tracer": controller.tracer, "metrics": controller.metrics}
        else:
            controller.attach_observability(job.obs["tracer"], job.obs["metrics"])
        job.system = system

    def _stream_at(self, job: _JobRuntime, iteration: int):
        batches = job.spec.dataset().iter_batches(
            job.spec.batch_size, epochs=10**6
        )
        for _ in range(iteration):
            next(batches)
        return batches

    def _save(self, job: _JobRuntime, iteration: int) -> None:
        controller = job.system.controller
        with controller.tracer.span(
            "checkpoint.save",
            category="checkpoint",
            job=job.spec.name,
            iteration=iteration,
        ) as span:
            controller.save_checkpoint(
                job.checkpoint_dir,
                extra={
                    "iteration": iteration,
                    "trainer": job.system.trainer.state_dict(),
                    "dp": job.dp,
                },
            )
            save_time = self.cost.save_time(_checkpoint_nbytes(job.checkpoint_dir))
            controller.clock.advance(save_time)
            span.attrs["save_time"] = save_time
        job.checkpoint_time += save_time
        job.has_checkpoint = True

    def _restore(self, job: _JobRuntime, as_repair: bool) -> int:
        """Restore the job's checkpoint into its (possibly resized) system.

        Rolls the runtime's iteration cursor back to the checkpointed one,
        charging lost work; repair costs (reinit + restore) accrue to the
        job's downtime only for fault-driven restores (``as_repair``) —
        preemption restores are scheduling overhead, not MTTR.
        """
        controller = job.system.controller
        tracer = job.obs["tracer"]
        with tracer.span(
            "recovery.rebuild", category="recovery", job=job.spec.name
        ):
            controller.clock.advance(self.cost.reinit_time)
        with tracer.span(
            "recovery.restore", category="recovery", job=job.spec.name
        ) as span:
            resumed, restore_time = restore_system(
                job.system,
                job.checkpoint_dir,
                self.cost,
                allow_resize=True,
            )
            span.attrs["restore_time"] = restore_time
        if as_repair:
            job.downtime += self.cost.reinit_time + restore_time
        lost = job.it - resumed
        if lost > 0:
            job.lost_iterations += lost
            job.lost_time += sum(job.iter_durations[resumed:])
            job.obs["metrics"].counter(
                "repro_lost_iterations_total",
                "Completed iterations whose work was lost to failures",
            ).inc(lost)
        job.history = job.history[:resumed]
        job.iter_durations = job.iter_durations[:resumed]
        job.it = resumed
        return resumed

    def _admit_one(
        self, job: _JobRuntime, tick: int, base_time: Optional[float] = None
    ) -> bool:
        """Build (or rebuild) a pending job at the widest width that fits."""
        dp = self._choose_dp(job.spec, self._free_gpus())
        if dp is None:
            return False
        resized = job.dp is not None and dp != job.dp
        self._wire(job, job.spec.build(cluster=self.cluster, dp=dp))
        controller = job.system.controller
        # A fresh controller clock starts at 0; line it up with the fleet
        # (or with the fault-detection time a recovery hands in) before any
        # spans open on it.
        controller.clock.advance(max(self.clock.now, base_time or 0.0))
        if job.submitted_at is None:
            job.submitted_at = self.clock.now
        tracer = job.obs["tracer"]
        with tracer.span(
            "fleet.admit",
            category="fleet",
            job=job.spec.name,
            tick=tick,
            dp=dp,
            resized=resized,
        ):
            if job.has_checkpoint:
                self._restore(job, as_repair=job.requeued_by_fault)
                if job.requeued_by_fault:
                    job.recovery_points.append(
                        {
                            "resumed_iteration": job.it,
                            "dp": dp,
                            "snapshot": job.pending_snapshot,
                            "tick": tick,
                        }
                    )
                    job.pending_snapshot = None
            else:
                # iteration-0 checkpoint: the recovery target before the
                # first periodic save exists
                self._save(job, 0)
        if resized:
            job.resizes += 1
            self.metrics.counter(
                "repro_fleet_resizes_total",
                "Elastic DP resizes across the fleet",
                job=job.spec.name,
            ).inc()
        job.dp = dp
        job.state = JobState.RUNNING
        job.requeued_by_fault = False
        job.batches = self._stream_at(job, job.it)
        return True

    def _preempt(self, victim: _JobRuntime, tick: int) -> None:
        """Checkpoint-and-evict: the victim requeues with its progress saved."""
        tracer = victim.obs["tracer"]
        with tracer.span(
            "fleet.preempt", category="fleet", job=victim.spec.name, tick=tick
        ):
            self._save(victim, victim.it)
            victim.system.controller.release_pools()
        victim.state = JobState.PENDING
        victim.preemptions += 1
        self.metrics.counter(
            "repro_fleet_preemptions_total",
            "Checkpoint-and-evict preemptions across the fleet",
            job=victim.spec.name,
        ).inc()

    def _preempt_for(self, waiter: _JobRuntime, tick: int) -> bool:
        """Evict strictly lower-priority victims until ``waiter`` fits."""
        need = waiter.spec.min_gpus
        victims = [
            j
            for j in self.jobs
            if j.state == JobState.RUNNING
            and j.spec.priority < waiter.spec.priority
        ]
        if self._free_gpus() + sum(v.gpus_held for v in victims) < need:
            return False
        # weakest (lowest effective priority) first; aging protects a
        # long-waiting victim from being evicted over and over
        victims.sort(key=lambda v: (v.effective_priority(self.aging), v.spec.name))
        for victim in victims:
            if self._free_gpus() >= need:
                break
            self._preempt(victim, tick)
        return self._free_gpus() >= need

    def _admit(self, tick: int) -> bool:
        eligible = [
            j
            for j in self.jobs
            if j.state == JobState.PENDING and j.spec.arrival_tick <= tick
        ]
        eligible.sort(
            key=lambda j: (
                -j.effective_priority(self.aging),
                j.spec.arrival_tick,
                j.spec.name,
            )
        )
        admitted = False
        for job in eligible:
            if self._admit_one(job, tick):
                admitted = True
                continue
            if self.preemption and self._preempt_for(job, tick):
                if self._admit_one(job, tick):
                    admitted = True
        return admitted

    def _snapshot_recovery_point(self, job: _JobRuntime) -> Optional[str]:
        if not self.keep_recovery_checkpoints:
            return None
        dest = job.checkpoint_dir.parent / (
            f".{job.checkpoint_dir.name}.recovery{job.failures}"
        )
        if dest.exists():
            shutil.rmtree(dest)
        shutil.copytree(job.checkpoint_dir, dest)
        return str(dest)

    def _recover(self, job: _JobRuntime, err: WorkerLostError, tick: int) -> float:
        """Fault-driven rebalance of one job; returns its clock delta."""
        t0 = self.clock.now
        controller = job.system.controller
        detected = controller.clock.now
        job.failures += 1
        tracer = job.obs["tracer"]
        span = tracer.begin(
            f"fleet.recover[{job.failures - 1}]",
            category="recovery",
            job=job.spec.name,
            pool=err.pool,
            ranks=tuple(err.dead_ranks),
            cause=err.cause or "worker lost",
            failed_iteration=job.it,
        )
        with tracer.span("recovery.teardown", category="recovery"):
            controller.release_pools()
        self.metrics.counter(
            "repro_fleet_job_failures_total",
            "Worker-loss events detected by fleet jobs",
            job=job.spec.name,
        ).inc()
        if job.failures > self.max_failures_per_job:
            job.state = JobState.FAILED
            job.detail = (
                f"gave up after {job.failures} worker-loss events "
                f"(max {self.max_failures_per_job})"
            )
            job.system = None
            tracer.end(span, outcome="failed")
            return detected - t0
        job.pending_snapshot = self._snapshot_recovery_point(job)
        job.requeued_by_fault = True
        job.state = JobState.PENDING
        readmitted = self._admit_one(job, tick, base_time=detected)
        if readmitted:
            tracer.end(span, outcome="resumed", resumed_iteration=job.it, dp=job.dp)
            return job.system.controller.clock.now - t0
        # graceful degradation: not even min_dp fits the survivors right
        # now — stay queued (with aging) until capacity or a preemption
        # frees devices.
        job.system = None
        tracer.end(span, outcome="requeued")
        return detected - t0

    def _complete(self, job: _JobRuntime) -> None:
        if self.run_checks:
            self._check(job)
        job.completed_at = job.system.controller.clock.now
        job.system.controller.release_pools()
        job.state = JobState.COMPLETED

    def _check(self, job: _JobRuntime) -> None:
        """Run the repo's DF/TA/SH/RC analysis gate over one finished job."""
        from repro.analysis import (
            DataflowChecker,
            RaceDetector,
            ShardingVerifier,
            TraceAuditor,
        )

        if self.analysis is None:
            from repro.analysis import AnalysisReport

            self.analysis = AnalysisReport(name="fleet")
        system = job.system
        self.analysis.merge(DataflowChecker().check_system(system))
        self.analysis.merge(TraceAuditor().audit_system(system))
        self.analysis.merge(RaceDetector().detect_system(system))
        verifier = ShardingVerifier()
        actor = system.groups["actor"]
        sh = verifier.verify_topology(actor.train_topology)
        if actor.gen_topology is not None:
            verifier.verify_transition(actor.gen_topology, report=sh)
        self.analysis.merge(sh)

    def _step_job(self, job: _JobRuntime, tick: int) -> float:
        """One RLHF iteration for one running job; returns its clock delta."""
        controller = job.system.controller
        # Catch the job's clock up to the fleet: time that passed while
        # other tenants ran (or while this job waited in queue) is idle
        # time, not work.
        if controller.clock.now < self.clock.now:
            controller.clock.advance(self.clock.now - controller.clock.now)
        t0 = controller.clock.now
        prompts = next(job.batches)
        try:
            step_metrics = job.system.trainer.run_step(prompts)
        except WorkerLostError as err:
            return self._recover(job, err, tick)
        dt = controller.clock.now - t0
        job.history.append(step_metrics)
        job.iter_durations.append(dt)
        job.useful_time += dt
        job.it += 1
        if job.it >= job.spec.n_iterations:
            self._complete(job)
        elif job.it % job.spec.checkpoint_every == 0:
            self._save(job, job.it)
        return job.system.controller.clock.now - t0 if job.system else dt

    # -- the tick loop -----------------------------------------------------------------

    def _unfinished(self) -> List[_JobRuntime]:
        return [
            j
            for j in self.jobs
            if j.state in (JobState.PENDING, JobState.RUNNING)
        ]

    def run(self) -> FleetReport:
        tick = 0
        while self._unfinished() and tick < self.max_ticks:
            self.ticks_run = tick + 1
            if self.driver is not None:
                died = self.driver.apply_due(
                    self.cluster, tick, at_time=self.clock.now
                )
                if died:
                    self.devices_killed += len(died)
                    self.metrics.counter(
                        "repro_fleet_devices_killed_total",
                        "Devices killed by the fleet fault driver",
                    ).inc(len(died))
            progressed = self._admit(tick)
            deltas = [
                self._step_job(job, tick)
                for job in list(self.jobs)
                if job.state == JobState.RUNNING
            ]
            if deltas:
                self.clock.advance(max(deltas))
                progressed = True
            waiting = [
                j
                for j in self.jobs
                if j.state == JobState.PENDING and j.spec.arrival_tick <= tick
            ]
            for job in waiting:
                job.wait_ticks += 1
            future_arrivals = any(
                j.spec.arrival_tick > tick
                for j in self.jobs
                if j.state == JobState.PENDING
            )
            faults_pending = self.driver is not None and self.driver.pending_events
            if not progressed and not future_arrivals and not faults_pending:
                # nothing ran, nothing was admitted, nothing will change:
                # the waiters can never fit (e.g. demand exceeds the alive
                # cluster at min_dp) — fail them rather than spin.
                for job in waiting:
                    job.state = JobState.FAILED
                    job.detail = (
                        f"unschedulable: needs {job.spec.min_gpus} GPU(s) at "
                        f"dp={job.spec.candidate_dps()[-1]}, cluster has "
                        f"{self._free_gpus()} allocatable"
                    )
            tick += 1
        for job in self._unfinished():
            if not job.detail:
                job.detail = f"still {job.state} when the tick budget ran out"
            job.state = JobState.FAILED
        return self.report()

    # -- reporting ---------------------------------------------------------------------

    def report(self) -> FleetReport:
        rows = []
        for job in self.jobs:
            if job.submitted_at is None:
                total = 0.0
            elif job.completed_at is not None:
                total = job.completed_at - job.submitted_at
            else:
                total = self.clock.now - job.submitted_at
            rows.append(
                JobReport(
                    name=job.spec.name,
                    priority=job.spec.priority,
                    state=job.state,
                    dp=job.dp or 0,
                    iterations=job.it,
                    preemptions=job.preemptions,
                    resizes=job.resizes,
                    failures=job.failures,
                    lost_iterations=job.lost_iterations,
                    wait_ticks=job.wait_ticks,
                    downtime=job.downtime,
                    useful_time=job.useful_time,
                    checkpoint_time=job.checkpoint_time,
                    total_time=total,
                    detail=job.detail,
                )
            )
        findings: Dict[str, int] = {}
        if self.analysis is not None:
            findings = dict(self.analysis.family_counts())
        return FleetReport(
            jobs=rows,
            makespan=self.clock.now,
            ticks=self.ticks_run,
            devices_killed=self.devices_killed,
            analysis_findings=findings,
            checks_run=self.run_checks,
        )
