"""Multi-tenant fleet scheduling over one shared simulated cluster.

HybridFlow maps one RLHF dataflow onto one cluster; this package layers the
ROADMAP's production story on top: several concurrent jobs (each a full
single-controller :class:`~repro.runtime.builder.RlhfSystem`) gang-scheduled
onto one :class:`~repro.cluster.SimCluster`, surviving device/machine/rack
loss *across* tenants.

* :class:`JobSpec` — one tenant job: priority, iteration budget, and an
  elastic DP range, plus a deterministic build at any admissible width.
* :class:`FleetScheduler` — tick-driven gang scheduler: priority/aging
  admission, checkpoint-and-evict preemption, and fault-driven rebalancing
  (elastic resize onto survivors + bit-exact checkpoint resume).
* :class:`FleetReport` / :class:`JobReport` — per-job MTTR, goodput, lost
  work, preemption/resize counts, and Jain-fairness across the fleet.
"""

from repro.fleet.job import JobSpec
from repro.fleet.report import FleetReport, JobReport, jain_fairness
from repro.fleet.scheduler import FleetScheduler, JobState

__all__ = [
    "FleetReport",
    "FleetScheduler",
    "JobReport",
    "JobSpec",
    "JobState",
    "jain_fairness",
]
