"""Tenant job description: what one RLHF job in the fleet looks like.

A :class:`JobSpec` is the scheduler-facing contract of a job: its priority,
its iteration budget, its *elastic range* of data-parallel widths, and how
to build a fresh :class:`~repro.runtime.builder.RlhfSystem` for it at any
admissible width.  The build is deterministic in (spec, width), which is
what makes checkpoint/evict/resize/resume bit-exact.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.config import ClusterSpec, GenParallelConfig, ParallelConfig
from repro.data.dataset import PromptDataset
from repro.mapping.elastic import candidate_dps as _candidate_dps
from repro.models.tinylm import TinyLMConfig
from repro.rlhf.core import AlgoType
from repro.data.dataset import SyntheticPreferenceTask
from repro.rlhf.trainers import TrainerConfig
from repro.runtime.builder import RlhfSystem, build_rlhf_system
from repro.runtime.placement import ModelAssignment, PlacementPlan

#: Algorithms whose model set (actor/critic/reference + function reward) the
#: default job shape can build; SAFE_RLHF needs a cost model pool.
SUPPORTED_ALGOS = (AlgoType.PPO, AlgoType.REMAX, AlgoType.GRPO)


@dataclasses.dataclass
class JobSpec:
    """One tenant RLHF job submitted to the fleet.

    Attributes:
        name: Unique job name (also its checkpoint subdirectory).
        priority: Larger = more important; preemption only ever evicts a
            strictly lower-priority victim.
        n_iterations: PPO iterations to run to completion.
        batch_size: Global batch per iteration; every admissible DP width
            must divide it (asserted at construction).
        checkpoint_every: Save an atomic checkpoint after every N completed
            iterations.
        tp: Tensor-parallel width (fixed — only DP is elastic).
        preferred_dp: DP width the job wants when capacity allows.
        min_dp: Narrowest DP width the job accepts when degraded.
        arrival_tick: Fleet tick at which the job becomes schedulable.
        seed: Seed for model init, worker RNG streams, and the trainer.
        algo: RLHF algorithm variant (see :data:`SUPPORTED_ALGOS`).
        model_config: Model architecture; defaults to the tiny functional
            LM every integration test uses.
    """

    name: str
    priority: int = 0
    n_iterations: int = 4
    batch_size: int = 8
    checkpoint_every: int = 1
    tp: int = 2
    preferred_dp: int = 1
    min_dp: int = 1
    arrival_tick: int = 0
    seed: int = 7
    lr: float = 5e-3
    kl_coef: float = 0.01
    max_new_tokens: int = 6
    target_token: int = 7
    dataset_seed: int = 1
    n_prompts: int = 128
    prompt_length: int = 4
    algo: AlgoType = AlgoType.PPO
    model_config: Optional[TinyLMConfig] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a job needs a non-empty name")
        if self.n_iterations < 1:
            raise ValueError(f"n_iterations must be >= 1, got {self.n_iterations}")
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.min_dp < 1 or self.preferred_dp < self.min_dp:
            raise ValueError(
                f"need 1 <= min_dp <= preferred_dp, got "
                f"{self.min_dp}..{self.preferred_dp}"
            )
        self.algo = AlgoType(self.algo)
        if self.algo not in SUPPORTED_ALGOS:
            raise ValueError(
                f"fleet jobs support {[a.value for a in SUPPORTED_ALGOS]}, "
                f"got {self.algo.value}"
            )
        if self.model_config is None:
            self.model_config = TinyLMConfig(
                n_layers=2,
                hidden_size=32,
                n_heads=4,
                ffn_hidden_size=48,
                vocab_size=16,
                max_seq_len=32,
            )
        if not self.candidate_dps():
            raise ValueError(
                f"job {self.name!r} has no admissible DP width: none of "
                f"{self.min_dp}..{self.preferred_dp} divides "
                f"batch_size={self.batch_size}"
            )

    # -- elastic geometry --------------------------------------------------------------

    def candidate_dps(self) -> List[int]:
        """Admissible DP widths, widest (most preferred) first."""
        return _candidate_dps(
            self.preferred_dp, self.min_dp, batch_size=self.batch_size
        )

    def gpus_at(self, dp: int) -> int:
        """GPU demand at width ``dp``: the model pool plus one reward GPU."""
        return self.tp * dp + 1

    @property
    def min_gpus(self) -> int:
        return self.gpus_at(self.candidate_dps()[-1])

    # -- construction ------------------------------------------------------------------

    def plan_at(self, dp: int) -> PlacementPlan:
        """Colocated placement of the job's models at DP width ``dp``."""
        par = ParallelConfig(pp=1, tp=self.tp, dp=dp)
        roles = {"actor", "critic", "reference"}
        if self.algo in (AlgoType.REMAX, AlgoType.GRPO):
            roles = {"actor", "reference"}
        assignments = {
            role: ModelAssignment(
                "main",
                par,
                GenParallelConfig.derive(par, 1, 1) if role == "actor" else None,
            )
            for role in roles
        }
        assignments["reward"] = ModelAssignment("r", ParallelConfig(1, 1, 1))
        return PlacementPlan(
            pools={"main": self.tp * dp, "r": 1}, assignments=assignments
        )

    def dataset(self) -> PromptDataset:
        """A fresh, deterministic prompt stream (same bytes every call)."""
        return PromptDataset(
            n_prompts=self.n_prompts,
            prompt_length=self.prompt_length,
            vocab_size=self.model_config.vocab_size,
            seed=self.dataset_seed,
        )

    def build(
        self,
        cluster=None,
        dp: Optional[int] = None,
        cluster_spec: Optional[ClusterSpec] = None,
    ) -> RlhfSystem:
        """Build this job's system at width ``dp`` (default: preferred).

        Pass the fleet's shared ``cluster`` to allocate out of it, or a
        ``cluster_spec`` to materialise a private cluster (reference runs in
        tests).  Deterministic in (spec, dp): two builds at the same width
        start bit-identical.
        """
        dp = self.preferred_dp if dp is None else dp
        if dp not in self.candidate_dps():
            raise ValueError(
                f"job {self.name!r} cannot run at dp={dp}; admissible "
                f"widths are {self.candidate_dps()}"
            )
        task = SyntheticPreferenceTask(
            vocab_size=self.model_config.vocab_size,
            target_token=self.target_token,
        )
        return build_rlhf_system(
            self.algo,
            self.plan_at(dp),
            self.model_config,
            cluster_spec=cluster_spec,
            trainer_config=TrainerConfig(kl_coef=self.kl_coef, seed=self.seed),
            reward_fn=task.reward,
            max_new_tokens=self.max_new_tokens,
            lr=self.lr,
            seed=self.seed,
            cluster=cluster,
        )
