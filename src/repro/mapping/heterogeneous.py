"""Heterogeneous-device mapping: the extension §6 sketches, implemented.

"Though we assume N homogeneous GPUs when running the auto mapping
algorithm, Algorithm 1 can be readily extended for optimizing model mapping
over heterogeneous devices, by considering heterogeneous devices in simu and
auto_parallel modules."

The cluster is modelled as *zones* of homogeneous machines (e.g. a rack of
A100s plus a rack of H800s).  A colocated model set is placed inside a
single zone (collectives spanning device generations are impractical), so
the search enumerates, per placement, which zone hosts each set and how many
of the zone's GPUs it takes; each model's parallelism is then chosen by
Algorithm 2 against *its zone's* device characteristics, and candidates are
scored with the per-model-cluster iteration estimate.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Tuple

from repro.config import ClusterSpec, ModelSpec, RlhfWorkload
from repro.hybrid_engine.overhead import EngineKind
from repro.mapping.auto_parallel import ModelRole, StrategyChoice, auto_parallel
from repro.mapping.device_mapping import (
    _ROLE_OF,
    IterationBreakdown,
    get_min_alloc,
    persistent_bytes,
)
from repro.mapping.placement_enum import allowed_allocations, set_partitions
from repro.perf.iteration import (
    GenerationPlan,
    ModelExecution,
    estimate_iteration,
)
from repro.rlhf.core import AlgoType


@dataclasses.dataclass(frozen=True)
class ClusterZone:
    """A named homogeneous slice of a heterogeneous cluster."""

    name: str
    spec: ClusterSpec

    @property
    def n_gpus(self) -> int:
        return self.spec.n_gpus


@dataclasses.dataclass
class HeterogeneousMapping:
    """Result: per-set zone, GPU count, and strategies, plus the cost."""

    placement: List[List[str]]
    zone_of_set: List[str]
    allocation: List[int]
    strategies: Dict[str, StrategyChoice]
    breakdown: IterationBreakdown
    cost: float

    def zone_of(self, model: str) -> str:
        for index, group in enumerate(self.placement):
            if model in group:
                return self.zone_of_set[index]
        raise KeyError(model)

    def describe(self) -> str:
        sets = " | ".join(
            f"{'+'.join(group)}@{self.allocation[i]}:{self.zone_of_set[i]}"
            for i, group in enumerate(self.placement)
        )
        return f"[{sets}] cost={self.cost:.1f}s"


def _zone_assignments(
    n_sets: int, zones: List[ClusterZone]
) -> Iterator[Tuple[int, ...]]:
    """Every assignment of sets to zone indices."""
    if n_sets == 0:
        yield ()
        return
    for tail in _zone_assignments(n_sets - 1, zones):
        for z in range(len(zones)):
            yield (z,) + tail


def _allocations_within_zones(
    assignment: Tuple[int, ...],
    minimums: List[int],
    zones: List[ClusterZone],
) -> Iterator[Tuple[int, ...]]:
    """Per-set GPU counts: allowed sizes, ≥ minimum, fitting each zone."""

    def recurse(index: int, remaining: Dict[int, int]) -> Iterator[Tuple[int, ...]]:
        if index == len(assignment):
            yield ()
            return
        zone_index = assignment[index]
        zone = zones[zone_index]
        sizes = allowed_allocations(
            remaining[zone_index], zone.spec.gpus_per_machine
        ) if remaining[zone_index] > 0 else []
        for size in sizes:
            if size < minimums[index]:
                continue
            remaining[zone_index] -= size
            for tail in recurse(index + 1, remaining):
                yield (size,) + tail
            remaining[zone_index] += size

    capacity = {z: zones[z].n_gpus for z in range(len(zones))}
    return recurse(0, capacity)


def map_dataflow_heterogeneous(
    algo: AlgoType,
    specs: Dict[str, ModelSpec],
    zones: List[ClusterZone],
    workload: RlhfWorkload,
    max_candidates: int = 20000,
) -> HeterogeneousMapping:
    """Algorithm 1 over zones of heterogeneous devices."""
    algo = AlgoType(algo)
    if not zones:
        raise ValueError("need at least one cluster zone")
    if len({z.name for z in zones}) != len(zones):
        raise ValueError("zone names must be unique")
    models = list(specs)
    if "actor" not in models:
        raise ValueError("the dataflow needs an actor model")

    best: Optional[HeterogeneousMapping] = None
    candidates = 0
    for placement in set_partitions(models):
        for assignment in _zone_assignments(len(placement), zones):
            minimums = []
            feasible = True
            for set_index, group in enumerate(placement):
                zone = zones[assignment[set_index]]
                min_alloc = get_min_alloc(
                    [(m, specs[m]) for m in group], zone.spec, zone.n_gpus
                )
                if min_alloc is None:
                    feasible = False
                    break
                minimums.append(min_alloc)
            if not feasible:
                continue
            for allocation in _allocations_within_zones(
                assignment, minimums, zones
            ):
                candidates += 1
                if candidates > max_candidates:
                    break
                scored = _score_hetero(
                    algo, placement, assignment, allocation, specs, zones,
                    workload,
                )
                if scored is None:
                    continue
                strategies, breakdown = scored
                if best is None or breakdown.total < best.cost:
                    best = HeterogeneousMapping(
                        placement=[list(g) for g in placement],
                        zone_of_set=[
                            zones[z].name for z in assignment
                        ],
                        allocation=list(allocation),
                        strategies=strategies,
                        breakdown=breakdown,
                        cost=breakdown.total,
                    )
    if best is None:
        raise RuntimeError(
            f"no feasible heterogeneous mapping for {sorted(specs)} over "
            f"{[z.name for z in zones]}"
        )
    return best


def _score_hetero(
    algo: AlgoType,
    placement,
    assignment: Tuple[int, ...],
    allocation: Tuple[int, ...],
    specs: Dict[str, ModelSpec],
    zones: List[ClusterZone],
    workload: RlhfWorkload,
):
    strategies: Dict[str, StrategyChoice] = {}
    executions: Dict[str, ModelExecution] = {}
    gen_plan: Optional[GenerationPlan] = None
    for set_index, group in enumerate(placement):
        zone = zones[assignment[set_index]]
        n_gpus = allocation[set_index]
        pool = f"set{set_index}@{zone.name}"
        reserved = sum(
            persistent_bytes(specs[m], _ROLE_OF[m]) for m in group
        ) / n_gpus
        for model in group:
            role = _ROLE_OF[model]
            choice = auto_parallel(
                specs[model],
                zone.spec,
                n_gpus,
                workload,
                role,
                reserved_bytes=reserved if role is ModelRole.ACTOR else 0.0,
            )
            if choice is None:
                return None
            strategies[model] = choice
            executions[model] = ModelExecution(
                spec=specs[model],
                pool=pool,
                parallel=choice.parallel,
                cluster=zone.spec,
            )
            if role is ModelRole.ACTOR:
                assert choice.gen_tp is not None and choice.gen_pp is not None
                gen_mp = choice.gen_tp * choice.gen_pp
                gen_plan = GenerationPlan(
                    tp=choice.gen_tp,
                    pp=choice.gen_pp,
                    n_replicas=choice.parallel.world_size // gen_mp,
                    pool=pool,
                    engine=EngineKind.HYBRIDFLOW,
                    reserved_bytes=reserved,
                    cluster=zone.spec,
                )
    assert gen_plan is not None
    breakdown = estimate_iteration(
        algo, executions, gen_plan, workload, zones[0].spec
    )
    return strategies, breakdown
