"""Auto device mapping (§6): placement enumeration + parallelism search.

``map_dataflow`` is Algorithm 1: enumerate all model placements (set
partitions of the dataflow's models), find the minimum feasible GPU
allocation of each colocated set, enumerate allocations, pick each model's
parallelism with Algorithm 2 (:func:`auto_parallel`), and score candidates
with the ``d_cost`` iteration model — returning the mapping with minimal
estimated RLHF iteration latency.
"""

from repro.mapping.placement_enum import (
    allowed_allocations,
    enum_alloc,
    set_partitions,
)
from repro.mapping.auto_parallel import ModelRole, StrategyChoice, auto_parallel
from repro.mapping.device_mapping import MappingResult, map_dataflow
from repro.mapping.elastic import candidate_dps, max_feasible_dp, replan_under_loss
from repro.mapping.heterogeneous import (
    ClusterZone,
    HeterogeneousMapping,
    map_dataflow_heterogeneous,
)

__all__ = [
    "ClusterZone",
    "HeterogeneousMapping",
    "MappingResult",
    "ModelRole",
    "map_dataflow_heterogeneous",
    "StrategyChoice",
    "allowed_allocations",
    "auto_parallel",
    "candidate_dps",
    "enum_alloc",
    "map_dataflow",
    "max_feasible_dp",
    "replan_under_loss",
    "set_partitions",
]
