"""Algorithm 1: optimized device mapping for an RLHF dataflow (§6).

Enumerates model placements (set partitions), minimal and feasible GPU
allocations, per-model parallel strategies (Algorithm 2), and scores each
candidate with the end-to-end iteration estimate (``d_cost``), returning the
cheapest mapping.  Parallelism choices are cached per (model, allocation),
the optimisation the paper uses to keep search time to minutes (§8.5).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple

from repro.config import (
    BYTES_BF16,
    ClusterSpec,
    ModelSpec,
    ParallelConfig,
    RlhfWorkload,
)
from repro.hybrid_engine.overhead import EngineKind
from repro.mapping.auto_parallel import ModelRole, StrategyChoice, auto_parallel
from repro.mapping.placement_enum import (
    allowed_allocations,
    enum_alloc,
    set_partitions,
)
from repro.perf.iteration import (
    GenerationPlan,
    IterationBreakdown,
    ModelExecution,
    estimate_iteration,
)
from repro.perf.memory import MemoryModel, OPTIMIZER_BYTES, GRAD_BYTES
from repro.rlhf.core import AlgoType

_ROLE_OF = {
    "actor": ModelRole.ACTOR,
    "critic": ModelRole.CRITIC,
    "reference": ModelRole.SCORER,
    "reward": ModelRole.SCORER,
    "cost": ModelRole.SCORER,
}

#: Fraction of usable memory the persistent states of a colocated set may
#: take; the rest is activations and best-effort KV cache.
PERSISTENT_BUDGET_FRACTION = 0.75


@dataclasses.dataclass
class MappingResult:
    """The chosen placement, allocation, strategies, and estimated cost."""

    placement: List[List[str]]
    allocation: Dict[str, int]  # pool name -> GPUs
    strategies: Dict[str, StrategyChoice]
    breakdown: IterationBreakdown
    cost: float

    def pool_of(self, model: str) -> str:
        for index, group in enumerate(self.placement):
            if model in group:
                return f"set{index}"
        raise KeyError(model)

    def describe(self) -> str:
        sets = " | ".join(
            f"{'+'.join(group)}@{self.allocation[f'set{i}']}"
            for i, group in enumerate(self.placement)
        )
        return f"[{sets}] cost={self.cost:.1f}s"


def persistent_bytes(spec: ModelSpec, role: ModelRole) -> float:
    """State a model keeps resident between stages, before sharding."""
    per_param = BYTES_BF16
    if role is not ModelRole.SCORER:
        per_param += GRAD_BYTES + OPTIMIZER_BYTES
    return spec.n_params() * per_param


def get_min_alloc(
    models: List[Tuple[str, ModelSpec]],
    cluster: ClusterSpec,
    n_gpus_total: int,
) -> Optional[int]:
    """Smallest allowed GPU count whose memory fits the colocated set (§6).

    Returns None when even the full cluster cannot host the set.
    """
    memory = MemoryModel(models[0][1], cluster)
    total = sum(
        persistent_bytes(spec, _ROLE_OF[name]) for name, spec in models
    )
    budget_per_gpu = memory.usable_bytes_per_gpu() * PERSISTENT_BUDGET_FRACTION
    needed = math.ceil(total / budget_per_gpu)
    for size in allowed_allocations(n_gpus_total, cluster.gpus_per_machine):
        if size >= needed:
            return size
    return None


def _reserved_bytes_for_generation(
    colocated: List[Tuple[str, ModelSpec]], n_gpus: int
) -> float:
    """Per-GPU memory held by a colocated set's persistent states."""
    total = sum(
        persistent_bytes(spec, _ROLE_OF[name]) for name, spec in colocated
    )
    return total / n_gpus


def _score_candidate(
    algo: AlgoType,
    placement: List[List[str]],
    allocation: Tuple[int, ...],
    specs: Dict[str, ModelSpec],
    cluster: ClusterSpec,
    workload: RlhfWorkload,
) -> Optional[Tuple[Dict[str, StrategyChoice], IterationBreakdown]]:
    strategies: Dict[str, StrategyChoice] = {}
    executions: Dict[str, ModelExecution] = {}
    gen_plan: Optional[GenerationPlan] = None

    for set_index, group in enumerate(placement):
        n_gpus = allocation[set_index]
        pool = f"set{set_index}"
        colocated = [(m, specs[m]) for m in group]
        reserved = _reserved_bytes_for_generation(colocated, n_gpus)
        for model in group:
            role = _ROLE_OF[model]
            choice = auto_parallel(
                specs[model],
                cluster,
                n_gpus,
                workload,
                role,
                reserved_bytes=reserved if role is ModelRole.ACTOR else 0.0,
            )
            if choice is None:
                return None  # does not fit: infeasible allocation
            strategies[model] = choice
            executions[model] = ModelExecution(
                spec=specs[model], pool=pool, parallel=choice.parallel
            )
            if role is ModelRole.ACTOR:
                assert choice.gen_tp is not None and choice.gen_pp is not None
                gen_mp = choice.gen_tp * choice.gen_pp
                gen_plan = GenerationPlan(
                    tp=choice.gen_tp,
                    pp=choice.gen_pp,
                    n_replicas=choice.parallel.world_size // gen_mp,
                    pool=pool,
                    engine=EngineKind.HYBRIDFLOW,
                    reserved_bytes=reserved,
                )
    assert gen_plan is not None
    breakdown = estimate_iteration(algo, executions, gen_plan, workload, cluster)
    return strategies, breakdown


def map_dataflow(
    algo: AlgoType,
    specs: Dict[str, ModelSpec],
    cluster: ClusterSpec,
    workload: RlhfWorkload,
    max_allocations_per_placement: int = 5000,
    placements: Optional[List[List[List[str]]]] = None,
) -> MappingResult:
    """Algorithm 1: best placement + allocation + parallelism for a dataflow.

    Args:
        specs: Model role -> architecture (e.g. ``{"actor": 7B, ...}``).
        max_allocations_per_placement: Safety cap on the allocation
            enumeration per placement (the integer-partition space).
        placements: Restrict the search to these placements (each a list of
            colocated-model groups).  Used by §8.3's placement comparison to
            evaluate the colocate / standalone / split strategies under
            HybridFlow; by default all set partitions are searched.
    """
    algo = AlgoType(algo)
    models = list(specs)
    if "actor" not in models:
        raise ValueError("the dataflow needs an actor model")
    n = cluster.n_gpus

    best: Optional[MappingResult] = None
    candidate_placements = (
        placements if placements is not None else set_partitions(models)
    )
    for placement in candidate_placements:
        minimums = []
        feasible = True
        for group in placement:
            min_alloc = get_min_alloc(
                [(m, specs[m]) for m in group], cluster, n
            )
            if min_alloc is None:
                feasible = False
                break
            minimums.append(min_alloc)
        if not feasible or sum(minimums) > n:
            continue

        count = 0
        for allocation in enum_alloc(n, minimums, cluster.gpus_per_machine):
            count += 1
            if count > max_allocations_per_placement:
                break
            scored = _score_candidate(
                algo, placement, allocation, specs, cluster, workload
            )
            if scored is None:
                continue
            strategies, breakdown = scored
            if best is None or breakdown.total < best.cost:
                best = MappingResult(
                    placement=[list(g) for g in placement],
                    allocation={
                        f"set{i}": a for i, a in enumerate(allocation)
                    },
                    strategies=strategies,
                    breakdown=breakdown,
                    cost=breakdown.total,
                )
    if best is None:
        raise RuntimeError(
            f"no feasible mapping for {sorted(specs)} on {n} GPUs"
        )
    return best
