"""Placement and allocation enumeration for Algorithm 1 (§6).

* ``set_partitions(models)`` — every way to group the dataflow's models into
  colocated sets (the Bell-partition space the paper cites: 15 placements
  for PPO's four models).
* ``allowed_allocations(N, U)`` — GPU counts a set may receive: powers of two
  up to one machine, then whole machines (matching how 3D parallel jobs are
  actually laid out).
* ``enum_alloc(N, mins)`` — all assignments of the N GPUs to the sets with
  every set at least its minimum and the total exactly N.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def set_partitions(items: Sequence[T]) -> Iterator[List[List[T]]]:
    """Yield every partition of ``items`` into non-empty unordered sets.

    The number of partitions of an n-element set is the n-th Bell number
    (1, 1, 2, 5, 15, 52, ...) — 15 for PPO's four models, as §6 notes.
    """
    items = list(items)
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in set_partitions(rest):
        # put ``first`` into each existing set
        for i in range(len(partition)):
            yield partition[:i] + [[first] + partition[i]] + partition[i + 1 :]
        # or into its own set
        yield [[first]] + partition


def bell_number(n: int) -> int:
    """Number of set partitions of ``n`` items (for tests/documentation)."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    row = [1]
    for _ in range(n):
        new_row = [row[-1]]
        for value in row:
            new_row.append(new_row[-1] + value)
        row = new_row
    return row[0]


def allowed_allocations(n_gpus: int, gpus_per_machine: int = 8) -> List[int]:
    """GPU counts an allocation may use: powers of 2 intra-machine, then
    whole machines."""
    sizes = []
    size = 1
    while size < gpus_per_machine and size <= n_gpus:
        sizes.append(size)
        size *= 2
    size = gpus_per_machine
    while size <= n_gpus:
        sizes.append(size)
        size += gpus_per_machine
    return sizes


def enum_alloc(
    n_gpus: int,
    minimums: Sequence[int],
    gpus_per_machine: int = 8,
) -> Iterator[Tuple[int, ...]]:
    """All allocations ``(a_1..a_k)`` with ``a_i >= minimums[i]``, allowed
    sizes only, summing exactly to ``n_gpus``."""
    sizes = allowed_allocations(n_gpus, gpus_per_machine)
    k = len(minimums)

    def recurse(index: int, remaining: int) -> Iterator[Tuple[int, ...]]:
        if index == k:
            if remaining == 0:
                yield ()
            return
        min_rest = sum(minimums[index + 1 :])
        for a in sizes:
            if a < minimums[index] or a > remaining - min_rest:
                continue
            for tail in recurse(index + 1, remaining - a):
                yield (a,) + tail

    return recurse(0, n_gpus)
