"""Algorithm 2: per-model parallelism search with cached ``simu`` estimates.

For a model allocated ``A`` GPUs, enumerate tensor-parallel sizes up to one
machine (``U``) and pipeline sizes up to the machine count, derive the DP
size, reject configurations that do not fit in memory, and keep the strategy
with minimal estimated latency for the model's workload (training for
actor/critic, inference for reference/reward, with the actor's generation
strategy searched separately over divisors of its model-parallel size).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Optional, Tuple

from repro.config import ClusterSpec, ModelSpec, ParallelConfig, RlhfWorkload
from repro.perf.memory import MemoryModel
from repro.perf.simu import Stage, simulate_latency


class ModelRole(str, enum.Enum):
    """What a model computes across stages, deciding its search objective."""

    ACTOR = "actor"  # training + generation
    CRITIC = "critic"  # training + inference
    SCORER = "scorer"  # inference only (reference / reward / cost)


@dataclasses.dataclass(frozen=True)
class StrategyChoice:
    """The selected parallelism for one model on one allocation."""

    parallel: ParallelConfig
    latency: float
    gen_tp: Optional[int] = None
    gen_pp: Optional[int] = None
    gen_latency: Optional[float] = None


_CACHE: Dict[Tuple, StrategyChoice] = {}


def clear_cache() -> None:
    _CACHE.clear()


def _fits_memory(
    spec: ModelSpec,
    cluster: ClusterSpec,
    parallel: ParallelConfig,
    workload: RlhfWorkload,
    role: ModelRole,
) -> bool:
    memory = MemoryModel(spec, cluster)
    if role is ModelRole.SCORER:
        stage = memory.inference(parallel, workload)
    else:
        stage = memory.training(parallel, workload)
    return stage.total <= memory.usable_bytes_per_gpu()


def search_generation_strategy(
    spec: ModelSpec,
    cluster: ClusterSpec,
    train: ParallelConfig,
    workload: RlhfWorkload,
    reserved_bytes: float = 0.0,
) -> Tuple[int, int, float]:
    """Best ``(gen_tp, gen_pp)`` dividing the training MP size (§5.1)."""
    best: Optional[Tuple[int, int, float]] = None
    mp = train.model_parallel_size
    for gen_tp in range(1, train.tp + 1):
        if train.tp % gen_tp:
            continue
        for gen_pp in range(1, train.pp + 1):
            if train.pp % gen_pp:
                continue
            if mp % (gen_tp * gen_pp):
                continue
            latency = simulate_latency(
                Stage.GENERATION,
                spec,
                cluster,
                train,
                workload,
                gen_tp=gen_tp,
                gen_pp=gen_pp,
                reserved_bytes=reserved_bytes,
            )
            if best is None or latency < best[2]:
                best = (gen_tp, gen_pp, latency)
    assert best is not None  # gen_tp = train.tp always feasible
    return best


def auto_parallel(
    spec: ModelSpec,
    cluster: ClusterSpec,
    n_gpus: int,
    workload: RlhfWorkload,
    role: ModelRole,
    min_tp: int = 1,
    min_pp: int = 1,
    reserved_bytes: float = 0.0,
) -> Optional[StrategyChoice]:
    """Best parallel strategy for ``spec`` on ``n_gpus`` GPUs, or None if no
    configuration fits in memory (the caller then grows the allocation)."""
    key = (
        spec.name,
        cluster.n_gpus,
        cluster.gpus_per_machine,
        n_gpus,
        role,
        min_tp,
        min_pp,
        round(reserved_bytes),
        workload.global_batch_size,
        workload.seq_length,
    )
    if key in _CACHE:
        return _CACHE[key]

    machine = cluster.gpus_per_machine
    best: Optional[StrategyChoice] = None
    tp = min_tp
    while tp <= min(machine, n_gpus):
        pp = min_pp
        while pp <= max(1, n_gpus // machine) and tp * pp <= n_gpus:
            if n_gpus % (tp * pp) == 0:
                parallel = ParallelConfig(pp=pp, tp=tp, dp=n_gpus // (tp * pp))
                if _fits_memory(spec, cluster, parallel, workload, role):
                    stage = (
                        Stage.INFERENCE
                        if role is ModelRole.SCORER
                        else Stage.TRAINING
                    )
                    latency = simulate_latency(
                        stage, spec, cluster, parallel, workload
                    )
                    choice = StrategyChoice(parallel=parallel, latency=latency)
                    if role is ModelRole.ACTOR:
                        gen_tp, gen_pp, gen_latency = search_generation_strategy(
                            spec, cluster, parallel, workload, reserved_bytes
                        )
                        choice = StrategyChoice(
                            parallel=parallel,
                            latency=latency + gen_latency,
                            gen_tp=gen_tp,
                            gen_pp=gen_pp,
                            gen_latency=gen_latency,
                        )
                    if best is None or choice.latency < best.latency:
                        best = choice
            pp *= 2
        tp *= 2
    if best is not None:
        _CACHE[key] = best
    return best
