"""Elastic re-placement: shrink a job's parallelism onto surviving devices.

The fleet scheduler (:mod:`repro.fleet`) uses two entry points when faults
remove capacity mid-run:

* :func:`max_feasible_dp` — the widest data-parallel width a job can run at
  inside a GPU budget, respecting its batch-size divisibility; this is the
  inner loop of elastic resizing (same PP/TP, narrower DP, so the saved
  checkpoint remains loadable by coordinates).
* :func:`replan_under_loss` — re-run Algorithm 1 (:func:`map_dataflow`) on
  the surviving device count, for full re-placement studies where the model
  set is described by :class:`~repro.config.ModelSpec` rather than a tiny
  functional system.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import ClusterSpec, ModelSpec, RlhfWorkload
from repro.mapping.device_mapping import MappingResult, map_dataflow
from repro.rlhf.core import AlgoType


def max_feasible_dp(
    available_gpus: int,
    tp: int = 1,
    pp: int = 1,
    extra_gpus: int = 0,
    preferred_dp: int = 1,
    min_dp: int = 1,
    batch_size: Optional[int] = None,
) -> Optional[int]:
    """Widest DP in ``[min_dp, preferred_dp]`` that fits ``available_gpus``.

    A job at width ``dp`` needs ``pp * tp * dp + extra_gpus`` devices
    (``extra_gpus`` covers side pools such as a reward-function worker).
    Widths that do not divide ``batch_size`` are skipped — DP replicas each
    take an equal batch slice, so an indivisible width would change the
    per-replica batch shape and break bit-exact resume semantics.

    Returns ``None`` when even ``min_dp`` does not fit.
    """
    if min_dp < 1 or preferred_dp < min_dp:
        raise ValueError(
            f"need 1 <= min_dp <= preferred_dp, got {min_dp}..{preferred_dp}"
        )
    for dp in range(preferred_dp, min_dp - 1, -1):
        if batch_size is not None and batch_size % dp:
            continue
        if pp * tp * dp + extra_gpus <= available_gpus:
            return dp
    return None


def candidate_dps(
    preferred_dp: int, min_dp: int = 1, batch_size: Optional[int] = None
) -> List[int]:
    """All admissible DP widths, widest first (the scheduler's search order)."""
    return [
        dp
        for dp in range(preferred_dp, min_dp - 1, -1)
        if batch_size is None or batch_size % dp == 0
    ]


def replan_under_loss(
    algo: AlgoType,
    specs: Dict[str, ModelSpec],
    cluster: ClusterSpec,
    workload: RlhfWorkload,
    n_surviving: int,
    **map_kwargs,
) -> MappingResult:
    """Re-run Algorithm 1 against the post-failure device count.

    ``n_surviving`` is rounded down to whole machines (the subcluster
    abstraction allocates machine-granular slices; a partially dead machine
    contributes nothing to a gang-scheduled placement), then the ordinary
    placement/allocation/parallelism search runs on that subcluster.

    Raises ``ValueError`` when no machine-granular subcluster survives.
    """
    if n_surviving < 1:
        raise ValueError(f"need at least one surviving GPU, got {n_surviving}")
    per_machine = cluster.gpus_per_machine
    if n_surviving >= per_machine:
        usable = n_surviving - (n_surviving % per_machine)
    else:
        usable = n_surviving
    sub = cluster.subcluster(usable)
    return map_dataflow(algo, specs, sub, workload, **map_kwargs)
