"""DeepSpeed-Chat execution model ([82], Table 1).

* Placement: all four (or five) models colocated on every GPU, executed
  strictly sequentially.
* Parallelism: ZeRO-3 for actor/critic training; forward-only models keep
  ZeRO-sharded parameters and gather layer by layer.
* Actor weights: one copy; the Hybrid Engine reshards from ZeRO-3 to TP for
  generation with a cluster-wide all-gather (the DS-Chat row of Table 2).
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.common import InfeasibleScenario, SystemEstimate, zero3_fits
from repro.config import ClusterSpec, ModelSpec, ParallelConfig, RlhfWorkload
from repro.hybrid_engine.overhead import EngineKind
from repro.mapping.device_mapping import _ROLE_OF, persistent_bytes
from repro.perf.iteration import (
    GenerationPlan,
    ModelExecution,
    estimate_iteration,
)
from repro.perf.memory import MemoryModel
from repro.rlhf.core import AlgoType


def _generation_tp(
    spec: ModelSpec, cluster: ClusterSpec, n_gpus: int, reserved: float
) -> int:
    """Smallest intra-machine TP whose generation shard + KV budget fits."""
    memory = MemoryModel(spec, cluster)
    tp = 1
    while tp <= min(cluster.gpus_per_machine, n_gpus):
        params = spec.n_params() * 2 / tp
        if params + reserved < memory.usable_bytes_per_gpu():
            return tp
        tp *= 2
    raise InfeasibleScenario(
        f"{spec.name}: generation weights do not fit even at TP="
        f"{min(cluster.gpus_per_machine, n_gpus)}"
    )


def estimate_deepspeed_chat(
    algo: AlgoType,
    specs: Dict[str, ModelSpec],
    cluster: ClusterSpec,
    workload: RlhfWorkload,
) -> SystemEstimate:
    algo = AlgoType(algo)
    n = cluster.n_gpus
    trainable = {"actor", "critic"}
    for name, spec in specs.items():
        if not zero3_fits(spec, cluster, n, workload, trainable=name in trainable):
            raise InfeasibleScenario(
                f"DeepSpeed-Chat: {name} ({spec.name}) OOM with ZeRO-3 on "
                f"{n} GPUs"
            )

    reserved = sum(
        persistent_bytes(spec, _ROLE_OF[name]) for name, spec in specs.items()
    ) / n
    gen_tp = _generation_tp(specs["actor"], cluster, n, reserved)

    executions = {
        name: ModelExecution(
            spec=spec,
            pool="shared",
            parallel=ParallelConfig(pp=1, tp=1, dp=n),
            zero3=True,
        )
        for name, spec in specs.items()
    }
    gen_plan = GenerationPlan(
        tp=gen_tp,
        pp=1,
        n_replicas=max(1, n // gen_tp),
        pool="shared",
        engine=EngineKind.DS_CHAT,
        reserved_bytes=reserved,
        # the DS-Chat Hybrid Engine's generation loop manages an unpaged KV
        # cache and re-partitions ZeRO shards around each step
        step_overhead=0.010,
    )
    breakdown = estimate_iteration(algo, executions, gen_plan, workload, cluster)
    return SystemEstimate(
        system="DeepSpeed-Chat",
        breakdown=breakdown,
        placement=f"colocate all on {n} GPUs",
        details={"gen_tp": str(gen_tp), "training": "ZeRO-3"},
    )
