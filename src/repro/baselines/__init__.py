"""Baseline RLHF system models: DeepSpeed-Chat, OpenRLHF, NeMo-Aligner.

Each baseline is characterised by Table 1's three axes — parallelism
(ZeRO vs 3D), actor-weight handling between training and generation
(resharding / two copies / shared partition), and model placement (colocate /
standalone / split) — and evaluated with the same analytical latency
primitives as HybridFlow, so end-to-end comparisons reflect *system design*
differences, not modelling differences.
"""

from repro.baselines.common import SystemEstimate, choose_3d_parallel
from repro.baselines.deepspeed_chat import estimate_deepspeed_chat
from repro.baselines.openrlhf import estimate_openrlhf
from repro.baselines.nemo_aligner import estimate_nemo_aligner
from repro.baselines.hybridflow import estimate_hybridflow

ALL_SYSTEMS = {
    "DeepSpeed-Chat": estimate_deepspeed_chat,
    "OpenRLHF": estimate_openrlhf,
    "NeMo-Aligner": estimate_nemo_aligner,
    "HybridFlow": estimate_hybridflow,
}

__all__ = [
    "ALL_SYSTEMS",
    "SystemEstimate",
    "choose_3d_parallel",
    "estimate_deepspeed_chat",
    "estimate_hybridflow",
    "estimate_nemo_aligner",
    "estimate_openrlhf",
]
