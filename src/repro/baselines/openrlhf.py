"""OpenRLHF execution model ([30], Table 1).

* Placement: every model on its own devices (standalone), plus a *separate*
  set of vLLM generation engines holding a second copy of the actor weights.
* Parallelism: ZeRO-3 for training, TP for the vLLM generation ranks.
* Actor weights: two copies; the training ranks synchronise updated weights
  to the generation ranks every iteration, across machines and layer by
  layer (the dominant transition cost at 70B, §8.4).
* Models on disjoint pools run concurrently within a stage.
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.common import InfeasibleScenario, SystemEstimate, zero3_fits
from repro.baselines.deepspeed_chat import _generation_tp
from repro.config import ClusterSpec, ModelSpec, ParallelConfig, RlhfWorkload
from repro.perf.iteration import (
    GenerationPlan,
    ModelExecution,
    estimate_iteration,
)
from repro.rlhf.core import AlgoType


def split_gpus(models: List[str], n_gpus: int) -> Dict[str, int]:
    """OpenRLHF's standalone division of the cluster.

    GPUs are divided in proportion to each pool's memory demand: trainable
    models carry the full mixed-precision state (18 bytes/param), the vLLM
    generation copy and the forward-only models carry parameters only.  This
    mirrors how OpenRLHF deployments are hand-provisioned, and keeps the
    memory-heavy trainable pools feasible without optimizer offload.
    """
    if n_gpus < len(models) + 1:
        raise InfeasibleScenario(
            f"OpenRLHF needs at least {len(models) + 1} GPUs for "
            f"{len(models)} standalone models + generation engines"
        )
    # relative memory weights: training state vs parameter-only pools
    weights: Dict[str, float] = {"actor_train": 18.0, "actor_gen": 18.0}
    for m in models:
        if m == "actor":
            continue
        weights[m] = 14.0 if m == "critic" else 2.0
    total_weight = sum(weights.values())
    shares: Dict[str, int] = {}
    assigned = 0
    for name, weight in weights.items():
        share = max(1, int(round(n_gpus * weight / total_weight)))
        shares[name] = share
        assigned += share
    # repair rounding drift against the heaviest pools first
    order = sorted(weights, key=weights.get, reverse=True)
    index = 0
    while assigned != n_gpus:
        name = order[index % len(order)]
        if assigned < n_gpus:
            shares[name] += 1
            assigned += 1
        elif shares[name] > 1:
            shares[name] -= 1
            assigned -= 1
        index += 1
    return shares


def estimate_openrlhf(
    algo: AlgoType,
    specs: Dict[str, ModelSpec],
    cluster: ClusterSpec,
    workload: RlhfWorkload,
) -> SystemEstimate:
    algo = AlgoType(algo)
    n = cluster.n_gpus
    shares = split_gpus(list(specs), n)

    executions: Dict[str, ModelExecution] = {}
    for name, spec in specs.items():
        pool_gpus = shares["actor_train"] if name == "actor" else shares[name]
        trainable = name in ("actor", "critic")
        if not zero3_fits(spec, cluster, pool_gpus, workload, trainable=trainable):
            raise InfeasibleScenario(
                f"OpenRLHF: {name} ({spec.name}) OOM with ZeRO-3 on "
                f"{pool_gpus} GPUs"
            )
        executions[name] = ModelExecution(
            spec=spec,
            pool=f"pool-{name}",
            parallel=ParallelConfig(pp=1, tp=1, dp=pool_gpus),
            zero3=True,
        )

    gen_gpus = shares["actor_gen"]
    gen_tp = _generation_tp(specs["actor"], cluster, gen_gpus, reserved=0.0)
    if gen_tp > gen_gpus:
        raise InfeasibleScenario(
            f"OpenRLHF: generation copy of {specs['actor'].name} does not "
            f"fit on {gen_gpus} GPUs"
        )
    gen_plan = GenerationPlan(
        tp=gen_tp,
        pp=1,
        n_replicas=max(1, gen_gpus // gen_tp),
        pool="pool-generation",
        engine=None,
        weight_sync=True,  # the second weight copy must be refreshed
        reserved_bytes=0.0,
    )
    breakdown = estimate_iteration(algo, executions, gen_plan, workload, cluster)
    placement = ", ".join(f"{k}={v}" for k, v in shares.items())
    return SystemEstimate(
        system="OpenRLHF",
        breakdown=breakdown,
        placement=f"standalone ({placement})",
        details={"gen_tp": str(gen_tp), "training": "ZeRO-3"},
    )
