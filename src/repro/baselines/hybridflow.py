"""HybridFlow's own estimate: the Algorithm 1 mapping plus the HybridEngine."""

from __future__ import annotations

from typing import Dict

from repro.baselines.common import SystemEstimate
from repro.config import ClusterSpec, ModelSpec, RlhfWorkload
from repro.mapping.device_mapping import map_dataflow
from repro.rlhf.core import AlgoType


#: The named placement strategies of §8.3's comparison (Figure 12/13).
PLACEMENT_STRATEGIES = ("colocate", "standalone", "split", "hybridflow")


def placement_partition(strategy: str, models: list) -> list:
    """The colocated-set structure of one named placement strategy."""
    if strategy == "colocate":
        return [list(models)]
    if strategy == "standalone":
        return [[m] for m in models]
    if strategy == "split":
        actor_side = [m for m in models if m in ("actor", "reference")]
        critic_side = [m for m in models if m not in ("actor", "reference")]
        return [actor_side, critic_side] if critic_side else [actor_side]
    raise ValueError(f"unknown placement strategy {strategy!r}")


def estimate_hybridflow(
    algo: AlgoType,
    specs: Dict[str, ModelSpec],
    cluster: ClusterSpec,
    workload: RlhfWorkload,
    placement: str = "hybridflow",
) -> SystemEstimate:
    """HybridFlow's estimate, optionally pinned to a named placement (§8.3).

    ``placement="hybridflow"`` runs the full Algorithm 1 search; the other
    strategies restrict it to one placement while still searching GPU
    allocations and parallelism — how Figure 12/13 implement "various model
    placements of the PPO algorithm in HybridFlow".
    """
    placements = None
    if placement != "hybridflow":
        placements = [placement_partition(placement, list(specs))]
    result = map_dataflow(
        AlgoType(algo), specs, cluster, workload, placements=placements
    )
    actor = result.strategies["actor"]
    return SystemEstimate(
        system="HybridFlow" if placement == "hybridflow" else placement,
        breakdown=result.breakdown,
        placement=result.describe(),
        details={
            "actor_parallel": str(actor.parallel),
            "gen": f"tp={actor.gen_tp} pp={actor.gen_pp}",
        },
    )
