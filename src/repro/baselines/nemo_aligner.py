"""NeMo-Aligner execution model ([17], Table 1).

* Placement: split — actor + reference colocated on half the GPUs, critic +
  reward model on the other half.
* Parallelism: 3D parallelism for both training and generation, with the
  *same* partitioning in both stages (shared weights, no resharding).
* Generation: no KV cache in the generation engine (§8.2: "Due to the lack
  of KVCache in generation engine, NeMo-Aligner's main performance
  bottleneck lies in the generation stage"), so each decode step recomputes
  the full prefix; generation DP equals training DP.
* Does not support ReMax (§8.1).
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.common import (
    InfeasibleScenario,
    SystemEstimate,
    choose_3d_parallel,
)
from repro.config import ClusterSpec, ModelSpec, RlhfWorkload
from repro.mapping.auto_parallel import ModelRole
from repro.perf.iteration import (
    GenerationPlan,
    ModelExecution,
    estimate_iteration,
)
from repro.rlhf.core import AlgoType

_ROLE = {
    "actor": ModelRole.ACTOR,
    "critic": ModelRole.CRITIC,
    "reference": ModelRole.SCORER,
    "reward": ModelRole.SCORER,
    "cost": ModelRole.SCORER,
}

_ACTOR_SIDE = ("actor", "reference")


def estimate_nemo_aligner(
    algo: AlgoType,
    specs: Dict[str, ModelSpec],
    cluster: ClusterSpec,
    workload: RlhfWorkload,
) -> SystemEstimate:
    algo = AlgoType(algo)
    if algo is AlgoType.REMAX:
        raise InfeasibleScenario("NeMo-Aligner does not support ReMax (§8.1)")
    n = cluster.n_gpus
    if n < 2:
        raise InfeasibleScenario("NeMo-Aligner's split placement needs >= 2 GPUs")
    half = n // 2

    executions: Dict[str, ModelExecution] = {}
    actor_parallel = None
    for name, spec in specs.items():
        pool = "actor_side" if name in _ACTOR_SIDE else "critic_side"
        # choosing per-role training configs; generation reuses the actor's
        role = ModelRole.CRITIC if name == "critic" else (
            ModelRole.CRITIC if name == "actor" else ModelRole.SCORER
        )
        parallel = choose_3d_parallel(spec, cluster, half, workload, role)
        executions[name] = ModelExecution(spec=spec, pool=pool, parallel=parallel)
        if name == "actor":
            actor_parallel = parallel
    assert actor_parallel is not None

    gen_plan = GenerationPlan(
        tp=actor_parallel.tp,
        pp=actor_parallel.pp,
        n_replicas=actor_parallel.dp,
        pool="actor_side",
        engine=None,  # identical partition in both stages: no resharding
        use_kv_cache=False,
        reserved_bytes=0.0,
    )
    breakdown = estimate_iteration(algo, executions, gen_plan, workload, cluster)
    return SystemEstimate(
        system="NeMo-Aligner",
        breakdown=breakdown,
        placement=f"split ({half}+{n - half} GPUs)",
        details={
            "actor_parallel": str(actor_parallel),
            "generation": "same 3D config, no KV cache",
        },
    )
