"""Shared pieces for the baseline system models."""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.config import ClusterSpec, ModelSpec, ParallelConfig, RlhfWorkload
from repro.mapping.auto_parallel import ModelRole, auto_parallel
from repro.perf.iteration import IterationBreakdown


@dataclasses.dataclass(frozen=True)
class SystemEstimate:
    """One system's estimated performance on one scenario."""

    system: str
    breakdown: IterationBreakdown
    placement: str
    details: Dict[str, str] = dataclasses.field(default_factory=dict)

    @property
    def iteration_time(self) -> float:
        return self.breakdown.total

    def throughput(self, workload: RlhfWorkload) -> float:
        return self.breakdown.throughput(workload)


class InfeasibleScenario(RuntimeError):
    """The scenario cannot run on this system (OOM at every configuration)."""


def choose_3d_parallel(
    spec: ModelSpec,
    cluster: ClusterSpec,
    n_gpus: int,
    workload: RlhfWorkload,
    role: ModelRole,
) -> ParallelConfig:
    """A well-tuned Megatron-style 3D configuration for a baseline's model.

    Baselines configure Megatron by hand; giving them the same parallelism
    search HybridFlow uses keeps the comparison about system architecture.
    """
    choice = auto_parallel(spec, cluster, n_gpus, workload, role)
    if choice is None:
        raise InfeasibleScenario(
            f"{spec.name} does not fit on {n_gpus} GPUs in any 3D layout"
        )
    return choice.parallel


def zero3_fits(
    spec: ModelSpec,
    cluster: ClusterSpec,
    n_gpus: int,
    workload: RlhfWorkload,
    trainable: bool = True,
) -> bool:
    """Does ZeRO-3 over ``n_gpus`` ranks fit this model in memory?"""
    from repro.perf.memory import MemoryModel

    memory = MemoryModel(spec, cluster)
    parallel = ParallelConfig(pp=1, tp=1, dp=n_gpus)
    if trainable:
        stage = memory.training(parallel, workload, zero3=True)
    else:
        stage = memory.inference(ParallelConfig(pp=1, tp=1, dp=1), workload)
        # forward-only ZeRO-3 still shards parameters but must materialise
        # one layer at a time; approximate with sharded params + one layer
        stage = dataclasses.replace(
            stage,
            params=spec.n_params() * 2 / n_gpus
            + memory._largest_layer_bytes(),
        )
    return stage.total <= memory.usable_bytes_per_gpu()
