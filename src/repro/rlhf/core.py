"""``compute_advantages``: the controller-side numerical step of Figure 6.

``batch = compute_advantages(batch, algo_type)`` is the one line in the
paper's driver programs that runs on the single controller itself ("This
computation involves no model forward passes", Table 4).  It reads the
columns the preparation stage added and writes ``advantages`` (and, for
critic-based algorithms, ``returns``).
"""

from __future__ import annotations

import enum

from repro.data.batch import DataBatch
from repro.rlhf.advantage import (
    compose_token_rewards,
    gae_advantages,
    grpo_advantages,
    remax_advantages,
    whiten,
)


class AlgoType(str, enum.Enum):
    """The RLHF dataflow variants of Figure 1."""

    PPO = "ppo"
    REMAX = "remax"
    SAFE_RLHF = "safe-rlhf"
    GRPO = "grpo"


def compute_advantages(
    batch: DataBatch,
    algo: AlgoType = AlgoType.PPO,
    kl_coef: float = 0.1,
    gamma: float = 1.0,
    lam: float = 0.95,
    group_size: int = 4,
    whiten_advantages: bool = True,
) -> DataBatch:
    """Append advantage (and return) columns for the chosen algorithm.

    Expected input columns by algorithm:

    * PPO: ``scores``, ``log_probs``, ``ref_log_probs``, ``values``.
    * Safe-RLHF: PPO columns plus ``costs`` and ``cost_values``; produces
      separate ``advantages`` (reward) and ``cost_advantages``.
    * ReMax: ``scores``, ``baseline_scores``, ``log_probs``,
      ``ref_log_probs``.
    * GRPO: ``scores``, ``log_probs``, ``ref_log_probs`` with rows grouped
      by prompt.

    When the batch carries a ``response_mask`` column (EOS-terminated
    generation), every estimator ignores post-EOS padding: rewards/values
    are masked, the preference score lands on the last *real* token, and
    whitening statistics come from real tokens only.
    """
    algo = AlgoType(algo)
    out = batch.copy()
    response_length = batch["log_probs"].shape[1]
    mask = batch["response_mask"] if "response_mask" in batch else None

    if algo in (AlgoType.PPO, AlgoType.SAFE_RLHF):
        token_rewards = compose_token_rewards(
            batch["scores"],
            batch["log_probs"],
            batch["ref_log_probs"],
            kl_coef,
            response_mask=mask,
        )
        advantages, returns = gae_advantages(
            token_rewards,
            batch["values"],
            gamma=gamma,
            lam=lam,
            response_mask=mask,
        )
        if whiten_advantages:
            advantages = whiten(advantages, response_mask=mask)
        out["advantages"] = advantages
        out["returns"] = returns
        if algo is AlgoType.SAFE_RLHF:
            token_costs = compose_token_rewards(
                batch["costs"],
                batch["log_probs"],
                batch["ref_log_probs"],
                kl_coef=0.0,
                response_mask=mask,
            )
            cost_adv, cost_returns = gae_advantages(
                token_costs,
                batch["cost_values"],
                gamma=gamma,
                lam=lam,
                response_mask=mask,
            )
            out["cost_advantages"] = cost_adv
            out["cost_returns"] = cost_returns
    elif algo is AlgoType.REMAX:
        token_rewards = compose_token_rewards(
            batch["scores"],
            batch["log_probs"],
            batch["ref_log_probs"],
            kl_coef,
            response_mask=mask,
        )
        seq_rewards = token_rewards.sum(axis=1)
        out["advantages"] = remax_advantages(
            seq_rewards,
            batch["baseline_scores"],
            response_length,
            response_mask=mask,
        )
    elif algo is AlgoType.GRPO:
        out["advantages"] = grpo_advantages(
            batch["scores"], group_size, response_length, response_mask=mask
        )
    else:  # pragma: no cover - enum is exhaustive
        raise ValueError(f"unhandled algorithm {algo}")
    return out
