"""The upstream alignment stages: SFT and reward-model training (§1, §2.1).

RLHF is the third stage of the alignment pipeline — "LLMs are first
pre-trained ... Next, LLMs are trained on domain-specific datasets via
supervised fine-tuning (SFT)" and the reward model is "fine-tuned on the
human preference dataset".  These drivers run both stages on the same
single-controller worker infrastructure the RLHF trainers use, so the whole
SFT → RM → PPO recipe lives in one programming model
(see ``examples/full_pipeline.py``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.data.batch import DataBatch
from repro.data.dataset import PromptDataset, SyntheticPreferenceTask


class SFTTrainer:
    """Supervised fine-tuning of the actor on a token corpus."""

    def __init__(self, actor) -> None:
        self.actor = actor
        self.history: List[Dict[str, Any]] = []

    def train(
        self,
        dataset: PromptDataset,
        n_iterations: int,
        batch_size: int,
    ) -> List[Dict[str, Any]]:
        batches = dataset.iter_batches(batch_size, epochs=10**6)
        for _ in range(n_iterations):
            tokens = next(batches)["prompts"]
            metrics = self.actor.update_sft(
                DataBatch({"tokens": tokens})
            ).get()
            self.history.append(metrics)
        return self.history


class RewardModelTrainer:
    """Bradley-Terry training of the reward model on preference pairs."""

    def __init__(self, reward, seed: int = 0) -> None:
        self.reward = reward
        self.history: List[Dict[str, Any]] = []
        self._rng = np.random.default_rng(seed)

    def train(
        self,
        task: SyntheticPreferenceTask,
        n_iterations: int,
        batch_size: int,
        response_length: int,
    ) -> List[Dict[str, Any]]:
        for _ in range(n_iterations):
            chosen, rejected = task.preference_pairs(
                batch_size, response_length, self._rng
            )
            metrics = self.reward.update_reward(
                DataBatch({"chosen": chosen, "rejected": rejected})
            ).get()
            self.history.append(metrics)
        return self.history

    def evaluate_accuracy(
        self,
        task: SyntheticPreferenceTask,
        n_pairs: int,
        response_length: int,
        seed: Optional[int] = None,
    ) -> float:
        """Held-out pairwise accuracy of the trained reward model."""
        rng = np.random.default_rng(seed if seed is not None else 10**6)
        chosen, rejected = task.preference_pairs(
            n_pairs, response_length, rng
        )
        meta = {"prompt_length": 0}
        r_chosen = self.reward.compute_reward(
            DataBatch({"sequences": chosen}, meta=meta)
        ).get()["scores"]
        r_rejected = self.reward.compute_reward(
            DataBatch({"sequences": rejected}, meta=meta)
        ).get()["scores"]
        return float((r_chosen > r_rejected).mean())
