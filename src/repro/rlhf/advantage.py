"""Advantage estimation for RLHF algorithms (pure numpy, no gradients).

``compute_advantage`` in the paper's Figure 6 "involves no model forward
passes" (Table 4) — it is numerical post-processing of the values/rewards the
preparation stage produced.  Implemented estimators:

* **GAE** (Schulman et al. [67]) for PPO and Safe-RLHF.
* **ReMax** ([43]): reward minus the greedy-rollout baseline reward.
* **GRPO** ([70]): group-normalised sequence rewards, no critic.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def _check_mask(
    response_mask: Optional[np.ndarray], shape: Tuple[int, ...]
) -> Optional[np.ndarray]:
    if response_mask is None:
        return None
    mask = np.asarray(response_mask, dtype=np.float64)
    if mask.shape != shape:
        raise ValueError(
            f"response_mask shape {mask.shape} does not match {shape}"
        )
    return mask


def last_real_index(response_mask: np.ndarray) -> np.ndarray:
    """Index of each row's last real token (``(batch,)``; 0 for empty rows)."""
    mask = np.asarray(response_mask, dtype=np.float64)
    return np.maximum(mask.sum(axis=1).astype(np.int64) - 1, 0)


def compose_token_rewards(
    scores: np.ndarray,
    log_probs: np.ndarray,
    ref_log_probs: np.ndarray,
    kl_coef: float = 0.1,
    clip_kl: float = 10.0,
    response_mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Token-level rewards from a sample-level score plus a KL penalty.

    Standard InstructGPT-style shaping [55]: each response token is penalised
    by ``kl_coef * (log pi(t) - log pi_ref(t))`` and the scalar preference
    score is added at the final token.

    Args:
        scores: Sample-level rewards, shape ``(batch,)``.
        log_probs: Actor log-probs of response tokens, ``(batch, resp_len)``.
        ref_log_probs: Reference-policy log-probs, same shape.
        kl_coef: KL penalty coefficient.
        clip_kl: Symmetric clip on the per-token KL estimate for stability.
        response_mask: Optional ``(batch, resp_len)`` mask of real response
            tokens (EOS sampling).  Post-EOS positions get zero reward and
            the score lands on each row's *last real* token instead of the
            padded final column.

    Returns:
        Token-level rewards ``(batch, resp_len)``.
    """
    scores = np.asarray(scores, dtype=np.float64)
    log_probs = np.asarray(log_probs, dtype=np.float64)
    ref_log_probs = np.asarray(ref_log_probs, dtype=np.float64)
    if log_probs.shape != ref_log_probs.shape:
        raise ValueError(
            f"log-prob shape mismatch: {log_probs.shape} vs {ref_log_probs.shape}"
        )
    if scores.shape != (log_probs.shape[0],):
        raise ValueError(
            f"scores shape {scores.shape} does not match batch "
            f"{log_probs.shape[0]}"
        )
    mask = _check_mask(response_mask, log_probs.shape)
    kl = np.clip(log_probs - ref_log_probs, -clip_kl, clip_kl)
    rewards = -kl_coef * kl
    if mask is None:
        rewards[:, -1] += scores
    else:
        rewards *= mask
        rewards[np.arange(len(scores)), last_real_index(mask)] += scores
    return rewards


def gae_advantages(
    rewards: np.ndarray,
    values: np.ndarray,
    gamma: float = 1.0,
    lam: float = 0.95,
    response_mask: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generalised advantage estimation over response tokens.

    Args:
        rewards: Token-level rewards ``(batch, T)``.
        values: Critic values at each response token ``(batch, T)``.
        gamma: Discount factor (RLHF convention: 1.0).
        lam: GAE lambda.
        response_mask: Optional ``(batch, T)`` mask of real tokens.  Masked
            positions contribute no value/reward and the recursion resets
            there, so each row's advantages stop at its EOS.

    Returns:
        ``(advantages, returns)`` both ``(batch, T)``; returns are
        ``advantages + values`` (the critic's regression target).
    """
    rewards = np.asarray(rewards, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if rewards.shape != values.shape:
        raise ValueError(
            f"rewards {rewards.shape} and values {values.shape} must match"
        )
    mask = _check_mask(response_mask, rewards.shape)
    if mask is not None:
        values = values * mask
        rewards = rewards * mask
    batch, horizon = rewards.shape
    advantages = np.zeros_like(rewards)
    last_gae = np.zeros(batch, dtype=np.float64)
    for t in reversed(range(horizon)):
        next_value = values[:, t + 1] if t + 1 < horizon else 0.0
        delta = rewards[:, t] + gamma * next_value - values[:, t]
        last_gae = delta + gamma * lam * last_gae
        if mask is not None:
            last_gae = last_gae * mask[:, t]
        advantages[:, t] = last_gae
    returns = advantages + values
    return advantages, returns


def whiten(
    advantages: np.ndarray,
    eps: float = 1e-8,
    response_mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Normalise advantages to zero mean / unit variance (PPO convention).

    With a mask, the statistics come from real tokens only and masked
    positions stay exactly zero (whitening must not resurrect padding).
    """
    advantages = np.asarray(advantages, dtype=np.float64)
    mask = _check_mask(response_mask, advantages.shape)
    if mask is None:
        return (advantages - advantages.mean()) / (advantages.std() + eps)
    n = mask.sum()
    if n < 1:
        return advantages * 0.0
    mean = (advantages * mask).sum() / n
    var = (((advantages - mean) ** 2) * mask).sum() / n
    return ((advantages - mean) / (np.sqrt(var) + eps)) * mask


def remax_advantages(
    rewards: np.ndarray,
    baseline_rewards: np.ndarray,
    response_length: int,
    response_mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """ReMax [43]: sampled reward minus greedy-baseline reward, per token.

    ReMax "requires an additional generation pass for variance reduction and
    eliminates the critic model" (§2.1).  The sequence-level advantage is
    broadcast over all response tokens.

    Args:
        rewards: Scores of the sampled responses ``(batch,)``.
        baseline_rewards: Scores of the greedy responses ``(batch,)``.
        response_length: Number of response tokens to broadcast over.

    Returns:
        Token-level advantages ``(batch, response_length)``.
    """
    rewards = np.asarray(rewards, dtype=np.float64)
    baseline_rewards = np.asarray(baseline_rewards, dtype=np.float64)
    if rewards.shape != baseline_rewards.shape:
        raise ValueError(
            f"reward shapes differ: {rewards.shape} vs {baseline_rewards.shape}"
        )
    advantage = rewards - baseline_rewards
    out = np.repeat(advantage[:, None], response_length, axis=1)
    mask = _check_mask(response_mask, out.shape)
    return out if mask is None else out * mask


def grpo_advantages(
    rewards: np.ndarray,
    group_size: int,
    response_length: int,
    eps: float = 1e-8,
    response_mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """GRPO [70]: normalise rewards within each prompt's sample group.

    Rows are assumed grouped: samples ``[i*group_size, (i+1)*group_size)``
    share a prompt.  The advantage of each sample is its reward's z-score
    within the group, broadcast over response tokens — no critic needed.
    """
    rewards = np.asarray(rewards, dtype=np.float64)
    if rewards.ndim != 1:
        raise ValueError(f"rewards must be 1-D, got shape {rewards.shape}")
    if group_size < 2:
        raise ValueError(f"GRPO needs group_size >= 2, got {group_size}")
    if rewards.shape[0] % group_size:
        raise ValueError(
            f"batch {rewards.shape[0]} not divisible by group size {group_size}"
        )
    grouped = rewards.reshape(-1, group_size)
    mean = grouped.mean(axis=1, keepdims=True)
    std = grouped.std(axis=1, keepdims=True)
    z = ((grouped - mean) / (std + eps)).reshape(-1)
    out = np.repeat(z[:, None], response_length, axis=1)
    mask = _check_mask(response_mask, out.shape)
    return out if mask is None else out * mask
