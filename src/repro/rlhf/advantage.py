"""Advantage estimation for RLHF algorithms (pure numpy, no gradients).

``compute_advantage`` in the paper's Figure 6 "involves no model forward
passes" (Table 4) — it is numerical post-processing of the values/rewards the
preparation stage produced.  Implemented estimators:

* **GAE** (Schulman et al. [67]) for PPO and Safe-RLHF.
* **ReMax** ([43]): reward minus the greedy-rollout baseline reward.
* **GRPO** ([70]): group-normalised sequence rewards, no critic.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def compose_token_rewards(
    scores: np.ndarray,
    log_probs: np.ndarray,
    ref_log_probs: np.ndarray,
    kl_coef: float = 0.1,
    clip_kl: float = 10.0,
) -> np.ndarray:
    """Token-level rewards from a sample-level score plus a KL penalty.

    Standard InstructGPT-style shaping [55]: each response token is penalised
    by ``kl_coef * (log pi(t) - log pi_ref(t))`` and the scalar preference
    score is added at the final token.

    Args:
        scores: Sample-level rewards, shape ``(batch,)``.
        log_probs: Actor log-probs of response tokens, ``(batch, resp_len)``.
        ref_log_probs: Reference-policy log-probs, same shape.
        kl_coef: KL penalty coefficient.
        clip_kl: Symmetric clip on the per-token KL estimate for stability.

    Returns:
        Token-level rewards ``(batch, resp_len)``.
    """
    scores = np.asarray(scores, dtype=np.float64)
    log_probs = np.asarray(log_probs, dtype=np.float64)
    ref_log_probs = np.asarray(ref_log_probs, dtype=np.float64)
    if log_probs.shape != ref_log_probs.shape:
        raise ValueError(
            f"log-prob shape mismatch: {log_probs.shape} vs {ref_log_probs.shape}"
        )
    if scores.shape != (log_probs.shape[0],):
        raise ValueError(
            f"scores shape {scores.shape} does not match batch "
            f"{log_probs.shape[0]}"
        )
    kl = np.clip(log_probs - ref_log_probs, -clip_kl, clip_kl)
    rewards = -kl_coef * kl
    rewards[:, -1] += scores
    return rewards


def gae_advantages(
    rewards: np.ndarray,
    values: np.ndarray,
    gamma: float = 1.0,
    lam: float = 0.95,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generalised advantage estimation over response tokens.

    Args:
        rewards: Token-level rewards ``(batch, T)``.
        values: Critic values at each response token ``(batch, T)``.
        gamma: Discount factor (RLHF convention: 1.0).
        lam: GAE lambda.

    Returns:
        ``(advantages, returns)`` both ``(batch, T)``; returns are
        ``advantages + values`` (the critic's regression target).
    """
    rewards = np.asarray(rewards, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if rewards.shape != values.shape:
        raise ValueError(
            f"rewards {rewards.shape} and values {values.shape} must match"
        )
    batch, horizon = rewards.shape
    advantages = np.zeros_like(rewards)
    last_gae = np.zeros(batch)
    for t in reversed(range(horizon)):
        next_value = values[:, t + 1] if t + 1 < horizon else 0.0
        delta = rewards[:, t] + gamma * next_value - values[:, t]
        last_gae = delta + gamma * lam * last_gae
        advantages[:, t] = last_gae
    returns = advantages + values
    return advantages, returns


def whiten(advantages: np.ndarray, eps: float = 1e-8) -> np.ndarray:
    """Normalise advantages to zero mean / unit variance (PPO convention)."""
    advantages = np.asarray(advantages, dtype=np.float64)
    return (advantages - advantages.mean()) / (advantages.std() + eps)


def remax_advantages(
    rewards: np.ndarray,
    baseline_rewards: np.ndarray,
    response_length: int,
) -> np.ndarray:
    """ReMax [43]: sampled reward minus greedy-baseline reward, per token.

    ReMax "requires an additional generation pass for variance reduction and
    eliminates the critic model" (§2.1).  The sequence-level advantage is
    broadcast over all response tokens.

    Args:
        rewards: Scores of the sampled responses ``(batch,)``.
        baseline_rewards: Scores of the greedy responses ``(batch,)``.
        response_length: Number of response tokens to broadcast over.

    Returns:
        Token-level advantages ``(batch, response_length)``.
    """
    rewards = np.asarray(rewards, dtype=np.float64)
    baseline_rewards = np.asarray(baseline_rewards, dtype=np.float64)
    if rewards.shape != baseline_rewards.shape:
        raise ValueError(
            f"reward shapes differ: {rewards.shape} vs {baseline_rewards.shape}"
        )
    advantage = rewards - baseline_rewards
    return np.repeat(advantage[:, None], response_length, axis=1)


def grpo_advantages(
    rewards: np.ndarray,
    group_size: int,
    response_length: int,
    eps: float = 1e-8,
) -> np.ndarray:
    """GRPO [70]: normalise rewards within each prompt's sample group.

    Rows are assumed grouped: samples ``[i*group_size, (i+1)*group_size)``
    share a prompt.  The advantage of each sample is its reward's z-score
    within the group, broadcast over response tokens — no critic needed.
    """
    rewards = np.asarray(rewards, dtype=np.float64)
    if rewards.ndim != 1:
        raise ValueError(f"rewards must be 1-D, got shape {rewards.shape}")
    if group_size < 2:
        raise ValueError(f"GRPO needs group_size >= 2, got {group_size}")
    if rewards.shape[0] % group_size:
        raise ValueError(
            f"batch {rewards.shape[0]} not divisible by group size {group_size}"
        )
    grouped = rewards.reshape(-1, group_size)
    mean = grouped.mean(axis=1, keepdims=True)
    std = grouped.std(axis=1, keepdims=True)
    z = ((grouped - mean) / (std + eps)).reshape(-1)
    return np.repeat(z[:, None], response_length, axis=1)
