"""Single-process RLHF dataflow drivers (the Figure 6 programs).

Each trainer is the few-lines-of-code driver the hybrid programming model
promises: a sequence of primitive API calls on worker groups, with all
distribution, resharding and collection hidden behind transfer protocols.
The numerical differences between algorithms live in
:func:`repro.rlhf.core.compute_advantages` and the workers' loss functions —
moving between algorithms only adds/removes a few calls, exactly as the
paper's Figure 6 shows.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional

import numpy as np

from repro.data.batch import DataBatch
from repro.data.dataset import PromptDataset
from repro.rlhf.core import AlgoType, compute_advantages
from repro.rlhf.losses import update_lagrange_multiplier


@dataclasses.dataclass
class TrainerConfig:
    """Hyperparameters shared by the RLHF drivers (§8.1 conventions)."""

    kl_coef: float = 0.05
    gamma: float = 1.0
    lam: float = 0.95
    ppo_epochs: int = 1
    updates_per_epoch: int = 1
    recompute_log_probs: bool = True
    whiten_advantages: bool = True
    seed: int = 0
    # Safe-RLHF
    cost_limit: float = 0.1
    lagrange_lr: float = 0.5
    ptx_coef: float = 0.1
    # GRPO
    group_size: int = 4


class RlhfTrainerBase:
    """Common loop: iterate prompt batches, run ``step``, record metrics."""

    algo: AlgoType

    def __init__(
        self,
        actor,
        reference,
        reward,
        critic=None,
        cost=None,
        config: Optional[TrainerConfig] = None,
    ) -> None:
        self.actor = actor
        self.critic = critic
        self.reference = reference
        self.reward = reward
        self.cost = cost
        self.config = config or TrainerConfig()
        self.history: List[Dict[str, Any]] = []
        self._rng = np.random.default_rng(self.config.seed)

    # -- subclass hook -------------------------------------------------------------

    def step(self, prompts: DataBatch) -> Dict[str, Any]:
        raise NotImplementedError

    # -- driver-level checkpoint state (§9: dataloader IDs etc.) -------------------

    def state_dict(self) -> Dict[str, Any]:
        """Driver state to persist alongside the workers' checkpoints."""
        return {
            "iterations_done": len(self.history),
            "rng_state": self._rng.bit_generator.state,
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self.history = [{} for _ in range(int(state["iterations_done"]))]
        self._rng.bit_generator.state = state["rng_state"]

    # -- shared pieces -------------------------------------------------------------

    def _prepare_common(self, gen_batch: DataBatch) -> DataBatch:
        """Reference log-probs + reward scores (stage 2 shared by all algos).

        Every preparation call consumes the *generation output* rather than
        each other's results — the independence that lets models on disjoint
        pools run concurrently (§4.1's asynchronous execution; visible in
        the execution timelines).
        """
        ref = self.reference.compute_ref_log_prob(gen_batch)
        scores = self.reward.compute_reward(gen_batch)
        if self.config.recompute_log_probs:
            logp = self.actor.compute_log_prob(gen_batch)
            batch = gen_batch.union(logp.get())
        else:
            batch = gen_batch.union(
                DataBatch(
                    {"log_probs": gen_batch["old_log_probs"]},
                    meta=gen_batch.meta,
                )
            )
        return batch.union(ref.get()).union(scores.get())

    def _minibatches(self, batch: DataBatch) -> List[DataBatch]:
        n = self.config.updates_per_epoch
        if batch.batch_size % n:
            raise ValueError(
                f"batch {batch.batch_size} not divisible into {n} PPO updates"
            )
        return batch.chunk(n)

    def run_step(self, prompts: DataBatch) -> Dict[str, Any]:
        """One RLHF iteration, traced and metered through the controller.

        Wraps :meth:`step` in an ``iteration`` span (so every dispatch of
        the iteration nests under it in the exported trace), records
        per-iteration count/latency in the controller's metrics registry,
        and appends the step metrics to :attr:`history` on success — so
        iteration numbering stays correct for any driver, including the
        recovery loop.  Works unchanged on bare worker groups with no
        controller.
        """
        controller = getattr(self.actor, "controller", None)
        tracer = getattr(controller, "tracer", None)
        metrics = getattr(controller, "metrics", None)
        iteration = len(self.history)
        algo = self.algo.name.lower()
        started = controller.clock.now if controller is not None else 0.0
        if tracer is None:
            result = self.step(prompts)
        else:
            with tracer.span(
                f"iteration[{iteration}]",
                category="iteration",
                algo=algo,
                iteration=iteration,
            ):
                result = self.step(prompts)
        if metrics is not None:
            metrics.counter(
                "repro_iterations_total", "RLHF iterations completed", algo=algo
            ).inc()
            metrics.histogram(
                "repro_iteration_seconds",
                "Simulated seconds per RLHF iteration",
                algo=algo,
            ).observe(controller.clock.now - started)
        self.history.append(result)
        return result

    def train(
        self, dataset: PromptDataset, n_iterations: int, batch_size: int
    ) -> List[Dict[str, Any]]:
        """Run ``n_iterations`` RLHF iterations over the prompt dataset."""
        batches = dataset.iter_batches(batch_size, epochs=10**6)
        for _ in range(n_iterations):
            self.run_step(next(batches))
        return self.history


class PPOTrainer(RlhfTrainerBase):
    """PPO [55, 68]: the 8-line driver of Figure 6."""

    algo = AlgoType.PPO

    def step(self, prompts: DataBatch) -> Dict[str, Any]:
        cfg = self.config
        # Stage 1: generation
        gen_batch = self.actor.generate_sequences(prompts).get()
        # Stage 2: experience preparation — all scoring passes consume the
        # generation output and can overlap across pools
        values = self.critic.compute_values(gen_batch)
        batch = self._prepare_common(gen_batch).union(values.get())
        batch = compute_advantages(
            batch,
            AlgoType.PPO,
            kl_coef=cfg.kl_coef,
            gamma=cfg.gamma,
            lam=cfg.lam,
            whiten_advantages=cfg.whiten_advantages,
        )
        # Stage 3: actor and critic training
        metrics: Dict[str, Any] = {"score_mean": float(batch["scores"].mean())}
        for _ in range(cfg.ppo_epochs):
            for mini in self._minibatches(batch):
                critic_metrics = self.critic.update_critic(
                    mini, loss_func="ppo"
                ).get()
                actor_metrics = self.actor.update_actor(
                    mini, loss_func="ppo"
                ).get()
            metrics.update({f"critic/{k}": v for k, v in critic_metrics.items()})
            metrics.update({f"actor/{k}": v for k, v in actor_metrics.items()})
        return metrics


class ReMaxTrainer(RlhfTrainerBase):
    """ReMax [43]: extra greedy generation pass, no critic (Figure 6)."""

    algo = AlgoType.REMAX

    def step(self, prompts: DataBatch) -> Dict[str, Any]:
        cfg = self.config
        batch = self.actor.generate_sequences(prompts).get()
        baseline = self.actor.generate_sequences(prompts, do_sample=False).get()
        batch = self._prepare_common(batch)
        baseline_scores = self.reward.compute_reward(baseline).get()["scores"]
        batch = batch.union(
            DataBatch({"baseline_scores": baseline_scores}, meta=batch.meta)
        )
        batch = compute_advantages(batch, AlgoType.REMAX, kl_coef=cfg.kl_coef)
        metrics: Dict[str, Any] = {
            "score_mean": float(batch["scores"].mean()),
            "baseline_score_mean": float(baseline_scores.mean()),
        }
        for _ in range(cfg.ppo_epochs):
            for mini in self._minibatches(batch):
                actor_metrics = self.actor.update_actor(
                    mini, loss_func="remax"
                ).get()
            metrics.update({f"actor/{k}": v for k, v in actor_metrics.items()})
        return metrics


class SafeRLHFTrainer(RlhfTrainerBase):
    """Safe-RLHF [19]: PPO plus a cost model, Lagrangian dual, pretrain loss."""

    algo = AlgoType.SAFE_RLHF

    def __init__(self, *args, pretrain_dataset=None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.cost is None:
            raise ValueError("Safe-RLHF requires a cost worker")
        self.lagrange_multiplier = 0.0
        self.pretrain_dataset = pretrain_dataset

    def state_dict(self):
        state = super().state_dict()
        state["lagrange_multiplier"] = self.lagrange_multiplier
        return state

    def load_state_dict(self, state) -> None:
        self.lagrange_multiplier = float(state["lagrange_multiplier"])
        super().load_state_dict(state)

    def _pretrain_batch(self, size: int) -> Optional[DataBatch]:
        if self.pretrain_dataset is None:
            return None
        start = int(self._rng.integers(0, len(self.pretrain_dataset) - size + 1))
        pretrain = self.pretrain_dataset.batch(start, size)
        return DataBatch({"tokens": pretrain["prompts"]})

    def step(self, prompts: DataBatch) -> Dict[str, Any]:
        cfg = self.config
        gen_batch = self.actor.generate_sequences(prompts).get()
        values = self.critic.compute_values(gen_batch)
        costs = self.cost.compute_cost(gen_batch)
        batch = (
            self._prepare_common(gen_batch)
            .union(values.get())
            .union(costs.get())
        )
        batch = compute_advantages(
            batch,
            AlgoType.SAFE_RLHF,
            kl_coef=cfg.kl_coef,
            gamma=cfg.gamma,
            lam=cfg.lam,
            whiten_advantages=cfg.whiten_advantages,
        )
        self.lagrange_multiplier = update_lagrange_multiplier(
            self.lagrange_multiplier,
            batch["costs"],
            cfg.cost_limit,
            cfg.lagrange_lr,
        )
        metrics: Dict[str, Any] = {
            "score_mean": float(batch["scores"].mean()),
            "cost_mean": float(batch["costs"].mean()),
            "lagrange_multiplier": self.lagrange_multiplier,
        }
        pretrain = self._pretrain_batch(len(prompts))
        if pretrain is not None:
            metrics.update(self.actor.compute_loss(pretrain).get())
        for _ in range(cfg.ppo_epochs):
            for mini_index, mini in enumerate(self._minibatches(batch)):
                critic_metrics = self.critic.update_critic(
                    mini, loss_func="safe-rlhf"
                ).get()
                actor_metrics = self.actor.update_actor(
                    mini,
                    loss_func="safe-rlhf",
                    lagrange_multiplier=self.lagrange_multiplier,
                    pretrain_batch=pretrain,
                    ptx_coef=cfg.ptx_coef,
                ).get()
            metrics.update({f"critic/{k}": v for k, v in critic_metrics.items()})
            metrics.update({f"actor/{k}": v for k, v in actor_metrics.items()})
        return metrics


class GRPOTrainer(RlhfTrainerBase):
    """GRPO [70]: group-relative advantages, no critic (§9's reasoning recipe)."""

    algo = AlgoType.GRPO

    def step(self, prompts: DataBatch) -> Dict[str, Any]:
        cfg = self.config
        grouped = prompts.repeat(cfg.group_size)
        batch = self.actor.generate_sequences(grouped).get()
        batch = self._prepare_common(batch)
        batch = compute_advantages(
            batch, AlgoType.GRPO, group_size=cfg.group_size
        )
        metrics: Dict[str, Any] = {"score_mean": float(batch["scores"].mean())}
        for _ in range(cfg.ppo_epochs):
            for mini in self._minibatches(batch):
                actor_metrics = self.actor.update_actor(
                    mini, loss_func="grpo", kl_coef=cfg.kl_coef
                ).get()
            metrics.update({f"actor/{k}": v for k, v in actor_metrics.items()})
        return metrics
