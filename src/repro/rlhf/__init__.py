"""RLHF algorithm layer: advantage estimators, losses, and dataflow drivers.

The numerics here are what a user edits to move between RLHF algorithms
(§4.2: "they can reuse distributed computation encapsulated in each model
class and simply adjust the code for numerical computations ... such as GAE
and KL divergence").  The drivers in :mod:`repro.rlhf.trainers` are the
Figure 6 single-process programs: PPO in a handful of primitive API calls,
Safe-RLHF five lines more, ReMax one extra generation call and no critic.
"""

from repro.rlhf.advantage import (
    compose_token_rewards,
    gae_advantages,
    grpo_advantages,
    remax_advantages,
)
from repro.rlhf.losses import (
    kl_penalty,
    ppo_policy_loss,
    pretrain_loss,
    value_loss,
)
from repro.rlhf.core import AlgoType, compute_advantages
from repro.rlhf.pipeline import RewardModelTrainer, SFTTrainer
from repro.rlhf.trainers import (
    GRPOTrainer,
    PPOTrainer,
    ReMaxTrainer,
    RlhfTrainerBase,
    SafeRLHFTrainer,
)

__all__ = [
    "AlgoType",
    "GRPOTrainer",
    "PPOTrainer",
    "ReMaxTrainer",
    "RewardModelTrainer",
    "SFTTrainer",
    "RlhfTrainerBase",
    "SafeRLHFTrainer",
    "compose_token_rewards",
    "compute_advantages",
    "gae_advantages",
    "grpo_advantages",
    "kl_penalty",
    "ppo_policy_loss",
    "pretrain_loss",
    "remax_advantages",
    "value_loss",
]
