"""Differentiable RLHF losses over autograd Tensors.

These are the per-algorithm loss functions the paper lists in Table 4
("We implement various loss for diverse RLHF algorithms including PPO,
Safe-RLHF, ReMax, GRPO and others"), shared by the actor/critic workers.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.models.autograd import Tensor


def _as_array(x) -> np.ndarray:
    return x.data if isinstance(x, Tensor) else np.asarray(x, dtype=np.float64)


def _mask_array(
    response_mask: Optional[np.ndarray], shape: Tuple[int, ...]
) -> Optional[np.ndarray]:
    if response_mask is None:
        return None
    mask = np.asarray(response_mask, dtype=np.float64)
    if mask.shape != shape:
        raise ValueError(
            f"response_mask shape {mask.shape} does not match {shape}"
        )
    return mask


def _masked_mean_t(t: Tensor, mask: Optional[np.ndarray]) -> Tensor:
    """Mean of a Tensor over real tokens (differentiable)."""
    if mask is None:
        return t.mean()
    n = max(float(mask.sum()), 1.0)
    return (t * Tensor(mask)).sum() * (1.0 / n)


def _masked_mean_np(arr: np.ndarray, mask: Optional[np.ndarray]) -> float:
    if mask is None:
        return float(np.mean(arr))
    n = max(float(mask.sum()), 1.0)
    return float((arr * mask).sum() / n)


def ppo_policy_loss(
    log_probs: Tensor,
    old_log_probs: np.ndarray,
    advantages: np.ndarray,
    clip_ratio: float = 0.2,
    response_mask: Optional[np.ndarray] = None,
) -> Tuple[Tensor, Dict[str, float]]:
    """Clipped-surrogate PPO objective [68] over response tokens.

    Args:
        log_probs: Current-policy log-probs, differentiable ``(batch, T)``.
        old_log_probs: Behaviour-policy log-probs ``(batch, T)`` (constant).
        advantages: Token-level advantages ``(batch, T)`` (constant).
        clip_ratio: PPO epsilon.
        response_mask: Optional ``(batch, T)`` mask of real response tokens;
            the surrogate and every monitoring statistic average over real
            tokens only, so post-EOS padding carries no gradient.

    Returns:
        ``(loss, metrics)``; metrics include the clipped fraction and an
        estimate of the policy KL for monitoring.
    """
    old_log_probs = _as_array(old_log_probs)
    advantages = _as_array(advantages)
    mask = _mask_array(response_mask, old_log_probs.shape)
    ratio = (log_probs - Tensor(old_log_probs)).exp()
    surr1 = ratio * Tensor(advantages)
    surr2 = ratio.clip(1.0 - clip_ratio, 1.0 + clip_ratio) * Tensor(advantages)
    # elementwise min(surr1, surr2) via -max(-a, -b); loss is its negated mean
    per_token = -((-surr1).maximum(-surr2))
    loss = -(_masked_mean_t(per_token, mask))
    ratio_data = ratio.data
    clipped = (
        (ratio_data < 1.0 - clip_ratio) | (ratio_data > 1.0 + clip_ratio)
    ).astype(np.float64)
    metrics = {
        "policy_loss": float(loss.item()),
        "clip_frac": _masked_mean_np(clipped, mask),
        "approx_kl": _masked_mean_np(old_log_probs - log_probs.data, mask),
        "ratio_mean": _masked_mean_np(ratio_data, mask),
    }
    return loss, metrics


def value_loss(
    values: Tensor,
    old_values: np.ndarray,
    returns: np.ndarray,
    clip_range: float = 0.2,
    response_mask: Optional[np.ndarray] = None,
) -> Tuple[Tensor, Dict[str, float]]:
    """Clipped squared-error critic loss [55].

    The value prediction is clipped around the behaviour-time value to limit
    per-update movement, and the worse (max) of the two squared errors is
    taken.  With ``response_mask``, padded positions are excluded from the
    regression and its statistics.
    """
    old_values = _as_array(old_values)
    returns = _as_array(returns)
    mask = _mask_array(response_mask, old_values.shape)
    clipped = old_values + (values - Tensor(old_values)).clip(
        -clip_range, clip_range
    )
    err = (values - Tensor(returns)) ** 2
    err_clipped = (clipped - Tensor(returns)) ** 2
    loss = 0.5 * _masked_mean_t(err.maximum(err_clipped), mask)
    clip_hits = (np.abs(values.data - old_values) > clip_range).astype(
        np.float64
    )
    if mask is None:
        pred, target = values.data, returns
    else:
        keep = mask > 0
        pred, target = values.data[keep], returns[keep]
    metrics = {
        "value_loss": float(loss.item()),
        "value_clip_frac": _masked_mean_np(clip_hits, mask),
        "explained_var": _explained_variance(pred, target),
    }
    return loss, metrics


def _explained_variance(pred: np.ndarray, target: np.ndarray) -> float:
    if target.size == 0:
        return 0.0
    var = float(np.var(target))
    if var < 1e-12:
        return 0.0
    return float(1.0 - np.var(target - pred) / var)


def pretrain_loss(log_probs: Tensor) -> Tensor:
    """Auxiliary next-token NLL on a pretraining batch (PPO-ptx / Safe-RLHF).

    ``log_probs`` is the actor's ``token_log_probs`` output on pretraining
    text; the loss is the mean negative log-likelihood.
    """
    return -log_probs.mean()


def kl_penalty(
    log_probs: Tensor,
    ref_log_probs: np.ndarray,
    kind: str = "k1",
    response_mask: Optional[np.ndarray] = None,
) -> Tensor:
    """Differentiable KL estimate between actor and reference per token.

    ``k1`` is the plain difference estimator; ``k3`` is Schulman's
    low-variance unbiased estimator ``exp(-d) - 1 + d`` with
    ``d = log_probs - ref_log_probs`` (used by GRPO-style losses).
    """
    ref_arr = _as_array(ref_log_probs)
    mask = _mask_array(response_mask, ref_arr.shape)
    diff = log_probs - Tensor(ref_arr)
    if kind == "k1":
        return _masked_mean_t(diff, mask)
    if kind == "k3":
        return _masked_mean_t((-diff).exp() - 1.0 + diff, mask)
    raise ValueError(f"unknown KL estimator {kind!r}")


def grpo_policy_loss(
    log_probs: Tensor,
    old_log_probs: np.ndarray,
    advantages: np.ndarray,
    ref_log_probs: np.ndarray,
    clip_ratio: float = 0.2,
    kl_coef: float = 0.04,
    response_mask: Optional[np.ndarray] = None,
) -> Tuple[Tensor, Dict[str, float]]:
    """GRPO objective [70]: PPO clip plus an explicit k3 KL-to-reference term."""
    loss, metrics = ppo_policy_loss(
        log_probs, old_log_probs, advantages, clip_ratio,
        response_mask=response_mask,
    )
    kl = kl_penalty(
        log_probs, ref_log_probs, kind="k3", response_mask=response_mask
    )
    total = loss + kl_coef * kl
    metrics = dict(metrics)
    metrics["kl_to_ref"] = float(kl.item())
    metrics["grpo_loss"] = float(total.item())
    return total, metrics


def safe_rlhf_policy_loss(
    log_probs: Tensor,
    old_log_probs: np.ndarray,
    reward_advantages: np.ndarray,
    cost_advantages: np.ndarray,
    lagrange_multiplier: float,
    clip_ratio: float = 0.2,
    response_mask: Optional[np.ndarray] = None,
) -> Tuple[Tensor, Dict[str, float]]:
    """Safe-RLHF [19]: PPO-Lagrangian on the combined advantage.

    The policy maximises ``A_reward - lambda * A_cost`` (normalised by
    ``1 + lambda`` as in the Safe-RLHF reference implementation); the
    multiplier itself is updated outside the loss from the observed cost.
    """
    reward_advantages = _as_array(reward_advantages)
    cost_advantages = _as_array(cost_advantages)
    combined = (reward_advantages - lagrange_multiplier * cost_advantages) / (
        1.0 + lagrange_multiplier
    )
    loss, metrics = ppo_policy_loss(
        log_probs, old_log_probs, combined, clip_ratio,
        response_mask=response_mask,
    )
    metrics = dict(metrics)
    metrics["lagrange_multiplier"] = float(lagrange_multiplier)
    return loss, metrics


def update_lagrange_multiplier(
    multiplier: float,
    mean_cost: np.ndarray,
    cost_limit: float,
    lr: float = 0.1,
) -> float:
    """Projected gradient-ascent step on the Safe-RLHF dual variable.

    The multiplier grows when observed cost exceeds the limit and shrinks
    (down to 0) otherwise.
    """
    violation = float(np.mean(mean_cost)) - cost_limit
    return max(0.0, multiplier + lr * violation)
