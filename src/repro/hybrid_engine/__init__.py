"""The 3D-HybridEngine (§5): actor train/generation resharding on shared GPUs.

The engine executes the §5.2 workflow: all-gather the updated training
shards within each micro-DP group into generation shards (step ①), serve
generation, then drop the generation-only buffers and return to the training
layout (step ④).  Two grouping modes are supported — the vanilla grouping of
HybridFlow-V and the paper's interval grouping with zero memory redundancy —
and the engine reports per-rank communication volume, peak memory, and
redundant bytes so the Table 2 algebra is checkable against real arrays.
"""

from repro.hybrid_engine.engine import (
    GatherTile,
    HybridEngine3D,
    RankTransitionPlan,
    TransitionPlan,
    TransitionReport,
    clear_plan_cache,
    plan_cache_stats,
    plan_transition,
)
from repro.hybrid_engine.overhead import (
    EngineKind,
    TransitionOverhead,
    transition_overhead,
)
from repro.hybrid_engine.publication import WeightPublisher

__all__ = [
    "EngineKind",
    "WeightPublisher",
    "GatherTile",
    "HybridEngine3D",
    "RankTransitionPlan",
    "TransitionOverhead",
    "TransitionPlan",
    "TransitionReport",
    "clear_plan_cache",
    "plan_cache_stats",
    "plan_transition",
    "transition_overhead",
]
