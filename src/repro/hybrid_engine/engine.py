"""Functional 3D-HybridEngine: real shard movement between train and gen layouts.

Operates on a :class:`~repro.single_controller.worker_group.WorkerGroup` of
:class:`~repro.workers.base.ShardedModelWorker` ranks that has a generation
topology installed.  ``to_generation`` builds every rank's *generation shard*
from the resting training shards:

* **HYBRIDFLOW grouping** (§5.3): the members of a rank's micro-DP group hold
  exactly the training tiles that make up its generation shard, so one
  all-gather within the micro-DP group suffices; the rank's own training
  shard is reused in place (zero redundancy).
* **VANILLA grouping** (HybridFlow-V): micro-DP peers hold the *same* target
  shard but different source tiles, so the full model must be gathered
  within the training model-parallel group and then sliced — the peak-memory
  ``M`` and redundant storage of Table 2.

All movement is in real numpy arrays with traffic metered, and the device
memory ledger reflects the generation-only buffers, so the Table 2 algebra is
verified against observed bytes, not re-derived.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from repro.models.sharding import (
    gather_full_params,
    param_partition,
    shard_nbytes,
    shard_params,
)
from repro.parallel.sharding import WeightShard, generation_shard, training_shard
from repro.parallel.topology import GenGroupingMode, GenTopology


@dataclasses.dataclass(frozen=True)
class GatherTile:
    """One tile shipped during a transition: a rectangle from a source rank."""

    source_rank: int
    shard: WeightShard


@dataclasses.dataclass(frozen=True)
class RankTransitionPlan:
    """What one rank gathers to move from its training to its gen layout.

    ``reused`` is the rank's own resting training shard (kept in place);
    ``tiles`` are the rectangles it receives from peers; together they must
    cover ``target``.  ``group_ranks`` is the collective group the gather
    runs in.
    """

    rank: int
    target: WeightShard
    reused: WeightShard
    tiles: tuple  # of GatherTile
    group_ranks: tuple  # of int


@dataclasses.dataclass(frozen=True)
class TransitionPlan:
    """The full train->generation all-gather plan, one entry per rank.

    This is the *declarative* form of what :meth:`HybridEngine3D.to_generation`
    executes — produced independently from the topology geometry so the
    :class:`~repro.analysis.ShardingVerifier` can prove coverage and
    zero-redundancy (§5.3, Eq. 1–2) without running the engine.
    """

    mode: GenGroupingMode
    by_rank: Dict[int, RankTransitionPlan]


# plan_transition is a pure function of the topology *geometry* — grouping
# mode, training/generation parallel configs, and the rank list — so plans
# are memoized on that key.  Every PPO iteration replans the same pair of
# layouts twice (train->gen and back); with the cache only the first
# iteration pays the per-rank shard/tile derivation.
_PLAN_CACHE: Dict[tuple, TransitionPlan] = {}
_PLAN_CACHE_STATS = {"hits": 0, "misses": 0}


def plan_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of the transition-plan memo (for the bench)."""
    return {**_PLAN_CACHE_STATS, "size": len(_PLAN_CACHE)}


def clear_plan_cache() -> None:
    """Drop memoized transition plans (tests and benchmarks)."""
    _PLAN_CACHE.clear()
    _PLAN_CACHE_STATS["hits"] = 0
    _PLAN_CACHE_STATS["misses"] = 0


def plan_transition(gen: GenTopology) -> TransitionPlan:
    """Derive the per-rank gather plan a topology pair implies.

    * HYBRIDFLOW: each rank gathers exactly its micro-DP peers' training
      shards — those tile its generation shard with its own shard reused in
      place (the zero-redundancy grouping of Figure 8b).
    * VANILLA: each rank gathers every training model-parallel peer's shard
      (the full replica) and slices its generation shard out, as
      ``_gather_vanilla`` does.

    The result is memoized: ``TransitionPlan`` is frozen, so callers across
    topologies with identical geometry share one instance.
    """
    train = gen.train
    cache_key = (
        gen.mode,
        gen.config,
        train.config,
        tuple(train.global_ranks),
    )
    cached = _PLAN_CACHE.get(cache_key)
    if cached is not None:
        _PLAN_CACHE_STATS["hits"] += 1
        return cached
    _PLAN_CACHE_STATS["misses"] += 1
    by_rank: Dict[int, RankTransitionPlan] = {}
    for rank in train.global_ranks:
        if gen.mode is GenGroupingMode.HYBRIDFLOW:
            group = gen.micro_dp_group(rank)
        else:
            group = train.mp_group(rank)
        tiles = tuple(
            GatherTile(peer, training_shard(train, peer))
            for peer in group.ranks
            if peer != rank
        )
        by_rank[rank] = RankTransitionPlan(
            rank=rank,
            target=generation_shard(gen, rank),
            reused=training_shard(train, rank),
            tiles=tiles,
            group_ranks=tuple(group.ranks),
        )
    plan = TransitionPlan(mode=gen.mode, by_rank=by_rank)
    _PLAN_CACHE[cache_key] = plan
    return plan


@dataclasses.dataclass
class TransitionReport:
    """Observed per-rank costs of one train->generation transition."""

    comm_bytes_per_rank: Dict[int, int]
    peak_param_bytes_per_rank: Dict[int, int]
    redundant_bytes_per_rank: Dict[int, int]

    @property
    def max_comm_bytes(self) -> int:
        return max(self.comm_bytes_per_rank.values())

    @property
    def max_peak_bytes(self) -> int:
        return max(self.peak_param_bytes_per_rank.values())

    @property
    def total_redundant_bytes(self) -> int:
        return sum(self.redundant_bytes_per_rank.values())


class HybridEngine3D:
    """Drives the §5.2 workflow over a worker group's real shards."""

    def __init__(self, group) -> None:
        if group.gen_topology is None:
            raise ValueError(
                f"worker group {group.name!r} has no generation topology; "
                "pass gen_config when building the group"
            )
        self.group = group
        self.in_generation = False
        self.last_report: Optional[TransitionReport] = None

    @property
    def gen_topology(self) -> GenTopology:
        return self.group.gen_topology

    def plan_transition(self) -> TransitionPlan:
        """The declarative gather plan this engine will execute."""
        return plan_transition(self.gen_topology)

    def _observability(self):
        """The owning controller's (tracer, metrics), if any."""
        controller = getattr(self.group, "controller", None)
        return (
            getattr(controller, "tracer", None),
            getattr(controller, "metrics", None),
        )

    def _note_transition(self, direction: str, comm_bytes: int) -> None:
        tracer, metrics = self._observability()
        if tracer is not None:
            pool = self.group.resource_pool
            tracer.instant(
                f"{self.group.name}.{direction}",
                category="transition",
                pool=pool.name,
                ranks=tuple(pool.global_ranks),
                payload_bytes=comm_bytes,
                direction=direction,
                mode=self.gen_topology.mode.name,
            )
        if metrics is not None:
            metrics.counter(
                "repro_transitions_total",
                "HybridEngine train<->generation layout transitions",
                direction=direction,
            ).inc()
            metrics.counter(
                "repro_transition_bytes_total",
                "Bytes moved by HybridEngine transitions",
            ).inc(comm_bytes)

    # -- transition: training -> generation (steps 1-2 of Figure 7) ----------------

    def to_generation(self) -> TransitionReport:
        """Build generation shards on every rank; returns observed costs."""
        if self.in_generation:
            raise RuntimeError("engine is already in the generation layout")
        gen = self.gen_topology
        mode = gen.mode
        comm: Dict[int, int] = {}
        peak: Dict[int, int] = {}
        redundant: Dict[int, int] = {}

        for worker in self.group.workers:
            rank = worker.ctx.global_rank
            train_bytes = shard_nbytes(worker.shard)
            if mode is GenGroupingMode.HYBRIDFLOW:
                gen_shard, moved = self._gather_micro_dp(worker)
                # training shard is contained in the generation shard: reuse
                extra = shard_nbytes(gen_shard) - train_bytes
                redundant[rank] = 0
                peak[rank] = shard_nbytes(gen_shard)
            else:
                # vanilla aggregates the full model before slicing (Table 2):
                # account the transient gather buffer in the device ledger
                full_bytes = self._full_model_bytes()
                tmp_tag = f"{worker.tag}/transition_gather"
                worker.ctx.device.memory.alloc(tmp_tag, full_bytes - train_bytes)
                gen_shard, moved, extra, dup = self._gather_vanilla(worker)
                worker.ctx.device.memory.free_tag(tmp_tag)
                redundant[rank] = dup
                peak[rank] = full_bytes
            comm[rank] = moved
            worker.gen_shard = gen_shard
            worker.ctx.device.memory.alloc(
                f"{worker.tag}/gen_params_extra", max(extra, 0)
            )
        self.in_generation = True
        self.last_report = TransitionReport(comm, peak, redundant)
        self._note_transition("to_generation", sum(comm.values()))
        return self.last_report

    def _full_model_bytes(self) -> int:
        worker = self.group.workers[0]
        return sum(
            int(np.prod(shape)) * 8 for shape in worker._shapes.values()
        )

    def _gather_micro_dp(self, worker):
        """HYBRIDFLOW path: all-gather training tiles within the micro-DP group."""
        gen = self.gen_topology
        group = gen.micro_dp_group(worker.ctx.global_rank)
        members = [worker.ctx.peer(r) for r in group.ranks]
        total = sum(shard_nbytes(m.shard) for m in members)
        moved = (group.size - 1) * total // group.size if group.size > 1 else 0
        group.record_traffic("hybrid_engine_all_gather", moved)

        # merge member training shards: same layer params concat on TP axis,
        # members ordered by training tensor rank
        members_sorted = sorted(members, key=lambda m: (m.ctx.coords.p, m.ctx.coords.t))
        merged: Dict[str, List[np.ndarray]] = {}
        order: Dict[str, List[int]] = {}
        for member in members_sorted:
            t_rank = member.ctx.coords.t
            for name, arr in member.shard.items():
                merged.setdefault(name, []).append(arr)
                order.setdefault(name, []).append(t_rank)
        gen_shard: Dict[str, np.ndarray] = {}
        for name, pieces in merged.items():
            axis = param_partition(name)
            if axis is None or len(pieces) == 1:
                gen_shard[name] = pieces[0].copy()
            else:
                ranked = [p for _, p in sorted(zip(order[name], pieces))]
                gen_shard[name] = np.concatenate(ranked, axis=axis)
        return gen_shard, moved

    def _gather_vanilla(self, worker):
        """VANILLA path: gather the full model in the MP group, then slice."""
        topo = self.group.train_topology
        cfg = topo.config
        gen = self.gen_topology
        mp_group = topo.mp_group(worker.ctx.global_rank)
        members = [worker.ctx.peer(r) for r in mp_group.ranks]
        total = sum(shard_nbytes(m.shard) for m in members)
        moved = (
            (mp_group.size - 1) * total // mp_group.size
            if mp_group.size > 1
            else 0
        )
        mp_group.record_traffic("hybrid_engine_all_gather", moved)
        by_coord = {
            (m.ctx.coords.p, m.ctx.coords.t): m.shard for m in members
        }
        full = gather_full_params(by_coord, tp_size=cfg.tp, pp_size=cfg.pp)
        c = gen.coords(worker.ctx.global_rank)
        gen_shard = shard_params(
            full,
            tp_rank=c.tg,
            tp_size=gen.config.tp,
            pp_rank=c.pg,
            pp_size=gen.config.pp,
            n_layers=worker.model_config.n_layers,
        )
        # overlap between the rank's training shard and its new gen shard:
        # bytes it can reuse; the rest of the training shard is duplicate
        overlap = 0
        for name, arr in worker.shard.items():
            if name in gen_shard:
                gen_arr = gen_shard[name]
                axis = param_partition(name)
                if axis is None:
                    overlap += arr.nbytes
                else:
                    # training slice [t/tp] overlaps gen slice [tg/tg_size]?
                    t_lo = worker.ctx.coords.t / cfg.tp
                    t_hi = (worker.ctx.coords.t + 1) / cfg.tp
                    g_lo = c.tg / gen.config.tp
                    g_hi = (c.tg + 1) / gen.config.tp
                    frac = max(0.0, min(t_hi, g_hi) - max(t_lo, g_lo)) * cfg.tp
                    overlap += int(arr.nbytes * frac)
        train_bytes = shard_nbytes(worker.shard)
        duplicate = train_bytes - overlap
        extra = shard_nbytes(gen_shard) - overlap
        return gen_shard, moved, extra, duplicate

    # -- generation-side helpers -----------------------------------------------------

    def materialize_generation_replica(self, worker) -> Dict[str, np.ndarray]:
        """Full weights of a rank's generation replica, from gen shards.

        Gathers across the generation model-parallel ranks (all ``(p_g,t_g)``
        with this rank's ``(d_g, d)``); used by the actor to run generation
        compute for its micro-batch.
        """
        if not self.in_generation:
            raise RuntimeError("not in the generation layout")
        gen = self.gen_topology
        my = gen.coords(worker.ctx.global_rank)
        members = []
        for g in self.group.train_topology.global_ranks:
            c = gen.coords(g)
            if c.dg == my.dg and c.d == my.d:
                members.append(worker.ctx.peer(g))
        by_coord = {}
        for m in members:
            c = gen.coords(m.ctx.global_rank)
            by_coord[(c.pg, c.tg)] = m.gen_shard
        return gather_full_params(
            by_coord, tp_size=gen.config.tp, pp_size=gen.config.pp
        )

    # -- transition: generation -> training (step 4 of Figure 7) ------------------------

    def to_training(self) -> None:
        """Drop generation-only buffers; training shards remain authoritative."""
        if not self.in_generation:
            raise RuntimeError("engine is not in the generation layout")
        for worker in self.group.workers:
            if hasattr(worker, "gen_shard"):
                del worker.gen_shard
            worker.ctx.device.memory.free_tag(f"{worker.tag}/gen_params_extra")
        self.in_generation = False
        self._note_transition("to_training", 0)
