"""Non-blocking weight publication from trainer to rollout engine.

The async one-step-off pipeline (:mod:`repro.pipeline`) breaks the
synchronous loop's implicit weight hand-off: in the synchronous loop the
generator trivially sees the newest policy because generation and training
alternate on the same shards.  Once rollout for iteration *t+1* overlaps
training of iteration *t*, the hand-off must become explicit — and it must
not block the decode loop, or the overlap is lost.

:class:`WeightPublisher` models the double-buffered protocol real systems
use:

* ``publish(version)`` — called by the trainer after each optimizer step.
  It *stages* the new weights for the generator (writes the version's
  snapshot slot) and returns immediately; the decode loop keeps running on
  the previously active snapshot.  The per-rank bytes the publication ships
  are exactly the tiles of the memoized train→generation
  :func:`~repro.hybrid_engine.engine.plan_transition` — publication reuses
  the §5.2 all-gather plan rather than inventing a second resharding path.
* ``acquire()`` — called at a generate-call boundary.  The engine flips the
  staged snapshot to active and tags every sequence it produces with that
  policy version.  Switching only at call boundaries is what keeps a batch's
  behaviour policy well-defined (one version per batch, never a mid-batch
  mix).

Each snapshot slot is a distinct resource in the controller's access log
(``pipeline/weights[v{n}]``): the trainer's publish is the only WRITE and
every rollout acquire is a READ that happens-after it, so the RC5xx race
detector can *prove* the overlapped schedule sound — the writes the trainer
makes for version *t+1* never touch the snapshot version *t* decodes from.
"""

from __future__ import annotations

from fractions import Fraction

from repro.hybrid_engine.engine import plan_transition
from repro.models.sharding import shard_nbytes
from repro.single_controller.access_log import READ, WRITE


class WeightPublisher:
    """Double-buffered trainer→generator weight hand-off over one group.

    Args:
        group: The actor :class:`~repro.single_controller.WorkerGroup`
            (must carry a generation topology — the publication plan is the
            train→gen transition plan).
    """

    def __init__(self, group) -> None:
        if group.gen_topology is None:
            raise ValueError(
                f"worker group {group.name!r} has no generation topology; "
                "weight publication needs the train->gen transition plan"
            )
        self.group = group
        self._staged = 0
        self._active = 0
        self.publications = 0
        self.acquisitions = 0
        self.bytes_published = 0

    # -- introspection ---------------------------------------------------------------

    @property
    def staged_version(self) -> int:
        """Newest version published by the trainer (not yet decoding)."""
        return self._staged

    @property
    def active_version(self) -> int:
        """Version the decode loop currently generates with."""
        return self._active

    def _controller(self):
        return getattr(self.group, "controller", None)

    def publish_bytes_per_version(self) -> int:
        """Bytes one publication ships: the transition plan's gather tiles.

        Per rank, the tiles received from *peers* (the rank's own resting
        shard is reused in place and never moves) — identical accounting to
        :meth:`~repro.hybrid_engine.engine.HybridEngine3D.to_generation`,
        and served from the same memoized plan.  Tile rectangles are
        fractions of the unit square, scaled by the real replica bytes held
        on the workers' resting shards.
        """
        plan = plan_transition(self.group.gen_topology)
        moved = sum(
            (
                tile.shard.fraction
                for rank_plan in plan.by_rank.values()
                for tile in rank_plan.tiles
                if tile.source_rank != rank_plan.rank
            ),
            Fraction(0),
        )
        replica_bytes = sum(
            shard_nbytes(w.shard)
            for w in self.group.workers
            if w.ctx.coords.d == 0
        )
        return int(moved * replica_bytes)

    # -- the protocol ----------------------------------------------------------------

    def publish(self, version: int) -> int:
        """Stage ``version`` for the generator without blocking decode.

        Returns the bytes shipped.  Versions must be published in
        increasing order — a republication of an older version would let a
        batch regress to an earlier behaviour policy.
        """
        if version <= self._staged and self.publications > 0:
            raise ValueError(
                f"publish version {version} is not newer than the staged "
                f"version {self._staged}"
            )
        nbytes = self.publish_bytes_per_version()
        controller = self._controller()
        if controller is not None:
            controller.record_access(
                WRITE,
                f"pipeline/weights[v{version}]",
                note=f"publish policy version {version}",
            )
            tracer = getattr(controller, "tracer", None)
            if tracer is not None:
                tracer.instant(
                    f"{self.group.name}.publish[v{version}]",
                    category="pipeline",
                    version=version,
                    payload_bytes=nbytes,
                    staged_behind=version - self._active,
                )
            metrics = getattr(controller, "metrics", None)
            if metrics is not None:
                metrics.counter(
                    "repro_pipeline_publications_total",
                    "Policy-weight publications from trainer to generator",
                ).inc()
                metrics.counter(
                    "repro_pipeline_published_bytes_total",
                    "Bytes shipped by weight publications",
                ).inc(nbytes)
        self._staged = version
        self.publications += 1
        self.bytes_published += nbytes
        return nbytes

    def acquire(self) -> int:
        """Flip the staged snapshot to active at a generate-call boundary.

        Returns the version every sequence of the next generate call must be
        tagged with (its behaviour policy).
        """
        self._active = self._staged
        controller = self._controller()
        if controller is not None:
            controller.record_access(
                READ,
                f"pipeline/weights[v{self._active}]",
                note=f"rollout acquires policy version {self._active}",
            )
        self.acquisitions += 1
        return self._active

    def state_dict(self) -> dict:
        return {
            "staged": self._staged,
            "active": self._active,
            "publications": self.publications,
            "acquisitions": self.acquisitions,
            "bytes_published": self.bytes_published,
        }

    def load_state_dict(self, state: dict) -> None:
        self._staged = int(state["staged"])
        self._active = int(state["active"])
        self.publications = int(state["publications"])
        self.acquisitions = int(state["acquisitions"])
        self.bytes_published = int(state["bytes_published"])


__all__ = ["WeightPublisher"]
