"""Closed-form transition overhead per actor-engine design (Table 2).

For an actor of size ``M`` bytes trained with 3D parallel sizes ``p-t-d`` and
generating with ``p_g-t_g`` (micro DP ``d_g = pt / (p_g t_g)``):

=============  =======================  ==================  =================
Engine         Comm. volume / GPU       Peak param memory   Redundancy
=============  =======================  ==================  =================
DS-Chat        ``(tpd-1)/(tpd) * M``    ``M``               ``M/(tpd)``
HybridFlow-V   ``(tp-1)/(tp) * M``      ``M``               ``M/(tp)``
HybridFlow     ``(tp - t_g p_g) /       ``M/(t_g p_g)``     ``0``
               (t_g p_g t p) * M``
=============  =======================  ==================  =================

(The table follows the paper's shorthand where ``tp`` denotes the product
``t * p``, the model-parallel size.)
"""

from __future__ import annotations

import dataclasses
import enum
from fractions import Fraction

from repro.config import GenParallelConfig, ParallelConfig


class EngineKind(enum.Enum):
    """Actor-engine designs compared in Table 2."""

    DS_CHAT = "ds-chat"
    HYBRIDFLOW_V = "hybridflow-v"
    HYBRIDFLOW = "hybridflow"


@dataclasses.dataclass(frozen=True)
class TransitionOverhead:
    """Per-GPU transition cost, as fractions of the model size ``M``."""

    comm_fraction: Fraction
    peak_memory_fraction: Fraction
    redundancy_fraction: Fraction

    def comm_bytes(self, model_bytes: int) -> float:
        return float(self.comm_fraction) * model_bytes

    def peak_memory_bytes(self, model_bytes: int) -> float:
        return float(self.peak_memory_fraction) * model_bytes

    def redundancy_bytes(self, model_bytes: int) -> float:
        return float(self.redundancy_fraction) * model_bytes


def transition_overhead(
    kind: EngineKind,
    train: ParallelConfig,
    gen: GenParallelConfig,
) -> TransitionOverhead:
    """Table 2 row for the given engine and parallel configuration."""
    t, p, d = train.tp, train.pp, train.dp
    tg, pg = gen.tp, gen.pp
    mp = t * p
    gen_mp = tg * pg
    if mp % gen_mp:
        raise ValueError(
            f"generation MP size {gen_mp} must divide training MP size {mp}"
        )
    if kind is EngineKind.DS_CHAT:
        n = t * p * d
        return TransitionOverhead(
            comm_fraction=Fraction(n - 1, n),
            peak_memory_fraction=Fraction(1),
            redundancy_fraction=Fraction(1, n),
        )
    if kind is EngineKind.HYBRIDFLOW_V:
        return TransitionOverhead(
            comm_fraction=Fraction(mp - 1, mp),
            peak_memory_fraction=Fraction(1),
            redundancy_fraction=Fraction(1, mp),
        )
    if kind is EngineKind.HYBRIDFLOW:
        return TransitionOverhead(
            comm_fraction=Fraction(mp - gen_mp, gen_mp * mp),
            peak_memory_fraction=Fraction(1, gen_mp),
            redundancy_fraction=Fraction(0),
        )
    raise ValueError(f"unknown engine kind {kind}")  # pragma: no cover
