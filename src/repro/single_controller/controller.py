"""The single controller: pools, groups, execution trace, checkpoints.

One :class:`SingleController` per RLHF job.  It owns the simulated cluster,
hands out non-overlapping resource pools, tracks every remote call in an
execution trace (used to verify execution *patterns* — Table 1), and
coordinates checkpointing across worker groups via "RPC" (§9: "Our
programming model enables the single controller to coordinate checkpoint
operations via RPC").

Beyond the happy path, the controller carries the job's failure policy: a
simulated clock, a retry/backoff/timeout :class:`~repro.faults.RetryPolicy`
consulted on every remote call, an optional
:class:`~repro.faults.FaultInjector`, and ``release_pools`` — the teardown
half of recovery, which returns devices to the cluster so a rebuilt job can
re-place itself on the survivors.

Checkpoints are written atomically (staged in a sibling directory, then
renamed into place) so a crash mid-save can never leave a half-written
checkpoint that a later ``load_checkpoint`` trusts, and every load failure
surfaces as a typed :class:`CheckpointError` rather than a raw
``KeyError``/``JSONDecodeError``.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import shutil
from typing import Any, Dict, List, Optional

import numpy as np

from repro.cluster import SimCluster
from repro.comm.groups import TrafficMeter
from repro.config import ClusterSpec
from repro.faults.policy import RetryPolicy, SimClock
from repro.observability.metrics import MetricsRegistry
from repro.observability.spans import SpanTracer
from repro.serialization import json_safe
from repro.single_controller.access_log import CONTROLLER_RANK, READ, WRITE, AccessLog
from repro.single_controller.resource_pool import ResourcePool
from repro.single_controller.worker_group import WorkerGroup


class CheckpointError(ValueError):
    """A checkpoint is missing, truncated, corrupted, or inconsistent.

    Subclasses ``ValueError`` so pre-existing callers that guarded the
    structural mismatches (missing group, rank count) keep working.
    """


@dataclasses.dataclass(frozen=True)
class ExecutionRecord:
    """One remote call: which group ran which method, in global order.

    ``deps`` holds the trace sequence numbers of the calls whose output
    futures fed this call — the edges of the RLHF dataflow DAG, which the
    timeline scheduler replays with asynchronous-execution semantics (§4.1).
    """

    seq: int
    group: str
    method: str
    pool: str
    deps: tuple = ()


def _json_safe(value: Any, where: str) -> Any:
    """Coerce checkpoint scalars to JSON-serializable Python types.

    Worker ``state_for_checkpoint`` dicts routinely contain numpy scalar
    types (``np.float32``, ``np.int64``, 0-d arrays); these crash
    ``json.dumps`` unless coerced.  Delegates to the shared
    :func:`repro.serialization.json_safe` rules; anything non-serializable
    raises a :class:`CheckpointError` naming the offending key.
    """
    return json_safe(value, where, error=CheckpointError)


class SingleController:
    """Central coordinator of the RLHF dataflow."""

    def __init__(
        self,
        cluster_spec: Optional[ClusterSpec] = None,
        cluster: Optional[SimCluster] = None,
    ) -> None:
        #: Recovery rebuilds pass the *surviving* cluster back in so dead
        #: devices stay dead and re-placement runs on the shrunken world.
        self.cluster = (
            cluster if cluster is not None else SimCluster(cluster_spec or ClusterSpec())
        )
        self.meter = TrafficMeter()
        self.pools: Dict[str, ResourcePool] = {}
        self.groups: List[WorkerGroup] = []
        self.trace: List[ExecutionRecord] = []
        self._seq = 0
        #: Simulated wall clock; remote calls, backoff waits, and recovery
        #: actions all advance it (repro.faults.SimClock).
        self.clock = SimClock()
        #: Transient-fault handling for every remote call.
        self.retry_policy = RetryPolicy()
        #: Optional fault delivery (repro.faults.FaultInjector).
        self.fault_injector = None
        #: Structured span tracing of every dispatch, reshard, transition,
        #: checkpoint, and recovery phase (repro.observability).
        self.tracer = SpanTracer(self.clock)
        #: Counters/gauges/histograms fed by the dispatch path, fault gate,
        #: cluster collectors, and RLHF pipeline.
        self.metrics = MetricsRegistry()
        #: Shared-state read/write events for the RC5xx race detector.
        self.access_log = AccessLog()
        #: Seq of the dispatch currently executing, ``None`` between calls
        #: (controller context).  Set by :class:`RemoteMethod` around the
        #: distribute/execute/collect round trip.
        self.current_seq: Optional[int] = None

    # -- resources -----------------------------------------------------------------

    def create_pool(self, n_gpus: int, name: Optional[str] = None) -> ResourcePool:
        pool = ResourcePool.allocate(self.cluster, n_gpus, name=name)
        if pool.name in self.pools:
            raise ValueError(f"duplicate pool name {pool.name!r}")
        self.pools[pool.name] = pool
        for device in pool.devices:
            device.memory.recorder = self._memory_recorder(device.global_rank)
        return pool

    def _memory_recorder(self, rank: int):
        """Route a device's ledger mutations into the access log.

        Every ledger op is a *write* to that device's tag; the resource name
        embeds the rank, so only genuinely cross-rank hazards (which would
        need two devices writing one resource) can ever collide.
        """

        def recorder(op: str, tag: str) -> None:
            self.record_access(WRITE, f"mem[{rank}]/{tag}", rank=rank, note=op)

        return recorder

    def release_pools(self) -> None:
        """Return every pool's devices to the cluster (recovery teardown).

        The job's workers are considered gone: surviving devices get their
        memory ledgers wiped so a rebuilt job can allocate cleanly, and dead
        devices stay dead.  The trace is kept — it documents the failed run.
        """
        for name in sorted(self.pools):
            self.cluster.release(self.pools[name].devices, clear_memory=True)
        self.pools.clear()
        self.groups.clear()

    def attach_group(self, group: WorkerGroup) -> None:
        self.groups.append(group)

    def group_named(self, name: str) -> WorkerGroup:
        for group in self.groups:
            if group.name == name:
                return group
        raise KeyError(f"no worker group named {name!r}")

    # -- fault policy ------------------------------------------------------------------

    def attach_fault_injector(self, injector) -> None:
        """Install a :class:`repro.faults.FaultInjector` on this job."""
        injector.bind(self)
        self.fault_injector = injector

    # -- observability -----------------------------------------------------------------

    def attach_observability(
        self, tracer: Optional[SpanTracer] = None, metrics: Optional[MetricsRegistry] = None
    ) -> None:
        """Carry a tracer/registry across a recovery rebuild.

        The rebuilt controller keeps the observability record of the failed
        incarnation: spans keep accumulating on the same tracer (re-pointed
        at this controller's clock) and metrics keep their counts —
        recovery must not zero the job's history.
        """
        if tracer is not None:
            tracer.set_clock(self.clock)
            self.tracer = tracer
        if metrics is not None:
            self.metrics = metrics

    # -- tracing -----------------------------------------------------------------------

    @property
    def next_seq(self) -> int:
        """Sequence number the next remote call will record."""
        return self._seq

    def record_execution(
        self, group: WorkerGroup, method: str, deps: tuple = ()
    ) -> int:
        seq = self._seq
        self.trace.append(
            ExecutionRecord(
                seq=seq,
                group=group.name,
                method=method,
                pool=group.resource_pool.name,
                deps=tuple(deps),
            )
        )
        self._seq += 1
        return seq

    def trace_methods(self) -> List[str]:
        """The execution pattern as ``"group.method"`` strings, in order."""
        return [f"{r.group}.{r.method}" for r in self.trace]

    def reset_trace(self) -> None:
        self.trace.clear()
        self.access_log.clear()
        self._seq = 0

    def record_access(
        self,
        kind: str,
        resource: str,
        rank: int = CONTROLLER_RANK,
        ordered: bool = True,
        note: str = "",
    ) -> None:
        """Log a shared-state access for the RC5xx race detector.

        ``current_seq`` (the in-flight dispatch) and ``next_seq`` (dispatches
        completed so far) position the event in the happens-before model;
        callers only say *what* was touched and by *whom*.
        """
        self.access_log.record(
            kind,
            resource,
            rank=rank,
            seq=self.current_seq,
            after_seq=self._seq,
            ordered=ordered,
            note=note,
        )

    # -- checkpointing (§9) ---------------------------------------------------------------

    def save_checkpoint(
        self, directory: str, extra: Optional[Dict[str, Any]] = None
    ) -> None:
        """Persist every worker's rank-local state plus an RNG-aware manifest.

        The write is atomic: everything is staged into a sibling temp
        directory and renamed into place, so an interrupted save leaves
        either the previous checkpoint or the new one — never a mix.

        Args:
            extra: Caller state (e.g. the trainer's ``state_dict``) stored in
                the manifest; must sanitize to JSON.
        """
        with self.tracer.span(
            "checkpoint.write", category="checkpoint", directory=str(directory)
        ) as span:
            self.record_access(
                WRITE, f"checkpoint:{directory}", note="save_checkpoint"
            )
            self._save_checkpoint(directory, extra, span)

    def _save_checkpoint(
        self, directory: str, extra: Optional[Dict[str, Any]], span
    ) -> None:
        root = pathlib.Path(directory)
        root.parent.mkdir(parents=True, exist_ok=True)
        staging = root.parent / f".{root.name}.saving"
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir(parents=True)

        manifest: Dict[str, Any] = {
            # simulated time, deliberately: a wall-clock stamp here would
            # make checkpoint bytes non-deterministic across identical runs
            "saved_at": self.clock.now,
            "trace_seq": self._seq,
            "clock": self.clock.now,
            "groups": [],
            "extra": _json_safe(extra, "extra") if extra is not None else None,
        }
        for gi, group in enumerate(self.groups):
            cfg = group.train_topology.config
            group_entry = {
                "name": group.name,
                # Recorded so a resized restore (allow_resize=True) can map
                # saved ranks onto a narrower/wider DP layout by coordinates.
                "parallel": [cfg.pp, cfg.tp, cfg.dp],
                "layout": getattr(group.workers[0], "layout", None),
                "workers": [],
            }
            for wi, worker in enumerate(group.workers):
                state = worker.state_for_checkpoint()
                arrays = {
                    k: v
                    for k, v in state.items()
                    if isinstance(v, np.ndarray) and v.ndim > 0
                }
                scalars = {
                    k: _json_safe(v, f"{group.name}[{wi}].{k}")
                    for k, v in state.items()
                    if k not in arrays
                }
                fname = f"group{gi}_worker{wi}.npz"
                if arrays:
                    np.savez(staging / fname, **arrays)
                group_entry["workers"].append(
                    {"file": fname if arrays else None, "scalars": scalars}
                )
            manifest["groups"].append(group_entry)
        (staging / "manifest.json").write_text(json.dumps(manifest, indent=2))

        saved_bytes = sum(
            f.stat().st_size for f in staging.iterdir() if f.is_file()
        )
        span.payload_bytes = saved_bytes
        self.metrics.counter(
            "repro_checkpoint_saves_total", "Checkpoints written"
        ).inc()
        self.metrics.counter(
            "repro_checkpoint_bytes_total",
            "Checkpoint bytes moved, by direction",
            direction="save",
        ).inc(saved_bytes)

        if root.exists():
            replaced = root.parent / f".{root.name}.replaced"
            if replaced.exists():
                shutil.rmtree(replaced)
            root.rename(replaced)
            staging.rename(root)
            shutil.rmtree(replaced)
        else:
            staging.rename(root)

    def load_checkpoint(
        self, directory: str, allow_resize: bool = False
    ) -> Dict[str, Any]:
        """Restore every worker from ``directory``; returns the manifest.

        The controller's trace sequence counter resumes from the saved value
        so a recovered run continues numbering instead of restarting at 0.
        Any missing, truncated, or corrupted file raises
        :class:`CheckpointError` with the reason.

        If a save was interrupted between swapping the old checkpoint out
        and the new one in, the previous complete checkpoint survives as
        ``.<name>.replaced`` next to ``directory``; loading falls back to it
        so a crash mid-save never strands the job without a restore point.

        Args:
            allow_resize: Permit restoring into groups whose DP width
                differs from the saved one (same PP/TP, 3d layout only).
                Ranks are mapped by parallel coordinates: 3d shards depend
                only on the (pipeline, tensor) position, and DP replicas are
                bit-identical copies, so a shrunken group loads the matching
                prefix and a grown group clones the last saved replica.
        """
        with self.tracer.span(
            "checkpoint.read", category="checkpoint", directory=str(directory)
        ) as span:
            self.record_access(
                READ, f"checkpoint:{directory}", note="load_checkpoint"
            )
            return self._load_checkpoint(directory, span, allow_resize)

    def _resolve_checkpoint_root(self, directory: str) -> pathlib.Path:
        root = pathlib.Path(directory)
        fallback = root.parent / f".{root.name}.replaced"
        if root.is_dir() and (root / "manifest.json").is_file():
            return root
        # A crash between the two rename steps of an atomic save can leave
        # the old checkpoint parked under the .replaced name; use it.
        if fallback.is_dir() and (fallback / "manifest.json").is_file():
            return fallback
        if not root.is_dir():
            raise CheckpointError(f"no checkpoint directory at {root}")
        raise CheckpointError(f"checkpoint at {root} has no manifest.json")

    def _resize_index_map(self, group, entry: Dict[str, Any]) -> List[int]:
        """Saved-worker index for each current worker, by parallel coordinates.

        Valid because 3d shards are a function of (pipeline, tensor) position
        only and DP replicas are bit-identical: local ranks enumerate TP
        fastest, then PP, then DP, so a new rank at coordinates ``(p, t, d)``
        restores from the saved rank at ``(p, t, min(d, old_dp - 1))`` — the
        identity prefix when shrinking, a clone of the last replica (which
        carries optimizer state on its leads) when growing.
        """
        saved_parallel = entry.get("parallel")
        if not saved_parallel:
            raise CheckpointError(
                f"checkpoint for {group.name!r} predates resize support: "
                f"no 'parallel' layout recorded in the manifest"
            )
        if entry.get("layout") != "3d":
            raise CheckpointError(
                f"elastic restore of {group.name!r} needs the 3d layout; "
                f"saved layout is {entry.get('layout')!r} (flat/ZeRO shards "
                f"are partitioned across DP and cannot be remapped)"
            )
        old_pp, old_tp, old_dp = (int(x) for x in saved_parallel)
        cfg = group.train_topology.config
        if (cfg.pp, cfg.tp) != (old_pp, old_tp):
            raise CheckpointError(
                f"elastic restore of {group.name!r} only resizes DP: saved "
                f"pp={old_pp} tp={old_tp}, current pp={cfg.pp} tp={cfg.tp}"
            )
        stage = cfg.pp * cfg.tp
        index_map = []
        for local_rank in range(len(group.workers)):
            d, rem = divmod(local_rank, stage)
            index_map.append(min(d, old_dp - 1) * stage + rem)
        return index_map

    def _load_checkpoint(
        self, directory: str, span, allow_resize: bool = False
    ) -> Dict[str, Any]:
        root = self._resolve_checkpoint_root(directory)
        manifest_path = root / "manifest.json"
        try:
            manifest = json.loads(manifest_path.read_text())
        except (ValueError, OSError) as exc:
            raise CheckpointError(
                f"corrupt manifest.json in checkpoint {root}: {exc}"
            ) from exc
        if not isinstance(manifest, dict) or "groups" not in manifest:
            raise CheckpointError(
                f"manifest.json in checkpoint {root} lacks a 'groups' section"
            )

        saved = {g["name"]: g for g in manifest["groups"]}
        for group in self.groups:
            if group.name not in saved:
                raise CheckpointError(
                    f"checkpoint has no state for group {group.name!r}"
                )
            entry = saved[group.name]
            if len(entry["workers"]) != len(group.workers):
                if not allow_resize:
                    raise CheckpointError(
                        f"checkpoint rank count mismatch for {group.name!r}: "
                        f"{len(entry['workers'])} vs {len(group.workers)} "
                        f"(pass allow_resize=True for an elastic restore)"
                    )
                index_map = self._resize_index_map(group, entry)
            else:
                index_map = list(range(len(group.workers)))
            for worker, saved_index in zip(group.workers, index_map):
                wentry = entry["workers"][saved_index]
                state: Dict[str, Any] = dict(wentry["scalars"])
                if wentry["file"]:
                    array_path = root / wentry["file"]
                    if not array_path.is_file():
                        raise CheckpointError(
                            f"checkpoint array file missing: {array_path}"
                        )
                    try:
                        with np.load(array_path) as data:
                            state.update({k: data[k] for k in data.files})
                    except Exception as exc:
                        raise CheckpointError(
                            f"corrupt or truncated checkpoint array file "
                            f"{array_path}: {exc}"
                        ) from exc
                worker.load_from_checkpoint(state)
        self._seq = int(manifest.get("trace_seq", self._seq))
        span.attrs["resized"] = any(
            len(saved[g.name]["workers"]) != len(g.workers) for g in self.groups
        )
        restored_bytes = sum(
            f.stat().st_size for f in root.iterdir() if f.is_file()
        )
        span.payload_bytes = restored_bytes
        self.metrics.counter(
            "repro_checkpoint_restores_total", "Checkpoints restored"
        ).inc()
        self.metrics.counter(
            "repro_checkpoint_bytes_total",
            "Checkpoint bytes moved, by direction",
            direction="restore",
        ).inc(restored_bytes)
        return manifest

    def __repr__(self) -> str:
        return (
            f"SingleController(cluster={self.cluster!r}, "
            f"groups={[g.name for g in self.groups]})"
        )
