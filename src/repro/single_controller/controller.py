"""The single controller: pools, groups, execution trace, checkpoints.

One :class:`SingleController` per RLHF job.  It owns the simulated cluster,
hands out non-overlapping resource pools, tracks every remote call in an
execution trace (used to verify execution *patterns* — Table 1), and
coordinates checkpointing across worker groups via "RPC" (§9: "Our
programming model enables the single controller to coordinate checkpoint
operations via RPC").
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import time
from typing import Any, Dict, List, Optional

import numpy as np

from repro.cluster import SimCluster
from repro.comm.groups import TrafficMeter
from repro.config import ClusterSpec
from repro.single_controller.resource_pool import ResourcePool
from repro.single_controller.worker_group import WorkerGroup


@dataclasses.dataclass(frozen=True)
class ExecutionRecord:
    """One remote call: which group ran which method, in global order.

    ``deps`` holds the trace sequence numbers of the calls whose output
    futures fed this call — the edges of the RLHF dataflow DAG, which the
    timeline scheduler replays with asynchronous-execution semantics (§4.1).
    """

    seq: int
    group: str
    method: str
    pool: str
    deps: tuple = ()


class SingleController:
    """Central coordinator of the RLHF dataflow."""

    def __init__(self, cluster_spec: Optional[ClusterSpec] = None) -> None:
        self.cluster = SimCluster(cluster_spec or ClusterSpec())
        self.meter = TrafficMeter()
        self.pools: Dict[str, ResourcePool] = {}
        self.groups: List[WorkerGroup] = []
        self.trace: List[ExecutionRecord] = []
        self._seq = 0

    # -- resources -----------------------------------------------------------------

    def create_pool(self, n_gpus: int, name: Optional[str] = None) -> ResourcePool:
        pool = ResourcePool.allocate(self.cluster, n_gpus, name=name)
        if pool.name in self.pools:
            raise ValueError(f"duplicate pool name {pool.name!r}")
        self.pools[pool.name] = pool
        return pool

    def attach_group(self, group: WorkerGroup) -> None:
        self.groups.append(group)

    def group_named(self, name: str) -> WorkerGroup:
        for group in self.groups:
            if group.name == name:
                return group
        raise KeyError(f"no worker group named {name!r}")

    # -- tracing -----------------------------------------------------------------------

    def record_execution(
        self, group: WorkerGroup, method: str, deps: tuple = ()
    ) -> int:
        seq = self._seq
        self.trace.append(
            ExecutionRecord(
                seq=seq,
                group=group.name,
                method=method,
                pool=group.resource_pool.name,
                deps=tuple(deps),
            )
        )
        self._seq += 1
        return seq

    def trace_methods(self) -> List[str]:
        """The execution pattern as ``"group.method"`` strings, in order."""
        return [f"{r.group}.{r.method}" for r in self.trace]

    def reset_trace(self) -> None:
        self.trace.clear()
        self._seq = 0

    # -- checkpointing (§9) ---------------------------------------------------------------

    def save_checkpoint(self, directory: str) -> None:
        """Persist every worker's rank-local state plus an RNG-aware manifest."""
        root = pathlib.Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        manifest: Dict[str, Any] = {
            "saved_at": time.time(),
            "groups": [],
        }
        for gi, group in enumerate(self.groups):
            group_entry = {"name": group.name, "workers": []}
            for wi, worker in enumerate(group.workers):
                state = worker.state_for_checkpoint()
                arrays = {
                    k: v for k, v in state.items() if isinstance(v, np.ndarray)
                }
                scalars = {
                    k: v for k, v in state.items() if not isinstance(v, np.ndarray)
                }
                fname = f"group{gi}_worker{wi}.npz"
                if arrays:
                    np.savez(root / fname, **arrays)
                group_entry["workers"].append(
                    {"file": fname if arrays else None, "scalars": scalars}
                )
            manifest["groups"].append(group_entry)
        (root / "manifest.json").write_text(json.dumps(manifest, indent=2))

    def load_checkpoint(self, directory: str) -> None:
        root = pathlib.Path(directory)
        manifest = json.loads((root / "manifest.json").read_text())
        saved = {g["name"]: g for g in manifest["groups"]}
        for group in self.groups:
            if group.name not in saved:
                raise ValueError(
                    f"checkpoint has no state for group {group.name!r}"
                )
            entry = saved[group.name]
            if len(entry["workers"]) != len(group.workers):
                raise ValueError(
                    f"checkpoint rank count mismatch for {group.name!r}: "
                    f"{len(entry['workers'])} vs {len(group.workers)}"
                )
            for worker, wentry in zip(group.workers, entry["workers"]):
                state: Dict[str, Any] = dict(wentry["scalars"])
                if wentry["file"]:
                    with np.load(root / wentry["file"]) as data:
                        state.update({k: data[k] for k in data.files})
                worker.load_from_checkpoint(state)

    def __repr__(self) -> str:
        return (
            f"SingleController(cluster={self.cluster!r}, "
            f"groups={[g.name for g in self.groups]})"
        )
