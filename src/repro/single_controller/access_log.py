"""Shared-state access log for the vector-clock race detector.

The simulated runtime executes strictly sequentially, so it can never
*exhibit* a data race — but a plan that only works because the simulator
serialises everything would corrupt state on a real cluster.  To catch that
class of bug statically, the controller records every read/write of shared
state (device-memory tags, checkpoint files, worker-group merge buffers)
together with enough ordering context for
:class:`repro.analysis.races.RaceDetector` to rebuild the *intended*
happens-before relation and flag conflicting accesses it does not order.

Each :class:`AccessEvent` is stamped with the dispatch it occurred inside
(``seq``; ``None`` for controller-context code such as group construction or
coordinated checkpoints) and the number of dispatches completed when it was
recorded (``after_seq``).  ``ordered`` marks accesses whose relative order
within one dispatch is deterministic by construction (e.g. a collect that
walks ranks in a fixed order); unordered same-dispatch writes from different
ranks are exactly the ``merge_outputs`` hazard.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

READ = "read"
WRITE = "write"

#: Rank id used for accesses performed by the controller itself.
CONTROLLER_RANK = -1


@dataclasses.dataclass(frozen=True)
class AccessEvent:
    """One read or write of a named shared resource."""

    kind: str  # READ or WRITE
    resource: str  # e.g. "mem[3]/actor/kv_cache", "checkpoint:/tmp/ckpt"
    rank: int  # global device rank, or CONTROLLER_RANK
    seq: Optional[int]  # dispatch seq this happened inside; None = controller
    after_seq: int  # dispatches completed when the event was recorded
    ordered: bool = True  # deterministically ordered within its dispatch
    note: str = ""

    def __post_init__(self) -> None:
        if self.kind not in (READ, WRITE):
            raise ValueError(f"access kind must be read/write, got {self.kind!r}")


class AccessLog:
    """Append-only list of :class:`AccessEvent`, one per controller."""

    def __init__(self) -> None:
        self.events: List[AccessEvent] = []

    def record(
        self,
        kind: str,
        resource: str,
        rank: int,
        seq: Optional[int],
        after_seq: int,
        ordered: bool = True,
        note: str = "",
    ) -> AccessEvent:
        event = AccessEvent(
            kind=kind,
            resource=resource,
            rank=rank,
            seq=seq,
            after_seq=after_seq,
            ordered=ordered,
            note=note,
        )
        self.events.append(event)
        return event

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
