"""The hybrid programming model (§4): single-controller inter-node dataflow.

The single controller coordinates *worker groups* (one per model in the RLHF
dataflow).  Each worker group runs SPMD workers under the multi-controller
paradigm; the controller only moves :class:`DataFuture` handles between
groups, with **transfer protocols** (Table 3) describing how a group's inputs
are distributed across its ranks and how outputs are collected back.

The user-facing surface mirrors the paper's Figure 5/6: create a
:class:`ResourcePool`, apply it to model worker classes through
:class:`WorkerGroup`, then write the RLHF algorithm as a single-process
sequence of primitive API calls.
"""

from repro.single_controller.future import DataFuture
from repro.single_controller.resource_pool import ResourcePool
from repro.single_controller.decorator import register
from repro.single_controller.protocols import (
    TRANSFER_PROTOCOLS,
    TransferProtocol,
    get_protocol,
    register_protocol,
)
from repro.single_controller.worker import Worker, WorkerContext
from repro.single_controller.worker_group import WorkerGroup
from repro.single_controller.controller import (
    CheckpointError,
    ExecutionRecord,
    SingleController,
)

__all__ = [
    "CheckpointError",
    "DataFuture",
    "ExecutionRecord",
    "ResourcePool",
    "SingleController",
    "TRANSFER_PROTOCOLS",
    "TransferProtocol",
    "Worker",
    "WorkerContext",
    "WorkerGroup",
    "get_protocol",
    "register",
    "register_protocol",
]
