"""Data futures: the handles the single controller passes between models.

§4.1: "the data future from actor is immediately returned after the
controller's call ... actual data transfer only occurs between GPUs, avoiding
any central bottleneck."  In this in-process simulation the value is computed
by the time the future exists, but the future still carries *provenance* (the
producing group and method), which the runtime layer uses to overlap stages
of models placed on disjoint devices in simulated time.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

_future_ids = itertools.count()


class DataFuture:
    """A handle to the output of a worker-group call."""

    def __init__(
        self,
        value: Any = None,
        producer: str = "",
        method: str = "",
        thunk: Optional[Callable[[], Any]] = None,
        record_seq: Optional[int] = None,
    ) -> None:
        if thunk is not None and value is not None:
            raise ValueError("give either a value or a thunk, not both")
        self._value = value
        self._thunk = thunk
        self._resolved = thunk is None
        self.producer = producer
        self.method = method
        #: Unique id, and the execution-trace record that produced this
        #: future (None for user-constructed futures) — the provenance the
        #: timeline scheduler uses to recover the dataflow DAG.
        self.uid = next(_future_ids)
        self.record_seq = record_seq

    @property
    def resolved(self) -> bool:
        return self._resolved

    def get(self) -> Any:
        """Materialise the value (runs the deferred thunk at most once)."""
        if not self._resolved:
            assert self._thunk is not None
            self._value = self._thunk()
            self._thunk = None
            self._resolved = True
        return self._value

    @staticmethod
    def unwrap(maybe_future: Any) -> Any:
        """Return the value whether or not the argument is a future."""
        if isinstance(maybe_future, DataFuture):
            return maybe_future.get()
        return maybe_future

    def __repr__(self) -> str:
        state = "resolved" if self._resolved else "pending"
        src = f" from {self.producer}.{self.method}" if self.producer else ""
        return f"DataFuture({state}{src})"
