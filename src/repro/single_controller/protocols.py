"""Transfer protocols: how data is resharded between models (§4.1, Table 3).

Each protocol is a ``distribute`` function (split/broadcast a call's inputs
across the destination group's ranks according to its parallelism) and a
``collect`` function (pick and merge the source group's per-rank outputs).
Data resharding between two models is the composition of the source's
``collect`` with the destination's ``distribute`` — exactly Figure 5(b).

Implemented protocols (the paper ships 8, Table 3 details 6):

=================  ==========================================================
``one_to_all``     broadcast inputs to all ranks; collect a list of outputs.
``one_to_one``     single-rank groups (e.g. a non-NN reward function, §9).
``3d_proto``       split by training DP rank, broadcast within each model-
                   parallel group; collect from the ``p = -1, t = 0`` rank of
                   each DP group.
``3d_all_micro_dp``split by the generation micro-DP rank (HybridEngine);
                   collect from the first rank of each micro-DP group.
``3d_pp_only``     broadcast; collect from the ``t = 0, d = 0`` rank of each
                   pipeline stage (weight-name inspection).
``pp_as_dp``       treat PP x DP as data-parallel for inference fan-out.
``dp_proto``       split across DP ranks; collect a concat from all ranks.
``all_to_all``     caller supplies per-rank inputs; collect all outputs.
=================  ==========================================================

Users can extend the set with :func:`register_protocol` (the paper: "A user
can further extend the transfer protocols through implementing customized
collect and distribute functions").
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.batch import DataBatch
from repro.single_controller.future import DataFuture

Call = Tuple[tuple, dict]


@dataclasses.dataclass(frozen=True)
class ProtocolRequires:
    """Declarative group-shape constraints of one transfer protocol.

    Two layers consume the same descriptor so they can never drift: the
    dispatch gate (:class:`~repro.single_controller.worker_group.RemoteMethod`
    refuses to bind a method to an incompatible group) and the static
    :class:`~repro.analysis.DataflowChecker` (which reports the identical
    incompatibility before any dispatch happens).
    """

    #: The group must contain exactly one rank (``one_to_one``).
    single_rank: bool = False
    #: The group's topology must be pure data parallelism (``dp_proto``).
    pure_dp: bool = False
    #: Distribute/collect need a generation topology (``3d_all_micro_dp``);
    #: checked at distribute time, not bind time, because the HybridEngine
    #: may install the topology after the group is constructed.
    needs_gen_topology: bool = False
    #: Degenerate (not wrong) without model-parallel axes (``3d_proto``).
    wants_model_parallel: bool = False
    #: Degenerate without a pipeline dimension (``3d_pp_only``).
    wants_pipeline: bool = False
    #: Which parallel degree batch arguments are chunked into: ``"dp"``,
    #: ``"gen_dp"`` (training DP x micro-DP), or ``"pp_dp"``.
    splits_batch_by: Optional[str] = None
    #: Caller supplies one input per rank instead of a batch (``all_to_all``).
    per_rank_args: bool = False
    #: The collect function visits contributing ranks in a deterministic
    #: order.  All shipped protocols do (they walk ranks in group order); a
    #: custom protocol collecting in e.g. completion order must set this
    #: False, which the RC5xx race detector reports as the
    #: ``merge_outputs`` nondeterministic-merge hazard.
    deterministic_collect: bool = True

    def split_degree(self, parallel: Any, gen_config: Any = None) -> Optional[int]:
        """Number of chunks a batch argument is split into, if any."""
        if self.splits_batch_by == "dp":
            return parallel.dp
        if self.splits_batch_by == "gen_dp":
            micro_dp = gen_config.micro_dp if gen_config is not None else 1
            return parallel.dp * micro_dp
        if self.splits_batch_by == "pp_dp":
            return parallel.pp * parallel.dp
        return None

    def problems(
        self, world_size: int, parallel: Any, has_gen_topology: bool
    ) -> List[Tuple[str, str, str]]:
        """All constraint violations as ``(kind, severity, message)`` tuples."""
        out: List[Tuple[str, str, str]] = []
        if self.single_rank and world_size != 1:
            out.append(
                (
                    "single_rank",
                    "error",
                    f"requires a single-rank group, got {world_size}",
                )
            )
        if self.pure_dp and parallel.dp != world_size:
            out.append(
                (
                    "pure_dp",
                    "error",
                    f"expects a pure-DP group, got dp={parallel.dp} over "
                    f"{world_size} ranks",
                )
            )
        if self.needs_gen_topology and not has_gen_topology:
            out.append(
                (
                    "gen_topology",
                    "error",
                    "requires a generation topology (HybridEngine)",
                )
            )
        if self.wants_model_parallel and parallel.model_parallel_size == 1:
            out.append(
                (
                    "model_parallel",
                    "warning",
                    "splits by DP but the group has no model-parallel axes "
                    "(pp*tp == 1); dp_proto expresses this more directly",
                )
            )
        if self.wants_pipeline and parallel.pp == 1:
            out.append(
                (
                    "pipeline",
                    "warning",
                    "collects one output per pipeline stage but the group "
                    "has pp=1",
                )
            )
        return out


def merge_outputs(outputs: Sequence[Any]) -> Any:
    """Merge per-rank outputs of the collect ranks into one value.

    DataBatch outputs concatenate along the batch axis; dict outputs merge
    with numeric values averaged (training metrics); a single output passes
    through; anything else returns the list as-is.
    """
    if not outputs:
        return None
    if len(outputs) == 1:
        return outputs[0]
    if all(isinstance(o, DataBatch) for o in outputs):
        return DataBatch.concat(list(outputs))
    if all(isinstance(o, dict) for o in outputs):
        # merge over the union of keys in first-seen order: a key reported by
        # only some ranks (e.g. a lead-rank-only metric) must not be dropped
        keys: List[str] = []
        seen = set()
        for o in outputs:
            for key in o:
                if key not in seen:
                    seen.add(key)
                    keys.append(key)
        merged: Dict[str, Any] = {}
        for key in keys:
            values = [o[key] for o in outputs if key in o]
            if all(isinstance(v, (int, float, np.floating, np.integer)) for v in values):
                merged[key] = float(np.mean(values))
            else:
                merged[key] = values
        return merged
    if all(o is None for o in outputs):
        return None
    return list(outputs)


class TransferProtocol:
    """A (distribute, collect) pair keyed by name, plus shape requirements."""

    def __init__(
        self,
        name: str,
        distribute: Callable[[Any, tuple, dict], List[Call]],
        collect: Callable[[Any, List[Any]], Any],
        requires: Optional[ProtocolRequires] = None,
    ) -> None:
        self.name = name
        self._distribute = distribute
        self._collect = collect
        self.requires = requires if requires is not None else ProtocolRequires()

    def check_group(self, group: Any) -> None:
        """Raise ``ValueError`` when a group violates a hard requirement.

        The dispatch gate: :class:`RemoteMethod` calls this at bind time and
        ``distribute`` repeats it, so a protocol/topology mismatch fails
        before any rank executes.  The ``gen_topology`` requirement is
        deferred to the distribute functions (a ``RuntimeError`` there)
        because ``set_gen_topology`` may legitimately run after binding.
        """
        problems = self.requires.problems(
            group.world_size,
            group.train_topology.config,
            group.gen_topology is not None,
        )
        for kind, severity, message in problems:
            if severity == "error" and kind != "gen_topology":
                raise ValueError(f"{self.name} {message}")

    def validate_shape(
        self, world_size: int, parallel: Any, has_gen_topology: bool
    ) -> List[Tuple[str, str, str]]:
        """Non-raising requirement check for the static DataflowChecker."""
        return self.requires.problems(world_size, parallel, has_gen_topology)

    def distribute(self, group: Any, args: tuple, kwargs: dict) -> List[Call]:
        self.check_group(group)
        args = tuple(DataFuture.unwrap(a) for a in args)
        kwargs = {k: DataFuture.unwrap(v) for k, v in kwargs.items()}
        return self._distribute(group, args, kwargs)

    def collect(self, group: Any, outputs: List[Any]) -> Any:
        return self._collect(group, outputs)

    def __repr__(self) -> str:
        return f"TransferProtocol({self.name!r})"


def _split_call(
    group: Any,
    args: tuple,
    kwargs: dict,
    n_chunks: int,
    chunk_of_worker: Callable[[int], int],
) -> List[Call]:
    """Split every DataBatch argument into ``n_chunks``; broadcast the rest."""
    split_args: List[Any] = []
    for a in args:
        split_args.append(a.chunk(n_chunks) if isinstance(a, DataBatch) else a)
    split_kwargs: Dict[str, Any] = {}
    for k, v in kwargs.items():
        split_kwargs[k] = v.chunk(n_chunks) if isinstance(v, DataBatch) else v

    calls: List[Call] = []
    for i in range(group.world_size):
        c = chunk_of_worker(i)
        wargs = tuple(a[c] if isinstance(a, list) else a for a in split_args)
        wkwargs = {
            k: (v[c] if isinstance(v, list) else v) for k, v in split_kwargs.items()
        }
        calls.append((wargs, wkwargs))
    return calls


def _broadcast_call(group: Any, args: tuple, kwargs: dict) -> List[Call]:
    return [(args, dict(kwargs)) for _ in range(group.world_size)]


# -- one_to_all ---------------------------------------------------------------


def _one_to_all_collect(group: Any, outputs: List[Any]) -> Any:
    return list(outputs)


# -- one_to_one ---------------------------------------------------------------


def _one_to_one_distribute(group: Any, args: tuple, kwargs: dict) -> List[Call]:
    # single-rank requirement enforced declaratively via ProtocolRequires
    return [(args, dict(kwargs))]


def _one_to_one_collect(group: Any, outputs: List[Any]) -> Any:
    return outputs[0]


# -- 3d_proto -------------------------------------------------------------------


def _3d_distribute(group: Any, args: tuple, kwargs: dict) -> List[Call]:
    dp = group.train_topology.config.dp
    return _split_call(group, args, kwargs, dp, lambda i: group.coords(i).d)


def _3d_collect(group: Any, outputs: List[Any]) -> Any:
    topo = group.train_topology
    cfg = topo.config
    picked = [
        outputs[i]
        for i in range(group.world_size)
        if group.coords(i).p == cfg.pp - 1 and group.coords(i).t == 0
    ]
    return merge_outputs(picked)


# -- 3d_all_micro_dp -----------------------------------------------------------


def _micro_dp_distribute(group: Any, args: tuple, kwargs: dict) -> List[Call]:
    gen = group.gen_topology
    if gen is None:
        raise RuntimeError(
            "3d_all_micro_dp requires a generation topology (HybridEngine)"
        )
    n = gen.effective_dp
    return _split_call(
        group,
        args,
        kwargs,
        n,
        lambda i: gen.dp_rank_for_generation(group.global_rank_of(i)),
    )


def _micro_dp_collect(group: Any, outputs: List[Any]) -> Any:
    gen = group.gen_topology
    if gen is None:
        raise RuntimeError(
            "3d_all_micro_dp requires a generation topology (HybridEngine)"
        )
    # one representative per generation replica — its (p_g=0, t_g=0) rank —
    # ordered by generation DP rank so concatenation restores batch order
    chosen: Dict[int, int] = {}
    for i in range(group.world_size):
        g = group.global_rank_of(i)
        c = gen.coords(g)
        if c.pg == 0 and c.tg == 0:
            chosen[gen.dp_rank_for_generation(g)] = i
    picked = [outputs[chosen[r]] for r in sorted(chosen)]
    return merge_outputs(picked)


# -- 3d_pp_only -------------------------------------------------------------------


def _pp_only_collect(group: Any, outputs: List[Any]) -> Any:
    picked = [
        outputs[i]
        for i in range(group.world_size)
        if group.coords(i).t == 0 and group.coords(i).d == 0
    ]
    return picked if len(picked) > 1 else merge_outputs(picked)


# -- pp_as_dp ---------------------------------------------------------------------


def _pp_as_dp_distribute(group: Any, args: tuple, kwargs: dict) -> List[Call]:
    cfg = group.train_topology.config
    n = cfg.pp * cfg.dp

    def chunk_of(i: int) -> int:
        c = group.coords(i)
        return c.d * cfg.pp + c.p

    return _split_call(group, args, kwargs, n, chunk_of)


def _pp_as_dp_collect(group: Any, outputs: List[Any]) -> Any:
    cfg = group.train_topology.config
    order: Dict[int, int] = {}
    for i in range(group.world_size):
        c = group.coords(i)
        if c.t == 0:
            order[c.d * cfg.pp + c.p] = i
    picked = [outputs[order[r]] for r in sorted(order)]
    return merge_outputs(picked)


# -- dp_proto -----------------------------------------------------------------------


def _dp_distribute(group: Any, args: tuple, kwargs: dict) -> List[Call]:
    # pure-DP requirement enforced declaratively via ProtocolRequires
    dp = group.train_topology.config.dp
    return _split_call(group, args, kwargs, dp, lambda i: group.coords(i).d)


def _dp_collect(group: Any, outputs: List[Any]) -> Any:
    return merge_outputs(list(outputs))


# -- all_to_all ------------------------------------------------------------------------


def _all_to_all_distribute(group: Any, args: tuple, kwargs: dict) -> List[Call]:
    n = group.world_size
    for a in args:
        if isinstance(a, (list, tuple)) and len(a) != n:
            raise ValueError(
                f"all_to_all expects per-rank lists of length {n}, got {len(a)}"
            )
    calls: List[Call] = []
    for i in range(n):
        wargs = tuple(a[i] if isinstance(a, (list, tuple)) else a for a in args)
        wkwargs = {
            k: (v[i] if isinstance(v, (list, tuple)) else v)
            for k, v in kwargs.items()
        }
        calls.append((wargs, wkwargs))
    return calls


TRANSFER_PROTOCOLS: Dict[str, TransferProtocol] = {}


def register_protocol(protocol: TransferProtocol) -> TransferProtocol:
    """Add a protocol to the global registry (overwrites same-name entries)."""
    TRANSFER_PROTOCOLS[protocol.name] = protocol
    return protocol


def get_protocol(name: str) -> TransferProtocol:
    try:
        return TRANSFER_PROTOCOLS[name]
    except KeyError:
        raise KeyError(
            f"unknown transfer protocol {name!r}; known: "
            f"{sorted(TRANSFER_PROTOCOLS)}"
        ) from None


register_protocol(
    TransferProtocol("one_to_all", _broadcast_call, _one_to_all_collect)
)
register_protocol(
    TransferProtocol(
        "one_to_one",
        _one_to_one_distribute,
        _one_to_one_collect,
        requires=ProtocolRequires(single_rank=True),
    )
)
register_protocol(
    TransferProtocol(
        "3d_proto",
        _3d_distribute,
        _3d_collect,
        requires=ProtocolRequires(
            wants_model_parallel=True, splits_batch_by="dp"
        ),
    )
)
register_protocol(
    TransferProtocol(
        "3d_all_micro_dp",
        _micro_dp_distribute,
        _micro_dp_collect,
        requires=ProtocolRequires(
            needs_gen_topology=True, splits_batch_by="gen_dp"
        ),
    )
)
register_protocol(
    TransferProtocol(
        "3d_pp_only",
        _broadcast_call,
        _pp_only_collect,
        requires=ProtocolRequires(wants_pipeline=True),
    )
)
register_protocol(
    TransferProtocol(
        "pp_as_dp",
        _pp_as_dp_distribute,
        _pp_as_dp_collect,
        requires=ProtocolRequires(splits_batch_by="pp_dp"),
    )
)
register_protocol(
    TransferProtocol(
        "dp_proto",
        _dp_distribute,
        _dp_collect,
        requires=ProtocolRequires(pure_dp=True, splits_batch_by="dp"),
    )
)
register_protocol(
    TransferProtocol(
        "all_to_all",
        _all_to_all_distribute,
        _one_to_all_collect,
        requires=ProtocolRequires(per_rank_args=True),
    )
)
