"""The ``@register`` decorator binding worker methods to transfer protocols.

§4.1: "We unify this data transfer implementation by associating each
operation in each model class with a transfer protocol, using @register."

The decorator only annotates; dispatch happens in
:class:`~repro.single_controller.worker_group.WorkerGroup`, keeping the
worker's computation code free of any data-resharding logic — the decoupling
the hybrid programming model is about.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Optional

PROTOCOL_ATTR = "_transfer_protocol"
BLOCKING_ATTR = "_transfer_blocking"
SHAPE_CONTRACT_ATTR = "_shape_contract"


def register(
    protocol: str = "one_to_all",
    blocking: bool = True,
) -> Callable[[Callable], Callable]:
    """Mark a worker method as a remote-callable with a transfer protocol.

    Args:
        protocol: Name of a registered transfer protocol (Table 3), e.g.
            ``"3d_proto"`` or ``"one_to_all"``.
        blocking: When False, :class:`WorkerGroup` returns an *unresolved*
            :class:`DataFuture` whose computation is deferred until ``get()``
            — the asynchronous-execution hook of §4.1.
    """

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            return fn(*args, **kwargs)

        setattr(wrapper, PROTOCOL_ATTR, protocol)
        setattr(wrapper, BLOCKING_ATTR, blocking)
        return wrapper

    return decorate


def shape_contract(
    inputs: Optional[dict] = None,
    outputs: Optional[dict] = None,
    returns: str = "batch",
) -> Callable[[Callable], Callable]:
    """Declare the symbolic array shapes a worker method consumes/produces.

    Specs map column name to ``"dims[:dtype]"`` — dims are comma-separated
    symbols (``B`` batch, ``P`` prompt, ``R`` response, ``L = P+R``, ``T``
    pretrain tokens, ``G`` group size) or int literals; dtype defaults to
    ``float64``.  A ``?`` name prefix marks the column optional (e.g.
    ``"?response_mask": "B,R"`` flows only when eos is configured).

    The contract is *declarative only*: nothing is checked at call time.
    The SF7xx pass (:mod:`repro.analysis.shapeflow`) interprets it
    statically, and the runtime :class:`ShapeRecorder` witnesses it against
    real batches.  Stack *below* ``@register`` — its ``functools.wraps``
    copies the attribute onto the dispatch wrapper.

    Args:
        inputs: Columns the method reads from its ``DataBatch`` argument.
        outputs: Columns of the returned batch (``returns="batch"``).
        returns: ``"batch"`` for DataBatch-returning methods, ``"metrics"``
            for plain metric dicts (which declare no output columns).
    """

    def decorate(fn: Callable) -> Callable:
        setattr(
            fn,
            SHAPE_CONTRACT_ATTR,
            {
                "inputs": dict(inputs or {}),
                "outputs": dict(outputs or {}),
                "returns": returns,
            },
        )
        return fn

    return decorate


def registered_protocol(method: Callable) -> Optional[str]:
    """The protocol name a method was registered with, or None."""
    return getattr(method, PROTOCOL_ATTR, None)


def registered_blocking(method: Callable) -> bool:
    return getattr(method, BLOCKING_ATTR, True)


def registered_shape_contract(method: Callable) -> Optional[dict]:
    """The raw @shape_contract payload of a method, or None."""
    return getattr(method, SHAPE_CONTRACT_ATTR, None)
