"""``WorkerGroup``: one model's SPMD ranks plus protocol-driven dispatch.

Applying a worker class to a :class:`ResourcePool` spawns one worker per
device and builds the model's parallel topology over those devices (the
``3DParallelWorker`` initialisation of Figure 5a).  Calling a method that was
``@register``-ed runs the full single-controller round trip:

1. the method's transfer protocol *distributes* the inputs across ranks,
2. every rank executes its local computation (multi-controller SPMD),
3. the protocol *collects* the designated ranks' outputs,
4. the controller receives a :class:`DataFuture`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Type

from repro.config import GenParallelConfig, ParallelConfig
from repro.faults.errors import (
    CallTimeoutError,
    RetryBudgetExhausted,
    TransientRpcError,
    WorkerLostError,
)
from repro.parallel.topology import GenGroupingMode, GenTopology, ParallelTopology
from repro.single_controller.decorator import (
    registered_blocking,
    registered_protocol,
)
from repro.single_controller.future import DataFuture
from repro.single_controller.protocols import get_protocol
from repro.single_controller.resource_pool import ResourcePool
from repro.single_controller.worker import Worker, WorkerContext


class RemoteMethod:
    """A bound, protocol-dispatched method of a worker group."""

    def __init__(self, group: "WorkerGroup", method_name: str) -> None:
        self.group = group
        self.method_name = method_name
        method = getattr(group.worker_cls, method_name)
        protocol_name = registered_protocol(method)
        if protocol_name is None:
            raise AttributeError(
                f"{group.worker_cls.__name__}.{method_name} is not @register-ed"
            )
        self.protocol_name = protocol_name
        self.protocol = get_protocol(protocol_name)
        # bind-time dispatch gate: a protocol whose declarative requirements
        # the group's topology violates must fail here, before any dispatch
        self.protocol.check_group(group)
        self.blocking = registered_blocking(method)
        # one attribute resolution per worker at bind time; every dispatch
        # then fans out over these bound callables without re-doing N
        # getattr round-trips (the group's worker list is append-only
        # during construction and never mutated afterwards — recovery
        # re-placement builds a fresh group)
        self._bound_calls = tuple(
            getattr(worker, method_name) for worker in group.workers
        )

    @staticmethod
    def _dependency_seqs(args: tuple, kwargs: dict) -> tuple:
        """Trace records whose outputs feed this call (the dataflow edges).

        Dependencies flow two ways: through unresolved :class:`DataFuture`
        handles, and through the lineage metadata stamped on every
        :class:`DataBatch` a remote call returned (which survives ``get()``,
        ``union`` and ``concat``).
        """
        from repro.data.batch import DataBatch, LINEAGE_KEY

        deps = set()
        for value in list(args) + list(kwargs.values()):
            if isinstance(value, DataFuture):
                if value.record_seq is not None:
                    deps.add(value.record_seq)
                if value.resolved:
                    value = value.get()
            if isinstance(value, DataBatch):
                deps.update(value.meta.get(LINEAGE_KEY, ()))
        return tuple(sorted(deps))

    @staticmethod
    def _payload_bytes(args: tuple, kwargs: dict) -> int:
        """Input payload size: bytes of every batch argument (incl. futures)."""
        from repro.data.batch import DataBatch
        from repro.single_controller.future import DataFuture

        total = 0
        for value in list(args) + list(kwargs.values()):
            if isinstance(value, DataFuture) and value.resolved:
                value = value.get()
            if isinstance(value, DataBatch):
                total += value.nbytes()
        return total

    def _dispatch_gate(self) -> float:
        """Failure detection + retry/backoff/timeout before the call runs (§9).

        Returns the call's *planned duration* in simulated seconds; the
        dispatch path advances the clock (and occupies the pool's devices)
        by that much after the workers execute.  Without a fault injector
        the duration comes from the timeline's per-method table, so the
        controller clock tracks simulated work even in fault-free runs.

        With a :class:`~repro.faults.FaultInjector` attached to the
        controller, every remote call first passes this gate:

        * a dead device in the group's pool raises a typed
          :class:`~repro.faults.WorkerLostError` (detection-on-contact),
        * injected transient RPC faults are retried up to the controller's
          :class:`~repro.faults.RetryPolicy` budget with deterministic
          backoff on the simulated clock, then escalate to
          ``WorkerLostError``,
        * a call whose straggler-inflated duration exceeds the policy's
          per-call timeout behaves like a transient fault (so a persistent
          straggler escalates to ``WorkerLostError`` naming the slow ranks).

        The gate runs *before* the protocol distributes inputs and before
        the trace records anything, so retries never corrupt the execution
        trace: a call appears exactly once, when it actually runs.  Every
        retry, timeout, and loss increments its counter in the controller's
        metrics registry, and each backoff wait is traced as a ``retry``
        span.
        """
        controller = self.group.controller
        if controller is None:
            return 0.0
        injector = getattr(controller, "fault_injector", None)
        if injector is None:
            from repro.runtime.timeline import DEFAULT_DURATIONS, FALLBACK_DURATION

            return DEFAULT_DURATIONS.get(self.method_name, FALLBACK_DURATION)
        policy = controller.retry_policy
        clock = controller.clock
        metrics = getattr(controller, "metrics", None)
        tracer = getattr(controller, "tracer", None)
        attempt = 0
        call_started = clock.now
        while True:
            try:
                injector.pre_call(self.group, self.method_name, controller.next_seq)
                duration = injector.call_duration(self.group, self.method_name)
                if policy.timeout is not None and duration > policy.timeout:
                    clock.advance(policy.timeout)
                    if metrics is not None:
                        metrics.counter(
                            "repro_call_timeouts_total",
                            "Remote calls that exceeded the per-call timeout",
                            group=self.group.name,
                            method=self.method_name,
                        ).inc()
                    raise CallTimeoutError(
                        f"{self.group.name}.{self.method_name} exceeded the "
                        f"{policy.timeout:.3f}s call timeout "
                        f"(would take {duration:.3f}s)",
                        group=self.group.name,
                        method=self.method_name,
                        ranks=injector.straggler_ranks(self.group),
                    )
                return duration
            except WorkerLostError:
                if metrics is not None:
                    metrics.counter(
                        "repro_worker_losses_total",
                        "Remote calls that found their workers dead",
                        group=self.group.name,
                        pool=self.group.resource_pool.name,
                    ).inc()
                raise
            except TransientRpcError as exc:
                attempt += 1
                if attempt > policy.max_retries:
                    if metrics is not None:
                        metrics.counter(
                            "repro_worker_losses_total",
                            "Remote calls that found their workers dead",
                            group=self.group.name,
                            pool=self.group.resource_pool.name,
                        ).inc()
                    raise WorkerLostError(
                        f"{self.group.name}.{self.method_name} still failing "
                        f"after {policy.max_retries} retries: {exc}",
                        group=self.group.name,
                        pool=self.group.resource_pool.name,
                        dead_ranks=exc.ranks,
                        step=controller.next_seq,
                        cause="retries exhausted",
                    ) from exc
                injector.note_retry()
                if metrics is not None:
                    metrics.counter(
                        "repro_retries_total",
                        "Transient-fault retries across all remote calls",
                        group=self.group.name,
                        method=self.method_name,
                    ).inc()
                # Clock time this call already burned (timeouts + backoffs)
                # counts against the policy's per-call deadline budget.
                spent = clock.now - call_started
                try:
                    delay = policy.backoff_delay(
                        attempt,
                        spent=spent if policy.deadline is not None else None,
                    )
                except RetryBudgetExhausted:
                    if metrics is not None:
                        metrics.counter(
                            "repro_retry_budget_exhausted_total",
                            "Remote calls whose retry deadline budget ran out",
                            group=self.group.name,
                            method=self.method_name,
                        ).inc()
                    raise RetryBudgetExhausted(
                        f"{self.group.name}.{self.method_name} spent "
                        f"{spent:.3f}s of its {policy.deadline:.3f}s retry "
                        f"deadline over {attempt} attempt(s): {exc}",
                        group=self.group.name,
                        method=self.method_name,
                        pool=self.group.resource_pool.name,
                        step=controller.next_seq,
                        deadline=policy.deadline,
                        spent=spent,
                        attempts=attempt,
                    ) from exc
                if tracer is not None:
                    with tracer.span(
                        "backoff",
                        category="retry",
                        pool=self.group.resource_pool.name,
                        attempt=attempt,
                        delay=delay,
                        error=type(exc).__name__,
                    ):
                        clock.advance(delay)
                else:
                    clock.advance(delay)

    def _execute(self, args: tuple, kwargs: dict):
        from repro.data.batch import DataBatch, LINEAGE_KEY

        controller = self.group.controller
        tracer = getattr(controller, "tracer", None)
        metrics = getattr(controller, "metrics", None)
        pool = self.group.resource_pool
        deps = self._dependency_seqs(args, kwargs)
        span = None
        if tracer is not None:
            span = tracer.begin(
                f"{self.group.name}.{self.method_name}",
                category="dispatch",
                pool=pool.name,
                ranks=tuple(pool.global_ranks),
                payload_bytes=self._payload_bytes(args, kwargs),
                links=tracer.links_for(deps),
                protocol=self.protocol_name,
                deps=list(deps),
            )
        prev_seq = getattr(controller, "current_seq", None)
        try:
            duration = self._dispatch_gate()
            # every shared-state access below happens *inside* this dispatch:
            # stamp it with the seq notify_executed will assign afterwards
            if controller is not None:
                controller.current_seq = controller.next_seq
            if tracer is not None:
                with tracer.span(
                    "distribute", category="protocol", pool=pool.name,
                    protocol=self.protocol_name,
                ):
                    calls = self.protocol.distribute(self.group, args, kwargs)
            else:
                calls = self.protocol.distribute(self.group, args, kwargs)
            outputs: List[Any] = [
                bound(*wargs, **wkwargs)
                for bound, (wargs, wkwargs) in zip(self._bound_calls, calls)
            ]
            self._record_merge_accesses(controller, outputs)
            if tracer is not None:
                with tracer.span(
                    "collect", category="protocol", pool=pool.name,
                    protocol=self.protocol_name,
                ):
                    result = self.protocol.collect(self.group, outputs)
            else:
                result = self.protocol.collect(self.group, outputs)
            recorder = getattr(controller, "shape_recorder", None)
            if recorder is not None:
                # SF7xx runtime witness: sample the collected result's array
                # shapes for cross-validation against the static inference
                recorder.record(self.group.name, self.method_name, result)
            if controller is not None and duration > 0.0:
                controller.clock.advance(duration)
                for device in pool.devices:
                    device.occupy(duration)
            seq = self.group.notify_executed(self.method_name, deps)
            if isinstance(result, DataBatch) and seq is not None:
                result.meta[LINEAGE_KEY] = (seq,)
            if span is not None:
                tracer.register_seq(seq, span)
                span.attrs["duration_model"] = duration
            if metrics is not None:
                metrics.counter(
                    "repro_dispatch_calls_total",
                    "Remote calls dispatched through the single controller",
                    group=self.group.name,
                    method=self.method_name,
                ).inc()
                metrics.histogram(
                    "repro_dispatch_seconds",
                    "Planned simulated duration per dispatched call",
                    group=self.group.name,
                ).observe(duration)
                tokens = self._generated_tokens(result)
                if tokens:
                    metrics.counter(
                        "repro_tokens_generated_total",
                        "Response tokens produced by generate_sequences",
                        group=self.group.name,
                    ).inc(tokens)
            return result, seq
        except BaseException as exc:
            if span is not None:
                span.attrs.setdefault("status", "error")
                span.attrs.setdefault("error", type(exc).__name__)
            raise
        finally:
            if controller is not None:
                controller.current_seq = prev_seq
            if span is not None:
                tracer.end(span)

    def _record_merge_accesses(self, controller, outputs: List[Any]) -> None:
        """Log the per-rank writes into this call's output merge buffer.

        Each rank that produced a (non-``None``) output conceptually writes
        one slot of a shared merge buffer the controller then reads and
        folds with ``merge_outputs``.  Whether those writes land in a
        deterministic order is a property of the protocol
        (``requires.deterministic_collect``); the RC5xx race detector flags
        unordered multi-rank writes as the nondeterministic-merge hazard.
        """
        if controller is None or not hasattr(controller, "record_access"):
            return
        from repro.single_controller.access_log import READ, WRITE

        resource = f"merge[{self.group.name}.{self.method_name}]"
        ordered = self.protocol.requires.deterministic_collect
        wrote = False
        for worker, output in zip(self.group.workers, outputs):
            if output is None:
                continue
            wrote = True
            controller.record_access(
                WRITE,
                resource,
                rank=worker.ctx.global_rank,
                ordered=ordered,
                note=self.protocol_name,
            )
        if wrote:
            controller.record_access(READ, resource, note="collect")

    def _generated_tokens(self, result: Any) -> int:
        """Response tokens in a ``generate_sequences`` output batch, else 0."""
        from repro.data.batch import DataBatch

        if self.method_name != "generate_sequences":
            return 0
        if not isinstance(result, DataBatch) or "sequences" not in result:
            return 0
        sequences = result["sequences"]
        prompt_length = int(result.meta.get("prompt_length", 0))
        response = max(0, sequences.shape[-1] - prompt_length)
        return int(sequences.shape[0] * response)

    def __call__(self, *args: Any, **kwargs: Any) -> DataFuture:
        if self.blocking:
            result, seq = self._execute(args, kwargs)
            return DataFuture(
                result,
                producer=self.group.name,
                method=self.method_name,
                record_seq=seq,
            )
        future = DataFuture(
            thunk=lambda: None,  # replaced below (needs the future in scope)
            producer=self.group.name,
            method=self.method_name,
        )

        def run_deferred() -> Any:
            result, seq = self._execute(args, kwargs)
            future.record_seq = seq
            return result

        future._thunk = run_deferred
        return future


class WorkerGroup:
    """SPMD workers of one model over one resource pool."""

    def __init__(
        self,
        worker_cls: Type[Worker],
        resource_pool: ResourcePool,
        parallel_config: Optional[ParallelConfig] = None,
        gen_config: Optional[GenParallelConfig] = None,
        gen_mode: GenGroupingMode = GenGroupingMode.HYBRIDFLOW,
        name: Optional[str] = None,
        controller: Optional[Any] = None,
        worker_kwargs: Optional[Dict[str, Any]] = None,
    ) -> None:
        # set first: __getattr__ consults it, so it must exist before any
        # attribute lookup on a half-built instance can fail
        self._remote_methods: Dict[str, RemoteMethod] = {}
        if parallel_config is None:
            parallel_config = ParallelConfig(pp=1, tp=1, dp=resource_pool.size)
        if parallel_config.world_size != resource_pool.size:
            raise ValueError(
                f"parallel config {parallel_config} needs "
                f"{parallel_config.world_size} devices but pool "
                f"{resource_pool.name!r} has {resource_pool.size}"
            )
        self.worker_cls = worker_cls
        self.resource_pool = resource_pool
        self.name = name or f"{worker_cls.__name__.lower()}@{resource_pool.name}"
        self.controller = controller
        meter = controller.meter if controller is not None else None
        self.train_topology = ParallelTopology(
            parallel_config,
            global_ranks=resource_pool.global_ranks,
            meter=meter,
            name=self.name,
        )
        self.gen_topology: Optional[GenTopology] = None
        if gen_config is not None:
            self.gen_topology = GenTopology(
                self.train_topology, gen_config, mode=gen_mode
            )

        worker_kwargs = worker_kwargs or {}
        self.workers: List[Worker] = []
        self._by_global_rank: Dict[int, Worker] = {}
        for local_rank, device in enumerate(resource_pool.devices):
            ctx = WorkerContext(
                global_rank=device.global_rank,
                local_rank=local_rank,
                device=device,
                train_topology=self.train_topology,
                gen_topology=self.gen_topology,
            )
            worker = worker_cls(ctx, **worker_kwargs)
            ctx.group = self
            self.workers.append(worker)
            self._by_global_rank[device.global_rank] = worker
        resource_pool.attach(self)
        if controller is not None:
            controller.attach_group(self)

    # -- protocol-facing API -------------------------------------------------------

    @property
    def world_size(self) -> int:
        return len(self.workers)

    def coords(self, local_rank: int):
        return self.train_topology.coords(self.global_rank_of(local_rank))

    def global_rank_of(self, local_rank: int) -> int:
        return self.workers[local_rank].ctx.global_rank

    def worker_at_global_rank(self, global_rank: int) -> Worker:
        try:
            return self._by_global_rank[global_rank]
        except KeyError:
            raise ValueError(
                f"rank {global_rank} not in group {self.name!r}"
            ) from None

    # -- dispatch --------------------------------------------------------------------

    def __getattr__(self, attr: str) -> Any:
        # only called when normal lookup fails: resolve remote methods.
        # Bound RemoteMethods are cached per name — the protocol lookup,
        # bind-time dispatch-gate check, and per-worker method binding run
        # once per (group, method), not once per call.
        if attr.startswith("_"):
            raise AttributeError(attr)
        cached = self._remote_methods.get(attr)
        if cached is not None:
            return cached
        worker_method = getattr(self.worker_cls, attr, None)
        if worker_method is not None and registered_protocol(worker_method):
            method = RemoteMethod(self, attr)
            self._remote_methods[attr] = method
            return method
        raise AttributeError(
            f"{type(self).__name__} {self.name!r} has no remote method {attr!r}"
        )

    def notify_executed(self, method_name: str, deps: tuple = ()) -> Optional[int]:
        if self.controller is not None:
            return self.controller.record_execution(self, method_name, deps)
        return None

    def set_gen_topology(self, gen_config, mode=GenGroupingMode.HYBRIDFLOW) -> None:
        """Install/replace the generation topology (HybridEngine setup)."""
        self.gen_topology = GenTopology(self.train_topology, gen_config, mode=mode)
        for worker in self.workers:
            worker.ctx.gen_topology = self.gen_topology
        # cached RemoteMethods passed the bind-time dispatch gate against
        # the old topology; re-check on next access
        self._remote_methods.clear()

    def broadcast_call(self, fn: Callable[[Worker], Any]) -> List[Any]:
        """Apply ``fn`` to every worker (setup/inspection helper)."""
        return [fn(w) for w in self.workers]

    def __repr__(self) -> str:
        return (
            f"WorkerGroup({self.name!r}, {self.train_topology.config}, "
            f"{self.world_size} workers)"
        )
