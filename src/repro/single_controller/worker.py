"""Worker base class and per-rank context (the multi-controller side, §4.1).

Each worker simulates one device's controller process: it owns that rank's
model shard and state, sees only its local view, and reaches peers strictly
through process groups / the worker group — mirroring how real multi-
controller ranks interact through NCCL rather than shared memory.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.cluster import SimDevice
from repro.comm.groups import ProcessGroup
from repro.parallel.topology import GenTopology, ParallelTopology, Rank3D, Rank4D

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.single_controller.worker_group import WorkerGroup


@dataclasses.dataclass
class WorkerContext:
    """Everything a rank knows about itself and its groups."""

    global_rank: int
    local_rank: int
    device: SimDevice
    train_topology: ParallelTopology
    gen_topology: Optional[GenTopology] = None
    group: Optional["WorkerGroup"] = None

    @property
    def coords(self) -> Rank3D:
        return self.train_topology.coords(self.global_rank)

    @property
    def gen_coords(self) -> Rank4D:
        if self.gen_topology is None:
            raise RuntimeError("no generation topology configured on this group")
        return self.gen_topology.coords(self.global_rank)

    @property
    def tp_group(self) -> ProcessGroup:
        return self.train_topology.tp_group(self.global_rank)

    @property
    def pp_group(self) -> ProcessGroup:
        return self.train_topology.pp_group(self.global_rank)

    @property
    def dp_group(self) -> ProcessGroup:
        return self.train_topology.dp_group(self.global_rank)

    @property
    def mp_group(self) -> ProcessGroup:
        return self.train_topology.mp_group(self.global_rank)

    @property
    def micro_dp_group(self) -> ProcessGroup:
        if self.gen_topology is None:
            raise RuntimeError("no generation topology configured on this group")
        return self.gen_topology.micro_dp_group(self.global_rank)

    @property
    def is_collect_rank(self) -> bool:
        """Last pipeline stage, tensor rank 0 — where 3d_proto collects."""
        c = self.coords
        return c.p == self.train_topology.config.pp - 1 and c.t == 0

    @property
    def is_replica_lead(self) -> bool:
        """First rank of this DP replica's model-parallel group."""
        c = self.coords
        return c.p == 0 and c.t == 0

    def peer(self, global_rank: int) -> "Worker":
        """Another worker in the same group (simulated point-to-point reach)."""
        if self.group is None:
            raise RuntimeError("context not attached to a worker group")
        return self.group.worker_at_global_rank(global_rank)


class Worker:
    """Base class for all model workers; subclasses add @register methods."""

    def __init__(self, ctx: WorkerContext) -> None:
        self.ctx = ctx

    @property
    def global_rank(self) -> int:
        return self.ctx.global_rank

    # -- checkpoint hooks (§9 fault tolerance) -------------------------------------

    def state_for_checkpoint(self) -> Dict[str, Any]:
        """Rank-local state to persist; overridden by model workers."""
        return {}

    def load_from_checkpoint(self, state: Dict[str, Any]) -> None:
        if state:
            raise NotImplementedError(
                f"{type(self).__name__} received checkpoint state but does "
                "not implement load_from_checkpoint"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(rank={self.ctx.global_rank})"
