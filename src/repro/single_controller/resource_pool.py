"""``ResourcePool``: virtualised GPU sets for model placement (§4.1).

"We provide a ResourcePool class that virtualizes a set of GPU devices.  When
applying a ResourcePool instance to a model class, distributed computation of
the model will be mapped to the devices.  Models utilizing the same
ResourcePool instance are colocated on the same set of GPUs."
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.cluster import DeviceSet, SimCluster

_pool_ids = itertools.count()


class ResourcePool:
    """A named, non-overlapping set of simulated devices.

    Worker groups built on the same pool are *colocated*: they share device
    memory and execute sequentially in a time-sharing manner (§2.3).
    """

    def __init__(self, devices: DeviceSet, name: Optional[str] = None) -> None:
        self.devices = devices
        self.name = name if name is not None else f"pool-{next(_pool_ids)}"
        #: Worker groups mapped onto this pool, in creation order.  Used for
        #: colocation queries and sequential-execution accounting.
        self.worker_groups: List[object] = []

    @classmethod
    def allocate(
        cls, cluster: SimCluster, n_gpus: int, name: Optional[str] = None
    ) -> "ResourcePool":
        """Take the next ``n_gpus`` devices from the cluster."""
        return cls(cluster.allocate(n_gpus), name=name)

    @property
    def size(self) -> int:
        return self.devices.size

    @property
    def global_ranks(self) -> List[int]:
        return self.devices.global_ranks

    def overlaps(self, other: "ResourcePool") -> bool:
        return self.devices.overlaps(other.devices)

    def attach(self, worker_group: object) -> None:
        self.worker_groups.append(worker_group)

    def colocated_with(self, other: "ResourcePool") -> bool:
        """True when the two pools are the same device set (colocated models)."""
        return set(self.global_ranks) == set(other.global_ranks)

    def __repr__(self) -> str:
        return f"ResourcePool({self.name!r}, ranks={self.global_ranks})"
