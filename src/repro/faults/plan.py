"""Deterministic fault plans: what fails, when, and how.

A :class:`FaultPlan` is an ordered list of :class:`FaultEvent` keyed by the
controller's *trace sequence number* — the same global ordering the execution
trace and timeline use — so a plan is reproducible regardless of wall-clock
speed.  Plans can be written by hand (chained ``kill_machine`` /
``transient`` / ``straggler`` calls) or generated pseudo-randomly from a
seed with :meth:`FaultPlan.random` for soak-style testing.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Optional, Sequence

import numpy as np


class FaultKind(str, enum.Enum):
    """The failure modes the simulated cluster can express."""

    DEVICE_LOSS = "device_loss"  # one GPU dies permanently
    MACHINE_LOSS = "machine_loss"  # a whole machine (all its GPUs) dies
    RACK_LOSS = "rack_loss"  # a rack (several adjacent machines) dies at once
    TRANSIENT_RPC = "transient_rpc"  # a retryable controller->group RPC failure
    STRAGGLER = "straggler"  # one rank becomes persistently slow


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One scheduled failure.

    Attributes:
        kind: Which failure mode fires.
        at_step: Trace sequence number at which the event arms; it takes
            effect on the first remote call at or after this step.
        rank: Target global device rank (``DEVICE_LOSS`` / ``STRAGGLER``).
        machine: Target machine index (``MACHINE_LOSS``).
        rack: Target rack index (``RACK_LOSS``).  A rack is a contiguous
            block of ``machines_per_rack`` machines — a correlated failure
            domain (shared power/top-of-rack switch) that takes several
            machines down in the same tick.
        machines_per_rack: Machines per rack for ``RACK_LOSS`` events.
        group: Restrict ``TRANSIENT_RPC`` to calls of this worker group
            (``None`` = any group).
        pool: Restrict ``TRANSIENT_RPC`` to groups on this pool.
        count: Number of consecutive calls a ``TRANSIENT_RPC`` event fails.
        slow_factor: Latency multiplier a ``STRAGGLER`` applies to its rank.
    """

    kind: FaultKind
    at_step: int
    rank: Optional[int] = None
    machine: Optional[int] = None
    rack: Optional[int] = None
    machines_per_rack: int = 2
    group: Optional[str] = None
    pool: Optional[str] = None
    count: int = 1
    slow_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.at_step < 0:
            raise ValueError(f"at_step must be >= 0, got {self.at_step}")
        if self.kind is FaultKind.DEVICE_LOSS and self.rank is None:
            raise ValueError("DEVICE_LOSS needs a target rank")
        if self.kind is FaultKind.MACHINE_LOSS and self.machine is None:
            raise ValueError("MACHINE_LOSS needs a target machine")
        if self.kind is FaultKind.RACK_LOSS:
            if self.rack is None:
                raise ValueError("RACK_LOSS needs a target rack")
            if self.machines_per_rack < 1:
                raise ValueError(
                    f"machines_per_rack must be >= 1, got {self.machines_per_rack}"
                )
        if self.kind is FaultKind.STRAGGLER:
            if self.rank is None:
                raise ValueError("STRAGGLER needs a target rank")
            if self.slow_factor <= 1.0:
                raise ValueError(
                    f"a straggler must be slower than 1.0x, got {self.slow_factor}"
                )
        if self.kind is FaultKind.TRANSIENT_RPC and self.count < 1:
            raise ValueError(f"TRANSIENT_RPC count must be >= 1, got {self.count}")


@dataclasses.dataclass
class FaultPlan:
    """An ordered, deterministic schedule of failures for one run."""

    events: List[FaultEvent] = dataclasses.field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda e: e.at_step)

    # -- fluent constructors ---------------------------------------------------------

    def kill_device(self, rank: int, at_step: int) -> "FaultPlan":
        return self._add(
            FaultEvent(FaultKind.DEVICE_LOSS, at_step=at_step, rank=rank)
        )

    def kill_machine(self, machine: int, at_step: int) -> "FaultPlan":
        return self._add(
            FaultEvent(FaultKind.MACHINE_LOSS, at_step=at_step, machine=machine)
        )

    def kill_machines(self, machines: Sequence[int], at_step: int) -> "FaultPlan":
        """Correlated loss: several whole machines die in the same tick."""
        for machine in machines:
            self.kill_machine(machine, at_step=at_step)
        return self

    def kill_rack(
        self, rack: int, at_step: int, machines_per_rack: int = 2
    ) -> "FaultPlan":
        """Correlated loss of one failure domain: a contiguous machine block."""
        return self._add(
            FaultEvent(
                FaultKind.RACK_LOSS,
                at_step=at_step,
                rack=rack,
                machines_per_rack=machines_per_rack,
            )
        )

    def transient(
        self,
        at_step: int,
        count: int = 1,
        group: Optional[str] = None,
        pool: Optional[str] = None,
    ) -> "FaultPlan":
        return self._add(
            FaultEvent(
                FaultKind.TRANSIENT_RPC,
                at_step=at_step,
                count=count,
                group=group,
                pool=pool,
            )
        )

    def straggler(
        self, rank: int, at_step: int, slow_factor: float = 4.0
    ) -> "FaultPlan":
        return self._add(
            FaultEvent(
                FaultKind.STRAGGLER,
                at_step=at_step,
                rank=rank,
                slow_factor=slow_factor,
            )
        )

    def _add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        self.events.sort(key=lambda e: e.at_step)
        return self

    # -- generation ------------------------------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        n_events: int,
        max_step: int,
        n_ranks: int,
        n_machines: int = 1,
        machines_per_rack: int = 2,
        kinds: Sequence[FaultKind] = (
            FaultKind.TRANSIENT_RPC,
            FaultKind.STRAGGLER,
            FaultKind.DEVICE_LOSS,
        ),
    ) -> "FaultPlan":
        """A reproducible pseudo-random plan — same seed, same failures."""
        if n_events < 0 or max_step < 1 or n_ranks < 1:
            raise ValueError("need n_events >= 0, max_step >= 1, n_ranks >= 1")
        rng = np.random.default_rng(seed)
        n_racks = max(1, n_machines // machines_per_rack)
        events: List[FaultEvent] = []
        for _ in range(n_events):
            kind = kinds[int(rng.integers(len(kinds)))]
            step = int(rng.integers(max_step))
            if kind is FaultKind.DEVICE_LOSS:
                events.append(
                    FaultEvent(kind, step, rank=int(rng.integers(n_ranks)))
                )
            elif kind is FaultKind.MACHINE_LOSS:
                events.append(
                    FaultEvent(kind, step, machine=int(rng.integers(n_machines)))
                )
            elif kind is FaultKind.RACK_LOSS:
                events.append(
                    FaultEvent(
                        kind,
                        step,
                        rack=int(rng.integers(n_racks)),
                        machines_per_rack=machines_per_rack,
                    )
                )
            elif kind is FaultKind.STRAGGLER:
                events.append(
                    FaultEvent(
                        kind,
                        step,
                        rank=int(rng.integers(n_ranks)),
                        slow_factor=float(2.0 + 6.0 * rng.random()),
                    )
                )
            else:
                events.append(
                    FaultEvent(kind, step, count=int(rng.integers(1, 4)))
                )
        return cls(events=events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
