"""Fault injection and failure policy for the simulated RLHF cluster (§9).

The paper's fault-tolerance story ("the single controller coordinates
checkpoint operations via RPC") only exercises the happy path; this package
makes failure a first-class simulated event:

* :class:`FaultPlan` / :class:`FaultEvent` — a deterministic (seeded)
  schedule of device deaths, machine losses, transient RPC failures, and
  stragglers, keyed by controller trace step.
* :class:`FaultInjector` — delivers a plan into a running job; device kills
  mutate the cluster so recovery re-placement sees the shrunken world.
* :class:`RetryPolicy` / :class:`SimClock` — retry-with-backoff and per-call
  timeout semantics on the simulated clock.
* Typed errors (:class:`TransientRpcError`, :class:`WorkerLostError`) that
  the recovery driver in :mod:`repro.runtime.recovery` acts on.
"""

from repro.faults.errors import (
    CallTimeoutError,
    FaultError,
    RetryBudgetExhausted,
    TransientRpcError,
    WorkerLostError,
)
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.faults.policy import RetryPolicy, SimClock
from repro.faults.injector import ClusterFaultDriver, FaultInjector, FaultStats

__all__ = [
    "CallTimeoutError",
    "ClusterFaultDriver",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultStats",
    "RetryBudgetExhausted",
    "RetryPolicy",
    "SimClock",
    "TransientRpcError",
    "WorkerLostError",
]
