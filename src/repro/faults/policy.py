"""Retry/backoff/timeout policy and the simulated wall clock.

The controller owns one :class:`SimClock`; every remote call, backoff wait,
and recovery action advances it, so fault-tolerance costs (MTTR, lost work,
restore time) are measured in the same simulated seconds as the rest of the
performance layer.  :class:`RetryPolicy` is deliberately deterministic: the
same seed yields the same backoff schedule, which keeps faulted runs
replayable — a property the tests assert.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro.faults.errors import RetryBudgetExhausted


class SimClock:
    """A monotonically advancing simulated clock (seconds)."""

    def __init__(self, now: float = 0.0) -> None:
        self._now = float(now)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError(f"cannot advance the clock by {seconds}s")
        self._now += seconds
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.3f})"


@dataclasses.dataclass
class RetryPolicy:
    """How the controller handles transient faults on a remote call.

    Attributes:
        max_retries: Retries after the first failed attempt before the call
            escalates to ``WorkerLostError``.
        backoff_base: Delay (simulated seconds) before the first retry.
        backoff_factor: Multiplier applied per additional retry (exponential
            backoff).
        jitter: Fractional jitter added to each delay, drawn from a
            generator seeded with ``seed`` — deterministic across runs.
        timeout: Per-call ceiling on the simulated clock; a call whose
            (straggler-inflated) duration exceeds it raises
            ``CallTimeoutError``.  ``None`` disables the timeout.
        deadline: Total simulated-seconds budget one call may spend across
            *all* attempts, timeouts, and backoff waits.  Without it a call
            with ``max_retries=3`` and a 2s timeout can burn ~8s+ of clock —
            more than any single ``timeout`` a caller thinks it set.  When
            the budget is gone, retrying raises
            :class:`~repro.faults.errors.RetryBudgetExhausted` instead of
            waiting again.  ``None`` (default) keeps the old unbounded
            behaviour.
        seed: Seed of the jitter stream.
    """

    max_retries: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.0
    timeout: Optional[float] = None
    deadline: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff must be non-negative and non-shrinking, got "
                f"base={self.backoff_base} factor={self.backoff_factor}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")
        self._rng = np.random.default_rng(self.seed)

    def backoff_delay(self, attempt: int, spent: Optional[float] = None) -> float:
        """Delay before retry ``attempt`` (1-based), deterministic under seed.

        With a ``deadline`` configured, pass ``spent`` (simulated seconds this
        call has already consumed) and the delay is clipped to the remaining
        budget; a call whose budget is already gone gets
        :class:`RetryBudgetExhausted` rather than another wait.
        """
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        delay = self.backoff_base * self.backoff_factor ** (attempt - 1)
        if self.jitter:
            delay *= 1.0 + self.jitter * float(self._rng.random())
        if self.deadline is not None and spent is not None:
            remaining = self.deadline - spent
            if remaining <= 0:
                raise RetryBudgetExhausted(
                    f"retry budget exhausted after {spent:.3f}s of a "
                    f"{self.deadline:.3f}s deadline (attempt {attempt})",
                    deadline=self.deadline,
                    spent=spent,
                    attempts=attempt,
                )
            delay = min(delay, remaining)
        return delay

    def schedule(self) -> List[float]:
        """The full backoff schedule a call would see (consumes the jitter stream).

        With a ``deadline``, the schedule is truncated so its cumulative sum
        never exceeds the budget: the last delay is clipped to what remains
        and later retries are dropped entirely.
        """
        delays: List[float] = []
        spent = 0.0
        for i in range(self.max_retries):
            if self.deadline is not None and spent >= self.deadline:
                break
            delay = self.backoff_delay(i + 1, spent=spent if self.deadline else None)
            delays.append(delay)
            spent += delay
        return delays
