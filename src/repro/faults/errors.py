"""Typed failure exceptions shared by the fault-injection and recovery layers.

These deliberately carry *structured* failure context (which ranks, which
pool, which trace step) rather than just a message: the recovery path in
:mod:`repro.runtime.recovery` decides what to rebuild from these fields, and
tests assert on them.  The module has no imports from the rest of the
package so any layer may raise or catch these without cycles.
"""

from __future__ import annotations

from typing import Optional, Tuple


class FaultError(RuntimeError):
    """Base class for simulated-failure errors."""


class TransientRpcError(FaultError):
    """A retryable RPC failure (flaky link, dropped message).

    The single controller's dispatch retries these with deterministic
    backoff; only when the retry budget is exhausted does the failure
    escalate to :class:`WorkerLostError`.
    """

    def __init__(
        self,
        message: str,
        group: str = "",
        method: str = "",
        ranks: Tuple[int, ...] = (),
    ) -> None:
        self.group = group
        self.method = method
        self.ranks = tuple(ranks)
        super().__init__(message)


class CallTimeoutError(TransientRpcError):
    """A remote call exceeded the per-call timeout on the simulated clock.

    Subclasses :class:`TransientRpcError` so the retry machinery treats a
    timeout like any other retryable fault; a *persistent* straggler keeps
    timing out until the budget is exhausted and the rank is declared lost.
    """


class WorkerLostError(FaultError):
    """Permanent loss of worker rank(s): device/machine death or exhausted retries.

    Attributes:
        group: Worker-group name whose call detected the loss.
        pool: Resource-pool name holding the affected ranks.
        dead_ranks: Global device ranks that are gone (may be empty when a
            link, rather than a device, was declared dead).
        step: Controller trace sequence number at detection time.
        cause: Short human-readable reason ("machine 0 lost", "retries
            exhausted", ...).
    """

    def __init__(
        self,
        message: str,
        group: str = "",
        pool: str = "",
        dead_ranks: Tuple[int, ...] = (),
        step: Optional[int] = None,
        cause: str = "",
    ) -> None:
        self.group = group
        self.pool = pool
        self.dead_ranks = tuple(dead_ranks)
        self.step = step
        self.cause = cause
        super().__init__(message)


class RetryBudgetExhausted(WorkerLostError):
    """The per-call retry *deadline* ran out before the retry count did.

    Raised by :meth:`RetryPolicy.backoff_delay` (and surfaced by the
    dispatch gate) when a call has already spent its whole ``deadline``
    budget on attempts, timeouts, and backoff waits.  Subclasses
    :class:`WorkerLostError` so recovery escalates it like any permanent
    loss, while the distinct type lets callers tell "we ran out of time"
    from "the retry count ran out".

    Attributes (beyond :class:`WorkerLostError`'s):
        method: Remote method name of the call that ran out of budget.
        deadline: The per-call budget (simulated seconds).
        spent: Simulated seconds consumed when the budget was declared gone.
        attempts: Call attempts made before giving up.
    """

    def __init__(
        self,
        message: str,
        group: str = "",
        method: str = "",
        pool: str = "",
        step: Optional[int] = None,
        deadline: float = 0.0,
        spent: float = 0.0,
        attempts: int = 0,
    ) -> None:
        self.method = method
        self.deadline = deadline
        self.spent = spent
        self.attempts = attempts
        super().__init__(
            message,
            group=group,
            pool=pool,
            dead_ranks=(),
            step=step,
            cause="retry deadline exhausted",
        )
