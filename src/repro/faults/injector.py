"""``FaultInjector``: deterministic fault delivery against a controller's trace.

The injector is attached to a :class:`~repro.single_controller.SingleController`
(``controller.attach_fault_injector``) and consulted by every remote call
before it executes.  Events arm at trace sequence numbers, so delivery is
bit-reproducible; device/machine kills mutate the *cluster* (devices stay
dead across controller rebuilds, which is what recovery re-placement runs
against), while transient and straggler effects live in the injector and
survive re-binding to the controller a recovery builds.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.faults.errors import TransientRpcError, WorkerLostError
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan


@dataclasses.dataclass
class FaultStats:
    """Counters the tests and the recovery report read back."""

    events_armed: int = 0
    transients_injected: int = 0
    retries_observed: int = 0
    devices_killed: int = 0
    detections: int = 0


class _ActiveTransient:
    """A transient event with its remaining failure budget."""

    def __init__(self, event: FaultEvent) -> None:
        self.event = event
        self.remaining = event.count

    def matches(self, group_name: str, pool_name: str) -> bool:
        if self.event.group is not None and self.event.group != group_name:
            return False
        if self.event.pool is not None and self.event.pool != pool_name:
            return False
        return True


class FaultInjector:
    """Delivers a :class:`FaultPlan` into a running single-controller job."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._pending: List[FaultEvent] = sorted(
            plan.events, key=lambda e: e.at_step
        )
        self._transients: List[_ActiveTransient] = []
        #: Per-rank latency multipliers of armed stragglers.
        self.straggle: Dict[int, float] = {}
        self.stats = FaultStats()
        self.controller = None

    # -- wiring ----------------------------------------------------------------------

    def bind(self, controller) -> None:
        """Attach to a controller (re-bound by recovery after a rebuild)."""
        self.controller = controller

    @property
    def pending_events(self) -> Tuple[FaultEvent, ...]:
        return tuple(self._pending)

    # -- the per-call gate -----------------------------------------------------------

    def pre_call(self, group, method: str, seq: int) -> None:
        """Arm due events, then fail this call if a fault applies.

        Raises:
            WorkerLostError: a device in the group's pool is dead.
            TransientRpcError: an armed transient fault consumed this call.
        """
        if self.controller is None:
            raise RuntimeError("FaultInjector used before bind()")
        self._arm_due(seq)
        cluster = self.controller.cluster
        pool = group.resource_pool
        dead = [r for r in pool.global_ranks if not cluster.device(r).alive]
        if dead:
            self.stats.detections += 1
            raise WorkerLostError(
                f"{group.name}.{method}: rank(s) {dead} of pool "
                f"{pool.name!r} are dead (detected at trace step {seq})",
                group=group.name,
                pool=pool.name,
                dead_ranks=tuple(dead),
                step=seq,
                cause="device loss",
            )
        for transient in self._transients:
            if transient.remaining > 0 and transient.matches(
                group.name, pool.name
            ):
                transient.remaining -= 1
                self.stats.transients_injected += 1
                metrics = getattr(self.controller, "metrics", None)
                if metrics is not None:
                    metrics.counter(
                        "repro_transients_injected_total",
                        "Transient RPC faults delivered by the injector",
                        group=group.name,
                    ).inc()
                raise TransientRpcError(
                    f"injected transient RPC failure on {group.name}.{method} "
                    f"(trace step {seq})",
                    group=group.name,
                    method=method,
                )

    def note_retry(self) -> None:
        self.stats.retries_observed += 1

    # -- durations / stragglers --------------------------------------------------------

    def call_duration(self, group, method: str) -> float:
        """Simulated duration of one call, inflated by the pool's slowest rank."""
        # Lazy import: runtime.timeline imports the controller module, which
        # imports worker_group; resolving the table at call time avoids the cycle.
        from repro.runtime.timeline import DEFAULT_DURATIONS, FALLBACK_DURATION

        base = DEFAULT_DURATIONS.get(method, FALLBACK_DURATION)
        factor = max(
            (self.straggle.get(r, 1.0) for r in group.resource_pool.global_ranks),
            default=1.0,
        )
        return base * factor

    def straggler_ranks(self, group) -> Tuple[int, ...]:
        return tuple(
            r
            for r in group.resource_pool.global_ranks
            if self.straggle.get(r, 1.0) > 1.0
        )

    # -- event activation --------------------------------------------------------------

    def _arm_due(self, seq: int) -> None:
        cluster = self.controller.cluster
        clock = getattr(self.controller, "clock", None)
        now = clock.now if clock is not None else None
        metrics = getattr(self.controller, "metrics", None)

        def count_kills(n: int) -> None:
            self.stats.devices_killed += n
            if metrics is not None and n:
                metrics.counter(
                    "repro_devices_killed_total",
                    "Devices killed by injected faults",
                ).inc(n)

        while self._pending and self._pending[0].at_step <= seq:
            event = self._pending.pop(0)
            self.stats.events_armed += 1
            if event.kind is FaultKind.DEVICE_LOSS:
                if cluster.device(event.rank).alive:
                    cluster.fail_device(event.rank, at_time=now)
                    count_kills(1)
            elif event.kind is FaultKind.MACHINE_LOSS:
                count_kills(len(cluster.fail_machine(event.machine, at_time=now)))
            elif event.kind is FaultKind.RACK_LOSS:
                count_kills(
                    len(
                        cluster.fail_rack(
                            event.rack, event.machines_per_rack, at_time=now
                        )
                    )
                )
            elif event.kind is FaultKind.TRANSIENT_RPC:
                self._transients.append(_ActiveTransient(event))
            elif event.kind is FaultKind.STRAGGLER:
                self.straggle[event.rank] = max(
                    self.straggle.get(event.rank, 1.0), event.slow_factor
                )

    def __repr__(self) -> str:
        return (
            f"FaultInjector({len(self._pending)} pending of "
            f"{len(self.plan)} events)"
        )


#: Kill kinds a fleet-level chaos plan may carry (capacity faults only).
KILL_KINDS = frozenset(
    {FaultKind.DEVICE_LOSS, FaultKind.MACHINE_LOSS, FaultKind.RACK_LOSS}
)


class ClusterFaultDriver:
    """Fleet-scoped fault delivery: kills devices in a shared cluster directly.

    A :class:`FaultInjector` keys events by *one controller's* trace steps,
    which has no meaning when several tenant jobs (each with its own
    controller and trace) share a cluster.  The driver instead keys the same
    :class:`FaultPlan` events by **fleet scheduler tick** and mutates the
    shared :class:`~repro.cluster.SimCluster` between ticks; each job then
    *detects* the loss on its next remote call through its own (possibly
    empty-plan) injector — detection-on-contact, exactly like single-job
    faults.

    Only capacity faults (device / machine / rack kills) are meaningful
    fleet-wide; transient and straggler events belong in a per-job plan and
    are rejected loudly.
    """

    def __init__(self, plan: FaultPlan) -> None:
        bad = [e.kind.value for e in plan if e.kind not in KILL_KINDS]
        if bad:
            raise ValueError(
                f"a fleet fault plan may only contain kill events "
                f"(device/machine/rack loss); got {sorted(set(bad))} — "
                f"put transient/straggler events in a per-job plan instead"
            )
        self.plan = plan
        self._pending: List[FaultEvent] = sorted(
            plan.events, key=lambda e: e.at_step
        )
        self.devices_killed = 0

    @property
    def pending_events(self) -> Tuple[FaultEvent, ...]:
        return tuple(self._pending)

    def apply_due(
        self, cluster, tick: int, at_time: Optional[float] = None
    ) -> List[int]:
        """Apply every event due at or before ``tick``; returns ranks killed now."""
        died: List[int] = []
        while self._pending and self._pending[0].at_step <= tick:
            event = self._pending.pop(0)
            if event.kind is FaultKind.DEVICE_LOSS:
                if cluster.device(event.rank).alive:
                    cluster.fail_device(event.rank, at_time=at_time)
                    died.append(event.rank)
            elif event.kind is FaultKind.MACHINE_LOSS:
                died.extend(cluster.fail_machine(event.machine, at_time=at_time))
            elif event.kind is FaultKind.RACK_LOSS:
                died.extend(
                    cluster.fail_rack(
                        event.rack, event.machines_per_rack, at_time=at_time
                    )
                )
        self.devices_killed += len(died)
        return died

    def __repr__(self) -> str:
        return (
            f"ClusterFaultDriver({len(self._pending)} pending of "
            f"{len(self.plan)} events)"
        )


def has_faults(controller) -> Optional[FaultInjector]:
    """The controller's injector, or ``None`` (duck-typed for bare controllers)."""
    return getattr(controller, "fault_injector", None)
