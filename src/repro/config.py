"""Model, cluster, and parallelism configuration for the HybridFlow reproduction.

The paper evaluates Llama-family models of 7B to 70B parameters on a cluster
of 16 machines, each with 8 NVIDIA A100-80GB GPUs (NVLink 600 GB/s
intra-machine, 200 Gbps InfiniBand inter-machine).  This module captures those
specifications as plain dataclasses so both the functional runtime and the
analytical performance simulators can share one source of truth.

All sizes are expressed in base units: bytes, FLOPs, seconds.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Tuple

GiB = 1024**3
GB = 10**9

#: Bytes per element for the precisions the paper uses (§8.1: BF16 parameters,
#: FP32 gradients and optimizer states).
BYTES_BF16 = 2
BYTES_FP16 = 2
BYTES_FP32 = 4


@dataclasses.dataclass(frozen=True)
class ModelSpec:
    """Architecture of a decoder-only transformer LM.

    Attributes:
        name: Human readable identifier, e.g. ``"llama-7b"``.
        n_layers: Number of transformer decoder layers.
        hidden_size: Model (embedding) dimension.
        n_heads: Number of attention heads.
        n_kv_heads: Number of key/value heads (grouped-query attention);
            equals ``n_heads`` for classic multi-head attention.
        ffn_hidden_size: Inner dimension of the (gated) MLP.
        vocab_size: Token vocabulary size.
        max_seq_len: Maximum sequence length the model supports.
        tie_embeddings: Whether the output projection shares the input
            embedding matrix.
    """

    name: str
    n_layers: int
    hidden_size: int
    n_heads: int
    n_kv_heads: int
    ffn_hidden_size: int
    vocab_size: int = 32000
    max_seq_len: int = 4096
    tie_embeddings: bool = False

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.n_heads

    def n_params(self) -> int:
        """Total parameter count (embedding + per-layer + final norm + head)."""
        h = self.hidden_size
        kv = self.n_kv_heads * self.head_dim
        # attention: Q (h*h), K (h*kv), V (h*kv), O (h*h)
        attn = h * h + 2 * h * kv + h * h
        # gated MLP (SwiGLU): gate + up + down
        mlp = 3 * h * self.ffn_hidden_size
        # two RMSNorm weights per layer
        norms = 2 * h
        per_layer = attn + mlp + norms
        embed = self.vocab_size * h
        head = 0 if self.tie_embeddings else self.vocab_size * h
        return embed + self.n_layers * per_layer + norms // 2 + head

    def param_bytes(self, bytes_per_param: int = BYTES_BF16) -> int:
        return self.n_params() * bytes_per_param

    def kv_cache_bytes_per_token(self, bytes_per_elem: int = BYTES_BF16) -> int:
        """KV-cache bytes for one token across all layers (K and V)."""
        return 2 * self.n_layers * self.n_kv_heads * self.head_dim * bytes_per_elem

    def flops_per_token_forward(self, seq_len: int) -> float:
        """Approximate forward FLOPs to process one token with ``seq_len`` context.

        Uses the standard ``2 * n_params`` matmul estimate plus the quadratic
        attention term ``2 * 2 * n_layers * seq_len * hidden`` (QK^T and
        attention-times-V), following the Megatron-LM accounting the paper's
        ``simu`` module builds on.
        """
        dense = 2.0 * self.n_params()
        attn = 4.0 * self.n_layers * seq_len * self.hidden_size
        return dense + attn

    def flops_per_token_train(self, seq_len: int) -> float:
        """Training FLOPs per token: forward plus ~2x backward."""
        return 3.0 * self.flops_per_token_forward(seq_len)

    def with_value_head(self, name_suffix: str = "-critic") -> "ModelSpec":
        """Return a spec whose LM head is replaced by a scalar output head.

        Critic / reward / cost models in RLHF replace the vocabulary
        projection with a scalar head (§2.1); parameter count changes only in
        the head, which this approximation captures by keeping the trunk.
        """
        return dataclasses.replace(self, name=self.name + name_suffix)


#: Llama-family model specs used throughout the paper's evaluation (§8.1).
MODEL_SPECS: Dict[str, ModelSpec] = {
    "llama-7b": ModelSpec("llama-7b", 32, 4096, 32, 32, 11008),
    "llama-13b": ModelSpec("llama-13b", 40, 5120, 40, 40, 13824),
    "llama-34b": ModelSpec("llama-34b", 48, 8192, 64, 8, 22016),
    "llama-70b": ModelSpec("llama-70b", 80, 8192, 64, 8, 28672),
}


def tiny_spec(
    n_layers: int = 2,
    hidden_size: int = 32,
    n_heads: int = 4,
    ffn_hidden_size: int = 64,
    vocab_size: int = 64,
    max_seq_len: int = 64,
) -> ModelSpec:
    """A miniature spec for functional (real-array) runs in tests/examples."""
    return ModelSpec(
        name="tiny",
        n_layers=n_layers,
        hidden_size=hidden_size,
        n_heads=n_heads,
        n_kv_heads=n_heads,
        ffn_hidden_size=ffn_hidden_size,
        vocab_size=vocab_size,
        max_seq_len=max_seq_len,
    )


@dataclasses.dataclass(frozen=True)
class GpuSpec:
    """Performance envelope of one accelerator (defaults: NVIDIA A100-80GB)."""

    name: str = "A100-80GB"
    memory_bytes: int = 80 * GiB
    #: Peak dense BF16 throughput (FLOP/s).
    peak_flops: float = 312e12
    #: HBM bandwidth (bytes/s).
    hbm_bandwidth: float = 2039 * GB
    #: Achievable fraction of peak in well-tuned large matmuls.
    flops_efficiency: float = 0.45
    #: Achievable fraction of HBM bandwidth in memory-bound decode.
    hbm_efficiency: float = 0.7


#: Device presets for heterogeneous-cluster experiments (peak dense BF16/FP16
#: throughput and HBM bandwidth from vendor datasheets).
GPU_SPECS: Dict[str, GpuSpec] = {
    "A100-80GB": GpuSpec(),
    "A100-40GB": dataclasses.replace(
        GpuSpec(), name="A100-40GB", memory_bytes=40 * GiB
    ),
    "H100-80GB": dataclasses.replace(
        GpuSpec(),
        name="H100-80GB",
        peak_flops=989e12,
        hbm_bandwidth=3350 * GB,
    ),
    "H800-80GB": dataclasses.replace(
        GpuSpec(),
        name="H800-80GB",
        peak_flops=989e12,
        hbm_bandwidth=3350 * GB,
    ),
    "V100-32GB": dataclasses.replace(
        GpuSpec(),
        name="V100-32GB",
        memory_bytes=32 * GiB,
        peak_flops=125e12,
        hbm_bandwidth=900 * GB,
    ),
}


@dataclasses.dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous GPU cluster (paper testbed: 16 machines x 8 A100)."""

    n_machines: int = 16
    gpus_per_machine: int = 8
    gpu: GpuSpec = dataclasses.field(default_factory=GpuSpec)
    #: Intra-machine (NVLink) bandwidth per GPU pair direction, bytes/s.
    intra_node_bandwidth: float = 600 * GB
    #: Inter-machine (InfiniBand) bandwidth per machine, bytes/s (200 Gbps).
    inter_node_bandwidth: float = 25 * GB
    #: Per-collective launch latency (seconds).
    link_latency: float = 10e-6

    @property
    def n_gpus(self) -> int:
        return self.n_machines * self.gpus_per_machine

    def machine_of(self, rank: int) -> int:
        """Machine index hosting global device ``rank``."""
        if not 0 <= rank < self.n_gpus:
            raise ValueError(f"rank {rank} out of range for {self.n_gpus} GPUs")
        return rank // self.gpus_per_machine

    def bandwidth_between(self, rank_a: int, rank_b: int) -> float:
        """Point-to-point bandwidth between two device ranks."""
        if rank_a == rank_b:
            return math.inf
        if self.machine_of(rank_a) == self.machine_of(rank_b):
            return self.intra_node_bandwidth
        return self.inter_node_bandwidth

    def subcluster(self, n_gpus: int) -> "ClusterSpec":
        """A cluster spec restricted to the first ``n_gpus`` devices."""
        if n_gpus <= 0 or n_gpus > self.n_gpus:
            raise ValueError(f"cannot take {n_gpus} GPUs from {self.n_gpus}")
        if n_gpus < self.gpus_per_machine:
            return dataclasses.replace(self, n_machines=1, gpus_per_machine=n_gpus)
        if n_gpus % self.gpus_per_machine:
            raise ValueError(
                f"{n_gpus} GPUs is not a whole number of {self.gpus_per_machine}-GPU machines"
            )
        return dataclasses.replace(self, n_machines=n_gpus // self.gpus_per_machine)


@dataclasses.dataclass(frozen=True)
class ParallelConfig:
    """A 3D parallelism strategy ``p-t-d`` (§5.1).

    ``pp`` pipeline stages, ``tp`` tensor shards, ``dp`` data-parallel
    replicas; world size is ``pp * tp * dp``.
    """

    pp: int = 1
    tp: int = 1
    dp: int = 1

    def __post_init__(self) -> None:
        for field_name in ("pp", "tp", "dp"):
            value = getattr(self, field_name)
            if value < 1:
                raise ValueError(f"{field_name} must be >= 1, got {value}")

    @property
    def world_size(self) -> int:
        return self.pp * self.tp * self.dp

    @property
    def model_parallel_size(self) -> int:
        """Number of partitions one model replica is split into (``p * t``)."""
        return self.pp * self.tp

    def as_tuple(self) -> Tuple[int, int, int]:
        return (self.pp, self.tp, self.dp)

    def __str__(self) -> str:  # "1-8-2" convention used in the paper's figures
        return f"{self.pp}-{self.tp}-{self.dp}"


@dataclasses.dataclass(frozen=True)
class GenParallelConfig:
    """Generation-stage parallel sizes ``p_g-t_g-d_g`` layered on training ``d``.

    §5.1: ``N_a = p*t*d = p_g*t_g*d_g*d`` so ``d_g = (p*t)/(p_g*t_g)``.  The
    micro data-parallel size ``d_g`` multiplies the training DP size to give
    the effective generation DP size ``d_g * d``.
    """

    pp: int = 1
    tp: int = 1
    micro_dp: int = 1

    def __post_init__(self) -> None:
        for field_name in ("pp", "tp", "micro_dp"):
            value = getattr(self, field_name)
            if value < 1:
                raise ValueError(f"{field_name} must be >= 1, got {value}")

    @property
    def model_parallel_size(self) -> int:
        return self.pp * self.tp

    @classmethod
    def derive(cls, train: ParallelConfig, gen_pp: int, gen_tp: int) -> "GenParallelConfig":
        """Derive the micro-DP size from training and generation MP sizes.

        Raises ``ValueError`` when the generation model-parallel size does not
        divide the training model-parallel size, which the 3D-HybridEngine
        requires (§5.1).
        """
        mp_train = train.model_parallel_size
        mp_gen = gen_pp * gen_tp
        if mp_gen > mp_train or mp_train % mp_gen:
            raise ValueError(
                f"generation MP size {mp_gen} must divide training MP size {mp_train}"
            )
        return cls(pp=gen_pp, tp=gen_tp, micro_dp=mp_train // mp_gen)

    def __str__(self) -> str:
        return f"{self.pp}-{self.tp}-{self.micro_dp}"


@dataclasses.dataclass(frozen=True)
class RlhfWorkload:
    """Workload shape of one RLHF iteration (§8.1 defaults).

    Attributes:
        prompt_length: Tokens per input prompt.
        response_length: Tokens generated per response.
        global_batch_size: Prompts per RLHF iteration (global).
        ppo_epochs: PPO epochs over the collected batch.
        ppo_updates_per_epoch: Minibatch updates per epoch.
        n_generations_per_prompt: Responses sampled per prompt (GRPO uses >1).
    """

    prompt_length: int = 1024
    response_length: int = 1024
    global_batch_size: int = 1024
    ppo_epochs: int = 1
    ppo_updates_per_epoch: int = 8
    n_generations_per_prompt: int = 1

    @property
    def seq_length(self) -> int:
        return self.prompt_length + self.response_length

    @property
    def tokens_per_iteration(self) -> int:
        """Total prompt+response tokens in a global batch (the throughput
        numerator the paper uses in §8.1)."""
        return self.global_batch_size * self.seq_length * self.n_generations_per_prompt


def resolve_model_spec(model: "ModelSpec | str") -> ModelSpec:
    """Accept either a spec or a registered name like ``"llama-7b"``."""
    if isinstance(model, ModelSpec):
        return model
    try:
        return MODEL_SPECS[model]
    except KeyError:
        raise KeyError(
            f"unknown model {model!r}; known: {sorted(MODEL_SPECS)}"
        ) from None
