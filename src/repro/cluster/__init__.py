"""Simulated GPU cluster: devices, memory accounting, and topology.

This substrate replaces the paper's physical testbed (16 machines x 8
A100-80GB).  Placement and parallelism decisions in HybridFlow depend only on
device counts, per-device memory, and the intra/inter-machine bandwidth
hierarchy, all of which are modelled here.
"""

from repro.cluster.device import (
    DeviceMemory,
    LedgerEvent,
    OutOfDeviceMemory,
    SimDevice,
)
from repro.cluster.cluster import DeviceSet, SimCluster

__all__ = [
    "DeviceMemory",
    "DeviceSet",
    "LedgerEvent",
    "OutOfDeviceMemory",
    "SimCluster",
    "SimDevice",
]
