"""A single simulated accelerator with explicit memory accounting.

Out-of-memory behaviour drives several of the paper's design decisions
(colocated models execute sequentially to avoid OOM, §2.3; the auto-mapping
algorithm's ``get_min_alloc`` rejects allocations that would OOM, §6), so the
simulated device tracks every named allocation and raises
:class:`OutOfDeviceMemory` exactly when capacity would be exceeded.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.config import GpuSpec


@dataclasses.dataclass(frozen=True)
class LedgerEvent:
    """One memory-ledger operation, kept for the post-run TraceAuditor.

    ``nbytes`` is the bytes the operation moved (requested for ``alloc`` /
    ``resize``, released for ``free`` / ``clear``); ``balance`` is what the
    tag holds afterwards.  A ``free`` with ``nbytes == 0`` on a tag whose
    previous event was also a ``free`` is a double free; a negative
    ``balance`` can only come from a corrupted event stream — both are
    findings of :class:`~repro.analysis.TraceAuditor`.
    """

    op: str  # "alloc" | "free" | "resize" | "clear"
    tag: str
    nbytes: int
    balance: int


class OutOfDeviceMemory(RuntimeError):
    """Raised when an allocation would exceed a device's memory capacity."""

    def __init__(self, device: "SimDevice", tag: str, requested: int) -> None:
        self.device = device
        self.tag = tag
        self.requested = requested
        super().__init__(
            f"OOM on {device!r}: requested {requested} bytes for {tag!r}, "
            f"free {device.memory.free} of {device.memory.capacity}"
        )


class DeviceMemory:
    """Named-allocation memory tracker for one device.

    Allocations are keyed by a string tag (e.g. ``"actor/params"``) so tests
    can assert exactly which buffers exist — the zero-redundancy claim of the
    3D-HybridEngine (Table 2) is checked through this ledger.
    """

    def __init__(self, capacity: int, device: "SimDevice") -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._device = device
        self._allocations: Dict[str, int] = {}
        self.peak_used = 0
        #: Every ledger operation in order, for the TraceAuditor.
        self.events: List[LedgerEvent] = []
        #: Tags that ever held bytes on this device — distinguishes a benign
        #: free of a tag this rank never allocated (e.g. broadcast teardown)
        #: from a genuine double free.
        self.ever_allocated: Set[str] = set()
        #: Optional ``recorder(op, tag)`` callback, wired by the controller
        #: that owns this device's pool so every ledger mutation also lands
        #: in the shared-state access log (race detection, RC5xx).
        self.recorder: Optional[Callable[[str, str], None]] = None

    def _notify(self, op: str, tag: str) -> None:
        if self.recorder is not None:
            self.recorder(op, tag)

    @property
    def used(self) -> int:
        return sum(self._allocations.values())

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def alloc(self, tag: str, nbytes: int) -> None:
        """Allocate ``nbytes`` under ``tag``; adds to any existing allocation."""
        if nbytes < 0:
            raise ValueError(f"cannot allocate negative bytes: {nbytes}")
        if nbytes > self.free:
            raise OutOfDeviceMemory(self._device, tag, nbytes)
        self._allocations[tag] = self._allocations.get(tag, 0) + nbytes
        self.peak_used = max(self.peak_used, self.used)
        if nbytes > 0:
            self.ever_allocated.add(tag)
        self.events.append(
            LedgerEvent("alloc", tag, nbytes, self._allocations[tag])
        )
        self._notify("alloc", tag)

    def free_tag(self, tag: str) -> int:
        """Release everything under ``tag``; returns the bytes released."""
        released = self._allocations.pop(tag, 0)
        self.events.append(LedgerEvent("free", tag, released, 0))
        self._notify("free", tag)
        return released

    def resize(self, tag: str, nbytes: int) -> None:
        """Set the allocation under ``tag`` to exactly ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"cannot resize to negative bytes: {nbytes}")
        current = self._allocations.get(tag, 0)
        if nbytes - current > self.free:
            raise OutOfDeviceMemory(self._device, tag, nbytes - current)
        if nbytes == 0:
            self._allocations.pop(tag, None)
        else:
            self._allocations[tag] = nbytes
            self.ever_allocated.add(tag)
        self.peak_used = max(self.peak_used, self.used)
        self.events.append(LedgerEvent("resize", tag, nbytes, nbytes))
        self._notify("resize", tag)

    def bytes_for(self, tag: str) -> int:
        return self._allocations.get(tag, 0)

    def tags(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._allocations.items()))

    def reset_peak(self) -> None:
        self.peak_used = self.used

    def clear(self) -> None:
        """Drop every allocation (device failed or its workers were torn down).

        ``peak_used`` is kept — it is a historical high-water mark."""
        for tag, nbytes in sorted(self._allocations.items()):
            self.events.append(LedgerEvent("clear", tag, nbytes, 0))
            self._notify("clear", tag)
        self._allocations.clear()

    def __repr__(self) -> str:
        return (
            f"DeviceMemory(used={self.used}, free={self.free}, "
            f"capacity={self.capacity})"
        )


class SimDevice:
    """One simulated GPU: identity, machine locality, memory ledger."""

    def __init__(self, global_rank: int, machine: int, spec: GpuSpec) -> None:
        self.global_rank = global_rank
        self.machine = machine
        self.spec = spec
        self.memory = DeviceMemory(spec.memory_bytes, self)
        #: Accumulated simulated busy time (seconds), used for utilisation
        #: reports in the runtime layer.
        self.busy_time = 0.0
        #: False once the device has been killed by fault injection; dead
        #: devices are never allocatable again and their memory is gone.
        self.alive = True
        #: Simulated time of death, when a clock was available.
        self.failed_at: "float | None" = None

    def occupy(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative busy time: {seconds}")
        self.busy_time += seconds

    def fail(self, at_time: "float | None" = None) -> None:
        """Kill the device: contents lost, permanently unallocatable."""
        self.alive = False
        self.failed_at = at_time
        self.memory.clear()

    def __repr__(self) -> str:
        state = "" if self.alive else ", DEAD"
        return f"SimDevice(rank={self.global_rank}, machine={self.machine}{state})"
