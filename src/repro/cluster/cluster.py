"""The simulated cluster: a set of :class:`SimDevice` plus allocation logic.

A :class:`SimCluster` materialises a :class:`~repro.config.ClusterSpec` into
device objects and hands out contiguous :class:`DeviceSet` slices, mirroring
how HybridFlow's ``ResourcePool`` virtualises GPUs (§4.1).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.cluster.device import SimDevice
from repro.config import ClusterSpec


class DeviceSet:
    """An ordered set of devices allocated to one colocated model group."""

    def __init__(self, devices: Sequence[SimDevice], cluster: "SimCluster") -> None:
        if not devices:
            raise ValueError("a DeviceSet needs at least one device")
        ranks = [d.global_rank for d in devices]
        if len(set(ranks)) != len(ranks):
            raise ValueError(f"duplicate device ranks in set: {ranks}")
        self.devices: List[SimDevice] = list(devices)
        self.cluster = cluster

    @property
    def size(self) -> int:
        return len(self.devices)

    @property
    def global_ranks(self) -> List[int]:
        return [d.global_rank for d in self.devices]

    def device(self, local_rank: int) -> SimDevice:
        return self.devices[local_rank]

    def overlaps(self, other: "DeviceSet") -> bool:
        return bool(set(self.global_ranks) & set(other.global_ranks))

    def spans_machines(self) -> int:
        """Number of distinct machines this set touches."""
        return len({d.machine for d in self.devices})

    def min_free_memory(self) -> int:
        return min(d.memory.free for d in self.devices)

    def __iter__(self):
        return iter(self.devices)

    def __len__(self) -> int:
        return len(self.devices)

    def __repr__(self) -> str:
        return f"DeviceSet(ranks={self.global_ranks})"


class SimCluster:
    """All devices of a simulated cluster, with slice-based allocation.

    Allocation is deliberately simple — contiguous rank ranges — because the
    paper assumes homogeneous GPUs and non-overlapping ``ResourcePool``
    instances (§4.1: "We assume no overlap between different ResourcePool
    instances").
    """

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec
        self.devices: List[SimDevice] = [
            SimDevice(rank, spec.machine_of(rank), spec.gpu)
            for rank in range(spec.n_gpus)
        ]
        self._free = set(range(spec.n_gpus))

    @property
    def n_gpus(self) -> int:
        return self.spec.n_gpus

    @property
    def n_alive(self) -> int:
        return sum(1 for d in self.devices if d.alive)

    def device(self, rank: int) -> SimDevice:
        return self.devices[rank]

    def alive_devices(self) -> List[SimDevice]:
        return [d for d in self.devices if d.alive]

    def allocatable_ranks(self) -> List[int]:
        """Free *and* alive ranks, in rank order."""
        return [
            r for r in range(self.n_gpus) if r in self._free and self.devices[r].alive
        ]

    def allocate(self, n_gpus: int) -> DeviceSet:
        """Allocate ``n_gpus`` free, alive devices — contiguous when possible.

        First-fit over contiguous rank spans (the paper assumes homogeneous
        GPUs, so span choice is immaterial to cost); after failures have
        punched holes in the rank space, falls back to the first ``n_gpus``
        allocatable ranks in order.  Raises ``RuntimeError`` when the cluster
        is exhausted; callers (the mapping algorithm) are expected to have
        validated total demand.
        """
        if n_gpus <= 0:
            raise ValueError(f"must allocate a positive GPU count, got {n_gpus}")
        available = self.allocatable_ranks()
        if n_gpus > len(available):
            raise RuntimeError(
                f"cluster exhausted: want {n_gpus} GPUs, "
                f"{len(available)} allocatable of {self.n_gpus}"
            )
        chosen: List[int] = []
        run: List[int] = []
        for rank in range(self.n_gpus):
            if rank in self._free and self.devices[rank].alive:
                run.append(rank)
                if len(run) == n_gpus:
                    chosen = run
                    break
            else:
                run = []
        if not chosen:  # no contiguous span survives; take the first free ranks
            chosen = available[:n_gpus]
        self._free.difference_update(chosen)
        return DeviceSet([self.devices[r] for r in chosen], self)

    def release(self, devices: DeviceSet, clear_memory: bool = True) -> None:
        """Return a set's devices to the free pool (recovery teardown).

        The workers that owned these devices are gone, so by default their
        memory ledgers are wiped; dead devices stay unallocatable.
        """
        for device in devices:
            if clear_memory:
                device.memory.clear()
            self._free.add(device.global_rank)

    def device_set(self, ranks: Iterable[int]) -> DeviceSet:
        """Build a DeviceSet from explicit global ranks (no bookkeeping)."""
        return DeviceSet([self.devices[r] for r in ranks], self)

    def release_all(self) -> None:
        """Forget all allocations (devices keep their memory ledgers)."""
        self._free = set(range(self.n_gpus))

    # -- failure injection (repro.faults) ----------------------------------------------

    def fail_device(self, rank: int, at_time: Optional[float] = None) -> SimDevice:
        """Kill one device; its memory is lost and it never allocates again."""
        device = self.devices[rank]
        device.fail(at_time)
        return device

    def fail_machine(self, machine: int, at_time: Optional[float] = None) -> List[int]:
        """Kill every device on ``machine``; returns the ranks that died now."""
        if not 0 <= machine < self.spec.n_machines:
            raise ValueError(
                f"machine {machine} out of range for {self.spec.n_machines}"
            )
        died = []
        for device in self.devices:
            if device.machine == machine and device.alive:
                device.fail(at_time)
                died.append(device.global_rank)
        return died

    def fail_rack(
        self,
        rack: int,
        machines_per_rack: int = 2,
        at_time: Optional[float] = None,
    ) -> List[int]:
        """Kill every device in one rack — a correlated multi-machine loss.

        Racks are contiguous machine blocks: rack ``r`` covers machines
        ``[r * machines_per_rack, (r + 1) * machines_per_rack)``, clipped to
        the cluster.  Returns the ranks that died now.
        """
        if machines_per_rack < 1:
            raise ValueError(
                f"machines_per_rack must be >= 1, got {machines_per_rack}"
            )
        first = rack * machines_per_rack
        if not 0 <= first < self.spec.n_machines:
            raise ValueError(
                f"rack {rack} out of range: machines start at {first}, "
                f"cluster has {self.spec.n_machines} machines"
            )
        died = []
        last = min(first + machines_per_rack, self.spec.n_machines)
        for machine in range(first, last):
            died.extend(self.fail_machine(machine, at_time=at_time))
        return died

    def total_memory_in_use(self) -> int:
        return sum(d.memory.used for d in self.devices)

    def __repr__(self) -> str:
        return (
            f"SimCluster({self.spec.n_machines}x{self.spec.gpus_per_machine} "
            f"{self.spec.gpu.name})"
        )
