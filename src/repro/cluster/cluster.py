"""The simulated cluster: a set of :class:`SimDevice` plus allocation logic.

A :class:`SimCluster` materialises a :class:`~repro.config.ClusterSpec` into
device objects and hands out contiguous :class:`DeviceSet` slices, mirroring
how HybridFlow's ``ResourcePool`` virtualises GPUs (§4.1).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.cluster.device import SimDevice
from repro.config import ClusterSpec


class DeviceSet:
    """An ordered set of devices allocated to one colocated model group."""

    def __init__(self, devices: Sequence[SimDevice], cluster: "SimCluster") -> None:
        if not devices:
            raise ValueError("a DeviceSet needs at least one device")
        ranks = [d.global_rank for d in devices]
        if len(set(ranks)) != len(ranks):
            raise ValueError(f"duplicate device ranks in set: {ranks}")
        self.devices: List[SimDevice] = list(devices)
        self.cluster = cluster

    @property
    def size(self) -> int:
        return len(self.devices)

    @property
    def global_ranks(self) -> List[int]:
        return [d.global_rank for d in self.devices]

    def device(self, local_rank: int) -> SimDevice:
        return self.devices[local_rank]

    def overlaps(self, other: "DeviceSet") -> bool:
        return bool(set(self.global_ranks) & set(other.global_ranks))

    def spans_machines(self) -> int:
        """Number of distinct machines this set touches."""
        return len({d.machine for d in self.devices})

    def min_free_memory(self) -> int:
        return min(d.memory.free for d in self.devices)

    def __iter__(self):
        return iter(self.devices)

    def __len__(self) -> int:
        return len(self.devices)

    def __repr__(self) -> str:
        return f"DeviceSet(ranks={self.global_ranks})"


class SimCluster:
    """All devices of a simulated cluster, with slice-based allocation.

    Allocation is deliberately simple — contiguous rank ranges — because the
    paper assumes homogeneous GPUs and non-overlapping ``ResourcePool``
    instances (§4.1: "We assume no overlap between different ResourcePool
    instances").
    """

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec
        self.devices: List[SimDevice] = [
            SimDevice(rank, spec.machine_of(rank), spec.gpu)
            for rank in range(spec.n_gpus)
        ]
        self._next_free_rank = 0

    @property
    def n_gpus(self) -> int:
        return self.spec.n_gpus

    def device(self, rank: int) -> SimDevice:
        return self.devices[rank]

    def allocate(self, n_gpus: int) -> DeviceSet:
        """Allocate the next ``n_gpus`` contiguous devices.

        Raises ``RuntimeError`` when the cluster is exhausted; callers (the
        mapping algorithm) are expected to have validated total demand.
        """
        if n_gpus <= 0:
            raise ValueError(f"must allocate a positive GPU count, got {n_gpus}")
        if self._next_free_rank + n_gpus > self.n_gpus:
            raise RuntimeError(
                f"cluster exhausted: want {n_gpus} GPUs, "
                f"{self.n_gpus - self._next_free_rank} unallocated of {self.n_gpus}"
            )
        start = self._next_free_rank
        self._next_free_rank += n_gpus
        return DeviceSet(self.devices[start : start + n_gpus], self)

    def device_set(self, ranks: Iterable[int]) -> DeviceSet:
        """Build a DeviceSet from explicit global ranks (no bookkeeping)."""
        return DeviceSet([self.devices[r] for r in ranks], self)

    def release_all(self) -> None:
        """Forget all allocations (devices keep their memory ledgers)."""
        self._next_free_rank = 0

    def total_memory_in_use(self) -> int:
        return sum(d.memory.used for d in self.devices)

    def __repr__(self) -> str:
        return (
            f"SimCluster({self.spec.n_machines}x{self.spec.gpus_per_machine} "
            f"{self.spec.gpu.name})"
        )
