"""Functional collectives over numpy arrays for simulated ranks.

Because every simulated rank lives in one Python process, a collective is a
pure function from the per-rank inputs (ordered by *group rank*) to the
per-rank outputs.  Each collective records the per-rank communication volume
a ring implementation of the same operation would move, so the functional and
analytical layers agree on traffic accounting.

All functions copy their outputs: ranks never alias each other's buffers,
matching real device semantics (and making accidental sharing a test failure
rather than a silent miracle).
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence

import numpy as np

from repro.comm.groups import ProcessGroup


def _require_group_sized(inputs: Sequence[Any], group: ProcessGroup, op: str) -> None:
    if len(inputs) != group.size:
        raise ValueError(
            f"{op}: expected {group.size} per-rank inputs for group "
            f"{group.name!r}, got {len(inputs)}"
        )


def all_gather(shards: Sequence[np.ndarray], group: ProcessGroup, axis: int = 0) -> List[np.ndarray]:
    """All ranks receive the concatenation of every rank's shard.

    Ring all-gather moves ``(n-1)/n * total`` bytes per rank.
    """
    _require_group_sized(shards, group, "all_gather")
    gathered = np.concatenate([np.asarray(s) for s in shards], axis=axis)
    total = gathered.nbytes
    per_rank = (group.size - 1) * total // group.size if group.size > 1 else 0
    group.record_traffic("all_gather", per_rank)
    return [gathered.copy() for _ in range(group.size)]


def all_gather_object(objs: Sequence[Any], group: ProcessGroup) -> List[List[Any]]:
    """Object all-gather: every rank receives the list of all ranks' objects."""
    _require_group_sized(objs, group, "all_gather_object")
    group.record_traffic("all_gather_object", 0)
    return [list(objs) for _ in range(group.size)]


def all_reduce(
    tensors: Sequence[np.ndarray],
    group: ProcessGroup,
    op: str = "sum",
) -> List[np.ndarray]:
    """All ranks receive the elementwise reduction of all inputs.

    Ring all-reduce moves ``2*(n-1)/n * M`` bytes per rank.
    """
    _require_group_sized(tensors, group, "all_reduce")
    arrays = [np.asarray(t) for t in tensors]
    shapes = {a.shape for a in arrays}
    if len(shapes) != 1:
        raise ValueError(f"all_reduce: mismatched shapes {shapes}")
    stacked = np.stack(arrays)
    if op == "sum":
        result = stacked.sum(axis=0)
    elif op == "mean":
        result = stacked.mean(axis=0)
    elif op == "max":
        result = stacked.max(axis=0)
    elif op == "min":
        result = stacked.min(axis=0)
    else:
        raise ValueError(f"unsupported all_reduce op {op!r}")
    per_rank = (
        2 * (group.size - 1) * result.nbytes // group.size if group.size > 1 else 0
    )
    group.record_traffic("all_reduce", per_rank)
    return [result.copy() for _ in range(group.size)]


def reduce_scatter(
    tensors: Sequence[np.ndarray],
    group: ProcessGroup,
    axis: int = 0,
) -> List[np.ndarray]:
    """Reduce all inputs, then scatter equal chunks along ``axis``.

    Moves ``(n-1)/n * M`` bytes per rank.
    """
    _require_group_sized(tensors, group, "reduce_scatter")
    arrays = [np.asarray(t) for t in tensors]
    total = np.sum(np.stack(arrays), axis=0)
    if total.shape[axis] % group.size:
        raise ValueError(
            f"reduce_scatter: axis {axis} length {total.shape[axis]} not divisible "
            f"by group size {group.size}"
        )
    chunks = np.split(total, group.size, axis=axis)
    per_rank = (
        (group.size - 1) * total.nbytes // group.size if group.size > 1 else 0
    )
    group.record_traffic("reduce_scatter", per_rank)
    return [c.copy() for c in chunks]


def broadcast(
    value: np.ndarray,
    group: ProcessGroup,
    root_group_rank: int = 0,
) -> List[np.ndarray]:
    """Every rank receives the root's tensor."""
    if not 0 <= root_group_rank < group.size:
        raise ValueError(f"broadcast root {root_group_rank} out of range")
    arr = np.asarray(value)
    per_rank = arr.nbytes if group.size > 1 else 0
    group.record_traffic("broadcast", per_rank)
    return [arr.copy() for _ in range(group.size)]


def scatter(
    chunks: Sequence[np.ndarray],
    group: ProcessGroup,
) -> List[np.ndarray]:
    """Rank ``i`` receives ``chunks[i]`` (root-side split already done)."""
    _require_group_sized(chunks, group, "scatter")
    arrays = [np.asarray(c) for c in chunks]
    per_rank = (
        sum(a.nbytes for a in arrays) // group.size if group.size > 1 else 0
    )
    group.record_traffic("scatter", per_rank)
    return [a.copy() for a in arrays]


def gather(
    tensors: Sequence[np.ndarray],
    group: ProcessGroup,
    root_group_rank: int = 0,
) -> List[np.ndarray]:
    """The root receives every rank's tensor (as a list); others receive []."""
    _require_group_sized(tensors, group, "gather")
    arrays = [np.asarray(t).copy() for t in tensors]
    per_rank = (
        sum(a.nbytes for a in arrays) // group.size if group.size > 1 else 0
    )
    group.record_traffic("gather", per_rank)
    out: List[Any] = [[] for _ in range(group.size)]
    out[root_group_rank] = arrays
    return out


def all_to_all(
    send: Sequence[Sequence[np.ndarray]],
    group: ProcessGroup,
) -> List[List[np.ndarray]]:
    """``send[i][j]`` goes from group rank ``i`` to group rank ``j``."""
    _require_group_sized(send, group, "all_to_all")
    for i, row in enumerate(send):
        if len(row) != group.size:
            raise ValueError(
                f"all_to_all: rank {i} supplied {len(row)} chunks, "
                f"expected {group.size}"
            )
    nbytes = sum(np.asarray(x).nbytes for row in send for x in row)
    per_rank = nbytes // group.size if group.size > 1 else 0
    group.record_traffic("all_to_all", per_rank)
    return [
        [np.asarray(send[src][dst]).copy() for src in range(group.size)]
        for dst in range(group.size)
    ]


def apply_per_rank(
    fn: Callable[[int, Any], Any],
    inputs: Sequence[Any],
    group: ProcessGroup,
) -> List[Any]:
    """Run ``fn(group_rank, input)`` on every rank — SPMD helper for tests."""
    _require_group_sized(inputs, group, "apply_per_rank")
    return [fn(i, x) for i, x in enumerate(inputs)]
