"""Communication substrate: process groups, collectives, and cost models.

Two layers live here:

* **Functional collectives** (:mod:`repro.comm.collectives`) move real numpy
  arrays between simulated ranks, so resharding correctness (bit-exact
  weights after a 3D-HybridEngine transition) is actually exercised.
* **Analytical costs** (:mod:`repro.comm.cost`) give the per-GPU communication
  volume and latency of ring collectives, following Chan et al. — the same
  reference ([13]) the paper uses for Table 2's volumes.
"""

from repro.comm.groups import (
    GroupCache,
    ProcessGroup,
    TrafficMeter,
    partition_problems,
)
from repro.comm.collectives import (
    all_gather,
    all_gather_object,
    all_reduce,
    all_to_all,
    broadcast,
    gather,
    reduce_scatter,
    scatter,
)
from repro.comm.cost import (
    all_gather_time,
    all_gather_volume_per_rank,
    all_reduce_time,
    all_reduce_volume_per_rank,
    broadcast_time,
    group_bandwidth,
    p2p_time,
    reduce_scatter_volume_per_rank,
)

__all__ = [
    "GroupCache",
    "ProcessGroup",
    "TrafficMeter",
    "all_gather",
    "all_gather_object",
    "all_gather_time",
    "all_gather_volume_per_rank",
    "all_reduce",
    "all_reduce_time",
    "all_reduce_volume_per_rank",
    "all_to_all",
    "broadcast",
    "broadcast_time",
    "gather",
    "group_bandwidth",
    "p2p_time",
    "partition_problems",
    "reduce_scatter",
    "reduce_scatter_volume_per_rank",
    "scatter",
]
