"""Process groups and traffic accounting for simulated collectives.

A :class:`ProcessGroup` is an ordered list of global device ranks, exactly as
in NCCL/Megatron: "group rank" ``i`` is the i-th entry.  A
:class:`TrafficMeter` records the bytes each collective moved so tests and
benchmarks can verify the communication-volume algebra of Table 2 against the
functional implementation.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple


class TrafficMeter:
    """Accumulates communication volume per (group name, op) pair."""

    def __init__(self) -> None:
        self._bytes: Dict[Tuple[str, str], int] = {}
        #: Per-global-rank bytes sent (counting each rank's outgoing share).
        self._rank_bytes: Dict[int, int] = {}

    def record(self, group: "ProcessGroup", op: str, bytes_per_rank: int) -> None:
        if bytes_per_rank < 0:
            raise ValueError(f"negative traffic: {bytes_per_rank}")
        key = (group.name, op)
        self._bytes[key] = self._bytes.get(key, 0) + bytes_per_rank * group.size
        for rank in group.ranks:
            self._rank_bytes[rank] = self._rank_bytes.get(rank, 0) + bytes_per_rank

    def total_bytes(self) -> int:
        return sum(self._bytes.values())

    def bytes_for(self, group_name: str, op: Optional[str] = None) -> int:
        return sum(
            v
            for (g, o), v in self._bytes.items()
            if g == group_name and (op is None or o == op)
        )

    def bytes_for_rank(self, rank: int) -> int:
        return self._rank_bytes.get(rank, 0)

    def reset(self) -> None:
        self._bytes.clear()
        self._rank_bytes.clear()

    def snapshot(self) -> Dict[Tuple[str, str], int]:
        return dict(self._bytes)


class ProcessGroup:
    """An ordered set of global ranks participating in collectives together."""

    def __init__(
        self,
        ranks: Sequence[int],
        name: str = "group",
        meter: Optional[TrafficMeter] = None,
    ) -> None:
        if not ranks:
            raise ValueError("a ProcessGroup needs at least one rank")
        if len(set(ranks)) != len(ranks):
            raise ValueError(f"duplicate ranks in group {name!r}: {list(ranks)}")
        self.ranks: List[int] = list(ranks)
        self.name = name
        self.meter = meter

    @property
    def size(self) -> int:
        return len(self.ranks)

    def group_rank_of(self, global_rank: int) -> int:
        """Position of ``global_rank`` within this group."""
        try:
            return self.ranks.index(global_rank)
        except ValueError:
            raise ValueError(
                f"rank {global_rank} is not in group {self.name!r} {self.ranks}"
            ) from None

    def contains(self, global_rank: int) -> bool:
        return global_rank in self.ranks

    def record_traffic(self, op: str, bytes_per_rank: int) -> None:
        if self.meter is not None:
            self.meter.record(self, op, bytes_per_rank)

    def __len__(self) -> int:
        return len(self.ranks)

    def __iter__(self):
        return iter(self.ranks)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ProcessGroup) and self.ranks == other.ranks

    def __hash__(self) -> int:
        return hash(tuple(self.ranks))

    def __repr__(self) -> str:
        return f"ProcessGroup({self.name!r}, ranks={self.ranks})"


class GroupCache:
    """Memoizes :class:`ProcessGroup` construction by group name.

    Topology group lookups (``tp_group``, ``micro_dp_group``, ...) are pure
    functions of the topology geometry, yet the hot paths — every worker of
    every transition, every collective bind — used to recompute the member
    scan and rebuild the group object on each call.  A cache instance lives
    on one topology, so a group's fully-qualified name (which encodes the
    topology name and the group's coordinates) uniquely determines its
    ranks; ``get_or_build`` therefore skips the rank computation entirely
    on a hit.  Callers must treat cached groups as immutable, which every
    collective already does.
    """

    def __init__(self) -> None:
        self._groups: Dict[str, ProcessGroup] = {}
        self.hits = 0
        self.misses = 0

    def get_or_build(
        self,
        name: str,
        ranks_fn: Callable[[], Sequence[int]],
        meter: Optional[TrafficMeter] = None,
    ) -> ProcessGroup:
        """The cached group for ``name``, building via ``ranks_fn`` on miss."""
        group = self._groups.get(name)
        if group is not None:
            self.hits += 1
            return group
        self.misses += 1
        group = ProcessGroup(list(ranks_fn()), name=name, meter=meter)
        self._groups[name] = group
        return group

    def stats(self) -> Dict[str, int]:
        return {
            "size": len(self._groups),
            "hits": self.hits,
            "misses": self.misses,
        }

    def clear(self) -> None:
        self._groups.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._groups)


def partition_problems(
    groups: Iterable["ProcessGroup"], universe: Sequence[int]
) -> List[str]:
    """Why a family of groups fails to partition ``universe``, if it does.

    A collective's group family (all TP groups, all micro-DP groups, ...)
    must be a true partition of the pool's ranks: every rank in exactly one
    group, no stray ranks.  Returns human-readable problem strings, empty
    when the family is a partition — the basis of the ``SH404`` rule.
    """
    problems: List[str] = []
    seen: Dict[int, str] = {}
    universe_set = set(universe)
    for group in groups:
        for rank in group.ranks:
            if rank not in universe_set:
                problems.append(
                    f"group {group.name!r} contains rank {rank}, which is "
                    f"outside the pool's ranks"
                )
            if rank in seen:
                problems.append(
                    f"rank {rank} appears in both {seen[rank]!r} and "
                    f"{group.name!r}"
                )
            else:
                seen[rank] = group.name
    missing = sorted(universe_set - set(seen))
    if missing:
        problems.append(f"ranks {missing} are covered by no group")
    return problems
