"""Analytical cost model for collectives on the simulated cluster.

Volumes follow the ring-algorithm accounting of Chan et al., *Collective
communication: theory, practice, and experience* — the reference ([13]) the
paper uses to derive Table 2:

* all-gather over ``n`` ranks of total payload ``M``: ``(n-1)/n * M`` per rank
* reduce-scatter: ``(n-1)/n * M`` per rank
* all-reduce: ``2(n-1)/n * M`` per rank
* broadcast (tree/ring pipelined): ``M`` per rank

Latency divides the per-rank volume by the *bottleneck* link bandwidth of the
group: inter-machine InfiniBand when the group spans machines, NVLink
otherwise, plus a fixed launch latency per collective.
"""

from __future__ import annotations

from typing import Sequence

from repro.config import ClusterSpec


def group_bandwidth(cluster: ClusterSpec, ranks: Sequence[int]) -> float:
    """Bottleneck bandwidth (bytes/s) for a collective over ``ranks``.

    A ring over a group that spans machines is limited by the inter-machine
    links shared by all ranks on one machine; we charge the per-machine NIC
    bandwidth divided by the number of group ranks sharing it.
    """
    if len(ranks) <= 1:
        return float("inf")
    machines = {cluster.machine_of(r) for r in ranks}
    if len(machines) == 1:
        return cluster.intra_node_bandwidth
    ranks_per_machine = max(
        sum(1 for r in ranks if cluster.machine_of(r) == m) for m in machines
    )
    return cluster.inter_node_bandwidth / ranks_per_machine


def all_gather_volume_per_rank(total_bytes: int, group_size: int) -> float:
    """Per-rank bytes moved by a ring all-gather of ``total_bytes`` payload."""
    if group_size <= 1:
        return 0.0
    return (group_size - 1) / group_size * total_bytes


def reduce_scatter_volume_per_rank(total_bytes: int, group_size: int) -> float:
    if group_size <= 1:
        return 0.0
    return (group_size - 1) / group_size * total_bytes


def all_reduce_volume_per_rank(total_bytes: int, group_size: int) -> float:
    if group_size <= 1:
        return 0.0
    return 2.0 * (group_size - 1) / group_size * total_bytes


def _collective_time(
    volume_per_rank: float, cluster: ClusterSpec, ranks: Sequence[int]
) -> float:
    if volume_per_rank <= 0:
        return 0.0
    bw = group_bandwidth(cluster, ranks)
    if bw == float("inf"):
        return 0.0
    return cluster.link_latency + volume_per_rank / bw


def all_gather_time(
    total_bytes: int, cluster: ClusterSpec, ranks: Sequence[int]
) -> float:
    """Seconds for a ring all-gather whose *gathered* payload is ``total_bytes``."""
    return _collective_time(
        all_gather_volume_per_rank(total_bytes, len(ranks)), cluster, ranks
    )


def all_reduce_time(
    total_bytes: int, cluster: ClusterSpec, ranks: Sequence[int]
) -> float:
    return _collective_time(
        all_reduce_volume_per_rank(total_bytes, len(ranks)), cluster, ranks
    )


def broadcast_time(
    total_bytes: int, cluster: ClusterSpec, ranks: Sequence[int]
) -> float:
    if len(ranks) <= 1:
        return 0.0
    return _collective_time(float(total_bytes), cluster, ranks)


def p2p_time(nbytes: int, cluster: ClusterSpec, src: int, dst: int) -> float:
    """Point-to-point transfer time between two global ranks."""
    if src == dst or nbytes <= 0:
        return 0.0
    return cluster.link_latency + nbytes / cluster.bandwidth_between(src, dst)
